//! End-to-end coverage ledger: a hand-built flight root holding a
//! violated run, a three-run pass streak, a still-passing-but-drifted
//! edge, and a crashed partial recording — scanned into one
//! [`CoverageLedger`], rendered deterministically as a scorecard, and
//! fed back into the recipe generator, which must provably skip the
//! violated cell and escalate the streaking one.

use std::path::{Path, PathBuf};
use std::time::Duration;

use gremlin::core::autogen::RecipeGenerator;
use gremlin::core::{AppGraph, DEFAULT_DRIFT_Z};
use gremlin::core::{
    CoverageLedger, FaultKind, FlightMeta, FlightRecorder, FlightSummary, LiveCheck, RunOutcome,
    Scenario, ScenarioKind, Verdict, FLIGHT_SCHEMA_VERSION,
};
use gremlin::store::{EdgeBaseline, Micros};

fn summary(name: &str, passed: bool, scenarios: Vec<Scenario>) -> FlightSummary {
    FlightSummary {
        name: name.to_string(),
        passed,
        injected: scenarios.iter().map(|s| s.to_string()).collect(),
        checks: Vec::new(),
        monitor: Vec::new(),
        anomalies: Vec::new(),
        scenarios,
    }
}

fn baseline(src: &str, dst: &str, p50_ms: u64) -> EdgeBaseline {
    EdgeBaseline {
        src: src.to_string(),
        dst: dst.to_string(),
        windows: 10,
        rate_ewma: 10.0,
        rate_mad: 0.5,
        error_rate: 0.0,
        error_upper: 0.02,
        responses: 100,
        p50_us: p50_ms * 1_000,
        p99_us: p50_ms * 2_000,
        latency_mad_us: 400.0,
    }
}

fn record_run(
    root: &Path,
    recipe: &str,
    at: Micros,
    summary: &FlightSummary,
    baselines: &[EdgeBaseline],
) -> PathBuf {
    let mut recorder = FlightRecorder::create(root, recipe, at, 1_000_000).unwrap();
    recorder.record_baselines(baselines).unwrap();
    recorder.finish(summary).unwrap()
}

#[test]
fn scorecard_regressions_and_steering_from_a_recorded_history() {
    let root = std::env::temp_dir().join(format!("gremlin-coverage-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let hang = Duration::from_secs(2);

    // Run 1: delay web -> db, monitor Violated.
    let mut violated = summary("db-slow", false, vec![Scenario::delay("web", "db", hang)]);
    violated.monitor.push(LiveCheck {
        name: "LiveErrorRate(web, <= 1%)".to_string(),
        verdict: Verdict::Violated,
        detail: "error rate 40%".to_string(),
        windows: 4,
        first_failing_at_us: Some(1_000_000),
        violated_at_us: Some(3_000_000),
    });
    record_run(
        &root,
        "db-slow",
        1_000_000,
        &violated,
        &[baseline("web", "db", 5)],
    );

    // Runs 2-4: delay web -> cache, passing, but the recorded
    // baseline's p50 drifts 5ms -> 120ms across the streak.
    for (index, p50_ms) in [(2u64, 5u64), (3, 5), (4, 120)] {
        record_run(
            &root,
            &format!("cache-slow-{index}"),
            index * 1_000_000,
            &summary(
                &format!("cache-slow-{index}"),
                true,
                vec![Scenario::delay("web", "cache", hang)],
            ),
            &[baseline("web", "cache", p50_ms)],
        );
    }

    // A crashed recording: meta.json only, nothing else survived.
    let crashed = root.join("crashed-5000000");
    std::fs::create_dir_all(&crashed).unwrap();
    let meta = FlightMeta {
        schema_version: FLIGHT_SCHEMA_VERSION,
        recipe: "crashed".to_string(),
        started_at_us: 5_000_000,
        window_us: 1_000_000,
    };
    std::fs::write(
        crashed.join("meta.json"),
        serde_json::to_string_pretty(&meta).unwrap(),
    )
    .unwrap();

    let ledger = CoverageLedger::scan(&root).unwrap();
    assert_eq!(ledger.runs_scanned(), 5);
    assert_eq!(ledger.incomplete_runs(), &["crashed-5000000".to_string()]);
    assert_eq!(ledger.covered_cells(), 2, "{:?}", ledger.covered_keys());

    // The violated cell and the streak cell carry their histories.
    let keys: Vec<_> = ledger.covered_keys().into_iter().collect();
    let db_cell = keys.iter().find(|k| k.dst == "db").unwrap();
    assert_eq!(db_cell.fault, FaultKind::Delay);
    assert_eq!(
        ledger.cell(db_cell).unwrap().worst_outcome,
        RunOutcome::Violated
    );
    let cache_cell = keys.iter().find(|k| k.dst == "cache").unwrap();
    let cache_stats = ledger.cell(cache_cell).unwrap();
    assert_eq!(cache_stats.attempts, 3);
    assert_eq!(cache_stats.pass_streak, 3);

    // Deterministic scorecard: fixed fixture, fixed rendering.
    let graph = AppGraph::from_edges(vec![("web", "db"), ("web", "cache")]);
    let rendered = ledger.render(Some(&graph), false);
    assert!(
        rendered.contains("5 run(s) scanned, 1 incomplete"),
        "{rendered}"
    );
    assert!(rendered.contains("2 cell(s) covered"), "{rendered}");
    assert!(rendered.contains("V1"), "violated cell missing: {rendered}");
    assert!(
        rendered.contains("✓3"),
        "pass streak cell missing: {rendered}"
    );
    assert!(rendered.contains("untested cells:"), "{rendered}");
    assert!(rendered.contains("incomplete runs:"), "{rendered}");
    assert_eq!(
        rendered,
        ledger.render(Some(&graph), false),
        "rendering is deterministic"
    );

    // The drifted-but-passing edge is flagged as a regression even
    // though every run on it passed.
    let drifts: Vec<_> = ledger
        .regressions()
        .iter()
        .filter(|r| r.src == "web" && r.dst == "cache")
        .collect();
    assert_eq!(drifts.len(), 1, "{:?}", ledger.regressions());
    assert!(
        drifts[0].z.unwrap_or(0.0) >= DEFAULT_DRIFT_Z,
        "{:?}",
        drifts[0]
    );
    let markdown = ledger.to_markdown(Some(&graph));
    assert!(
        markdown.contains("# Resilience coverage scorecard"),
        "{markdown}"
    );
    assert!(markdown.contains("**violated ×1**"), "{markdown}");
    assert!(markdown.contains("## Regressions"), "{markdown}");
    assert!(markdown.contains("## Incomplete runs"), "{markdown}");

    // Steering: the generator drops every test landing on the
    // violated (web, db, delay) cell and escalates the streaking
    // (web, cache, delay) cell.
    let unsteered = RecipeGenerator::new().generate(&graph);
    let steered = RecipeGenerator::new().steer(&ledger).generate(&graph);
    assert!(unsteered.iter().any(|t| t.name == "hang:web->db/timeouts"));
    assert!(
        !steered.iter().any(|t| t.name.starts_with("hang:web->db")),
        "violated cell must be skipped: {:?}",
        steered.iter().map(|t| &t.name).collect::<Vec<_>>()
    );
    assert_eq!(steered.len(), unsteered.len() - 2);
    let escalated = steered
        .iter()
        .find(|t| t.name == "hang:web->cache/timeouts")
        .unwrap();
    match &escalated.scenario.kind {
        ScenarioKind::Delay { interval, .. } => {
            assert_eq!(*interval, hang * 2, "escalation doubles the delay")
        }
        other => panic!("unexpected scenario {other:?}"),
    }
    let reason = escalated.steering_reason.as_deref().unwrap();
    assert!(reason.contains("3 consecutive pass(es)"), "{reason}");
    assert!(reason.contains("2s -> 4s"), "{reason}");
    // A higher streak floor leaves the streak alone.
    let patient = RecipeGenerator::new()
        .steer(&ledger)
        .escalate_after(5)
        .generate(&graph);
    let untouched = patient
        .iter()
        .find(|t| t.name == "hang:web->cache/timeouts")
        .unwrap();
    assert!(untouched.steering_reason.is_none(), "{untouched:?}");

    let _ = std::fs::remove_dir_all(&root);
}

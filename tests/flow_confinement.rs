//! Fault confinement to specific request flows (paper §4.1,
//! "Injecting faults on specific request flows"): faults keyed on
//! `test-*` IDs must leave production traffic untouched — the
//! property that makes Gremlin safe to run against live deployments.

use std::time::Duration;

use gremlin::core::{AppGraph, Scenario, TestContext};
use gremlin::http::StatusCode;
use gremlin::loadgen::LoadGenerator;
use gremlin::mesh::behaviors::{Aggregator, StaticResponder};
use gremlin::mesh::{Deployment, ResiliencePolicy, ServiceSpec};
use gremlin::store::{Pattern, Query};

fn deploy() -> (Deployment, TestContext) {
    let deployment = Deployment::builder()
        .service(ServiceSpec::new("backend", StaticResponder::ok("data")))
        .service(
            ServiceSpec::new("frontend", Aggregator::new(vec!["backend".into()], "/api"))
                .dependency(
                    "backend",
                    ResiliencePolicy::new().timeout(Duration::from_secs(2)),
                ),
        )
        .ingress("user", "frontend")
        .seed(13)
        .build()
        .expect("deployment starts");
    let graph = AppGraph::from_edges(vec![("user", "frontend"), ("frontend", "backend")]);
    let ctx = TestContext::new(graph, deployment.controls(), deployment.store().clone());
    (deployment, ctx)
}

#[test]
fn production_traffic_is_untouched_by_test_faults() {
    let (deployment, ctx) = deploy();
    ctx.inject(&Scenario::crash("backend").with_pattern("test-*"))
        .unwrap();

    // Interleave production and test traffic.
    let entry = deployment.entry_addr("frontend").unwrap();
    let prod = LoadGenerator::new(entry)
        .id_prefix("prod")
        .run_sequential(20);
    let test = LoadGenerator::new(entry)
        .id_prefix("test")
        .run_sequential(20);

    // Production flows all healthy.
    assert_eq!(prod.successes(), 20);
    for outcome in &prod.outcomes {
        assert_eq!(outcome.status, Some(200), "{outcome:?}");
    }
    // Test flows all see the (gracefully handled) crash.
    assert_eq!(test.successes(), 20, "aggregator degrades gracefully");

    // On the wire: backend replies for prod flows are genuine 200s;
    // test flows saw TCP-level failures.
    let store = deployment.store();
    let prod_replies =
        store.query(&Query::replies("frontend", "backend").with_id_pattern(Pattern::new("prod-*")));
    assert_eq!(prod_replies.len(), 20);
    assert!(prod_replies.iter().all(|e| e.status() == Some(200)));
    assert!(prod_replies.iter().all(|e| !e.is_faulted()));

    let test_replies =
        store.query(&Query::replies("frontend", "backend").with_id_pattern(Pattern::new("test-*")));
    assert!(!test_replies.is_empty());
    assert!(test_replies.iter().all(|e| e.status() == Some(0)));
    assert!(test_replies.iter().all(|e| e.is_faulted()));
}

#[test]
fn requests_without_ids_only_match_wildcard_rules() {
    let (deployment, ctx) = deploy();
    ctx.inject(&Scenario::abort("frontend", "backend", 503).with_pattern("test-*"))
        .unwrap();

    // A request with no Gremlin ID sails through.
    let entry = deployment.entry_addr("frontend").unwrap();
    let client = gremlin::http::HttpClient::new();
    let resp = client
        .send(entry, gremlin::http::Request::get("/"))
        .unwrap();
    assert_eq!(resp.status(), StatusCode::OK);
    assert_eq!(resp.body_str(), "backend=ok");

    // Switch to a wildcard rule: now even ID-less traffic is hit.
    ctx.clear_faults().unwrap();
    ctx.inject(&Scenario::abort("frontend", "backend", 503))
        .unwrap();
    let resp = client
        .send(entry, gremlin::http::Request::get("/"))
        .unwrap();
    assert_eq!(resp.body_str(), "backend=error(503)");
}

#[test]
fn distinct_test_flows_can_get_distinct_faults() {
    let (deployment, ctx) = deploy();
    // Flow family A is aborted; flow family B is delayed.
    ctx.orchestrator()
        .apply_rules(&[
            gremlin::proxy::Rule::abort(
                "frontend",
                "backend",
                gremlin::proxy::AbortKind::Status(503),
            )
            .with_pattern("test-a-*"),
            gremlin::proxy::Rule::delay("frontend", "backend", Duration::from_millis(120))
                .with_pattern("test-b-*"),
        ])
        .unwrap();

    let a = deployment
        .call_with_id("frontend", "/", "test-a-1")
        .unwrap();
    assert_eq!(a.body_str(), "backend=error(503)");

    let started = std::time::Instant::now();
    let b = deployment
        .call_with_id("frontend", "/", "test-b-1")
        .unwrap();
    assert_eq!(b.body_str(), "backend=ok");
    assert!(started.elapsed() >= Duration::from_millis(120));
}

#[test]
fn clearing_faults_restores_all_flows() {
    let (deployment, ctx) = deploy();
    ctx.inject(&Scenario::disconnect("frontend", "backend").with_pattern("test-*"))
        .unwrap();
    let before = deployment.call_with_id("frontend", "/", "test-1").unwrap();
    assert_eq!(before.body_str(), "backend=error(503)");

    ctx.clear_faults().unwrap();
    let after = deployment.call_with_id("frontend", "/", "test-2").unwrap();
    assert_eq!(after.body_str(), "backend=ok");
}

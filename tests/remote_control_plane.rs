//! The control plane driving agents over the out-of-band REST
//! control channel (paper §4.2 / §6), rather than in-process handles:
//! the same orchestrator and recipes work against `ControlClient`s.

use std::sync::Arc;
use std::time::Duration;

use gremlin::core::{AppGraph, Scenario, TestContext};
use gremlin::mesh::behaviors::{Aggregator, StaticResponder};
use gremlin::mesh::{Deployment, ResiliencePolicy, ServiceSpec};
use gremlin::proxy::{AgentControl, ControlClient, ControlServer};

fn deploy() -> Deployment {
    Deployment::builder()
        .service(ServiceSpec::new("backend", StaticResponder::ok("data")))
        .service(
            ServiceSpec::new("frontend", Aggregator::new(vec!["backend".into()], "/api"))
                .dependency(
                    "backend",
                    ResiliencePolicy::new().timeout(Duration::from_secs(2)),
                ),
        )
        .ingress("user", "frontend")
        .build()
        .expect("deployment starts")
}

#[test]
fn orchestrate_through_rest_control_channel() {
    let deployment = deploy();

    // Expose every agent through a control REST endpoint, then build
    // the control plane purely from remote clients.
    let mut control_servers = Vec::new();
    let mut remote_controls: Vec<Arc<dyn AgentControl>> = Vec::new();
    for agent in deployment.agents() {
        let server = ControlServer::start(Arc::clone(&agent), "127.0.0.1:0").unwrap();
        let client = ControlClient::connect(server.local_addr()).unwrap();
        remote_controls.push(Arc::new(client));
        control_servers.push(server);
    }

    let graph = AppGraph::from_edges(vec![("user", "frontend"), ("frontend", "backend")]);
    let ctx = TestContext::new(graph, remote_controls, deployment.store().clone());

    // Stage a disconnect via REST and observe it on the data path.
    ctx.inject(&Scenario::disconnect("frontend", "backend").with_pattern("test-*"))
        .unwrap();
    let resp = deployment.call_with_id("frontend", "/", "test-1").unwrap();
    assert_eq!(resp.body_str(), "backend=error(503)");

    // The rules are visible through the remote listing, attributed to
    // the right agent.
    let frontend_agent = deployment.agent("frontend").unwrap();
    assert_eq!(frontend_agent.rules().len(), 1);
    let user_agent = deployment.agent("user").unwrap();
    assert!(user_agent.rules().is_empty());

    // Clearing through REST restores traffic.
    ctx.clear_faults().unwrap();
    assert!(frontend_agent.rules().is_empty());
    let resp = deployment.call_with_id("frontend", "/", "test-2").unwrap();
    assert_eq!(resp.body_str(), "backend=ok");
}

#[test]
fn remote_health_reflects_installed_rules() {
    let deployment = deploy();
    let agent = deployment.agent("frontend").unwrap();
    let server = ControlServer::start(Arc::clone(agent), "127.0.0.1:0").unwrap();
    let client = ControlClient::connect(server.local_addr()).unwrap();

    assert_eq!(client.health().unwrap().rules, 0);
    client
        .install_rules(&[gremlin::proxy::Rule::delay(
            "frontend",
            "backend",
            Duration::from_millis(10),
        )])
        .unwrap();
    let health = client.health().unwrap();
    assert_eq!(health.rules, 1);
    assert_eq!(health.service, "frontend");
    client.clear_rules().unwrap();
    assert_eq!(client.health().unwrap().rules, 0);
}

//! The paper's §3.2 Example 1 and §4.2 "Chained failures", run
//! against a live two-service deployment:
//!
//! ```text
//! Overload(ServiceB)
//! if HasBoundedRetries(ServiceA, ServiceB, 5):
//!     Crash(ServiceB)
//!     HasCircuitBreaker(ServiceA, ServiceB, ...)
//! ```

use std::time::Duration;

use gremlin::core::{AppGraph, RecipeRun, Scenario, TestContext};
use gremlin::loadgen::LoadGenerator;
use gremlin::mesh::behaviors::{Aggregator, StaticResponder};
use gremlin::mesh::resilience::{Backoff, CircuitBreakerConfig, RetryPolicy};
use gremlin::mesh::{Deployment, ResiliencePolicy, ServiceSpec};
use gremlin::store::Pattern;

fn deploy(policy: ResiliencePolicy) -> (Deployment, TestContext) {
    let deployment = Deployment::builder()
        .service(ServiceSpec::new("serviceB", StaticResponder::ok("data")))
        .service(
            ServiceSpec::new("serviceA", Aggregator::new(vec!["serviceB".into()], "/api"))
                .dependency("serviceB", policy),
        )
        .ingress("user", "serviceA")
        .seed(3)
        .build()
        .expect("deployment starts");
    let graph = AppGraph::from_edges(vec![("user", "serviceA"), ("serviceA", "serviceB")]);
    let ctx = TestContext::new(graph, deployment.controls(), deployment.store().clone());
    (deployment, ctx)
}

fn resilient_policy() -> ResiliencePolicy {
    ResiliencePolicy::new()
        .timeout(Duration::from_secs(2))
        .retry(RetryPolicy::new(5).with_backoff(Backoff::constant(Duration::from_millis(1))))
        .circuit_breaker(CircuitBreakerConfig {
            failure_threshold: 5,
            open_duration: Duration::from_secs(60),
            success_threshold: 1,
        })
}

#[test]
fn example1_bounded_retries_pass_for_resilient_service() {
    let (deployment, ctx) = deploy(resilient_policy());
    ctx.inject(&Scenario::overload("serviceB").with_pattern("test-*"))
        .unwrap();
    LoadGenerator::new(deployment.entry_addr("serviceA").unwrap())
        .id_prefix("test")
        .run_sequential(30);
    let check =
        ctx.checker()
            .has_bounded_retries("serviceA", "serviceB", 5, &Pattern::new("test-*"));
    assert!(check.passed, "{check}");
}

#[test]
fn example1_detects_excessive_retries() {
    // A service retrying 10 times fails the MaxTries=5 expectation —
    // the bug Example 1 is designed to catch.
    let over_eager = ResiliencePolicy::new()
        .timeout(Duration::from_secs(2))
        .retry(RetryPolicy::new(10).with_backoff(Backoff::none()));
    let (deployment, ctx) = deploy(over_eager);
    // Hard disconnect so every attempt fails and the full retry
    // budget is spent.
    ctx.inject(&Scenario::disconnect("serviceA", "serviceB").with_pattern("test-*"))
        .unwrap();
    LoadGenerator::new(deployment.entry_addr("serviceA").unwrap())
        .id_prefix("test")
        .run_sequential(10);
    let check =
        ctx.checker()
            .has_bounded_retries("serviceA", "serviceB", 5, &Pattern::new("test-*"));
    assert!(!check.passed, "{check}");
    assert!(check.details.contains("10 request(s)"), "{check}");
}

#[test]
fn chained_failure_overload_then_crash() {
    let pattern = Pattern::new("test-*");

    // Step 1: Overload(ServiceB); expect bounded retries.
    let (deployment, ctx) = deploy(resilient_policy());
    let mut recipe = RecipeRun::new("example1-step1-overload", &ctx);
    recipe
        .inject(&Scenario::overload("serviceB").with_pattern("test-*"))
        .unwrap();
    LoadGenerator::new(deployment.entry_addr("serviceA").unwrap())
        .id_prefix("test")
        .run_sequential(20);
    let bounded = recipe.check(
        ctx.checker()
            .has_bounded_retries("serviceA", "serviceB", 5, &pattern),
    );
    assert!(bounded, "retries must be bounded before chaining further");
    let report1 = recipe.finish();
    assert!(report1.passed, "{report1}");

    // Step 2: the overload may already have tripped serviceA's
    // breaker — application state survives tests (the paper's §9
    // "state cleanup" limitation). Chain onto a fresh copy of the
    // application (the paper's suggested canary approach) and
    // escalate to a Crash.
    let (deployment, ctx) = deploy(resilient_policy());
    let mut recipe = RecipeRun::new("example1-step2-crash", &ctx);
    recipe
        .inject(&Scenario::crash("serviceB").with_pattern("test-*"))
        .unwrap();
    LoadGenerator::new(deployment.entry_addr("serviceA").unwrap())
        .id_prefix("test")
        .read_timeout(Some(Duration::from_secs(5)))
        .run_sequential(30);
    let breaker = recipe.check(ctx.checker().has_circuit_breaker(
        "serviceA",
        "serviceB",
        5,
        Duration::from_secs(30),
        1,
        &pattern,
    ));
    assert!(breaker, "circuit breaker must trip under crash");

    let report2 = recipe.finish();
    assert!(report2.passed, "{report2}");
    assert_eq!(report1.checks.len() + report2.checks.len(), 2);
    assert_eq!(report1.injected.len() + report2.injected.len(), 2);
}

#[test]
fn crash_without_breaker_fails_the_circuit_check() {
    // Retries but no breaker: calls to the crashed service continue
    // indefinitely, so HasCircuitBreaker must fail.
    let no_breaker = ResiliencePolicy::new()
        .timeout(Duration::from_secs(2))
        .retry(RetryPolicy::new(3).with_backoff(Backoff::none()));
    let (deployment, ctx) = deploy(no_breaker);
    ctx.inject(&Scenario::crash("serviceB").with_pattern("test-*"))
        .unwrap();
    LoadGenerator::new(deployment.entry_addr("serviceA").unwrap())
        .id_prefix("test")
        .read_timeout(Some(Duration::from_secs(5)))
        .run_sequential(30);
    let check = ctx.checker().has_circuit_breaker(
        "serviceA",
        "serviceB",
        5,
        Duration::from_secs(30),
        1,
        &Pattern::new("test-*"),
    );
    assert!(!check.passed, "{check}");
}

#[test]
fn overload_splits_traffic_between_abort_and_delay() {
    let (deployment, ctx) = deploy(ResiliencePolicy::new().timeout(Duration::from_secs(2)));
    ctx.inject(&Scenario::overload("serviceB").with_pattern("test-*"))
        .unwrap();
    let report = LoadGenerator::new(deployment.entry_addr("serviceA").unwrap())
        .id_prefix("test")
        .run_sequential(60);
    assert_eq!(report.len(), 60);

    // ~25% of serviceA->serviceB calls aborted with 503, the rest
    // delayed by 100 ms.
    let store = deployment.store();
    let replies = store.query(&gremlin::store::Query::replies("serviceA", "serviceB"));
    let aborted = replies.iter().filter(|e| e.status() == Some(503)).count();
    let delayed = replies
        .iter()
        .filter(|e| {
            e.observed_latency()
                .is_some_and(|l| l >= Duration::from_millis(100))
        })
        .count();
    assert!(
        (5..=35).contains(&aborted),
        "expected ~15 aborted of 60, got {aborted}"
    );
    assert!(delayed >= 25, "expected most calls delayed, got {delayed}");
}

//! The shipped `fixtures/` stay usable: they must parse as the
//! formats the CLI and control plane consume.

use gremlin::core::{AppGraph, Scenario, ScenarioKind};
use gremlin::store::Pattern;

#[test]
fn enterprise_graph_fixture_parses() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/fixtures/enterprise_graph.json"
    ))
    .expect("fixture exists");
    #[derive(serde::Deserialize)]
    struct SimpleGraph {
        edges: Vec<(String, String)>,
    }
    let simple: SimpleGraph = serde_json::from_str(&text).expect("valid simple graph");
    let graph = AppGraph::from_edges(simple.edges);
    assert_eq!(graph.len(), 6);
    assert_eq!(graph.dependencies("webapp").len(), 4);
    assert!(graph.has_edge("user", "webapp"));
    assert!(!graph.has_cycle());
}

#[test]
fn overload_scenario_fixture_parses_and_translates() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/fixtures/overload_database.json"
    ))
    .expect("fixture exists");
    let scenario: Scenario = serde_json::from_str(&text).expect("valid scenario");
    assert_eq!(scenario.pattern, Pattern::new("test-*"));
    assert!(matches!(
        scenario.kind,
        ScenarioKind::Overload { ref service, .. } if service == "search-api"
    ));

    // It must translate over the companion graph.
    let graph_text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/fixtures/enterprise_graph.json"
    ))
    .unwrap();
    #[derive(serde::Deserialize)]
    struct SimpleGraph {
        edges: Vec<(String, String)>,
    }
    let simple: SimpleGraph = serde_json::from_str(&graph_text).unwrap();
    let graph = AppGraph::from_edges(simple.edges);
    let rules = scenario.to_rules(&graph).expect("translates");
    // One dependent (webapp) x (abort + delay fallback).
    assert_eq!(rules.len(), 2);
    assert!(rules.iter().all(|r| r.dst == "search-api"));
}

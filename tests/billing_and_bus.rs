//! The remaining Table 1 incidents: Twilio 2013 (database failure
//! made the billing service repeatedly bill customers) and Parse.ly
//! 2015 / Stackdriver 2013 (message-bus overload cascading to
//! publishers).

use std::sync::Arc;
use std::time::Duration;

use gremlin::core::{AppGraph, Scenario, TestContext, View};
use gremlin::http::{HttpClient, Method, Request, StatusCode};
use gremlin::mesh::behaviors::StaticResponder;
use gremlin::mesh::stateful::{BillingService, ChargeLedger, MessageBus};
use gremlin::mesh::{Deployment, ResiliencePolicy, ServiceSpec};
use gremlin::store::{Pattern, Query};

fn billing_deployment(billing: BillingService) -> (Deployment, TestContext, Arc<ChargeLedger>) {
    let ledger = ChargeLedger::new();
    let deployment = Deployment::builder()
        .service(ServiceSpec::new("payments", Arc::clone(&ledger)))
        .service(ServiceSpec::new("billing", billing).dependency(
            "payments",
            ResiliencePolicy::new().timeout(Duration::from_millis(200)),
        ))
        .ingress("user", "billing")
        .build()
        .expect("deployment starts");
    let graph = AppGraph::from_edges(vec![("user", "billing"), ("billing", "payments")]);
    let ctx = TestContext::new(graph, deployment.controls(), deployment.store().clone());
    (deployment, ctx, ledger)
}

fn bill(deployment: &Deployment, id: &str) -> gremlin::http::Response {
    let addr = deployment.entry_addr("billing").expect("entry");
    HttpClient::new()
        .send(
            addr,
            Request::builder(Method::Post, "/bill")
                .request_id(id)
                .build(),
        )
        .unwrap()
}

/// Twilio 2013: the charge lands, but the *response* is delayed past
/// the billing service's timeout. A billing service that naively
/// retries timed-out charges double-bills the customer.
#[test]
fn twilio_double_billing_uncovered_by_response_delay() {
    let (deployment, ctx, ledger) =
        billing_deployment(BillingService::new("payments").with_naive_retries(3));

    // Delay *responses* from payments beyond the 200ms timeout: the
    // charge executes, the confirmation never arrives in time.
    ctx.orchestrator()
        .apply_rules(&[gremlin::proxy::Rule::delay(
            "billing",
            "payments",
            Duration::from_millis(600),
        )
        .with_pattern("test-*")
        .with_side(gremlin::proxy::MessageSide::Response)])
        .unwrap();

    let resp = bill(&deployment, "test-cust-1");
    // All retries time out, so billing reports failure to the user...
    assert_eq!(resp.status(), StatusCode::BAD_GATEWAY);
    // ...but the customer was charged on EVERY attempt.
    assert_eq!(ledger.charges_for("test-cust-1"), 3);
    assert_eq!(ledger.double_billed(), vec!["test-cust-1".to_string()]);

    // Gremlin sees the duplication from the network alone: multiple
    // requests reached the payments service for one flow.
    let requests = deployment.store().query(
        &Query::requests("billing", "payments").with_id_pattern(Pattern::new("test-cust-1")),
    );
    assert_eq!(requests.len(), 3);
    assert_eq!(
        gremlin::core::num_requests(&requests, None, View::Untampered),
        3,
        "untampered view confirms all three charges reached the backend"
    );
}

/// The fixed billing service (no blind retries of non-idempotent
/// calls) reports the failure but never double-bills.
#[test]
fn fixed_billing_service_never_double_bills() {
    let (deployment, ctx, ledger) = billing_deployment(BillingService::new("payments"));
    ctx.orchestrator()
        .apply_rules(&[gremlin::proxy::Rule::delay(
            "billing",
            "payments",
            Duration::from_millis(600),
        )
        .with_pattern("test-*")
        .with_side(gremlin::proxy::MessageSide::Response)])
        .unwrap();

    let resp = bill(&deployment, "test-cust-2");
    assert_eq!(resp.status(), StatusCode::BAD_GATEWAY);
    assert_eq!(
        ledger.charges_for("test-cust-2"),
        1,
        "one attempt, one charge"
    );
    assert!(ledger.double_billed().is_empty());
}

/// Without any fault, billing works and charges exactly once.
#[test]
fn billing_baseline() {
    let (deployment, _ctx, ledger) =
        billing_deployment(BillingService::new("payments").with_naive_retries(3));
    let resp = bill(&deployment, "test-cust-3");
    assert_eq!(resp.status(), StatusCode::OK);
    assert_eq!(ledger.charges_for("test-cust-3"), 1);
}

/// Parse.ly 2015 "Kafkapocalypse" / Stackdriver 2013: the datastore
/// behind the bus crashes; the bus's bounded queues fill; publishers
/// start failing.
#[test]
fn parsely_bus_overload_cascades_to_publishers() {
    let bus = MessageBus::forwarding(5, "cassandra");
    let deployment = Deployment::builder()
        .service(ServiceSpec::new("cassandra", StaticResponder::ok("stored")))
        .service(ServiceSpec::new("messagebus", Arc::clone(&bus)).dependency(
            "cassandra",
            ResiliencePolicy::new().timeout(Duration::from_millis(300)),
        ))
        .ingress("publisher", "messagebus")
        .build()
        .expect("deployment starts");
    let graph = AppGraph::from_edges(vec![
        ("publisher", "messagebus"),
        ("messagebus", "cassandra"),
    ]);
    let ctx = TestContext::new(graph, deployment.controls(), deployment.store().clone());

    let publish = |id: &str| {
        HttpClient::new()
            .send(
                deployment.entry_addr("messagebus").expect("entry"),
                Request::builder(Method::Post, "/publish/events")
                    .request_id(id)
                    .body("payload")
                    .build(),
            )
            .unwrap()
    };

    // Healthy: messages flow straight through to the store.
    assert_eq!(publish("test-0").status(), StatusCode::OK);
    assert_eq!(bus.depth("events"), 0);

    // Crash Cassandra (as seen from the bus).
    ctx.inject(&Scenario::crash("cassandra").with_pattern("test-*"))
        .unwrap();

    // The first `capacity` publishes are buffered...
    for i in 1..=5 {
        let resp = publish(&format!("test-{i}"));
        assert_eq!(resp.status(), StatusCode::ACCEPTED, "publish {i} buffered");
    }
    // ...then the queue is full and the failure reaches publishers —
    // the cascading outage of Table 1.
    let resp = publish("test-6");
    assert_eq!(resp.status(), StatusCode::SERVICE_UNAVAILABLE);
    assert_eq!(bus.rejected(), 1);

    // Recovery: clear the fault and the bus forwards again.
    ctx.clear_faults().unwrap();
    assert_eq!(publish("test-7").status(), StatusCode::OK);
}

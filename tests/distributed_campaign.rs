//! End-to-end distributed campaign execution: two in-process
//! operator hosts behind real httpwire control endpoints, driven by a
//! [`CampaignDispatcher`] coordinator. The merged report must match a
//! single-host run of the same campaign (same verdicts, same covered
//! coverage cells), and killing one operator mid-campaign must
//! re-shard its waves to the survivor without losing or duplicating a
//! single `campaigns.jsonl` entry.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use gremlin::core::{
    AppGraph, CampaignDispatcher, CampaignRecipe, CampaignRunner, CoverageLedger, HttpOperator,
    OperatorServer, OperatorTransport, Scenario, TestContext, WaveRequest, WaveResponse,
};
use gremlin::proxy::{AgentControl, ProxyError, Rule};
use gremlin::store::EventStore;

/// In-memory agent: accepts and records rules, never fails.
struct SinkAgent {
    service: String,
    rules: Mutex<Vec<Rule>>,
}

impl SinkAgent {
    fn new(service: &str) -> Arc<SinkAgent> {
        Arc::new(SinkAgent {
            service: service.to_string(),
            rules: Mutex::new(Vec::new()),
        })
    }
}

impl AgentControl for SinkAgent {
    fn service_name(&self) -> String {
        self.service.clone()
    }

    fn install_rules(&self, rules: &[Rule]) -> Result<(), ProxyError> {
        self.rules.lock().unwrap().extend(rules.iter().cloned());
        Ok(())
    }

    fn clear_rules(&self) -> Result<(), ProxyError> {
        self.rules.lock().unwrap().clear();
        Ok(())
    }

    fn list_rules(&self) -> Result<Vec<Rule>, ProxyError> {
        Ok(self.rules.lock().unwrap().clone())
    }
}

const PAIRS: [(&str, &str); 6] = [
    ("c1", "s1"),
    ("c2", "s2"),
    ("c3", "s3"),
    ("c4", "s4"),
    ("c5", "s5"),
    ("c6", "s6"),
];

fn graph() -> AppGraph {
    AppGraph::from_edges(PAIRS.to_vec())
}

/// A full fleet slice for one operator host: every client service has
/// an agent, so any recipe can land on any operator.
fn fleet_ctx() -> TestContext {
    let agents: Vec<Arc<dyn AgentControl>> = PAIRS
        .iter()
        .map(|(src, _)| SinkAgent::new(src) as Arc<dyn AgentControl>)
        .collect();
    TestContext::new(graph(), agents, EventStore::shared())
}

/// Six single-edge abort recipes with pairwise-disjoint footprints.
fn recipes() -> Vec<CampaignRecipe> {
    PAIRS
        .iter()
        .map(|(src, dst)| {
            CampaignRecipe::new(format!("{src}-{dst}"))
                .scenario(Scenario::abort(*src, *dst, 503))
                .hold(Duration::from_millis(20))
        })
        .collect()
}

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("gremlin-dist-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

fn ledger_recipe_names(root: &Path) -> Vec<String> {
    let text = std::fs::read_to_string(root.join("campaigns.jsonl")).unwrap();
    text.lines()
        .map(|line| {
            let entry: serde_json::Value = serde_json::from_str(line).unwrap();
            entry["recipe"].as_str().unwrap().to_string()
        })
        .collect()
}

#[test]
fn merged_distributed_report_matches_single_host_run() {
    // Single-host reference run.
    let single_root = temp_root("single");
    let ctx = fleet_ctx();
    let single = CampaignRunner::new(&ctx)
        .max_in_flight(3)
        .flight_root(&single_root)
        .run(recipes())
        .unwrap();

    // The same campaign over two operator hosts behind real HTTP
    // control endpoints.
    let dist_root = temp_root("merged");
    let alpha = OperatorServer::start("alpha", fleet_ctx(), "127.0.0.1:0", None).unwrap();
    let beta = OperatorServer::start("beta", fleet_ctx(), "127.0.0.1:0", None).unwrap();
    let operators: Vec<Arc<dyn OperatorTransport>> = vec![
        Arc::new(HttpOperator::connect(alpha.local_addr()).unwrap()),
        Arc::new(HttpOperator::connect(beta.local_addr()).unwrap()),
    ];
    let merged = CampaignDispatcher::new(graph(), operators)
        .max_in_flight(3)
        .flight_root(&dist_root)
        .run(recipes())
        .unwrap();

    // Same verdicts, recipe by recipe, and the same overall outcome.
    assert_eq!(single.recipes.len(), merged.recipes.len());
    for (lhs, rhs) in single.recipes.iter().zip(&merged.recipes) {
        assert_eq!(lhs.name, rhs.name);
        assert_eq!(lhs.passed, rhs.passed, "verdict diverged for {}", lhs.name);
        assert_eq!(lhs.injected, rhs.injected);
    }
    assert_eq!(single.passed(), merged.passed());
    assert!(merged.passed(), "{merged}");

    // Same covered coverage cells, scanned back from each ledger.
    let single_cells: BTreeSet<_> = CoverageLedger::scan(&single_root)
        .unwrap()
        .covered_keys()
        .into_iter()
        .collect();
    let merged_cells: BTreeSet<_> = CoverageLedger::scan(&dist_root)
        .unwrap()
        .covered_keys()
        .into_iter()
        .collect();
    assert_eq!(single_cells, merged_cells);
    assert_eq!(single.newly_covered, merged.newly_covered);

    // Both operators actually carried load.
    assert!(alpha.status().waves_executed > 0);
    assert!(beta.status().waves_executed > 0);
    alpha.shutdown();
    beta.shutdown();
    let _ = std::fs::remove_dir_all(&single_root);
    let _ = std::fs::remove_dir_all(&dist_root);
}

/// Transport wrapper that tears down its backing operator server
/// after a scripted number of waves — from the coordinator's point of
/// view the operator host dies mid-campaign.
struct KillableOperator {
    inner: HttpOperator,
    server: Mutex<Option<OperatorServer>>,
    kill_after: usize,
    calls: AtomicUsize,
}

impl OperatorTransport for KillableOperator {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn run_wave(&self, wave: &WaveRequest) -> Result<WaveResponse, gremlin::core::CoreError> {
        if self.calls.fetch_add(1, Ordering::SeqCst) >= self.kill_after {
            if let Some(server) = self.server.lock().unwrap().take() {
                server.shutdown();
            }
        }
        self.inner.run_wave(wave)
    }

    fn clear(&self) -> Result<(), gremlin::core::CoreError> {
        self.inner.clear()
    }
}

#[test]
fn killed_operator_reshards_to_survivor_without_duplicate_ledger_entries() {
    let root = temp_root("reshard");
    let survivor_server =
        OperatorServer::start("survivor", fleet_ctx(), "127.0.0.1:0", None).unwrap();
    let doomed_server = OperatorServer::start("doomed", fleet_ctx(), "127.0.0.1:0", None).unwrap();
    let doomed = KillableOperator {
        inner: HttpOperator::connect(doomed_server.local_addr()).unwrap(),
        server: Mutex::new(Some(doomed_server)),
        kill_after: 1,
        calls: AtomicUsize::new(0),
    };
    let operators: Vec<Arc<dyn OperatorTransport>> = vec![
        Arc::new(HttpOperator::connect(survivor_server.local_addr()).unwrap()),
        Arc::new(doomed),
    ];
    // Per-operator width 1 -> three 2-recipe waves; the doomed
    // operator completes its first slice, then dies on the second.
    let report = CampaignDispatcher::new(graph(), operators)
        .max_in_flight(1)
        .retries(1)
        .backoff(Duration::from_millis(5))
        .flight_root(&root)
        .run(recipes())
        .unwrap();

    // Every recipe completed exactly once despite the mid-campaign
    // death, and the campaign as a whole still passes.
    assert_eq!(report.recipes.len(), 6);
    assert!(report.passed(), "{report}");

    // The ledger holds exactly one entry per recipe — nothing lost,
    // nothing duplicated by the retry/re-shard machinery.
    let mut names = ledger_recipe_names(&root);
    names.sort();
    let mut expected: Vec<String> = PAIRS
        .iter()
        .map(|(src, dst)| format!("{src}-{dst}"))
        .collect();
    expected.sort();
    assert_eq!(names, expected);

    survivor_server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

//! The WordPress + ElasticPress case study (paper §7.1, Figures 5
//! and 6), in miniature.
//!
//! The deployment models the paper's three unmodified services:
//! WordPress (with the ElasticPress plugin enabled), Elasticsearch,
//! and MySQL. ElasticPress falls back to MySQL-powered search when
//! Elasticsearch is unreachable or errors — but ships **no timeout
//! and no circuit breaker**, the two bugs the paper demonstrates.

use std::time::Duration;

use gremlin::core::{AppGraph, Scenario, TestContext};
use gremlin::loadgen::LoadGenerator;
use gremlin::mesh::behaviors::{FallbackSearch, StaticResponder};
use gremlin::mesh::{Deployment, ResiliencePolicy, ServiceSpec};
use gremlin::store::Pattern;

/// ElasticPress as shipped: graceful fallback, no timeout, no
/// breaker.
fn wordpress_deployment() -> (Deployment, TestContext) {
    let deployment = Deployment::builder()
        .service(ServiceSpec::new(
            "elasticsearch",
            StaticResponder::ok("es-hits"),
        ))
        .service(ServiceSpec::new("mysql", StaticResponder::ok("sql-rows")))
        .service(
            ServiceSpec::new(
                "wordpress",
                FallbackSearch::new("elasticsearch", "mysql", "/search"),
            )
            // The plugin's actual policies: nothing.
            .dependency("elasticsearch", ResiliencePolicy::new())
            .dependency("mysql", ResiliencePolicy::new()),
        )
        .ingress("user", "wordpress")
        .seed(5)
        .build()
        .expect("deployment starts");
    let graph = AppGraph::from_edges(vec![
        ("user", "wordpress"),
        ("wordpress", "elasticsearch"),
        ("wordpress", "mysql"),
    ]);
    let ctx = TestContext::new(graph, deployment.controls(), deployment.store().clone());
    (deployment, ctx)
}

#[test]
fn fallback_to_mysql_works_when_elasticsearch_errors() {
    let (deployment, ctx) = wordpress_deployment();
    ctx.inject(&Scenario::abort("wordpress", "elasticsearch", 503).with_pattern("test-*"))
        .unwrap();
    let resp = deployment
        .call_with_id("wordpress", "/search", "test-1")
        .unwrap();
    assert_eq!(resp.body_str(), "source=mysql;sql-rows");

    // The HasFallback extension check confirms the pattern from the
    // observation logs alone.
    let check = ctx.checker().has_fallback(
        "wordpress",
        "elasticsearch",
        "mysql",
        &Pattern::new("test-*"),
    );
    assert!(check.passed, "{check}");
}

#[test]
fn fallback_to_mysql_works_when_elasticsearch_unreachable() {
    let (deployment, ctx) = wordpress_deployment();
    ctx.inject(&Scenario::abort_reset("wordpress", "elasticsearch").with_pattern("test-*"))
        .unwrap();
    let resp = deployment
        .call_with_id("wordpress", "/search", "test-1")
        .unwrap();
    assert_eq!(resp.body_str(), "source=mysql;sql-rows");
}

/// Figure 5's finding: with delays injected between WordPress and
/// Elasticsearch, WordPress response times are always offset by the
/// injected delay — the fastest response equals the delay, proving
/// the plugin has no timeout pattern.
#[test]
fn figure5_response_floor_tracks_injected_delay() {
    for delay_ms in [100u64, 200] {
        let (deployment, ctx) = wordpress_deployment();
        ctx.inject(
            &Scenario::delay(
                "wordpress",
                "elasticsearch",
                Duration::from_millis(delay_ms),
            )
            .with_pattern("test-*"),
        )
        .unwrap();
        let report = LoadGenerator::new(deployment.entry_addr("wordpress").unwrap())
            .path("/search")
            .id_prefix("test")
            .run_sequential(10);
        let summary = report.summary().expect("non-empty");
        assert!(
            summary.min >= Duration::from_millis(delay_ms),
            "delay {delay_ms}ms: fastest response {:?} should be >= the injected delay",
            summary.min
        );
        // And the HasTimeouts assertion flags the missing pattern.
        let check = ctx.checker().has_timeouts(
            "wordpress",
            Duration::from_millis(delay_ms / 2),
            &Pattern::new("test-*"),
        );
        assert!(!check.passed, "{check}");
    }
}

/// Figure 6's finding: after 100 consecutive aborted requests, the
/// next (delayed) requests all complete only after the injected
/// delay — none return fast, so no circuit breaker tripped.
#[test]
fn figure6_no_circuit_breaker_in_elasticpress() {
    let (deployment, ctx) = wordpress_deployment();
    let generator = LoadGenerator::new(deployment.entry_addr("wordpress").unwrap())
        .path("/search")
        .id_prefix("test");

    // Phase 1: abort a batch of consecutive requests (scaled down
    // from the paper's 100 to keep the suite fast).
    ctx.inject(&Scenario::abort("wordpress", "elasticsearch", 503).with_pattern("test-*"))
        .unwrap();
    let aborted = generator.clone().run_sequential(25);
    // The fallback keeps WordPress answering 200 via MySQL.
    assert_eq!(aborted.successes(), 25);

    // Phase 2: clear, then delay the next batch.
    ctx.clear_faults().unwrap();
    ctx.inject(
        &Scenario::delay("wordpress", "elasticsearch", Duration::from_millis(150))
            .with_pattern("test-*"),
    )
    .unwrap();
    let delayed = generator.run_sequential(10);

    // With a tripped breaker a portion of these would return
    // immediately (short-circuit to MySQL). They do not.
    let fast = delayed
        .latencies()
        .iter()
        .filter(|l| **l < Duration::from_millis(150))
        .count();
    assert_eq!(
        fast, 0,
        "no delayed request may return before the injected delay without a breaker"
    );

    // The Gremlin assertion reaches the same verdict.
    let check = ctx.checker().has_circuit_breaker(
        "wordpress",
        "elasticsearch",
        25,
        Duration::from_secs(30),
        1,
        &Pattern::new("test-*"),
    );
    assert!(!check.passed, "{check}");
}

/// The contrast experiment: the same topology with a correct circuit
/// breaker short-circuits the delayed batch.
#[test]
fn figure6_contrast_with_breaker_requests_return_fast() {
    let deployment = Deployment::builder()
        .service(ServiceSpec::new(
            "elasticsearch",
            StaticResponder::ok("es-hits"),
        ))
        .service(ServiceSpec::new("mysql", StaticResponder::ok("sql-rows")))
        .service(
            ServiceSpec::new(
                "wordpress",
                FallbackSearch::new("elasticsearch", "mysql", "/search"),
            )
            .dependency(
                "elasticsearch",
                ResiliencePolicy::new().circuit_breaker(
                    gremlin::mesh::resilience::CircuitBreakerConfig {
                        failure_threshold: 5,
                        open_duration: Duration::from_secs(60),
                        success_threshold: 1,
                    },
                ),
            )
            .dependency("mysql", ResiliencePolicy::new()),
        )
        .ingress("user", "wordpress")
        .build()
        .expect("deployment starts");
    let graph = AppGraph::from_edges(vec![
        ("user", "wordpress"),
        ("wordpress", "elasticsearch"),
        ("wordpress", "mysql"),
    ]);
    let ctx = TestContext::new(graph, deployment.controls(), deployment.store().clone());
    let generator = LoadGenerator::new(deployment.entry_addr("wordpress").unwrap())
        .path("/search")
        .id_prefix("test");

    ctx.inject(&Scenario::abort("wordpress", "elasticsearch", 503).with_pattern("test-*"))
        .unwrap();
    generator.clone().run_sequential(10); // trips the breaker after 5

    ctx.clear_faults().unwrap();
    ctx.inject(
        &Scenario::delay("wordpress", "elasticsearch", Duration::from_millis(150))
            .with_pattern("test-*"),
    )
    .unwrap();
    let delayed = generator.run_sequential(10);
    let fast = delayed
        .latencies()
        .iter()
        .filter(|l| **l < Duration::from_millis(150))
        .count();
    assert_eq!(
        fast, 10,
        "with the breaker open every request short-circuits to MySQL"
    );
    assert!(delayed.outcomes.iter().all(|o| o.is_success()));
}

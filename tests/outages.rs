//! Replaying the real-world outages of Table 1 with §5's recipes:
//! the Stackdriver cascading middleware failure (Cassandra → message
//! bus) and the BBC/Joyent data-store overloads.

use std::time::Duration;

use gremlin::core::{AppGraph, RecipeRun, Scenario, TestContext};
use gremlin::loadgen::LoadGenerator;
use gremlin::mesh::behaviors::{Aggregator, StaticResponder};
use gremlin::mesh::resilience::{Backoff, CircuitBreakerConfig, RetryPolicy};
use gremlin::mesh::{Deployment, ResiliencePolicy, ServiceSpec};
use gremlin::store::Pattern;

/// Stackdriver, October 2013: services publish into a message bus
/// whose consumer forwards to Cassandra. When Cassandra crashed the
/// failure percolated to the bus and blocked the publishers.
///
/// Topology: publisher -> messagebus -> cassandra.
fn stackdriver(
    publisher_policy: ResiliencePolicy,
    bus_policy: ResiliencePolicy,
) -> (Deployment, TestContext) {
    let deployment = Deployment::builder()
        .service(ServiceSpec::new("cassandra", StaticResponder::ok("stored")))
        .service(
            ServiceSpec::new(
                "messagebus",
                Aggregator::new(vec!["cassandra".into()], "/write"),
            )
            .dependency("cassandra", bus_policy),
        )
        .service(
            ServiceSpec::new(
                "publisher",
                Aggregator::new(vec!["messagebus".into()], "/publish"),
            )
            .dependency("messagebus", publisher_policy),
        )
        .ingress("user", "publisher")
        .seed(23)
        .build()
        .expect("deployment starts");
    let graph = AppGraph::from_edges(vec![
        ("user", "publisher"),
        ("publisher", "messagebus"),
        ("messagebus", "cassandra"),
    ]);
    let ctx = TestContext::new(graph, deployment.controls(), deployment.store().clone());
    (deployment, ctx)
}

/// §5's recipe:
/// ```text
/// Crash('cassandra')
/// for s in dependents('messagebus'):
///     if not HasTimeouts(s, '1s') and not HasCircuitBreaker(s, 'messagebus', ...):
///         raise 'Will block on message bus'
/// ```
#[test]
fn stackdriver_cascading_failure_recipe_flags_naive_publisher() {
    // Publisher with neither timeout nor breaker; the bus hangs on a
    // crashed Cassandra because it, too, has no timeout.
    let (deployment, ctx) = stackdriver(ResiliencePolicy::new(), ResiliencePolicy::new());
    let mut recipe = RecipeRun::new("stackdriver-cascade", &ctx);
    // Emulate the Cassandra crash as a hang (a crashed node's
    // connections black-hole first; scaled down to keep tests fast).
    recipe
        .inject(&Scenario::hang_for("cassandra", Duration::from_secs(2)).with_pattern("test-*"))
        .unwrap();
    LoadGenerator::new(deployment.entry_addr("publisher").unwrap())
        .id_prefix("test")
        .read_timeout(Some(Duration::from_secs(10)))
        .run_sequential(3);

    let pattern = Pattern::new("test-*");
    for dependent in ctx.graph().dependents("messagebus") {
        let timeouts = ctx
            .checker()
            .has_timeouts(&dependent, Duration::from_secs(1), &pattern);
        let breaker = ctx.checker().has_circuit_breaker(
            &dependent,
            "messagebus",
            5,
            Duration::from_secs(30),
            1,
            &pattern,
        );
        let will_block = !recipe.check(timeouts) && !recipe.check(breaker);
        assert!(
            will_block,
            "the naive publisher must be flagged: it will block on the message bus"
        );
    }
    let report = recipe.finish();
    assert!(!report.passed, "{report}");
}

#[test]
fn stackdriver_recipe_passes_with_timeouts() {
    // Give both hops timeouts: the publisher answers promptly even
    // with Cassandra hung.
    let with_timeout = ResiliencePolicy::new().timeout(Duration::from_millis(300));
    let (deployment, ctx) = stackdriver(with_timeout.clone(), with_timeout);
    ctx.inject(&Scenario::hang_for("cassandra", Duration::from_secs(2)).with_pattern("test-*"))
        .unwrap();
    LoadGenerator::new(deployment.entry_addr("publisher").unwrap())
        .id_prefix("test")
        .read_timeout(Some(Duration::from_secs(10)))
        .run_sequential(3);
    let check =
        ctx.checker()
            .has_timeouts("publisher", Duration::from_secs(1), &Pattern::new("test-*"));
    assert!(check.passed, "{check}");
}

/// BBC Online, July 2014 / Joyent, July 2015: an overloaded database
/// throttles requests; services without local caching/breakers time
/// out and fail completely.
///
/// §5's recipe:
/// ```text
/// Overload('database')
/// for s in dependents('database'):
///     if not HasCircuitBreaker(s, 'database', ...):
///         raise 'Will overload database'
/// ```
#[test]
fn bbc_database_overload_recipe() {
    fn deploy(policy: ResiliencePolicy) -> (Deployment, TestContext) {
        let deployment = Deployment::builder()
            .service(ServiceSpec::new("database", StaticResponder::ok("rows")))
            .service(
                ServiceSpec::new("iplayer", Aggregator::new(vec!["database".into()], "/q"))
                    .dependency("database", policy),
            )
            .ingress("user", "iplayer")
            .seed(29)
            .build()
            .expect("deployment starts");
        let graph = AppGraph::from_edges(vec![("user", "iplayer"), ("iplayer", "database")]);
        let ctx = TestContext::new(graph, deployment.controls(), deployment.store().clone());
        (deployment, ctx)
    }
    let pattern = Pattern::new("test-*");

    // Naive service: hammers the overloaded database forever.
    let (deployment, ctx) = deploy(
        ResiliencePolicy::new()
            .timeout(Duration::from_secs(2))
            .retry(RetryPolicy::new(3).with_backoff(Backoff::none())),
    );
    // Make the overload near-total so failures accumulate.
    ctx.inject(
        &Scenario::overload_with("database", 503, 0.9, Duration::from_millis(20))
            .with_pattern("test-*"),
    )
    .unwrap();
    LoadGenerator::new(deployment.entry_addr("iplayer").unwrap())
        .id_prefix("test")
        .run_sequential(25);
    let naive = ctx.checker().has_circuit_breaker(
        "iplayer",
        "database",
        5,
        Duration::from_secs(30),
        1,
        &pattern,
    );
    assert!(
        !naive.passed,
        "recipe must raise 'Will overload database': {naive}"
    );

    // Hardened service: breaker trips and the database is spared.
    let (deployment, ctx) = deploy(
        ResiliencePolicy::new()
            .timeout(Duration::from_secs(2))
            .circuit_breaker(CircuitBreakerConfig {
                failure_threshold: 5,
                open_duration: Duration::from_secs(60),
                success_threshold: 1,
            }),
    );
    ctx.inject(
        &Scenario::overload_with("database", 503, 1.0, Duration::from_millis(20))
            .with_pattern("test-*"),
    )
    .unwrap();
    LoadGenerator::new(deployment.entry_addr("iplayer").unwrap())
        .id_prefix("test")
        .run_sequential(25);
    let hardened = ctx.checker().has_circuit_breaker(
        "iplayer",
        "database",
        5,
        Duration::from_secs(30),
        1,
        &pattern,
    );
    assert!(hardened.passed, "{hardened}");
}

/// §5's network partition: severing the cut between two groups with
/// TCP resets.
#[test]
fn partition_severs_only_cut_edges() {
    let deployment = Deployment::builder()
        .service(ServiceSpec::new("db", StaticResponder::ok("rows")))
        .service(
            ServiceSpec::new("svc-east", Aggregator::new(vec!["db".into()], "/q")).dependency(
                "db",
                ResiliencePolicy::new().timeout(Duration::from_secs(2)),
            ),
        )
        .service(
            ServiceSpec::new("svc-west", Aggregator::new(vec!["db".into()], "/q")).dependency(
                "db",
                ResiliencePolicy::new().timeout(Duration::from_secs(2)),
            ),
        )
        .seed(31)
        .build()
        .expect("deployment starts");
    let graph = AppGraph::from_edges(vec![("svc-east", "db"), ("svc-west", "db")]);
    let ctx = TestContext::new(graph, deployment.controls(), deployment.store().clone());

    // Partition: west side loses the database.
    ctx.inject(
        &Scenario::partition(
            vec!["svc-west".to_string()],
            vec!["db".to_string(), "svc-east".to_string()],
        )
        .with_pattern("test-*"),
    )
    .unwrap();

    let east = deployment.call_with_id("svc-east", "/", "test-1").unwrap();
    assert_eq!(east.body_str(), "db=ok", "east side unaffected");
    let west = deployment.call_with_id("svc-west", "/", "test-2").unwrap();
    assert!(
        west.body_str().contains("db=unavailable"),
        "west side cut off: {}",
        west.body_str()
    );
}

/// §5's FakeSuccess: corrupting a healthy response to exercise input
/// validation in dependents.
#[test]
fn fake_success_corrupts_payload() {
    let deployment = Deployment::builder()
        .service(ServiceSpec::new("config", StaticResponder::ok("key=value")))
        .service(
            ServiceSpec::new("app", Aggregator::new(vec!["config".into()], "/get"))
                .dependency("config", ResiliencePolicy::new()),
        )
        .build()
        .expect("deployment starts");
    let graph = AppGraph::from_edges(vec![("app", "config")]);
    let ctx = TestContext::new(graph, deployment.controls(), deployment.store().clone());
    ctx.inject(&Scenario::fake_success("config", "key", "badkey").with_pattern("test-*"))
        .unwrap();

    // The corrupted payload still reads as a success to the app —
    // exactly the class of bug FakeSuccess hunts for.
    let resp = deployment.call_with_id("app", "/", "test-1").unwrap();
    assert_eq!(resp.body_str(), "config=ok");

    // The corruption is visible on the wire.
    let direct = deployment
        .agent("app")
        .unwrap()
        .route_addr("config")
        .unwrap();
    let client = gremlin::http::HttpClient::new();
    let raw = client
        .send(
            direct,
            gremlin::http::Request::builder(gremlin::http::Method::Get, "/get")
                .request_id("test-9")
                .build(),
        )
        .unwrap();
    assert_eq!(raw.body_str(), "badkey=value");
}

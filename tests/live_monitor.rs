//! End-to-end live monitoring: a mesh with an injected Delay, a
//! collector hosting the streaming assertion engine, and a recipe
//! that aborts early when the latency SLO is violated.
//!
//! Topology: `user -> web` through a sidecar agent. A 60ms Delay on
//! the edge pushes `web`'s reply latency far over the monitored
//! 20ms SLO; the `/alerts` stream must carry the `Failing` flip
//! while the recipe is still driving load, and the recipe's
//! early-abort must tear the fault rules down before the traffic
//! plan completes.

use std::sync::Arc;
use std::time::Duration;

use gremlin::core::{
    AppGraph, LiveMonitor, MonitorSpec, RecipeRun, Scenario, StreamingAssertion, TestContext,
    Verdict,
};
use gremlin::http::{HttpClient, Method, Request};
use gremlin::mesh::behaviors::StaticResponder;
use gremlin::mesh::{Deployment, ServiceSpec};
use gremlin::proxy::{CollectorServer, MonitorSource};
use gremlin::telemetry::MetricsRegistry;

#[test]
fn latency_slo_alerts_stream_and_recipe_aborts_early() {
    let deployment = Deployment::builder()
        .service(ServiceSpec::new("web", StaticResponder::ok("hi")))
        .ingress("user", "web")
        .build()
        .expect("deployment starts");
    let graph = AppGraph::from_edges(vec![("user", "web")]);
    let ctx = TestContext::new(graph, deployment.controls(), deployment.store().clone());

    // The collector hosts its own streaming engine over the same
    // store, so `/alerts` carries verdict transitions to operators.
    let spec = MonitorSpec::new(Duration::from_millis(50))
        .violate_after(2)
        .assert(StreamingAssertion::LatencySlo {
            service: "web".into(),
            quantile: 0.5,
            bound: Duration::from_millis(20),
        });
    let live = Arc::new(LiveMonitor::new(deployment.store().clone(), spec.clone()));
    let collector = CollectorServer::start_with_monitor(
        deployment.store().clone(),
        "127.0.0.1:0",
        MetricsRegistry::shared(),
        Arc::clone(&live) as Arc<dyn MonitorSource>,
    )
    .unwrap();

    // Subscribe to /alerts before any traffic; a background reader
    // collects the NDJSON lines as they stream.
    let alert_lines: Arc<std::sync::Mutex<Vec<String>>> =
        Arc::new(std::sync::Mutex::new(Vec::new()));
    {
        let sink = Arc::clone(&alert_lines);
        let addr = collector.local_addr();
        std::thread::spawn(move || {
            let stream = std::net::TcpStream::connect(addr).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(30)))
                .unwrap();
            let mut writer = stream.try_clone().unwrap();
            gremlin::http::codec::write_request(&mut writer, &Request::get("/alerts")).unwrap();
            let mut reader = std::io::BufReader::new(stream);
            let _head = gremlin::http::codec::read_response_head(&mut reader).unwrap();
            let mut chunks = gremlin::http::codec::ChunkReader::new(reader);
            let mut pending = String::new();
            while let Ok(Some(chunk)) = chunks.next_chunk() {
                pending.push_str(&String::from_utf8_lossy(&chunk));
                while let Some(pos) = pending.find('\n') {
                    let line: String = pending.drain(..=pos).collect();
                    let line = line.trim();
                    if !line.is_empty() {
                        sink.lock().unwrap().push(line.to_string());
                    }
                }
            }
        });
    }

    // The recipe attaches its own monitor (the `monitor:` stanza) and
    // stages the outage.
    let mut run = RecipeRun::new("latency-slo", &ctx);
    run.start_monitor(spec);
    run.inject(&Scenario::delay("user", "web", Duration::from_millis(60)).with_pattern("test-*"))
        .unwrap();

    // Drive load until the monitor trips; the plan allows up to 50
    // requests but the early-abort must cut it short.
    let client = HttpClient::new();
    let entry = deployment.entry_addr("web").unwrap();
    let queries_before = ctx
        .telemetry()
        .snapshot()
        .histogram("gremlin_store_query_seconds", &[])
        .map(|h| h.count())
        .unwrap_or(0);
    let mut sent = 0u32;
    let mut aborted = false;
    for i in 0..50u32 {
        let response = client
            .send(
                entry,
                Request::builder(Method::Get, "/ping")
                    .request_id(format!("test-{i}"))
                    .build(),
            )
            .unwrap();
        assert!(response.status().is_success(), "{}", response.status());
        sent += 1;
        if run.abort_if_violated().unwrap() {
            aborted = true;
            break;
        }
    }
    assert!(
        aborted,
        "monitor never reached Violated after {sent} requests"
    );
    assert!(sent < 50, "early abort must cut the traffic plan short");

    // Tear-down: every agent's rule table is empty again.
    for agent in deployment.controls() {
        assert!(
            agent.list_rules().unwrap().is_empty(),
            "rules must be cleared on early abort"
        );
    }

    // Streaming evaluation never rescanned the store: the query
    // histogram saw no new samples while the monitor ran.
    let queries_after = ctx
        .telemetry()
        .snapshot()
        .histogram("gremlin_store_query_seconds", &[])
        .map(|h| h.count())
        .unwrap_or(0);
    assert_eq!(
        queries_before, queries_after,
        "live monitoring must use events_after, not store queries"
    );

    // The alert stream carried the Failing flip while the run was
    // still in flight (the reader thread collected it live).
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let lines = alert_lines.lock().unwrap().clone();
        let failing = lines
            .iter()
            .any(|l| l.contains("\"to\":\"failing\"") && l.contains("LiveLatencySlo"));
        if failing {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no Failing alert on /alerts; saw: {lines:#?}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    // The report records the flip times and fails the run.
    let report = run.finish();
    assert!(!report.passed);
    assert_eq!(report.monitor.len(), 1);
    assert_eq!(report.monitor[0].verdict, Verdict::Violated);
    assert!(report.monitor[0].first_failing_at_us.is_some());
    assert!(report.monitor[0].violated_at_us.is_some());

    // The collector's /health matrix shows live traffic on the edge.
    let health = client
        .send(collector.local_addr(), Request::get("/health"))
        .unwrap();
    let body: serde_json::Value = serde_json::from_str(&health.body_str()).unwrap();
    let edges = body["edges"].as_array().expect("edges array");
    let edge = edges
        .iter()
        .find(|e| e["src"] == "user" && e["dst"] == "web")
        .expect("user->web edge in health matrix");
    assert!(edge["requests"].as_u64().unwrap() > 0);
    assert!(edge["rate_rps"].as_f64().unwrap() > 0.0, "{edge}");
    let checks = body["checks"].as_array().expect("checks array");
    assert!(
        checks.iter().any(|c| c["name"]
            .as_str()
            .is_some_and(|n| n.contains("LiveLatencySlo"))),
        "{checks:?}"
    );
}

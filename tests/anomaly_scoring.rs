//! End-to-end adaptive anomaly detection: a fan-out mesh, a
//! fault-free warmup that learns per-edge baselines, and a Delay
//! injection that must flag *only* the faulted edge — with zero
//! fixed thresholds anywhere in the recipe.
//!
//! Topology (all calls through sidecar agents):
//!
//! ```text
//! user -> web -> db
//!             -> cache
//! ```
//!
//! The monitor carries an `anomaly:` config and a single
//! `AnomalousEdge(user -> web)` assertion. After the baselines are
//! learned, a 60ms Delay on `user -> web` must drive that edge to
//! `Anomalous` (violating the assertion and aborting the run early)
//! while the sibling edges `web -> db` and `web -> cache` — whose
//! latency never changed — stay `Nominal`. The whole run is flight-
//! recorded and replayed from disk at the end.

use std::sync::Arc;
use std::time::{Duration, Instant};

use gremlin::core::{
    AnomalyConfig, AppGraph, EdgeState, FlightLog, LiveMonitor, MonitorSpec, RecipeRun, Scenario,
    StreamingAssertion, TestContext,
};
use gremlin::http::{HttpClient, Method, Request};
use gremlin::mesh::behaviors::{Aggregator, StaticResponder};
use gremlin::mesh::{Deployment, ResiliencePolicy, ServiceSpec};
use gremlin::proxy::{CollectorServer, MonitorSource, HEALTH_SCHEMA_VERSION};
use gremlin::telemetry::MetricsRegistry;

/// Paced request tick. Longer than the injected delay so the
/// request *rate* on every edge stays constant across the fault —
/// only latency deviates, which is exactly what the scorer must
/// isolate.
const TICK: Duration = Duration::from_millis(75);

#[test]
fn delay_flags_only_the_faulted_edge_and_replays_from_disk() {
    let deployment = Deployment::builder()
        .service(ServiceSpec::new("db", StaticResponder::ok("rows")))
        .service(ServiceSpec::new("cache", StaticResponder::ok("hit")))
        .service(
            ServiceSpec::new(
                "web",
                Aggregator::new(vec!["db".into(), "cache".into()], "/api"),
            )
            .dependency(
                "db",
                ResiliencePolicy::new().timeout(Duration::from_secs(5)),
            )
            .dependency(
                "cache",
                ResiliencePolicy::new().timeout(Duration::from_secs(5)),
            ),
        )
        .ingress("user", "web")
        .build()
        .expect("deployment starts");
    let graph = AppGraph::from_edges(vec![("user", "web"), ("web", "db"), ("web", "cache")]);
    let ctx = TestContext::new(graph, deployment.controls(), deployment.store().clone());

    // No latency/error/rate numbers anywhere: the only tuning is the
    // warmup length and the (defaulted) hysteresis counts.
    let spec = MonitorSpec::new(Duration::from_millis(500))
        .anomaly(AnomalyConfig::default().warmup_windows(4))
        .assert(StreamingAssertion::AnomalousEdge {
            src: "user".into(),
            dst: "web".into(),
        });

    // The collector hosts its own copy of the engine over the same
    // store so /health and /alerts carry scores and anomaly records.
    let live = Arc::new(LiveMonitor::new(deployment.store().clone(), spec.clone()));
    let collector = CollectorServer::start_with_monitor(
        deployment.store().clone(),
        "127.0.0.1:0",
        MetricsRegistry::shared(),
        Arc::clone(&live) as Arc<dyn MonitorSource>,
    )
    .unwrap();

    // Background /alerts subscriber collecting NDJSON lines live.
    let alert_lines: Arc<std::sync::Mutex<Vec<String>>> =
        Arc::new(std::sync::Mutex::new(Vec::new()));
    {
        let sink = Arc::clone(&alert_lines);
        let addr = collector.local_addr();
        std::thread::spawn(move || {
            let stream = std::net::TcpStream::connect(addr).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(30)))
                .unwrap();
            let mut writer = stream.try_clone().unwrap();
            gremlin::http::codec::write_request(&mut writer, &Request::get("/alerts")).unwrap();
            let mut reader = std::io::BufReader::new(stream);
            let _head = gremlin::http::codec::read_response_head(&mut reader).unwrap();
            let mut chunks = gremlin::http::codec::ChunkReader::new(reader);
            let mut pending = String::new();
            while let Ok(Some(chunk)) = chunks.next_chunk() {
                pending.push_str(&String::from_utf8_lossy(&chunk));
                while let Some(pos) = pending.find('\n') {
                    let line: String = pending.drain(..=pos).collect();
                    let line = line.trim();
                    if !line.is_empty() {
                        sink.lock().unwrap().push(line.to_string());
                    }
                }
            }
        });
    }

    // CI points GREMLIN_FLIGHT_ROOT at a workspace path so the
    // artifacts survive the test for `gremlin coverage` to scan;
    // unset, the recording lands in (and is cleaned from) the temp
    // dir as before.
    let (flight_root, ephemeral) = match std::env::var_os("GREMLIN_FLIGHT_ROOT") {
        Some(root) => (std::path::PathBuf::from(root), false),
        None => {
            let root =
                std::env::temp_dir().join(format!("gremlin-anomaly-e2e-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&root);
            (root, true)
        }
    };

    let mut run = RecipeRun::new("anomaly-delay", &ctx);
    run.start_monitor(spec);
    let flight_dir = run.start_flight_recorder(&flight_root).unwrap();

    let client = HttpClient::new();
    let entry = deployment.entry_addr("web").unwrap();
    let queries_before = ctx
        .telemetry()
        .snapshot()
        .histogram("gremlin_store_query_seconds", &[])
        .map(|h| h.count())
        .unwrap_or(0);

    // Absolute-tick pacing: request i goes out at start + i*TICK, so
    // the rate is immune to per-request latency (including the
    // injected delay later).
    let start = Instant::now();
    let mut tick = 0u32;
    let mut send_one = |tick: u32| {
        let target = start + TICK * tick;
        std::thread::sleep(target.saturating_duration_since(Instant::now()));
        let response = client
            .send(
                entry,
                Request::builder(Method::Get, "/api")
                    .request_id(format!("test-{tick}"))
                    .build(),
            )
            .unwrap();
        assert!(response.status().is_success(), "{}", response.status());
    };

    // Phase 1 — fault-free warmup: drive paced load until every edge
    // has a learned baseline (warmup_windows=4 windows of 500ms, so
    // roughly 2.5s; the loop is adaptive to absorb scheduler jitter).
    let warmed = loop {
        assert!(tick < 120, "baselines never learned after {tick} ticks");
        send_one(tick);
        tick += 1;
        run.poll_monitor();
        let scores = run.monitor().unwrap().anomaly_scores();
        let baselines = scores.iter().filter(|s| s.baseline.is_some()).count();
        if baselines >= 3 {
            break scores;
        }
    };
    for score in &warmed {
        assert_eq!(
            score.state,
            EdgeState::Nominal,
            "fault-free warmup must end Nominal: {score:?}"
        );
    }
    assert!(!run.abort_if_violated().unwrap(), "nothing staged yet");

    // Phase 2 — inject the Delay on the ingress edge only. 60ms is
    // far outside the learned latency dispersion but well under TICK,
    // so request rates stay flat everywhere.
    run.inject(&Scenario::delay("user", "web", Duration::from_millis(60)).with_pattern("test-*"))
        .unwrap();
    let mut aborted = false;
    let fault_budget = tick + 80; // ~6s of faulted traffic at most
    while tick < fault_budget {
        send_one(tick);
        tick += 1;
        if run.abort_if_violated().unwrap() {
            aborted = true;
            break;
        }
    }
    assert!(aborted, "AnomalousEdge never violated after {tick} ticks");

    // Early abort cleared every agent's rule table.
    for agent in deployment.controls() {
        assert!(
            agent.list_rules().unwrap().is_empty(),
            "rules must be cleared on early abort"
        );
    }

    // Only the faulted edge is anomalous; its siblings never left
    // Nominal even though every request traversed them too.
    let scores = run.monitor().unwrap().anomaly_scores();
    let state_of = |src: &str, dst: &str| {
        scores
            .iter()
            .find(|s| s.src == src && s.dst == dst)
            .unwrap_or_else(|| panic!("no score for {src} -> {dst}: {scores:?}"))
            .clone()
    };
    let flagged = state_of("user", "web");
    assert_eq!(flagged.state, EdgeState::Anomalous, "{flagged:?}");
    assert!(flagged.first_suspect_at_us.is_some());
    assert!(flagged.anomalous_at_us.is_some());
    assert!(flagged.latency_z > flagged.rate_z, "{flagged:?}");
    assert_eq!(state_of("web", "db").state, EdgeState::Nominal);
    assert_eq!(state_of("web", "cache").state, EdgeState::Nominal);

    // Streaming evaluation never rescanned the store.
    let queries_after = ctx
        .telemetry()
        .snapshot()
        .histogram("gremlin_store_query_seconds", &[])
        .map(|h| h.count())
        .unwrap_or(0);
    assert_eq!(
        queries_before, queries_after,
        "anomaly scoring must ride events_after, not store queries"
    );

    // The collector's /health carries the versioned schema, the
    // learned baseline fields, and the per-edge states.
    let health = client
        .send(collector.local_addr(), Request::get("/health"))
        .unwrap();
    let body: serde_json::Value = serde_json::from_str(&health.body_str()).unwrap();
    assert_eq!(body["schema_version"], u64::from(HEALTH_SCHEMA_VERSION));
    let health_scores = body["scores"].as_array().expect("scores array");
    let health_score = |src: &str, dst: &str| {
        health_scores
            .iter()
            .find(|s| s["src"] == src && s["dst"] == dst)
            .unwrap_or_else(|| panic!("no /health score for {src} -> {dst}: {health_scores:?}"))
    };
    let flagged_json = health_score("user", "web");
    assert_eq!(flagged_json["state"], "anomalous", "{flagged_json}");
    let baseline = &flagged_json["baseline"];
    assert!(baseline["p50_us"].as_u64().unwrap() > 0, "{baseline}");
    assert!(baseline["rate_ewma"].as_f64().unwrap() > 0.0, "{baseline}");
    assert_eq!(health_score("web", "db")["state"], "nominal");
    assert_eq!(health_score("web", "cache")["state"], "nominal");

    // The /alerts stream interleaved anomaly records with verdicts.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let lines = alert_lines.lock().unwrap().clone();
        let saw_anomaly = lines
            .iter()
            .any(|l| l.contains("\"kind\":\"anomaly\"") && l.contains("\"to\":\"anomalous\""));
        let saw_verdict = lines.iter().any(|l| l.contains("\"kind\":\"verdict\""));
        if saw_anomaly && saw_verdict {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no anomaly record on /alerts; saw: {lines:#?}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    // The report ranks the anomalous edge and fails the run.
    let report = run.finish();
    assert!(!report.passed);
    assert_eq!(report.anomalies.len(), 1, "{:?}", report.anomalies);
    assert_eq!(report.anomalies[0].src, "user");
    assert_eq!(report.anomalies[0].dst, "web");
    let text = report.to_string();
    assert!(text.contains("anomaly: user -> web anomalous"), "{text}");
    assert!(report.to_markdown().contains("**Anomalous edges**"));
    assert_eq!(report.flight_dir.as_deref(), Some(flight_dir.as_path()));

    // Replay: the persisted directory reproduces the run's verdict
    // and anomaly timeline offline.
    let log = FlightLog::load(&flight_dir).unwrap();
    assert_eq!(log.meta.recipe, "anomaly-delay");
    assert!(
        log.records
            .iter()
            .any(|r| matches!(r, gremlin::core::MonitorRecord::Anomaly(a)
                if a.src == "user" && a.dst == "web" && a.to == EdgeState::Anomalous)),
        "persisted log must carry the Anomalous transition"
    );
    let timeline = log.render_timeline();
    assert!(timeline.contains("anomaly"), "{timeline}");
    assert!(timeline.contains("anomalous edges:"), "{timeline}");
    assert!(timeline.contains("user -> web: anomalous"), "{timeline}");
    assert!(timeline.contains("outcome: FAILED"), "{timeline}");
    let summary = log.report.expect("report.json written on finish");
    assert!(!summary.passed);
    assert_eq!(summary.anomalies.len(), 1);

    if ephemeral {
        let _ = std::fs::remove_dir_all(&flight_root);
    }
}

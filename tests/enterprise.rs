//! The IBM enterprise-application case study (paper §7.1, Figure 4):
//! a user-facing Web App aggregating internal backend services and
//! external APIs (github.com, stackoverflow.com stand-ins), whose
//! developers relied on a Unirest-style library for failure handling.
//!
//! The paper's key finding: the library's timeout pattern did not
//! cover TCP connection failures — those errors percolated out of the
//! failure-handling layer. The tests stage exactly that discovery.

use std::time::Duration;

use gremlin::core::{AppGraph, Scenario, TestContext};
use gremlin::http::StatusCode;
use gremlin::loadgen::LoadGenerator;
use gremlin::mesh::behaviors::{Aggregator, StaticResponder};
use gremlin::mesh::{Deployment, ResiliencePolicy, ServiceSpec};
use gremlin::store::{Pattern, Query};

/// The enterprise topology: webapp -> {search-api, activity-api,
/// github, stackoverflow}.
fn enterprise(webapp_policy: fn() -> ResiliencePolicy) -> (Deployment, TestContext) {
    let backends = ["search-api", "activity-api", "github", "stackoverflow"];
    let mut builder = Deployment::builder();
    for backend in backends {
        builder = builder.service(ServiceSpec::new(
            backend,
            StaticResponder::ok(format!("{backend}-data")),
        ));
    }
    let mut webapp = ServiceSpec::new(
        "webapp",
        Aggregator::new(backends.iter().map(|b| b.to_string()).collect(), "/v1/data"),
    );
    for backend in backends {
        webapp = webapp.dependency(backend, webapp_policy());
    }
    let deployment = builder
        .service(webapp)
        .ingress("user", "webapp")
        .seed(17)
        .build()
        .expect("deployment starts");

    let mut graph = AppGraph::new();
    graph.add_edge("user", "webapp");
    for backend in backends {
        graph.add_edge("webapp", backend);
    }
    let ctx = TestContext::new(graph, deployment.controls(), deployment.store().clone());
    (deployment, ctx)
}

/// The Unirest model: read timeouts handled gracefully, connection
/// failures escape.
fn unirest_policy() -> ResiliencePolicy {
    ResiliencePolicy::new()
        .read_timeout(Duration::from_millis(500))
        .with_unirest_connect_bug()
}

/// A fixed library: connection failures handled like any other error.
fn fixed_policy() -> ResiliencePolicy {
    ResiliencePolicy::new().timeout(Duration::from_millis(500))
}

#[test]
fn baseline_aggregates_all_backends() {
    let (deployment, _ctx) = enterprise(unirest_policy);
    let resp = deployment.call_with_id("webapp", "/", "test-1").unwrap();
    assert_eq!(resp.status(), StatusCode::OK);
    assert_eq!(
        resp.body_str(),
        "search-api=ok,activity-api=ok,github=ok,stackoverflow=ok"
    );
}

#[test]
fn degraded_backend_is_tolerated_gracefully() {
    // A 503 from github is handled by the library's graceful path.
    let (deployment, ctx) = enterprise(unirest_policy);
    ctx.inject(&Scenario::abort("webapp", "github", 503).with_pattern("test-*"))
        .unwrap();
    let resp = deployment.call_with_id("webapp", "/", "test-2").unwrap();
    assert_eq!(resp.status(), StatusCode::OK);
    assert!(
        resp.body_str().contains("github=error(503)"),
        "{}",
        resp.body_str()
    );
}

#[test]
fn slow_backend_is_tolerated_via_read_timeout() {
    // Delay beyond the read timeout: the library times out and the
    // aggregator reports the backend unavailable.
    let (deployment, ctx) = enterprise(unirest_policy);
    ctx.inject(
        &Scenario::delay("webapp", "stackoverflow", Duration::from_secs(2)).with_pattern("test-*"),
    )
    .unwrap();
    let resp = deployment.call_with_id("webapp", "/", "test-3").unwrap();
    assert_eq!(resp.status(), StatusCode::OK);
    assert!(
        resp.body_str().contains("stackoverflow=unavailable"),
        "{}",
        resp.body_str()
    );
}

/// The previously-unknown bug: emulating network instability (TCP
/// connection termination) between the Web App and a backend makes
/// the error percolate out of the Unirest-style library — the user
/// sees a 500 instead of a degraded page.
#[test]
fn gremlin_discovers_the_unirest_connect_bug() {
    let (deployment, ctx) = enterprise(unirest_policy);
    ctx.inject(&Scenario::abort_reset("webapp", "github").with_pattern("test-*"))
        .unwrap();
    let resp = deployment.call_with_id("webapp", "/", "test-4").unwrap();
    assert_eq!(
        resp.status(),
        StatusCode::INTERNAL_SERVER_ERROR,
        "the connection error must percolate: {}",
        resp.body_str()
    );
    assert!(resp.body_str().contains("unhandled"), "{}", resp.body_str());

    // The same discovery through Gremlin's own observations: the
    // user-facing service answered its upstream with a 500.
    let replies = deployment.store().query(&Query::replies("user", "webapp"));
    assert_eq!(replies.len(), 1);
    assert_eq!(replies[0].status(), Some(500));
}

#[test]
fn fixed_library_handles_connection_failures() {
    let (deployment, ctx) = enterprise(fixed_policy);
    ctx.inject(&Scenario::abort_reset("webapp", "github").with_pattern("test-*"))
        .unwrap();
    let resp = deployment.call_with_id("webapp", "/", "test-5").unwrap();
    assert_eq!(resp.status(), StatusCode::OK);
    assert!(
        resp.body_str().contains("github=unavailable"),
        "{}",
        resp.body_str()
    );
}

/// The HasTimeouts pattern check separates the two implementations
/// under a backend hang.
#[test]
fn has_timeouts_check_under_backend_hang() {
    // With read timeouts the webapp answers quickly even when a
    // backend hangs.
    let (deployment, ctx) = enterprise(fixed_policy);
    ctx.inject(&Scenario::hang_for("search-api", Duration::from_secs(3)).with_pattern("test-*"))
        .unwrap();
    LoadGenerator::new(deployment.entry_addr("webapp").unwrap())
        .id_prefix("test")
        .read_timeout(Some(Duration::from_secs(10)))
        .run_sequential(5);
    let check =
        ctx.checker()
            .has_timeouts("webapp", Duration::from_secs(1), &Pattern::new("test-*"));
    assert!(check.passed, "{check}");

    // Without any timeout the webapp's replies are held hostage by
    // the hung backend.
    let no_timeout = || ResiliencePolicy::new();
    let (deployment, ctx) = enterprise(no_timeout);
    ctx.inject(&Scenario::hang_for("search-api", Duration::from_secs(2)).with_pattern("test-*"))
        .unwrap();
    LoadGenerator::new(deployment.entry_addr("webapp").unwrap())
        .id_prefix("test")
        .read_timeout(Some(Duration::from_secs(10)))
        .run_sequential(3);
    let check =
        ctx.checker()
            .has_timeouts("webapp", Duration::from_secs(1), &Pattern::new("test-*"));
    assert!(!check.passed, "{check}");
}

//! End-to-end causal tracing: a three-deep call chain through live
//! Gremlin agents, with span propagation, retry disambiguation, and
//! critical-path fault attribution.
//!
//! Topology (all calls through sidecar agents):
//!
//! ```text
//! user -> web -> backend -> db     (backend retries db)
//!             -> cache             (fan-out to a second dependency)
//! ```
//!
//! Faults: Delay on web->backend, Disconnect on backend->db. The tree
//! must nest by the propagated `X-Gremlin-Span` headers, classify the
//! db attempts as retries, and put the Delay-faulted hop on the
//! critical path.

use std::time::Duration;

use gremlin::core::{AppGraph, CallKind, Scenario, SpanTree, TestContext};
use gremlin::http::{HttpClient, Method, Request};
use gremlin::mesh::behaviors::{Aggregator, StaticResponder};
use gremlin::mesh::resilience::{Backoff, RetryPolicy};
use gremlin::mesh::{Deployment, ResiliencePolicy, ServiceSpec};
use gremlin::store::{export_otlp, import_otlp, spans_from_store, AppliedFault, OtlpTrace};

#[test]
fn span_tree_reconstructs_deep_chain_with_retries_and_faults() {
    let deployment = Deployment::builder()
        .service(ServiceSpec::new("db", StaticResponder::ok("rows")))
        .service(ServiceSpec::new("cache", StaticResponder::ok("hit")))
        .service(
            ServiceSpec::new("backend", Aggregator::new(vec!["db".into()], "/q")).dependency(
                "db",
                ResiliencePolicy::new()
                    .timeout(Duration::from_secs(1))
                    .retry(RetryPolicy::new(4).with_backoff(Backoff::none())),
            ),
        )
        .service(
            ServiceSpec::new(
                "web",
                Aggregator::new(vec!["backend".into(), "cache".into()], "/api"),
            )
            .dependency(
                "backend",
                ResiliencePolicy::new().timeout(Duration::from_secs(5)),
            )
            .dependency(
                "cache",
                ResiliencePolicy::new().timeout(Duration::from_secs(5)),
            ),
        )
        .ingress("user", "web")
        .build()
        .expect("deployment starts");
    let graph = AppGraph::from_edges(vec![
        ("user", "web"),
        ("web", "backend"),
        ("web", "cache"),
        ("backend", "db"),
    ]);
    let ctx = TestContext::new(graph, deployment.controls(), deployment.store().clone());

    // Delay the backend hop and sever backend->db so the retry budget
    // is spent on the deepest edge.
    ctx.inject(
        &Scenario::delay("web", "backend", Duration::from_millis(60)).with_pattern("test-*"),
    )
    .unwrap();
    ctx.inject(&Scenario::disconnect("backend", "db").with_pattern("test-*"))
        .unwrap();

    let client = HttpClient::new();
    let response = client
        .send(
            deployment.entry_addr("web").unwrap(),
            Request::builder(Method::Get, "/api")
                .request_id("test-1")
                .build(),
        )
        .unwrap();
    // The aggregators tolerate the dead db, so the flow completes.
    assert!(response.status().is_success(), "{}", response.status());

    let store = deployment.store();
    let tree = SpanTree::from_store(store, "test-1");

    // Three causal levels: user->web, web->backend, backend->db.
    assert!(tree.depth() >= 3, "depth {} in:\n{tree}", tree.depth());

    let root = tree.roots[0];
    assert_eq!(tree.nodes[root].record.src.as_str(), "user");
    assert_eq!(tree.nodes[root].record.dst.as_str(), "web");

    // Every span below the root must nest via the propagated span
    // IDs, not the timestamp fallback.
    let web_backend = tree
        .nodes
        .iter()
        .position(|n| n.record.src.as_str() == "web" && n.record.dst.as_str() == "backend")
        .expect("web->backend span");
    assert_eq!(tree.nodes[web_backend].parent, Some(root));
    assert!(
        !tree.nodes[web_backend].inferred_parent,
        "explicit linkage expected"
    );

    let db_attempts: Vec<usize> = tree
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| n.record.src.as_str() == "backend" && n.record.dst.as_str() == "db")
        .map(|(i, _)| i)
        .collect();
    assert_eq!(db_attempts.len(), 4, "retry budget of 4 in:\n{tree}");
    let backend_span = tree.nodes[db_attempts[0]]
        .parent
        .expect("db attempts have a parent");
    assert_eq!(tree.nodes[backend_span].record.dst.as_str(), "backend");
    assert!(db_attempts.iter().all(|&i| !tree.nodes[i].inferred_parent));

    // The sibling db attempts are sequential retries, not a fan-out;
    // web's calls to backend and cache land in separate groups.
    let groups = tree.child_groups(backend_span);
    let db_group = groups
        .iter()
        .find(|g| g.dst.as_str() == "db")
        .expect("db child group");
    assert_eq!(db_group.kind, CallKind::Retry, "in:\n{tree}");
    assert_eq!(db_group.spans.len(), 4);
    let web_children = tree.child_groups(root);
    assert!(
        web_children.len() >= 2,
        "fan-out to backend and cache: {web_children:?}"
    );

    // The Delay-faulted hop sits on the critical path.
    let path = tree.critical_path();
    assert!(
        path.contains(&web_backend),
        "critical path misses the delayed hop"
    );
    assert!(
        matches!(
            tree.nodes[web_backend].record.fault,
            Some(AppliedFault::Delay { .. })
        ),
        "expected a Delay fault on web->backend: {:?}",
        tree.nodes[web_backend].record.fault
    );
    // And the delay is visible in the observed latency.
    assert!(
        tree.nodes[web_backend]
            .record
            .latency_us
            .is_some_and(|l| l >= 60_000),
        "delay not reflected in latency"
    );

    // The OTLP export round-trips to the same span records.
    let records = spans_from_store(store, "test-1");
    let json = serde_json::to_string(&export_otlp(&records)).unwrap();
    let parsed: OtlpTrace = serde_json::from_str(&json).unwrap();
    assert_eq!(import_otlp(&parsed), records);

    // The per-flow summary agrees with the tree.
    let summary = tree.summary();
    assert_eq!(summary.spans, tree.len());
    assert!(summary.faulted_spans >= 5, "delay + 4 resets: {summary}");
}

#[test]
fn tracing_can_be_disabled_per_agent() {
    use gremlin::proxy::{AgentConfig, GremlinAgent};
    use gremlin::store::EventStore;
    use std::sync::Arc;

    let backend = gremlin::http::HttpServer::bind(
        "127.0.0.1:0",
        |_req: Request, _conn: &gremlin::http::ConnInfo| gremlin::http::Response::ok("ok"),
    )
    .unwrap();
    let store = EventStore::shared();
    let agent = Arc::new(
        GremlinAgent::start(
            AgentConfig::new("web")
                .route("db", vec![backend.local_addr()])
                .tracing(false),
            Arc::clone(&store),
        )
        .unwrap(),
    );
    let client = HttpClient::new();
    let addr = agent.route_addr("db").unwrap();
    let response = client
        .send(
            addr,
            Request::builder(Method::Get, "/x")
                .request_id("t-1")
                .build(),
        )
        .unwrap();
    assert!(response.status().is_success());
    assert!(
        response.span_id().is_none(),
        "no span echo when tracing is off"
    );
    let events = store.query(
        &gremlin::store::Query::new().with_id_pattern(gremlin::store::Pattern::Exact("t-1".into())),
    );
    assert!(!events.is_empty());
    assert!(events
        .iter()
        .all(|e| e.span_id.is_none() && e.parent_id.is_none()));
}

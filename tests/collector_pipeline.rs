//! The distributed log pipeline end to end (paper §6: agents →
//! logstash → Elasticsearch): agents ship observations over HTTP to
//! a central collector, and the Assertion Checker works off the
//! collector's store exactly as it does off a local one.

use std::sync::Arc;

use gremlin::core::{AssertionChecker, FlowTrace};
use gremlin::http::{ConnInfo, HttpClient, HttpServer, Method, Request, Response, StatusCode};
use gremlin::proxy::{AbortKind, AgentConfig, CollectorServer, GremlinAgent, HttpEventSink, Rule};
use gremlin::store::{EventStore, Pattern, Query};

#[test]
fn agents_ship_observations_to_a_remote_collector() {
    // Central store behind an HTTP collector.
    let central = EventStore::shared();
    let collector = CollectorServer::start(Arc::clone(&central), "127.0.0.1:0").unwrap();

    // A backend and an agent whose sink is the remote collector, not
    // a local store.
    let backend = HttpServer::bind("127.0.0.1:0", |_req: Request, _conn: &ConnInfo| {
        Response::ok("data")
    })
    .unwrap();
    let sink = Arc::new(HttpEventSink::new(collector.local_addr()));
    let agent = GremlinAgent::start(
        AgentConfig::new("web").route("db", vec![backend.local_addr()]),
        Arc::clone(&sink) as Arc<dyn gremlin::store::EventSink>,
    )
    .unwrap();
    agent
        .install_rules(vec![
            Rule::abort("web", "db", AbortKind::Status(503)).with_pattern("test-fail-*")
        ])
        .unwrap();

    // Mixed traffic through the agent.
    let client = HttpClient::new();
    let addr = agent.route_addr("db").unwrap();
    for i in 0..5 {
        let ok = client
            .send(
                addr,
                Request::builder(Method::Get, "/q")
                    .request_id(format!("test-ok-{i}"))
                    .build(),
            )
            .unwrap();
        assert_eq!(ok.status(), StatusCode::OK);
    }
    let failed = client
        .send(
            addr,
            Request::builder(Method::Get, "/q")
                .request_id("test-fail-1")
                .build(),
        )
        .unwrap();
    assert_eq!(failed.status(), StatusCode::SERVICE_UNAVAILABLE);

    // Drain the sink, then validate through the checker bound to the
    // CENTRAL store.
    sink.flush();
    assert_eq!(sink.dropped(), 0);
    assert_eq!(central.len(), 12, "6 requests + 6 responses");

    let checker = AssertionChecker::new(Arc::clone(&central));
    let ok_replies = checker.get_replies("web", "db", &Pattern::new("test-ok-*"));
    assert_eq!(ok_replies.len(), 5);
    assert!(ok_replies.iter().all(|e| e.status() == Some(200)));

    let failed_replies = checker.get_replies("web", "db", &Pattern::new("test-fail-*"));
    assert_eq!(failed_replies.len(), 1);
    assert_eq!(failed_replies[0].status(), Some(503));
    assert!(failed_replies[0].is_faulted());

    // Flow reconstruction works off the central store too.
    let trace = FlowTrace::from_store(&central, "test-fail-1");
    assert_eq!(trace.hops.len(), 1);
    assert!(trace.was_faulted());
}

#[test]
fn collector_survives_agent_restart_and_accumulates() {
    let central = EventStore::shared();
    let collector = CollectorServer::start(Arc::clone(&central), "127.0.0.1:0").unwrap();
    let backend = HttpServer::bind("127.0.0.1:0", |_req: Request, _conn: &ConnInfo| {
        Response::ok("x")
    })
    .unwrap();
    let client = HttpClient::new();

    for generation in 0..2 {
        let sink = Arc::new(HttpEventSink::new(collector.local_addr()));
        let agent = GremlinAgent::start(
            AgentConfig::new("web")
                .name(format!("agent-web-{generation}"))
                .route("db", vec![backend.local_addr()]),
            Arc::clone(&sink) as Arc<dyn gremlin::store::EventSink>,
        )
        .unwrap();
        client
            .send(
                agent.route_addr("db").unwrap(),
                Request::builder(Method::Get, "/g")
                    .request_id(format!("test-{generation}"))
                    .build(),
            )
            .unwrap();
        sink.flush();
        agent.shutdown();
    }
    assert_eq!(central.len(), 4, "two generations x (request + response)");
    // Events carry the generation's agent name.
    let agents: std::collections::BTreeSet<String> = central
        .snapshot()
        .into_iter()
        .map(|e| e.agent.to_string())
        .collect();
    assert_eq!(agents.len(), 2);
}

#[test]
fn exported_log_from_collector_feeds_offline_analysis() {
    let central = EventStore::shared();
    let collector = CollectorServer::start(Arc::clone(&central), "127.0.0.1:0").unwrap();
    let backend = HttpServer::bind("127.0.0.1:0", |_req: Request, _conn: &ConnInfo| {
        Response::ok("x")
    })
    .unwrap();
    let sink = Arc::new(HttpEventSink::new(collector.local_addr()));
    let agent = GremlinAgent::start(
        AgentConfig::new("web").route("db", vec![backend.local_addr()]),
        Arc::clone(&sink) as Arc<dyn gremlin::store::EventSink>,
    )
    .unwrap();
    let client = HttpClient::new();
    client
        .send(
            agent.route_addr("db").unwrap(),
            Request::builder(Method::Get, "/q")
                .request_id("test-1")
                .build(),
        )
        .unwrap();
    sink.flush();

    // GET /events gives ndjson that a fresh store can import —
    // the offline-analysis workflow the CLI's `check` command uses.
    let exported = client
        .send(collector.local_addr(), Request::get("/events"))
        .unwrap();
    let offline = EventStore::new();
    let imported = offline.import_json(&exported.body_str()).unwrap();
    assert_eq!(imported, 2);
    assert_eq!(offline.query(&Query::requests("web", "db")).len(), 1);
}

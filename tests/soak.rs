//! Soak testing: a deployment under sustained mixed load while
//! faults rotate — nothing may deadlock, wedge, or leak requests.
//!
//! The short variant runs in CI; the long one (`--ignored`) soaks for
//! 30 seconds.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gremlin::core::{AppGraph, Scenario, TestContext};
use gremlin::loadgen::WorkloadMix;
use gremlin::mesh::behaviors::{PathRouter, StaticResponder};
use gremlin::mesh::resilience::{Backoff, BulkheadConfig, CircuitBreakerConfig, RetryPolicy};
use gremlin::mesh::{Deployment, ResiliencePolicy, ServiceSpec};

fn deploy() -> (Deployment, TestContext) {
    let policy = || {
        ResiliencePolicy::new()
            .timeout(Duration::from_millis(250))
            .retry(RetryPolicy::new(2).with_backoff(Backoff::none()))
            .circuit_breaker(CircuitBreakerConfig {
                failure_threshold: 10,
                open_duration: Duration::from_millis(200),
                success_threshold: 1,
            })
            .bulkhead(BulkheadConfig { max_concurrent: 16 })
    };
    let deployment = Deployment::builder()
        .service(ServiceSpec::new("alpha", StaticResponder::ok("alpha")).workers(16))
        .service(ServiceSpec::new("beta", StaticResponder::ok("beta")).workers(16))
        .service(
            ServiceSpec::new(
                "frontend",
                PathRouter::new()
                    .route("/alpha", "alpha", "/work")
                    .route("/beta", "beta", "/work"),
            )
            .workers(16)
            .dependency("alpha", policy())
            .dependency("beta", policy()),
        )
        .ingress("user", "frontend")
        .seed(77)
        .build()
        .expect("deployment starts");
    let graph = AppGraph::from_edges(vec![
        ("user", "frontend"),
        ("frontend", "alpha"),
        ("frontend", "beta"),
    ]);
    let ctx = TestContext::new(graph, deployment.controls(), deployment.store().clone());
    (deployment, ctx)
}

fn soak(duration: Duration) {
    let (deployment, ctx) = deploy();
    let entry = deployment.entry_addr("frontend").expect("entry");

    // Fault rotator: flips through the scenario library continuously.
    let stop = Arc::new(AtomicBool::new(false));
    let rotator = {
        let stop = Arc::clone(&stop);
        let scenarios = [
            Scenario::abort("frontend", "alpha", 503).with_pattern("test-*"),
            Scenario::delay("frontend", "beta", Duration::from_millis(50)).with_pattern("test-*"),
            Scenario::abort_reset("frontend", "beta").with_pattern("test-*"),
            Scenario::overload("alpha").with_pattern("test-*"),
        ];
        std::thread::spawn(move || {
            let mut index = 0;
            while !stop.load(Ordering::SeqCst) {
                ctx.clear_faults().expect("clear");
                ctx.inject(&scenarios[index % scenarios.len()])
                    .expect("inject");
                index += 1;
                std::thread::sleep(Duration::from_millis(100));
            }
            ctx.clear_faults().expect("final clear");
        })
    };

    // Sustained mixed load until the deadline.
    let started = Instant::now();
    let mut issued = 0usize;
    let mut answered = 0usize;
    while started.elapsed() < duration {
        let report = WorkloadMix::new(entry)
            .class("alpha", "/alpha/q", 1.0)
            .class("beta", "/beta/q", 1.0)
            .read_timeout(Some(Duration::from_secs(5)))
            .seed(issued as u64)
            .run_closed(4, 5);
        issued += report.len();
        // Every request must complete with SOME outcome (possibly an
        // error status) — a wedged request would hang the worker and
        // shrink the report instead.
        answered += report.combined().len();
    }
    stop.store(true, Ordering::SeqCst);
    rotator.join().expect("rotator exits cleanly");

    assert_eq!(issued, answered);
    assert!(issued >= 40, "made progress under churn: {issued}");
    // After the dust settles the system must recover: breakers
    // half-open after 200 ms and close on the first successful probe.
    let recovery_deadline = Instant::now() + Duration::from_secs(3);
    let mut healthy = false;
    while Instant::now() < recovery_deadline {
        let after = deployment
            .call_with_id("frontend", "/alpha/1", "test-final")
            .unwrap();
        if after.body_str() == "via=alpha;alpha" {
            healthy = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    assert!(healthy, "system must recover once faults are cleared");
    assert!(
        !deployment.store().is_empty(),
        "observations were collected throughout"
    );
}

#[test]
fn soak_short() {
    soak(Duration::from_secs(2));
}

#[test]
#[ignore = "30-second soak; run with --ignored"]
fn soak_long() {
    soak(Duration::from_secs(30));
}

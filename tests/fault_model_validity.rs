//! Validating the fault model (paper §3.1): Gremlin *emulates*
//! crashes by manipulating messages at the network layer, claiming
//! the caller cannot tell the difference from a real crash. These
//! tests compare the caller-observable behaviour of an **emulated**
//! crash (TCP-reset rules) against a **real** one (the service
//! process stopped) on identical deployments.

use std::time::Duration;

use gremlin::core::{AppGraph, Scenario, TestContext};
use gremlin::http::StatusCode;
use gremlin::loadgen::LoadGenerator;
use gremlin::mesh::behaviors::{Aggregator, StaticResponder};
use gremlin::mesh::resilience::{Backoff, RetryPolicy};
use gremlin::mesh::{Deployment, ResiliencePolicy, ServiceSpec};
use gremlin::store::Pattern;

fn deploy() -> (Deployment, TestContext) {
    let deployment = Deployment::builder()
        .service(ServiceSpec::new("backend", StaticResponder::ok("data")))
        .service(
            ServiceSpec::new("frontend", Aggregator::new(vec!["backend".into()], "/api"))
                .dependency(
                    "backend",
                    ResiliencePolicy::new()
                        .timeout(Duration::from_millis(500))
                        .retry(RetryPolicy::new(3).with_backoff(Backoff::none())),
                ),
        )
        .ingress("user", "frontend")
        .build()
        .expect("deployment starts");
    let graph = AppGraph::from_edges(vec![("user", "frontend"), ("frontend", "backend")]);
    let ctx = TestContext::new(graph, deployment.controls(), deployment.store().clone());
    (deployment, ctx)
}

/// Drives load and summarizes what the user and the frontend's
/// retry logic observed.
struct Observed {
    user_statuses: Vec<u16>,
    attempts_per_flow: usize,
}

fn observe(deployment: &Deployment, ctx: &TestContext, prefix: &str) -> Observed {
    let report = LoadGenerator::new(deployment.entry_addr("frontend").expect("entry"))
        .id_prefix(prefix)
        .read_timeout(Some(Duration::from_secs(5)))
        .run_sequential(5);
    let user_statuses = report
        .outcomes
        .iter()
        .map(|o| o.status.unwrap_or(0))
        .collect();
    // Attempts per flow seen on the frontend->backend edge for the
    // first flow of the batch.
    let requests = ctx.checker().get_requests(
        "frontend",
        "backend",
        &Pattern::Exact(format!("{prefix}-0")),
    );
    Observed {
        user_statuses,
        attempts_per_flow: requests.len(),
    }
}

#[test]
fn emulated_crash_matches_real_crash_for_the_caller() {
    // Run 1: Gremlin's emulated crash.
    let (deployment, ctx) = deploy();
    ctx.inject(&Scenario::crash("backend").with_pattern("emul-*"))
        .unwrap();
    let emulated = observe(&deployment, &ctx, "emul");

    // Run 2: the backend really dies.
    let (mut deployment, ctx) = deploy();
    assert!(deployment.kill_service("backend"));
    let real = observe(&deployment, &ctx, "real");

    // The recovery-relevant behaviour is identical in both worlds:
    // the user sees the same statuses (the aggregator degrades
    // gracefully to 200), and the frontend's bounded-retry logic
    // spends its full budget per flow. (One observable nuance: an
    // emulated crash reaches the caller as a raw connection reset,
    // while a real crash behind a sidecar surfaces as the agent's
    // synthesized 502 — both are failures the same handling code
    // paths cover.)
    assert_eq!(emulated.user_statuses, real.user_statuses);
    assert!(emulated.user_statuses.iter().all(|s| *s == 200));
    assert_eq!(emulated.attempts_per_flow, 3);
    assert_eq!(real.attempts_per_flow, 3);
}

#[test]
fn emulated_crash_is_reversible_and_confined_where_real_is_not() {
    // Emulated: only test flows die, and clearing restores service.
    let (deployment, ctx) = deploy();
    ctx.inject(&Scenario::crash("backend").with_pattern("test-*"))
        .unwrap();
    let prod = deployment.call_with_id("frontend", "/", "prod-1").unwrap();
    assert_eq!(prod.body_str(), "backend=ok", "production flows spared");
    ctx.clear_faults().unwrap();
    let test = deployment.call_with_id("frontend", "/", "test-1").unwrap();
    assert_eq!(test.body_str(), "backend=ok", "fully reversible");

    // Real: every flow is hit and there is no way back. (Through the
    // sidecar, a dead upstream surfaces as the agent's synthesized
    // 502 Bad Gateway rather than a raw connection error.)
    let (mut deployment, _ctx) = deploy();
    deployment.kill_service("backend");
    let prod = deployment.call_with_id("frontend", "/", "prod-1").unwrap();
    assert_eq!(prod.status(), StatusCode::OK);
    assert_eq!(
        prod.body_str(),
        "backend=error(502)",
        "a real crash spares nobody"
    );
}

#[test]
fn kill_service_semantics() {
    let (mut deployment, _ctx) = deploy();
    assert!(!deployment.kill_service("nonexistent"));
    assert!(deployment.kill_service("backend"));
    assert!(!deployment.kill_service("backend"), "already dead");
    assert!(deployment.service("backend").is_none());
    assert!(deployment.service_addr("backend").is_none());
    assert!(deployment.registry().instances("backend").is_empty());
}

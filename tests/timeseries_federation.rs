//! End-to-end fleet time-series: an instrumented agent is scraped
//! into a shared [`TimeSeriesStore`] while a recipe injects a crash.
//! The upstream success rate served by the collector's `/series`
//! endpoint must visibly dip to zero during the fault and recover
//! after the clear, with the control plane's `install` / `clear`
//! annotations bracketing the dip. The same history must then replay
//! offline from the flight recorder's `timeseries.jsonl`.

use std::sync::Arc;
use std::time::Duration;

use gremlin::core::{AppGraph, FlightLog, RecipeRun, Scenario, TestContext};
use gremlin::http::{ConnInfo, HttpClient, HttpServer, Method, Request, Response};
use gremlin::proxy::{
    AgentConfig, AgentControl, CollectorServer, ControlServer, GremlinAgent, Scraper,
};
use gremlin::store::{EventSink, EventStore, HealthMonitor, DEFAULT_HEALTH_WINDOW};
use gremlin::telemetry::{MetricsRegistry, TimeSeriesStore};

/// The counter whose per-second rate tracks *successful* upstream
/// calls: aborted requests short-circuit at the proxy, so only
/// passthrough traffic increments it.
const UPSTREAM_COUNT: &str = "gremlin_proxy_upstream_latency_seconds_count";

/// Sends `n` pattern-matched requests through the agent and returns
/// how many got a 2xx back (transport errors count as failures).
fn drive(client: &HttpClient, addr: std::net::SocketAddr, n: usize, prefix: &str) -> usize {
    (0..n)
        .filter(|i| {
            client
                .send(
                    addr,
                    Request::builder(Method::Get, "/q")
                        .request_id(format!("{prefix}-{i}"))
                        .build(),
                )
                .map(|response| response.status().is_success())
                .unwrap_or(false)
        })
        .count()
}

/// Asserts the rate points show healthy -> zero -> healthy, with the
/// zero-rate sample inside `[install, clear]`. Returns the dip
/// timestamp.
fn assert_dip(points: &[(u64, f64)], install_us: u64, clear_us: u64) -> u64 {
    assert!(points.len() >= 3, "need 3+ rate points, got {points:?}");
    let dip = points
        .iter()
        .find(|(at_us, value)| *value == 0.0 && (install_us..=clear_us).contains(at_us))
        .unwrap_or_else(|| {
            panic!("no zero-rate sample between install ({install_us}) and clear ({clear_us}): {points:?}")
        });
    let before = points.iter().filter(|(at, _)| *at < install_us).last();
    let after = points.iter().filter(|(at, _)| *at > clear_us).last();
    assert!(
        before.is_some_and(|(_, v)| *v > 0.0),
        "no healthy rate before the fault: {points:?}"
    );
    assert!(
        after.is_some_and(|(_, v)| *v > 0.0),
        "rate did not recover after clear: {points:?}"
    );
    dip.0
}

#[test]
fn series_rate_dips_during_fault_and_replays_offline() {
    // Backend + instrumented agent for the web -> db route, with the
    // control server exposing /metrics for the fleet scraper.
    let backend = HttpServer::bind("127.0.0.1:0", |_req: Request, _conn: &ConnInfo| {
        Response::ok("rows")
    })
    .unwrap();
    let registry = MetricsRegistry::shared();
    let store = EventStore::shared();
    let agent = Arc::new(
        GremlinAgent::start(
            AgentConfig::new("web")
                .route("db", vec![backend.local_addr()])
                .telemetry(&registry),
            Arc::clone(&store) as Arc<dyn EventSink>,
        )
        .unwrap(),
    );
    let control = ControlServer::start(Arc::clone(&agent), "127.0.0.1:0").unwrap();

    // Fleet scraper + collector: /federate and /series serve the
    // same store the recipe annotates.
    let timeline = TimeSeriesStore::shared();
    let scraper = Arc::new(Scraper::new(Arc::clone(&timeline)));
    scraper.add_target("web", control.local_addr().to_string());
    let monitor = Arc::new(HealthMonitor::new(
        Arc::clone(&store),
        DEFAULT_HEALTH_WINDOW,
    ));
    let collector = CollectorServer::start_with_fleet(
        Arc::clone(&store),
        "127.0.0.1:0",
        Arc::clone(&registry),
        monitor,
        Some(Arc::clone(&scraper)),
    )
    .unwrap();

    let graph = AppGraph::from_edges(vec![("web", "db")]);
    let ctx = TestContext::with_telemetry(
        graph,
        vec![Arc::clone(&agent) as Arc<dyn AgentControl>],
        Arc::clone(&store),
        Arc::clone(&registry),
    )
    .with_timeline(Arc::clone(&timeline));

    let flight_root = std::env::temp_dir().join(format!("gremlin-ts-fed-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&flight_root);
    let mut run = RecipeRun::new("federated crash db", &ctx);
    let flight_dir = run.start_flight_recorder(&flight_root).unwrap();

    let client = HttpClient::new();
    let addr = agent.route_addr("db").unwrap();

    // Two healthy scrapes: the upstream success rate is positive.
    assert_eq!(drive(&client, addr, 10, "test-a"), 10);
    scraper.scrape_once();
    std::thread::sleep(Duration::from_millis(10));
    assert_eq!(drive(&client, addr, 10, "test-b"), 10);
    scraper.scrape_once();
    std::thread::sleep(Duration::from_millis(10));

    // Crash db: every pattern-matched request aborts at the proxy,
    // so the upstream success counter freezes.
    run.inject(&Scenario::crash("db").with_pattern("test-*"))
        .unwrap();
    std::thread::sleep(Duration::from_millis(10));
    assert_eq!(drive(&client, addr, 10, "test-c"), 0, "crash not engaged");
    scraper.scrape_once();
    std::thread::sleep(Duration::from_millis(10));

    // Clear and recover.
    ctx.clear_faults().unwrap();
    std::thread::sleep(Duration::from_millis(10));
    assert_eq!(drive(&client, addr, 10, "test-d"), 10);
    scraper.scrape_once();

    // --- Online: the collector's range query shows the dip ------------
    let response = client
        .send(
            collector.local_addr(),
            Request::get(format!(
                "/series?name={UPSTREAM_COUNT}&target=web&rate=true"
            )),
        )
        .unwrap();
    assert!(response.status().is_success(), "{:?}", response.status());
    let doc: serde_json::Value = serde_json::from_str(&response.body_str()).unwrap();
    assert_eq!(doc["kind"], "counter");
    let annotations = doc["annotations"].as_array().unwrap();
    let at_of = |phase: &str| {
        annotations
            .iter()
            .find(|a| a["phase"] == phase)
            .unwrap_or_else(|| panic!("no {phase} annotation in {annotations:?}"))["at_us"]
            .as_u64()
            .unwrap()
    };
    let (install_us, clear_us) = (at_of("install"), at_of("clear"));
    assert!(install_us < clear_us);
    let series = doc["series"].as_array().unwrap();
    assert_eq!(series.len(), 1, "{series:?}");
    let points: Vec<(u64, f64)> = series[0]["points"]
        .as_array()
        .unwrap()
        .iter()
        .map(|p| (p[0].as_u64().unwrap(), p[1].as_f64().unwrap()))
        .collect();
    let dip_us = assert_dip(&points, install_us, clear_us);

    // /federate carries the merged snapshot with the target marked up.
    let federated = client
        .send(collector.local_addr(), Request::get("/federate"))
        .unwrap();
    let text = federated.body_str();
    assert!(text.contains("up{instance=\"web\"} 1"), "{text}");
    assert!(
        text.contains(&format!("{UPSTREAM_COUNT}{{")),
        "no scraped series federated: {text}"
    );

    // --- Offline: the flight recording replays the same history -------
    let report = run.finish();
    assert!(report.passed, "{report:?}");
    let log = FlightLog::load(&flight_dir).unwrap();
    assert!(!log.timeseries.is_empty(), "timeseries.jsonl not recorded");
    let rebuilt = log.timeseries_store();
    let offline = rebuilt.query_rate(UPSTREAM_COUNT, Some("web"), 0, u64::MAX);
    assert_eq!(offline.len(), 1, "{offline:?}");
    let offline_points: Vec<(u64, f64)> = offline[0].1.iter().map(|p| (p.at_us, p.value)).collect();
    let offline_dip = assert_dip(&offline_points, install_us, clear_us);
    assert_eq!(offline_dip, dip_us, "replay disagrees with live query");
    let rendered = log.render_metrics();
    assert!(rendered.contains("metric history:"), "{rendered}");
    assert!(rendered.contains("install"), "{rendered}");

    let _ = std::fs::remove_dir_all(&flight_root);
}

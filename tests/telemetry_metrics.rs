//! End-to-end observability: a fault-injecting agent and a remote
//! collector both expose Prometheus `/metrics`, and the scraped
//! counters agree with the traffic that actually flowed.

use std::sync::Arc;

use gremlin::http::{ConnInfo, HttpClient, HttpServer, Method, Request, Response, StatusCode};
use gremlin::proxy::{
    AbortKind, AgentConfig, CollectorServer, ControlServer, GremlinAgent, HttpEventSink, Rule,
};
use gremlin::store::EventStore;
use gremlin::telemetry::{parse_prometheus, MetricsRegistry, PromSample};

/// Scrapes `GET /metrics` from `addr` and parses the exposition.
fn scrape(client: &HttpClient, addr: std::net::SocketAddr) -> (String, Vec<PromSample>) {
    let response = client.send(addr, Request::get("/metrics")).unwrap();
    assert_eq!(response.status(), StatusCode::OK);
    let content_type = response
        .headers()
        .get("content-type")
        .unwrap_or("")
        .to_string();
    assert!(content_type.starts_with("text/plain"), "{content_type}");
    let text = response.body_str();
    let samples = parse_prometheus(&text);
    (text, samples)
}

/// The value of the series `name` whose labels include all of `labels`.
fn value(samples: &[PromSample], name: &str, labels: &[(&str, &str)]) -> f64 {
    samples
        .iter()
        .find(|s| s.name == name && labels.iter().all(|(k, v)| s.label(k) == Some(v)))
        .unwrap_or_else(|| panic!("series {name} {labels:?} not found"))
        .value
}

#[test]
fn agent_and_collector_metrics_match_observed_traffic() {
    // Collector fronting the central store.
    let central = EventStore::shared();
    let collector = CollectorServer::start(Arc::clone(&central), "127.0.0.1:0").unwrap();

    // Backend + instrumented agent shipping to the collector.
    let backend = HttpServer::bind("127.0.0.1:0", |_req: Request, _conn: &ConnInfo| {
        Response::ok("data")
    })
    .unwrap();
    let registry = MetricsRegistry::shared();
    let sink = Arc::new(HttpEventSink::new(collector.local_addr()));
    let agent = Arc::new(
        GremlinAgent::start(
            AgentConfig::new("web")
                .route("db", vec![backend.local_addr()])
                .telemetry(&registry),
            Arc::clone(&sink) as Arc<dyn gremlin::store::EventSink>,
        )
        .unwrap(),
    );
    let control = ControlServer::start(Arc::clone(&agent), "127.0.0.1:0").unwrap();
    agent
        .install_rules(vec![
            Rule::abort("web", "db", AbortKind::Status(503)).with_pattern("test-fail-*")
        ])
        .unwrap();

    // 6 passthrough requests, 2 aborted ones.
    let client = HttpClient::new();
    let addr = agent.route_addr("db").unwrap();
    for i in 0..6 {
        let ok = client
            .send(
                addr,
                Request::builder(Method::Get, "/q")
                    .request_id(format!("test-ok-{i}"))
                    .build(),
            )
            .unwrap();
        assert_eq!(ok.status(), StatusCode::OK);
    }
    for i in 0..2 {
        let aborted = client
            .send(
                addr,
                Request::builder(Method::Get, "/q")
                    .request_id(format!("test-fail-{i}"))
                    .build(),
            )
            .unwrap();
        assert_eq!(aborted.status(), StatusCode::SERVICE_UNAVAILABLE);
    }
    sink.flush();
    assert_eq!(sink.dropped(), 0);

    // --- Agent side (served by the control API) -----------------------
    let (text, samples) = scrape(&client, control.local_addr());
    assert!(
        text.contains("# TYPE gremlin_proxy_requests_total counter"),
        "{text}"
    );
    let route = [("service", "web"), ("dst", "db")];
    assert_eq!(value(&samples, "gremlin_proxy_requests_total", &route), 8.0);
    assert_eq!(
        value(
            &samples,
            "gremlin_proxy_faults_total",
            &[("service", "web"), ("type", "abort")]
        ),
        2.0
    );
    // Aborts short-circuit before the upstream: only the 6 passthrough
    // requests have an upstream latency sample, and none failed.
    assert_eq!(
        value(
            &samples,
            "gremlin_proxy_upstream_latency_seconds_count",
            &route
        ),
        6.0
    );
    assert_eq!(
        value(&samples, "gremlin_proxy_upstream_errors_total", &route),
        0.0
    );
    // The +Inf bucket of the latency histogram equals its count.
    assert_eq!(
        value(
            &samples,
            "gremlin_proxy_upstream_latency_seconds_bucket",
            &[("service", "web"), ("dst", "db"), ("le", "+Inf")]
        ),
        6.0
    );

    // --- Collector side ----------------------------------------------
    let (_, samples) = scrape(&client, collector.local_addr());
    // Every request produces a request + a response observation.
    assert_eq!(value(&samples, "gremlin_collector_events_total", &[]), 16.0);
    assert_eq!(
        value(&samples, "gremlin_collector_parse_errors_total", &[]),
        0.0
    );
    assert!(value(&samples, "gremlin_collector_batches_total", &[]) >= 1.0);
    // Store-level telemetry rides on the same registry.
    assert_eq!(value(&samples, "gremlin_store_events", &[]), 16.0);
    assert_eq!(value(&samples, "gremlin_store_appends_total", &[]), 16.0);

    // /stats mirrors the same counters as JSON.
    let stats = client
        .send(collector.local_addr(), Request::get("/stats"))
        .unwrap();
    let stats: serde_json::Value = serde_json::from_slice(stats.body()).unwrap();
    assert_eq!(stats["events"], 16);
    assert_eq!(stats["appended"], 16);
    assert_eq!(stats["parse_errors"], 0);
    assert!(stats["batches"].as_u64().unwrap() >= 1);

    // A malformed batch line is a 400 that still imports the good
    // lines — and the failure is visible on /metrics.
    let good = serde_json::to_string(
        &gremlin::store::Event::request("web", "db", "GET", "/x").with_request_id("test-bad-1"),
    )
    .unwrap();
    let response = client
        .send(
            collector.local_addr(),
            Request::builder(Method::Post, "/events")
                .body(format!("{good}\nnot json\n"))
                .build(),
        )
        .unwrap();
    assert_eq!(response.status(), StatusCode::BAD_REQUEST);
    let body = response.body_str();
    assert!(body.contains("\"imported\":1"), "{body}");
    assert!(body.contains("\"parse_errors\":1"), "{body}");

    let (_, samples) = scrape(&client, collector.local_addr());
    assert_eq!(
        value(&samples, "gremlin_collector_parse_errors_total", &[]),
        1.0
    );
    assert_eq!(value(&samples, "gremlin_collector_events_total", &[]), 17.0);
    assert_eq!(value(&samples, "gremlin_store_events", &[]), 17.0);
}

//! The §9 automatic recipe generator running against live
//! deployments: the generated matrix must pass on a hardened
//! application and pinpoint the broken pattern on a bugged one.

use std::error::Error;
use std::time::Duration;

use gremlin::core::autogen::{Expectations, RecipeGenerator};
use gremlin::core::{AppGraph, TestContext};
use gremlin::loadgen::LoadGenerator;
use gremlin::mesh::behaviors::{Aggregator, StaticResponder};
use gremlin::mesh::resilience::{Backoff, CircuitBreakerConfig, RetryPolicy};
use gremlin::mesh::{Deployment, ResiliencePolicy, ServiceSpec};

fn hardened() -> ResiliencePolicy {
    ResiliencePolicy::new()
        .timeout(Duration::from_millis(100))
        .retry(RetryPolicy::new(3).with_backoff(Backoff::none()))
        .circuit_breaker(CircuitBreakerConfig {
            failure_threshold: 5,
            open_duration: Duration::from_secs(5),
            success_threshold: 1,
        })
}

fn deploy(backend_policy: ResiliencePolicy) -> Result<(Deployment, TestContext), Box<dyn Error>> {
    let deployment = Deployment::builder()
        .service(ServiceSpec::new("db", StaticResponder::ok("rows")))
        .service(
            ServiceSpec::new("web", Aggregator::new(vec!["db".into()], "/q"))
                .dependency("db", backend_policy),
        )
        .ingress("user", "web")
        .seed(99)
        .build()?;
    let graph = AppGraph::from_edges(vec![("user", "web"), ("web", "db")]);
    let ctx = TestContext::new(graph, deployment.controls(), deployment.store().clone());
    Ok((deployment, ctx))
}

fn expectations() -> Expectations {
    Expectations {
        max_tries: 5,
        breaker_threshold: 5,
        breaker_window: Duration::from_secs(2),
        breaker_success_threshold: 1,
        max_latency: Duration::from_millis(400),
        hang: Duration::from_millis(600),
        min_rate: 0.5,
    }
}

/// Runs the generated matrix, one fresh deployment per test (state
/// cleanup), returning the names of failing probes.
fn run_matrix(policy: fn() -> ResiliencePolicy) -> Result<Vec<String>, Box<dyn Error>> {
    let generator = RecipeGenerator::new()
        .expectations(expectations())
        .exclude("user");
    let (_, template_ctx) = deploy(policy())?;
    let tests = generator.generate(template_ctx.graph());
    assert!(!tests.is_empty());
    let pattern = generator.flow_pattern();

    let mut failures = Vec::new();
    for test in tests {
        let (deployment, ctx) = deploy(policy())?;
        ctx.inject(&test.scenario)?;
        LoadGenerator::new(deployment.entry_addr("web").expect("entry"))
            .id_prefix("test")
            .read_timeout(Some(Duration::from_secs(5)))
            .run_sequential(6);
        let check = test.probe.evaluate(ctx.checker(), ctx.graph(), &pattern);
        if !check.passed {
            failures.push(test.name);
        }
    }
    Ok(failures)
}

#[test]
fn hardened_application_passes_the_generated_matrix() -> Result<(), Box<dyn Error>> {
    let failures = run_matrix(hardened)?;
    assert!(
        failures.is_empty(),
        "hardened app should pass every generated probe, failed: {failures:?}"
    );
    Ok(())
}

#[test]
fn missing_timeout_is_pinpointed_by_the_matrix() -> Result<(), Box<dyn Error>> {
    fn no_timeout() -> ResiliencePolicy {
        ResiliencePolicy::new()
            .retry(RetryPolicy::new(3).with_backoff(Backoff::none()))
            .circuit_breaker(CircuitBreakerConfig {
                failure_threshold: 5,
                open_duration: Duration::from_secs(5),
                success_threshold: 1,
            })
    }
    let failures = run_matrix(no_timeout)?;
    assert!(
        failures.iter().any(|name| name == "hang:web->db/timeouts"),
        "matrix must name the missing-timeout probe, failed: {failures:?}"
    );
    Ok(())
}

#[test]
fn unbounded_retries_are_pinpointed_by_the_matrix() -> Result<(), Box<dyn Error>> {
    fn retry_happy() -> ResiliencePolicy {
        // 10 attempts against an expectation of at most 5.
        ResiliencePolicy::new()
            .timeout(Duration::from_millis(100))
            .retry(RetryPolicy::new(10).with_backoff(Backoff::none()))
    }
    let failures = run_matrix(retry_happy)?;
    assert!(
        failures
            .iter()
            .any(|name| name == "disconnect:web->db/bounded-retries"),
        "matrix must name the retry probe, failed: {failures:?}"
    );
    Ok(())
}

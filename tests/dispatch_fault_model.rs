//! Dogfooding the dispatch layer: a Gremlin agent sits on the
//! coordinator→operator control channel itself and injects Delay and
//! Abort faults into the wave POSTs. The coordinator's bounded-backoff
//! retry machinery must ride out both and still deliver a
//! verdict-complete campaign report.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use gremlin::core::{
    AppGraph, CampaignDispatcher, CampaignRecipe, HttpOperator, OperatorServer, OperatorTransport,
    Scenario, TestContext,
};
use gremlin::proxy::{AbortKind, AgentConfig, AgentControl, GremlinAgent, ProxyError, Rule};
use gremlin::store::EventStore;

/// In-memory agent for the operator's own fleet slice.
struct SinkAgent {
    service: String,
    rules: Mutex<Vec<Rule>>,
}

impl AgentControl for SinkAgent {
    fn service_name(&self) -> String {
        self.service.clone()
    }

    fn install_rules(&self, rules: &[Rule]) -> Result<(), ProxyError> {
        self.rules.lock().unwrap().extend(rules.iter().cloned());
        Ok(())
    }

    fn clear_rules(&self) -> Result<(), ProxyError> {
        self.rules.lock().unwrap().clear();
        Ok(())
    }

    fn list_rules(&self) -> Result<Vec<Rule>, ProxyError> {
        Ok(self.rules.lock().unwrap().clone())
    }
}

const PAIRS: [(&str, &str); 2] = [("c1", "s1"), ("c2", "s2")];

fn fleet_ctx() -> TestContext {
    let agents: Vec<Arc<dyn AgentControl>> = PAIRS
        .iter()
        .map(|(src, _)| {
            Arc::new(SinkAgent {
                service: src.to_string(),
                rules: Mutex::new(Vec::new()),
            }) as Arc<dyn AgentControl>
        })
        .collect();
    TestContext::new(
        AppGraph::from_edges(PAIRS.to_vec()),
        agents,
        EventStore::shared(),
    )
}

fn recipes() -> Vec<CampaignRecipe> {
    PAIRS
        .iter()
        .map(|(src, dst)| {
            CampaignRecipe::new(format!("{src}-{dst}"))
                .scenario(Scenario::abort(*src, *dst, 503))
                .hold(Duration::from_millis(15))
        })
        .collect()
}

#[test]
fn coordinator_retries_ride_out_faults_on_the_control_channel() {
    // Real operator host behind a real control endpoint...
    let operator =
        OperatorServer::start("op-under-fault", fleet_ctx(), "127.0.0.1:0", None).unwrap();

    // ...fronted by a Gremlin agent proxying the coordinator's wave
    // POSTs, exactly like any other service edge under test.
    let agent = GremlinAgent::start(
        AgentConfig::new("coordinator").route("operator", vec![operator.local_addr()]),
        EventStore::shared(),
    )
    .unwrap();
    let proxied = agent.route_addr("operator").unwrap();

    // Phase 1 — Delay on the control channel: every wave POST crawls,
    // but nothing fails, so the campaign completes without retries.
    agent
        .install_rules(vec![Rule::delay(
            "coordinator",
            "operator",
            Duration::from_millis(40),
        )])
        .unwrap();
    let operators: Vec<Arc<dyn OperatorTransport>> =
        vec![Arc::new(HttpOperator::connect(proxied).unwrap())];
    let report = CampaignDispatcher::new(AppGraph::from_edges(PAIRS.to_vec()), operators)
        .max_in_flight(2)
        .retries(3)
        .backoff(Duration::from_millis(20))
        .run(recipes())
        .unwrap();
    assert!(report.passed(), "delayed control channel: {report}");
    assert_eq!(report.recipes.len(), 2);
    agent.clear_rules();

    // Phase 2 — Abort on the control channel: wave POSTs bounce with
    // 503 until a background repair clears the rule. The dispatcher's
    // bounded backoff must bridge the outage and still produce a
    // verdict for every recipe. (Connect while the channel is still
    // clean — the fault lands after the handshake, mid-campaign.)
    let faulted: Vec<Arc<dyn OperatorTransport>> =
        vec![Arc::new(HttpOperator::connect(proxied).unwrap())];
    agent
        .install_rules(vec![Rule::abort(
            "coordinator",
            "operator",
            AbortKind::Status(503),
        )])
        .unwrap();
    let repair = {
        let agent = &agent;
        std::thread::scope(|scope| {
            let handle = scope.spawn(move || {
                std::thread::sleep(Duration::from_millis(120));
                agent.clear_rules();
            });
            let report = CampaignDispatcher::new(AppGraph::from_edges(PAIRS.to_vec()), faulted)
                .max_in_flight(2)
                .retries(8)
                .backoff(Duration::from_millis(30))
                .run(recipes())
                .unwrap();
            handle.join().unwrap();
            report
        })
    };
    assert!(repair.passed(), "aborted control channel: {repair}");
    assert_eq!(repair.recipes.len(), 2, "verdict-complete despite aborts");
    for recipe in &repair.recipes {
        assert!(recipe.passed, "recipe {} lost its verdict", recipe.name);
    }

    agent.shutdown();
    operator.shutdown();
}

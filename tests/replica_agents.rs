//! Figure 3 fidelity: an application running multiple instances of a
//! service has one Gremlin agent per instance, and the Failure
//! Orchestrator locates and configures **all** of them, so the fault
//! affects communication between every pair of instances.

use std::collections::BTreeSet;
use std::time::Duration;

use gremlin::core::{AppGraph, Scenario, TestContext};
use gremlin::loadgen::LoadGenerator;
use gremlin::mesh::behaviors::{Aggregator, StaticResponder};
use gremlin::mesh::{Deployment, ResiliencePolicy, ServiceSpec};
use gremlin::store::{Pattern, Query};

/// Two instances of serviceA, two instances of serviceB (the paper's
/// Figure 3 picture exactly).
fn figure3() -> (Deployment, TestContext) {
    let deployment = Deployment::builder()
        .service(ServiceSpec::new("serviceB", StaticResponder::ok("b")).replicas(2))
        .service(
            ServiceSpec::new("serviceA", Aggregator::new(vec!["serviceB".into()], "/api"))
                .replicas(2)
                .dependency(
                    "serviceB",
                    ResiliencePolicy::new().timeout(Duration::from_secs(2)),
                ),
        )
        .ingress("user", "serviceA")
        .seed(7)
        .build()
        .expect("deployment starts");
    let graph = AppGraph::from_edges(vec![("user", "serviceA"), ("serviceA", "serviceB")]);
    let ctx = TestContext::new(graph, deployment.controls(), deployment.store().clone());
    (deployment, ctx)
}

#[test]
fn one_agent_per_instance() {
    let (deployment, _ctx) = figure3();
    assert_eq!(deployment.agents_for("serviceA").len(), 2);
    assert_eq!(deployment.agents_for("user").len(), 1);
    // serviceB has no outbound dependencies, hence no agents.
    assert!(deployment.agents_for("serviceB").is_empty());
    // All three appear in the fleet the orchestrator drives.
    assert_eq!(deployment.controls().len(), 3);
    // The two serviceA agents are distinct instances with distinct
    // listeners.
    let agents = deployment.agents_for("serviceA");
    assert_ne!(agents[0].name(), agents[1].name());
    assert_ne!(
        agents[0].route_addr("serviceB"),
        agents[1].route_addr("serviceB")
    );
}

#[test]
fn orchestrator_programs_every_instance() {
    let (deployment, ctx) = figure3();
    let stats = ctx
        .inject(&Scenario::disconnect("serviceA", "serviceB").with_pattern("test-*"))
        .unwrap();
    // One logical rule, installed once per serviceA agent instance.
    assert_eq!(stats.rules, 1);
    assert_eq!(stats.installations, 2);
    for agent in deployment.agents_for("serviceA") {
        assert_eq!(agent.rules().len(), 1);
    }
}

#[test]
fn fault_affects_traffic_from_every_instance() {
    let (deployment, ctx) = figure3();
    ctx.inject(&Scenario::disconnect("serviceA", "serviceB").with_pattern("test-*"))
        .unwrap();
    // Load fans out over both serviceA replicas via the ingress
    // agent's round-robin; fresh connections ensure both replicas
    // actually serve.
    let report = LoadGenerator::new(deployment.entry_addr("serviceA").unwrap())
        .id_prefix("test")
        .run_closed(4, 5);
    assert_eq!(report.len(), 20);
    // Every flow saw the injected failure regardless of which
    // instance handled it.
    let store = deployment.store();
    let faulted = store.query(
        &Query::replies("serviceA", "serviceB")
            .with_id_pattern(Pattern::new("test-*"))
            .with_faulted(true),
    );
    assert_eq!(faulted.len(), 20, "all 20 calls aborted");
    // And both agent instances logged observations.
    let reporting_agents: BTreeSet<String> = faulted
        .into_iter()
        .map(|event| event.agent.to_string())
        .collect();
    assert_eq!(
        reporting_agents.len(),
        2,
        "both serviceA instances saw faulted traffic: {reporting_agents:?}"
    );
}

#[test]
fn replicas_keep_independent_breaker_state() {
    use gremlin::mesh::resilience::{CircuitBreakerConfig, CircuitState};
    let deployment = Deployment::builder()
        .service(ServiceSpec::new("serviceB", StaticResponder::ok("b")))
        .service(
            ServiceSpec::new("serviceA", Aggregator::new(vec!["serviceB".into()], "/api"))
                .replicas(2)
                .dependency(
                    "serviceB",
                    ResiliencePolicy::new()
                        .timeout(Duration::from_secs(1))
                        .circuit_breaker(CircuitBreakerConfig {
                            failure_threshold: 3,
                            open_duration: Duration::from_secs(60),
                            success_threshold: 1,
                        }),
                ),
        )
        .build()
        .expect("deployment starts");

    // Trip replica 0's breaker directly through its own client.
    let service = deployment.service("serviceA").unwrap();
    let breaker_0 = service
        .replica_dependency(0, "serviceB")
        .unwrap()
        .breaker()
        .unwrap();
    for _ in 0..3 {
        breaker_0.record_failure();
    }
    assert_eq!(breaker_0.state(), CircuitState::Open);

    // Replica 1's breaker is an independent instance, still closed.
    let breaker_1 = service
        .replica_dependency(1, "serviceB")
        .unwrap()
        .breaker()
        .unwrap();
    assert_eq!(breaker_1.state(), CircuitState::Closed);
}

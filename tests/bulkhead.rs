//! The bulkhead pattern under a degraded dependency (paper §2.1 and
//! Table 3's `HasBulkHead`).
//!
//! The paper's description: *"If a shared thread pool is used to make
//! API calls to multiple microservices, thread pool resources can be
//! quickly exhausted when one of the downstream services degrades…
//! The bulkhead pattern mitigates this issue by assigning an
//! independent thread pool for each type of dependent microservice."*
//!
//! The frontend here has a shared outbound-call pool of 4 slots.
//! Without a bulkhead, a hung `slowsvc` soaks up all 4 slots and
//! `/fast` traffic (which only needs `fastsvc`) starves. With a
//! 2-slot bulkhead on the `slowsvc` edge, overflow slow calls are
//! rejected immediately and fast traffic keeps flowing.

use std::time::Duration;

use gremlin::core::{AppGraph, Scenario, TestContext};
use gremlin::http::StatusCode;
use gremlin::loadgen::LoadGenerator;
use gremlin::mesh::behaviors::{PathRouter, StaticResponder};
use gremlin::mesh::resilience::BulkheadConfig;
use gremlin::mesh::{Deployment, ResiliencePolicy, ServiceSpec};
use gremlin::store::Pattern;

fn deploy(slow_policy: ResiliencePolicy) -> (Deployment, TestContext) {
    let deployment = Deployment::builder()
        .service(ServiceSpec::new("slowsvc", StaticResponder::ok("slow-ok")).workers(16))
        .service(ServiceSpec::new("fastsvc", StaticResponder::ok("fast-ok")).workers(16))
        .service(
            ServiceSpec::new(
                "frontend",
                PathRouter::new()
                    .route("/slow", "slowsvc", "/work")
                    .route("/fast", "fastsvc", "/work"),
            )
            .workers(32)
            .shared_call_pool(4)
            .dependency("slowsvc", slow_policy)
            .dependency(
                "fastsvc",
                ResiliencePolicy::new().timeout(Duration::from_secs(2)),
            ),
        )
        .ingress("user", "frontend")
        .seed(41)
        .build()
        .expect("deployment starts");
    let graph = AppGraph::from_edges(vec![
        ("user", "frontend"),
        ("frontend", "slowsvc"),
        ("frontend", "fastsvc"),
    ]);
    let ctx = TestContext::new(graph, deployment.controls(), deployment.store().clone());
    (deployment, ctx)
}

/// Hangs `slowsvc`, saturates the slow path from background threads,
/// then measures fast-path latency while the hang is in effect.
fn drive(deployment: &Deployment, ctx: &TestContext) -> gremlin::loadgen::LoadReport {
    ctx.inject(&Scenario::hang_for("slowsvc", Duration::from_secs(3)).with_pattern("test-*"))
        .unwrap();
    let entry = deployment.entry_addr("frontend").unwrap();

    let slow_handles: Vec<_> = (0..8)
        .map(|worker| {
            let generator = LoadGenerator::new(entry)
                .path("/slow/q")
                .id_prefix(format!("test-slow-{worker}"))
                .read_timeout(Some(Duration::from_secs(10)));
            std::thread::spawn(move || generator.run_sequential(1))
        })
        .collect();
    std::thread::sleep(Duration::from_millis(300));

    // Fresh connections per request (Connection pooling would reuse
    // a parked keep-alive worker and mask queueing).
    let fast = LoadGenerator::new(entry)
        .path("/fast/q")
        .id_prefix("test-fast")
        .read_timeout(Some(Duration::from_secs(5)))
        .run_closed(4, 3);
    for handle in slow_handles {
        let _ = handle.join();
    }
    fast
}

#[test]
fn without_bulkhead_slow_dependency_exhausts_shared_pool() {
    // No bulkhead: the 8 hung slow calls occupy / queue on all 4
    // shared slots for the full 3 s hang, so fast calls block on the
    // pool.
    let (deployment, ctx) = deploy(ResiliencePolicy::new());
    let fast = drive(&deployment, &ctx);
    let summary = fast.summary().expect("non-empty");
    assert!(
        summary.p50 >= Duration::from_millis(500),
        "fast path should starve behind the exhausted call pool, p50 = {:?}",
        summary.p50
    );
}

#[test]
fn with_bulkhead_fast_traffic_keeps_flowing() {
    // 2-slot bulkhead on the slow edge: the slow dependency can never
    // hold shared capacity; overflow is rejected immediately.
    let (deployment, ctx) =
        deploy(ResiliencePolicy::new().bulkhead(BulkheadConfig { max_concurrent: 2 }));
    let fast = drive(&deployment, &ctx);
    let summary = fast.summary().expect("non-empty");
    assert_eq!(fast.successes(), fast.len(), "every fast request answered");
    assert!(
        summary.p90 < Duration::from_millis(500),
        "fast path must not starve, p90 = {:?}",
        summary.p90
    );

    // Gremlin's HasBulkHead reaches the same verdict from the logs.
    let check = ctx.checker().has_bulkhead(
        ctx.graph(),
        "frontend",
        "slowsvc",
        1.0,
        &Pattern::new("test-*"),
    );
    assert!(check.passed, "{check}");

    // Excess slow calls were rejected fast (429), not queued.
    let rejected = deployment
        .store()
        .query(&gremlin::store::Query::replies("user", "frontend"))
        .iter()
        .filter(|e| e.status() == Some(StatusCode::TOO_MANY_REQUESTS.as_u16()))
        .count();
    assert!(rejected > 0, "bulkhead must reject overflow slow calls");
}

#[test]
fn has_bulkhead_fails_for_starved_deployment() {
    let (deployment, ctx) = deploy(ResiliencePolicy::new());
    // Saturate with slow traffic only; the fast path never gets
    // called, so its rate is 0.
    ctx.inject(&Scenario::hang_for("slowsvc", Duration::from_secs(1)).with_pattern("test-*"))
        .unwrap();
    let entry = deployment.entry_addr("frontend").unwrap();
    LoadGenerator::new(entry)
        .path("/slow/q")
        .id_prefix("test-slow")
        .read_timeout(Some(Duration::from_secs(5)))
        .run_closed(2, 2);
    let check = ctx.checker().has_bulkhead(
        ctx.graph(),
        "frontend",
        "slowsvc",
        1.0,
        &Pattern::new("test-*"),
    );
    assert!(!check.passed, "{check}");
}

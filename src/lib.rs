//! # Gremlin: Systematic Resilience Testing of Microservices
//!
//! A from-scratch Rust reproduction of *Gremlin* (Heorhiadi,
//! Rajagopalan, Jamjoom, Sekar, Reiter — ICDCS 2016): a framework for
//! systematically testing the failure-handling capabilities of
//! microservice applications by manipulating inter-service messages
//! at the network layer.
//!
//! Gremlin's design is SDN-inspired. The operator writes a *recipe* —
//! a failure scenario plus assertions about how services should react.
//! The **control plane** ([`core`]) translates the scenario into
//! fault-injection rules over the logical application graph and
//! programs the **data plane** ([`proxy`]): sidecar agents that
//! intercept, log, and manipulate messages between services. After the
//! emulated outage, the **assertion checker** validates expectations
//! against the observation logs collected in the central [`store`].
//!
//! The workspace also contains everything the paper's evaluation
//! needs: an HTTP substrate ([`http`]), a microservice runtime with
//! resilience patterns ([`mesh`]), and load generation ([`loadgen`]).
//!
//! | Crate | Role (paper section) |
//! |---|---|
//! | [`core`] | Recipe translator, failure orchestrator, assertion checker (§4.2) |
//! | [`proxy`] | Gremlin agents: Abort/Delay/Modify + logging (§4.1, Table 2) |
//! | [`store`] | Central observation store (logstash + Elasticsearch stand-in) |
//! | [`mesh`] | Services, resilience patterns, deployments (§2.1, §7 case studies) |
//! | [`http`] | Minimal HTTP/1.1 codec, client and server |
//! | [`loadgen`] | Test traffic + latency CDFs (§6, §7.2) |
//! | [`telemetry`] | Metrics registry, latency histograms, `/metrics` exposition |
//!
//! # Quickstart
//!
//! The paper's §3.2 Example 1: overload `serviceB`, then assert that
//! `serviceA` bounds its retries.
//!
//! ```
//! use gremlin::core::{AppGraph, Scenario, TestContext};
//! use gremlin::mesh::behaviors::{Aggregator, StaticResponder};
//! use gremlin::mesh::resilience::{Backoff, RetryPolicy};
//! use gremlin::mesh::{Deployment, ResiliencePolicy, ServiceSpec};
//! use gremlin::loadgen::LoadGenerator;
//! use gremlin::store::Pattern;
//! use std::time::Duration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Deploy serviceA -> serviceB with bounded retries (5 attempts).
//! let deployment = Deployment::builder()
//!     .service(ServiceSpec::new("serviceB", StaticResponder::ok("data")))
//!     .service(
//!         ServiceSpec::new("serviceA", Aggregator::new(vec!["serviceB".into()], "/api"))
//!             .dependency(
//!                 "serviceB",
//!                 ResiliencePolicy::new()
//!                     .timeout(Duration::from_secs(1))
//!                     .retry(RetryPolicy::new(5).with_backoff(Backoff::none())),
//!             ),
//!     )
//!     .ingress("user", "serviceA")
//!     .build()?;
//!
//! // Bind the control plane to the deployment.
//! let graph = AppGraph::from_edges(vec![("user", "serviceA"), ("serviceA", "serviceB")]);
//! let ctx = TestContext::new(graph, deployment.controls(), deployment.store().clone());
//!
//! // Recipe line 1: Overload(ServiceB) — confined to test flows.
//! ctx.inject(&Scenario::overload("serviceB").with_pattern("test-*"))?;
//!
//! // Drive test traffic through the ingress agent.
//! LoadGenerator::new(deployment.entry_addr("serviceA").unwrap())
//!     .id_prefix("test")
//!     .run_sequential(30);
//!
//! // Recipe line 2: HasBoundedRetries(ServiceA, ServiceB, 5).
//! let check = ctx.checker().has_bounded_retries(
//!     "serviceA",
//!     "serviceB",
//!     5,
//!     &Pattern::new("test-*"),
//! );
//! assert!(check.passed, "{check}");
//! # Ok(())
//! # }
//! ```

pub use gremlin_core as core;
pub use gremlin_http as http;
pub use gremlin_loadgen as loadgen;
pub use gremlin_mesh as mesh;
pub use gremlin_proxy as proxy;
pub use gremlin_store as store;
pub use gremlin_telemetry as telemetry;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use gremlin_core::{
        AppGraph, AssertionChecker, Check, CombineStep, FailureOrchestrator, RecipeReport,
        RecipeRun, Scenario, TestContext, View,
    };
    pub use gremlin_loadgen::{Cdf, LatencySummary, LoadGenerator, LoadReport};
    pub use gremlin_mesh::{Deployment, ResiliencePolicy, ServiceSpec};
    pub use gremlin_proxy::{AbortKind, AgentControl, FaultAction, MessageSide, Rule};
    pub use gremlin_store::{Event, EventStore, Pattern, Query};
    pub use gremlin_telemetry::{
        HistogramSnapshot, LatencyHistogram, MetricsRegistry, TelemetrySnapshot,
    };
}

//! `gremlin` — the operator CLI for the Gremlin resilience-testing
//! framework.
//!
//! The paper's operators drive Gremlin from Python scripts; this
//! binary provides the equivalent command-line workflow against
//! running agents and exported observation logs:
//!
//! ```text
//! gremlin graph app.json [--dot]          inspect an application graph
//! gremlin translate app.json outage.json  scenario -> fault-injection rules
//! gremlin install app.json outage.json --agents 10.0.0.1:7070,10.0.0.2:7070
//! gremlin campaign app.json campaign.json --agents ...   run recipes in parallel waves
//! gremlin campaign app.json campaign.json --operators h1:7080,h2:7080   shard waves across operator hosts
//! gremlin operator serve app.json --agents ...   serve this host's fleet slice to a coordinator
//! gremlin rules <agent-addr>              list an agent's installed rules
//! gremlin clear --agents a,b,c            flush rules everywhere
//! gremlin health <agent-addr>             agent status
//! gremlin check events.ndjson --assert timeouts --service web --max-latency 1s
//! gremlin trace events.ndjson test-42     span tree + waterfall for one flow
//! gremlin trace events.ndjson test-42 --json   OTLP-style JSON export
//! gremlin tail <collector-addr>           live event stream from a collector
//! gremlin watch <collector-addr>          live per-edge health + check dashboard
//! gremlin replay <run-dir>                re-render a recorded run's timeline
//! gremlin replay --root <flight-root>     list every recorded run, one line each
//! gremlin coverage <flight-root>          cross-run coverage scorecard + regressions
//! gremlin metrics <addr,...>              scrape and summarize /metrics
//! ```
//!
//! Graph files are either the serialized [`AppGraph`] or the simpler
//! `{"edges": [["caller","callee"], ...]}`; scenario files are
//! serialized [`Scenario`] values (see `gremlin translate --help`).

use std::error::Error;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;

use gremlin::core::{
    parse_duration, AppGraph, AssertionChecker, CampaignDispatcher, CampaignReport, CampaignRunner,
    CampaignSpec, FailureOrchestrator, FlowTrace, HttpOperator, OperatorServer, OperatorTransport,
    Scenario, TestContext,
};
use gremlin::proxy::{AgentControl, ControlClient};
use gremlin::store::{EventStore, Pattern};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            if !output.is_empty() {
                println!("{output}");
            }
        }
        Err(err) => {
            eprintln!("error: {err}");
            eprintln!();
            eprintln!("{}", usage());
            std::process::exit(1);
        }
    }
}

fn usage() -> &'static str {
    "usage:\n  \
     gremlin graph <graph.json> [--dot]\n  \
     gremlin translate <graph.json> <scenario.json>\n  \
     gremlin install <graph.json> <scenario.json> --agents <addr,...>\n  \
     gremlin campaign <graph.json> <campaign.json> --agents <addr,...> [--max-in-flight <n>] [--serial] [--flight-root <dir>] [--seed <dir>] [--steer-order]\n  \
     gremlin campaign <graph.json> <campaign.json> --operators <addr,...> [--retries <n>] [--backoff <dur>] [campaign options]\n  \
     gremlin operator serve <graph.json> --agents <addr,...> [--listen <addr>] [--name <name>] [--flight-root <dir>]\n  \
     gremlin rules <agent-addr>\n  \
     gremlin clear --agents <addr,...>\n  \
     gremlin health <agent-addr>\n  \
     gremlin check <events.ndjson> --assert <timeouts|bounded-retries|circuit-breaker|request-count> [options]\n  \
     gremlin trace <events.ndjson> <request-id> [--json]\n  \
     gremlin tail <collector-addr> [--from <cursor>] [--limit <n>]\n  \
     gremlin watch <collector-addr> [--json] [--interval <dur>] [--count <n>] [--retries <n>]\n  \
     gremlin top <collector-addr> [--interval <dur>] [--count <n>] [--retries <n>]\n  \
     gremlin replay <run-dir> [--json]       re-render a flight-recorder directory\n  \
     gremlin replay --root <flight-root>     one line per recorded run: recipe, verdict, anomalies\n  \
     gremlin coverage <flight-root> [--graph <graph.json>] [--markdown] [--json] [--drift-z <z>]\n  \
     gremlin generate <graph.json> [--exclude svc]... [--pattern test-*]\n  \
     gremlin metrics <addr,...> [--raw]      scrape /metrics from agents or collectors"
}

fn run(args: &[String]) -> Result<String, Box<dyn Error>> {
    let command = args.first().map(String::as_str).unwrap_or("");
    match command {
        "graph" => cmd_graph(&args[1..]),
        "translate" => cmd_translate(&args[1..]),
        "install" => cmd_install(&args[1..]),
        "campaign" => cmd_campaign(&args[1..]),
        "operator" => cmd_operator(&args[1..]),
        "rules" => cmd_rules(&args[1..]),
        "clear" => cmd_clear(&args[1..]),
        "health" => cmd_health(&args[1..]),
        "check" => cmd_check(&args[1..]),
        "trace" => cmd_trace(&args[1..]),
        "tail" => cmd_tail(&args[1..]),
        "watch" => cmd_watch(&args[1..]),
        "top" => cmd_top(&args[1..]),
        "replay" => cmd_replay(&args[1..]),
        "coverage" => cmd_coverage(&args[1..]),
        "generate" => cmd_generate(&args[1..]),
        "metrics" => cmd_metrics(&args[1..]),
        "" | "help" | "--help" | "-h" => Ok(usage().to_string()),
        other => Err(format!("unknown command {other:?}").into()),
    }
}

// ---------------------------------------------------------------------------
// argument helpers
// ---------------------------------------------------------------------------

/// Returns the value following `--name` in `args`, if present.
fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn positional(args: &[String], index: usize) -> Result<&str, Box<dyn Error>> {
    // Positional = arguments before any --flag.
    let positionals: Vec<&String> = args.iter().take_while(|a| !a.starts_with("--")).collect();
    positionals
        .get(index)
        .map(|s| s.as_str())
        .ok_or_else(|| format!("missing argument #{}", index + 1).into())
}

/// Loads a graph file: either a serialized [`AppGraph`] or the
/// simpler `{"edges": [["a","b"], ...]}`.
fn load_graph(path: &str) -> Result<AppGraph, Box<dyn Error>> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read graph file {path:?}: {e}"))?;
    if let Ok(graph) = serde_json::from_str::<AppGraph>(&text) {
        return Ok(graph);
    }
    #[derive(serde::Deserialize)]
    struct SimpleGraph {
        edges: Vec<(String, String)>,
        #[serde(default)]
        services: Vec<String>,
    }
    let simple: SimpleGraph = serde_json::from_str(&text)
        .map_err(|e| format!("cannot parse graph file {path:?}: {e}"))?;
    let mut graph = AppGraph::from_edges(simple.edges);
    for service in simple.services {
        graph.add_service(service);
    }
    Ok(graph)
}

fn load_scenario(path: &str) -> Result<Scenario, Box<dyn Error>> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read scenario file {path:?}: {e}"))?;
    Ok(serde_json::from_str(&text)
        .map_err(|e| format!("cannot parse scenario file {path:?}: {e}"))?)
}

fn load_events(path: &str) -> Result<Arc<EventStore>, Box<dyn Error>> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read events file {path:?}: {e}"))?;
    let store = EventStore::shared();
    store
        .import_json(&text)
        .map_err(|e| format!("cannot parse events file {path:?}: {e}"))?;
    Ok(store)
}

fn connect_agents(spec: &str) -> Result<Vec<Arc<dyn AgentControl>>, Box<dyn Error>> {
    let mut agents: Vec<Arc<dyn AgentControl>> = Vec::new();
    for part in spec.split(',').filter(|s| !s.is_empty()) {
        let addr: SocketAddr = part
            .parse()
            .map_err(|e| format!("bad agent address {part:?}: {e}"))?;
        let client = ControlClient::connect(addr)
            .map_err(|e| format!("cannot connect to agent {addr}: {e}"))?;
        agents.push(Arc::new(client));
    }
    if agents.is_empty() {
        return Err("no agent addresses given".into());
    }
    Ok(agents)
}

// ---------------------------------------------------------------------------
// commands
// ---------------------------------------------------------------------------

fn cmd_graph(args: &[String]) -> Result<String, Box<dyn Error>> {
    let graph = load_graph(positional(args, 0)?)?;
    if has_flag(args, "--dot") {
        return Ok(graph.to_dot());
    }
    let mut out = format!("{graph}\n");
    for service in graph.services() {
        let deps = graph.dependencies(&service);
        if deps.is_empty() {
            out.push_str(&format!("  {service}\n"));
        } else {
            out.push_str(&format!("  {service} -> {}\n", deps.join(", ")));
        }
    }
    Ok(out.trim_end().to_string())
}

fn cmd_translate(args: &[String]) -> Result<String, Box<dyn Error>> {
    let graph = load_graph(positional(args, 0)?)?;
    let scenario = load_scenario(positional(args, 1)?)?;
    let rules = scenario.to_rules(&graph)?;
    let mut out = format!("# {scenario}\n");
    out.push_str(&serde_json::to_string_pretty(&rules)?);
    Ok(out)
}

fn cmd_install(args: &[String]) -> Result<String, Box<dyn Error>> {
    let graph = load_graph(positional(args, 0)?)?;
    let scenario = load_scenario(positional(args, 1)?)?;
    let agents =
        connect_agents(flag_value(args, "--agents").ok_or("missing --agents <addr,...>")?)?;
    let orchestrator = FailureOrchestrator::new(agents);
    let stats = orchestrator.inject(&scenario, &graph)?;
    Ok(format!(
        "staged: {scenario}\ninstalled {} rule(s) across {} agent(s) in {:?}",
        stats.installations,
        orchestrator.agent_count(),
        stats.duration
    ))
}

/// `gremlin campaign` — run a whole set of recipes against the fleet,
/// scheduling footprint-disjoint recipes concurrently (see
/// `gremlin_core::campaign`). `--serial` forces one recipe at a time;
/// `--seed <dir>` loads a prior run's `baselines.json` so anomaly
/// monitors skip their warmup; `--flight-root <dir>` records per-run
/// artifacts and the merged baselines for the next campaign.
///
/// With `--operators <addr,...>` the campaign is instead sharded
/// across `gremlin operator serve` hosts (see
/// `gremlin_core::dispatch`): each wave splits into per-operator
/// slices, a dead operator's recipes re-shard to the survivors, and
/// the merged report is identical in shape to a single-host run.
fn cmd_campaign(args: &[String]) -> Result<String, Box<dyn Error>> {
    let graph = load_graph(positional(args, 0)?)?;
    let spec_path = positional(args, 1)?;
    let text = std::fs::read_to_string(spec_path)
        .map_err(|e| format!("cannot read campaign file {spec_path:?}: {e}"))?;
    let spec: CampaignSpec = serde_json::from_str(&text)
        .map_err(|e| format!("cannot parse campaign file {spec_path:?}: {e}"))?;
    if spec.recipes.is_empty() {
        return Err(format!("campaign file {spec_path:?} has no recipes").into());
    }
    let max_in_flight = if has_flag(args, "--serial") {
        Some(1)
    } else if let Some(value) = flag_value(args, "--max-in-flight") {
        Some(value.parse::<usize>()?)
    } else {
        spec.max_in_flight
    };
    let seed_baselines = match flag_value(args, "--seed") {
        Some(dir) => {
            let baselines = gremlin::core::load_baselines(dir)
                .map_err(|e| format!("cannot load baselines from {dir:?}: {e}"))?;
            if baselines.is_empty() {
                return Err(format!("no baselines.json under {dir:?} to seed from").into());
            }
            Some(baselines)
        }
        None => None,
    };

    let report: CampaignReport = if let Some(operator_spec) = flag_value(args, "--operators") {
        let mut operators: Vec<Arc<dyn OperatorTransport>> = Vec::new();
        for part in operator_spec.split(',').filter(|s| !s.is_empty()) {
            let addr: SocketAddr = part
                .parse()
                .map_err(|e| format!("bad operator address {part:?}: {e}"))?;
            operators.push(Arc::new(HttpOperator::connect(addr)?));
        }
        if operators.is_empty() {
            return Err("no operator addresses given".into());
        }
        let mut dispatcher = CampaignDispatcher::new(graph, operators);
        if let Some(max_in_flight) = max_in_flight {
            dispatcher = dispatcher.max_in_flight(max_in_flight);
        }
        if let Some(root) = flag_value(args, "--flight-root") {
            dispatcher = dispatcher.flight_root(root);
        }
        if let Some(baselines) = seed_baselines {
            dispatcher = dispatcher.seed(baselines);
        }
        if has_flag(args, "--steer-order") {
            dispatcher = dispatcher.steer_order(true);
        }
        if let Some(retries) = flag_value(args, "--retries") {
            dispatcher = dispatcher.retries(retries.parse::<usize>()?);
        }
        if let Some(backoff) = flag_value(args, "--backoff") {
            dispatcher = dispatcher.backoff(parse_duration(backoff)?);
        }
        dispatcher.run(spec.recipes)?
    } else {
        let agents =
            connect_agents(flag_value(args, "--agents").ok_or("missing --agents <addr,...>")?)?;
        let ctx = TestContext::new(graph, agents, EventStore::shared());
        let mut runner = CampaignRunner::new(&ctx);
        if let Some(max_in_flight) = max_in_flight {
            runner = runner.max_in_flight(max_in_flight);
        }
        if let Some(root) = flag_value(args, "--flight-root") {
            runner = runner.flight_root(root);
        }
        if let Some(baselines) = seed_baselines {
            runner = runner.seed(baselines);
        }
        if has_flag(args, "--steer-order") {
            runner = runner.steer_order(true);
        }
        runner.run(spec.recipes)?
    };
    let output = report.to_string().trim_end().to_string();
    if report.passed() {
        Ok(output)
    } else {
        // Visible in scripts: failing campaigns exit non-zero.
        eprintln!("{output}");
        std::process::exit(2);
    }
}

/// `gremlin operator` — distributed-campaign worker commands.
fn cmd_operator(args: &[String]) -> Result<String, Box<dyn Error>> {
    match args.first().map(String::as_str) {
        Some("serve") => cmd_operator_serve(&args[1..]),
        _ => Err(
            "usage: gremlin operator serve <graph.json> --agents <addr,...> \
                  [--listen <addr>] [--name <name>] [--flight-root <dir>]"
                .into(),
        ),
    }
}

/// `gremlin operator serve` — turn this host into a wave worker: front
/// its slice of the agent fleet behind an operator control endpoint
/// and execute waves POSTed by a `gremlin campaign --operators`
/// coordinator, until killed.
fn cmd_operator_serve(args: &[String]) -> Result<String, Box<dyn Error>> {
    let graph = load_graph(positional(args, 0)?)?;
    let agents =
        connect_agents(flag_value(args, "--agents").ok_or("missing --agents <addr,...>")?)?;
    let ctx = TestContext::new(graph, agents, EventStore::shared());
    let listen = flag_value(args, "--listen").unwrap_or("0.0.0.0:7080");
    let name = match flag_value(args, "--name") {
        Some(name) => name.to_string(),
        None => {
            std::env::var("HOSTNAME").unwrap_or_else(|_| format!("operator-{}", std::process::id()))
        }
    };
    let flight_root = flag_value(args, "--flight-root").map(PathBuf::from);
    let server = OperatorServer::start(name, ctx, listen, flight_root)?;
    let status = server.status();
    println!(
        "operator {} serving on {} ({} agent(s)); ctrl-c to stop",
        status.name,
        server.local_addr(),
        status.agents
    );
    loop {
        // Waves are served by the endpoint's own threads; the main
        // thread just keeps the process alive.
        std::thread::park();
    }
}

fn cmd_rules(args: &[String]) -> Result<String, Box<dyn Error>> {
    let addr: SocketAddr = positional(args, 0)?.parse()?;
    let client = ControlClient::connect(addr)?;
    let rules = client.list_rules()?;
    if rules.is_empty() {
        return Ok(format!(
            "agent {addr} ({}): no rules",
            client.service_name()
        ));
    }
    let mut out = format!(
        "agent {addr} ({}): {} rule(s)\n",
        client.service_name(),
        rules.len()
    );
    for rule in rules {
        out.push_str(&format!("  {rule}\n"));
    }
    Ok(out.trim_end().to_string())
}

fn cmd_clear(args: &[String]) -> Result<String, Box<dyn Error>> {
    let agents =
        connect_agents(flag_value(args, "--agents").ok_or("missing --agents <addr,...>")?)?;
    let count = agents.len();
    let orchestrator = FailureOrchestrator::new(agents);
    orchestrator.clear()?;
    Ok(format!("cleared rules on {count} agent(s)"))
}

fn cmd_health(args: &[String]) -> Result<String, Box<dyn Error>> {
    let addr: SocketAddr = positional(args, 0)?.parse()?;
    let client = ControlClient::connect(addr)?;
    let health = client.health()?;
    Ok(format!(
        "agent {addr}: service={} name={} rules={}",
        health.service, health.name, health.rules
    ))
}

fn cmd_check(args: &[String]) -> Result<String, Box<dyn Error>> {
    let store = load_events(positional(args, 0)?)?;
    let checker = AssertionChecker::new(store);
    let pattern = Pattern::new(flag_value(args, "--pattern").unwrap_or("*"));
    let kind = flag_value(args, "--assert").ok_or("missing --assert <check>")?;
    let check = match kind {
        "timeouts" => {
            let service = flag_value(args, "--service").ok_or("missing --service")?;
            let max_latency = parse_duration(flag_value(args, "--max-latency").unwrap_or("1s"))?;
            checker.has_timeouts(service, max_latency, &pattern)
        }
        "bounded-retries" => {
            let src = flag_value(args, "--src").ok_or("missing --src")?;
            let dst = flag_value(args, "--dst").ok_or("missing --dst")?;
            let max_tries: usize = flag_value(args, "--max-tries").unwrap_or("5").parse()?;
            checker.has_bounded_retries(src, dst, max_tries, &pattern)
        }
        "circuit-breaker" => {
            let src = flag_value(args, "--src").ok_or("missing --src")?;
            let dst = flag_value(args, "--dst").ok_or("missing --dst")?;
            let threshold: usize = flag_value(args, "--threshold").unwrap_or("5").parse()?;
            let window = parse_duration(flag_value(args, "--window").unwrap_or("1min"))?;
            checker.has_circuit_breaker(src, dst, threshold, window, 1, &pattern)
        }
        "request-count" => {
            let src = flag_value(args, "--src").ok_or("missing --src")?;
            let dst = flag_value(args, "--dst").ok_or("missing --dst")?;
            let requests = checker.get_requests(src, dst, &pattern);
            return Ok(format!(
                "{} request(s) observed on {src} -> {dst} (pattern {pattern})",
                requests.len()
            ));
        }
        other => return Err(format!("unknown assertion {other:?}").into()),
    };
    let output = check.to_string();
    if check.passed {
        Ok(output)
    } else {
        // Visible in scripts: failing checks exit non-zero.
        eprintln!("{output}");
        std::process::exit(2);
    }
}

fn cmd_generate(args: &[String]) -> Result<String, Box<dyn Error>> {
    use gremlin::core::autogen::RecipeGenerator;
    let graph = load_graph(positional(args, 0)?)?;
    let mut generator = RecipeGenerator::new();
    // Collect every --exclude occurrence.
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        if arg == "--exclude" {
            if let Some(service) = iter.next() {
                generator = generator.exclude(service.clone());
            }
        }
    }
    if let Some(pattern) = flag_value(args, "--pattern") {
        generator = generator.pattern(pattern);
    }
    let tests = generator.generate(&graph);
    Ok(serde_json::to_string_pretty(&tests)?)
}

fn cmd_metrics(args: &[String]) -> Result<String, Box<dyn Error>> {
    use gremlin::http::{HttpClient, Request};

    // Targets come either as positional comma-separated addresses or
    // via --targets (mirrors `install --agents`).
    let spec = match flag_value(args, "--targets") {
        Some(value) => value.to_string(),
        None => args
            .iter()
            .take_while(|a| !a.starts_with("--"))
            .map(String::as_str)
            .collect::<Vec<_>>()
            .join(","),
    };
    let mut targets: Vec<SocketAddr> = Vec::new();
    for part in spec.split(',').filter(|s| !s.is_empty()) {
        targets.push(
            part.parse()
                .map_err(|e| format!("bad target address {part:?}: {e}"))?,
        );
    }
    if targets.is_empty() {
        return Err("no targets given (addresses or --targets <addr,...>)".into());
    }

    let raw = has_flag(args, "--raw");
    let client = HttpClient::new();
    let mut out = String::new();
    for addr in &targets {
        let response = client
            .send(*addr, Request::get("/metrics"))
            .map_err(|e| format!("cannot scrape {addr}: {e}"))?;
        if !response.status().is_success() {
            return Err(format!(
                "scrape of {addr} failed: HTTP {}",
                response.status().as_u16()
            )
            .into());
        }
        let text = response.body_str();
        if targets.len() > 1 {
            out.push_str(&format!("## {addr}\n"));
        }
        if raw {
            out.push_str(text.trim_end());
        } else {
            out.push_str(&summarize_exposition(&text));
        }
        out.push('\n');
    }
    Ok(out.trim_end().to_string())
}

/// Re-renders parsed labels as `{k=v,...}` for operator output.
fn display_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let pairs: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!("{{{}}}", pairs.join(","))
}

fn format_seconds(seconds: f64) -> String {
    if !seconds.is_finite() || seconds < 0.0 {
        return "?".to_string();
    }
    format!("{:?}", std::time::Duration::from_secs_f64(seconds))
}

/// Estimates the `p`-quantile from a cumulative `(le_seconds, count)`
/// ladder: the upper bound of the first bucket containing the rank.
fn ladder_quantile(buckets: &[(f64, f64)], count: f64, p: f64) -> String {
    if count <= 0.0 {
        return "-".to_string();
    }
    let rank = (p * count).ceil().max(1.0);
    for (le, cumulative) in buckets {
        if *cumulative >= rank {
            if le.is_finite() {
                return format!("<={}", format_seconds(*le));
            }
            // Rank only reached in the +Inf bucket: above the ladder.
            let top = buckets
                .iter()
                .rev()
                .find(|(l, _)| l.is_finite())
                .map(|(l, _)| *l)
                .unwrap_or(0.0);
            return format!(">{}", format_seconds(top));
        }
    }
    "-".to_string()
}

/// Condenses Prometheus exposition text into one line per series:
/// counters and gauges verbatim, histogram families folded into
/// `count= sum= p50 p90 p99` summaries estimated from the `le` ladder.
fn summarize_exposition(text: &str) -> String {
    use std::collections::{BTreeMap, BTreeSet};

    let samples = gremlin::telemetry::parse_prometheus(text);

    // Histogram families are recognised by their `_bucket{le=...}` series.
    let mut histogram_bases: BTreeSet<String> = BTreeSet::new();
    for sample in &samples {
        if let Some(base) = sample.name.strip_suffix("_bucket") {
            if sample.label("le").is_some() {
                histogram_bases.insert(base.to_string());
            }
        }
    }

    #[derive(Default)]
    struct Family {
        buckets: Vec<(f64, f64)>,
        sum: f64,
        count: f64,
    }
    let mut families: BTreeMap<(String, String), Family> = BTreeMap::new();
    let mut lines: Vec<String> = Vec::new();
    for sample in &samples {
        let (base, part) = if let Some(b) = sample.name.strip_suffix("_bucket") {
            (b, "bucket")
        } else if let Some(b) = sample.name.strip_suffix("_sum") {
            (b, "sum")
        } else if let Some(b) = sample.name.strip_suffix("_count") {
            (b, "count")
        } else {
            ("", "")
        };
        if !base.is_empty() && histogram_bases.contains(base) {
            let labels: Vec<(String, String)> = sample
                .labels
                .iter()
                .filter(|(k, _)| k != "le")
                .cloned()
                .collect();
            let family = families
                .entry((base.to_string(), display_labels(&labels)))
                .or_default();
            match part {
                "bucket" => {
                    let le = match sample.label("le") {
                        Some("+Inf") | None => f64::INFINITY,
                        Some(v) => v.parse().unwrap_or(f64::INFINITY),
                    };
                    family.buckets.push((le, sample.value));
                }
                "sum" => family.sum = sample.value,
                _ => family.count = sample.value,
            }
            continue;
        }
        lines.push(format!(
            "{}{} {}",
            sample.name,
            display_labels(&sample.labels),
            sample.value
        ));
    }
    for ((base, labels), family) in &mut families {
        family
            .buckets
            .sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        lines.push(format!(
            "{base}{labels} count={} sum={} p50{} p90{} p99{}",
            family.count as u64,
            format_seconds(family.sum),
            ladder_quantile(&family.buckets, family.count, 0.50),
            ladder_quantile(&family.buckets, family.count, 0.90),
            ladder_quantile(&family.buckets, family.count, 0.99),
        ));
    }
    lines.sort();
    lines.join("\n")
}

fn cmd_trace(args: &[String]) -> Result<String, Box<dyn Error>> {
    use gremlin::core::SpanTree;
    use gremlin::store::{export_otlp, spans_from_store};

    let store = load_events(positional(args, 0)?)?;
    let request_id = positional(args, 1)?;

    if has_flag(args, "--json") {
        let spans = spans_from_store(&store, request_id);
        if spans.is_empty() {
            return Err(format!("no observations for request id {request_id:?}").into());
        }
        return Ok(serde_json::to_string_pretty(&export_otlp(&spans))?);
    }

    let trace = FlowTrace::from_store(&store, request_id);
    if trace.hops.is_empty() {
        return Err(format!("no observations for request id {request_id:?}").into());
    }
    let mut out = trace.to_string().trim_end().to_string();
    let tree = SpanTree::from_store(&store, request_id);
    if !tree.is_empty() {
        out.push_str("\n\n");
        out.push_str(tree.waterfall().trim_end());
        out.push_str(&format!("\n{}", tree.summary()));
    }
    Ok(out)
}

fn cmd_tail(args: &[String]) -> Result<String, Box<dyn Error>> {
    use gremlin::http::codec::{read_response_head, write_request, ChunkReader};
    use gremlin::http::{Method, Request};
    use std::io::BufReader;
    use std::net::TcpStream;

    let addr: SocketAddr = positional(args, 0)?.parse()?;
    let limit: Option<usize> = match flag_value(args, "--limit") {
        Some(value) => Some(value.parse()?),
        None => None,
    };
    let path = match flag_value(args, "--from") {
        Some(cursor) => format!("/tail?from={cursor}"),
        None => "/tail".to_string(),
    };

    let mut stream = TcpStream::connect(addr)?;
    write_request(&mut stream, &Request::builder(Method::Get, path).build())?;
    let mut reader = BufReader::new(stream);
    let head = read_response_head(&mut reader)?;
    if !head.status().is_success() {
        return Err(format!("tail of {addr} failed: HTTP {}", head.status().as_u16()).into());
    }
    let mut chunks = ChunkReader::new(reader);
    let mut seen = 0usize;
    while let Some(chunk) = chunks.next_chunk()? {
        let text = String::from_utf8_lossy(&chunk);
        // Blank lines are keep-alive heartbeats, not events.
        for line in text.lines().filter(|line| !line.trim().is_empty()) {
            println!("{line}");
            seen += 1;
            if limit.is_some_and(|n| seen >= n) {
                return Ok(format!("tailed {seen} event(s)"));
            }
        }
    }
    Ok(format!("stream ended after {seen} event(s)"))
}

/// How often a live dashboard retries an unreachable collector before
/// giving up (bounded exponential backoff, 250ms doubling to 4s).
const DASHBOARD_RETRIES: u32 = 6;

/// One `GET path` against `addr`, no retries.
fn fetch_body(
    client: &gremlin::http::HttpClient,
    addr: SocketAddr,
    path: &str,
) -> Result<String, Box<dyn Error>> {
    use gremlin::http::Request;
    let response = client
        .send(addr, Request::get(path))
        .map_err(|e| format!("cannot reach collector {addr}: {e}"))?;
    if !response.status().is_success() {
        return Err(format!(
            "GET {path} on {addr} failed: HTTP {}",
            response.status().as_u16()
        )
        .into());
    }
    Ok(response.body_str().to_string())
}

/// `fetch_body` with reconnect semantics for live dashboards: on
/// failure, retries with bounded exponential backoff (250ms doubling
/// up to 4s) instead of tearing the dashboard down. A collector
/// restart mid-campaign costs a few blank frames, not the session.
/// Gives up (with the last error) after `retries` failed attempts.
fn fetch_reconnecting(
    client: &gremlin::http::HttpClient,
    addr: SocketAddr,
    path: &str,
    retries: u32,
) -> Result<String, Box<dyn Error>> {
    use std::time::Duration;
    let mut delay = Duration::from_millis(250);
    let mut attempt = 0u32;
    loop {
        match fetch_body(client, addr, path) {
            Ok(body) => return Ok(body),
            Err(err) => {
                attempt += 1;
                if attempt > retries {
                    return Err(err);
                }
                eprintln!("collector {addr} unreachable ({err}); retrying in {delay:?}");
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_secs(4));
            }
        }
    }
}

fn cmd_watch(args: &[String]) -> Result<String, Box<dyn Error>> {
    use gremlin::http::HttpClient;
    use std::io::Write;

    let addr: SocketAddr = positional(args, 0)?.parse()?;
    let client = HttpClient::new();
    let retries: u32 = match flag_value(args, "--retries") {
        Some(value) => value.parse()?,
        None => DASHBOARD_RETRIES,
    };

    if has_flag(args, "--json") {
        let value: serde_json::Value =
            serde_json::from_str(&fetch_body(&client, addr, "/health")?)?;
        return Ok(serde_json::to_string_pretty(&value)?);
    }

    let interval = parse_duration(flag_value(args, "--interval").unwrap_or("1s"))?;
    let count: Option<u64> = match flag_value(args, "--count") {
        Some(value) => Some(value.parse()?),
        None => None,
    };
    let mut frames = 0u64;
    loop {
        let health = fetch_reconnecting(&client, addr, "/health", retries)?;
        let stats = fetch_body(&client, addr, "/stats").ok();
        let frame = render_watch_frame(&addr.to_string(), &health, stats.as_deref())?;
        // Clear screen + cursor home, then redraw in place.
        print!("\x1b[2J\x1b[H{frame}");
        std::io::stdout().flush()?;
        frames += 1;
        if count.is_some_and(|n| frames >= n) {
            return Ok(format!("watched {frames} frame(s)"));
        }
        std::thread::sleep(interval);
    }
}

/// `gremlin replay <run-dir>` — re-renders the verdict/anomaly
/// timeline a flight-recorded recipe run persisted (see
/// `RecipeRun::start_flight_recorder`). `--json` emits a
/// machine-readable summary instead.
/// `gremlin top <collector>` — a live fleet view built from the
/// collector's `/federate` endpoint: one row per scraped target with
/// up/stale state, request and error rates, p99 upstream latency and
/// a request-rate sparkline, plus the current campaign phase from the
/// `/series` annotation index. Uses the same reconnect/backoff
/// behaviour as `gremlin watch`.
fn cmd_top(args: &[String]) -> Result<String, Box<dyn Error>> {
    use gremlin::http::HttpClient;
    use gremlin::store::now_micros;
    use gremlin::telemetry::TimeSeriesStore;
    use std::io::Write;

    let addr: SocketAddr = positional(args, 0)?.parse()?;
    let interval = parse_duration(flag_value(args, "--interval").unwrap_or("1s"))?;
    let count: Option<u64> = match flag_value(args, "--count") {
        Some(value) => Some(value.parse()?),
        None => None,
    };
    let retries: u32 = match flag_value(args, "--retries") {
        Some(value) => value.parse()?,
        None => DASHBOARD_RETRIES,
    };
    let client = HttpClient::new();
    let store = TimeSeriesStore::new();
    let mut frames = 0u64;
    loop {
        let body = fetch_reconnecting(&client, addr, "/federate", retries)?;
        let at_us = now_micros();
        ingest_federated(&store, at_us, &body);
        // Phase annotations live in the range-query index; a collector
        // without one (or mid-restart) just leaves the phase line out.
        let index: Option<serde_json::Value> = fetch_body(&client, addr, "/series")
            .ok()
            .and_then(|text| serde_json::from_str(&text).ok());
        let frame = render_top_frame(&addr.to_string(), &store, index.as_ref(), at_us);
        print!("\x1b[2J\x1b[H{frame}");
        std::io::stdout().flush()?;
        frames += 1;
        if count.is_some_and(|n| frames >= n) {
            return Ok(format!("monitored {frames} frame(s)"));
        }
        std::thread::sleep(interval);
    }
}

/// Feeds one `/federate` exposition into a client-side store, using
/// each sample's `instance` label as the series target (and dropping
/// it, so per-target series match what the agents themselves export).
/// Returns the number of points appended.
fn ingest_federated(store: &gremlin::telemetry::TimeSeriesStore, at_us: u64, text: &str) -> usize {
    use std::collections::BTreeMap;

    let mut groups: BTreeMap<String, Vec<gremlin::telemetry::PromSample>> = BTreeMap::new();
    for mut sample in gremlin::telemetry::parse_prometheus(text) {
        let target = match sample.labels.iter().position(|(k, _)| k == "instance") {
            Some(i) => sample.labels.remove(i).1,
            None => "fleet".to_string(),
        };
        groups.entry(target).or_default().push(sample);
    }
    groups
        .iter()
        .map(|(target, samples)| store.ingest_prom(target, at_us, samples))
        .sum()
}

/// Per-second rate of counter `name` on `target`, summed across label
/// sets and aligned by timestamp, ascending.
fn summed_rate(
    store: &gremlin::telemetry::TimeSeriesStore,
    name: &str,
    target: &str,
    from: u64,
    to: u64,
) -> Vec<(u64, f64)> {
    use std::collections::BTreeMap;

    let mut by_ts: BTreeMap<u64, f64> = BTreeMap::new();
    for (_, points) in store.query_rate(name, Some(target), from, to) {
        for point in points {
            *by_ts.entry(point.at_us).or_insert(0.0) += point.value;
        }
    }
    by_ts.into_iter().collect()
}

/// Renders values as a unicode sparkline of the last `width` points,
/// scaled to the window maximum.
fn sparkline(values: &[f64], width: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let skip = values.len().saturating_sub(width);
    let tail = &values[skip..];
    let max = tail.iter().copied().fold(0.0f64, f64::max);
    tail.iter()
        .map(|&v| {
            if max <= 0.0 {
                BARS[0]
            } else {
                BARS[(((v / max) * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

/// Renders one `gremlin top` frame from the locally accumulated
/// series, with the current phase pulled from the `/series` index.
fn render_top_frame(
    addr: &str,
    store: &gremlin::telemetry::TimeSeriesStore,
    index: Option<&serde_json::Value>,
    now_us: u64,
) -> String {
    let targets = store.targets();
    let mut out = format!(
        "gremlin top — collector {addr}: {} target(s), {} series\n",
        targets.len(),
        store.series_count()
    );
    if let Some(annotation) = index
        .and_then(|v| v.get("annotations"))
        .and_then(|a| a.as_array())
        .and_then(|a| a.last())
    {
        let phase = annotation
            .get("phase")
            .and_then(|p| p.as_str())
            .unwrap_or("?");
        let detail = annotation
            .get("detail")
            .and_then(|d| d.as_str())
            .unwrap_or("");
        out.push_str(&format!("phase: {phase} ({detail})\n"));
    }
    out.push_str(&format!(
        "{:<16} {:<6} {:>8} {:>8} {:>9}  trend\n",
        "TARGET", "UP", "REQ/S", "ERR/S", "P99"
    ));
    let from = now_us.saturating_sub(60_000_000);
    let fmt_rate = |rate: Option<f64>| match rate {
        Some(v) => format!("{v:.1}"),
        None => "-".to_string(),
    };
    for (target, _) in &targets {
        let stale = store
            .latest("gremlin_scrape_stale", target)
            .is_some_and(|p| p.value >= 1.0);
        // Color codes wrap the already-padded cell so the escape
        // bytes don't throw the column widths off.
        let up_cell = match store.latest("up", target) {
            _ if stale => format!("\x1b[33m{:<6}\x1b[0m", "stale"),
            Some(p) if p.value >= 1.0 => format!("\x1b[32m{:<6}\x1b[0m", "up"),
            Some(_) => format!("\x1b[31m{:<6}\x1b[0m", "DOWN"),
            None => format!("{:<6}", "-"),
        };
        let req = summed_rate(store, "gremlin_proxy_requests_total", target, from, now_us);
        let err = summed_rate(
            store,
            "gremlin_proxy_upstream_errors_total",
            target,
            from,
            now_us,
        );
        let p99 = store.histogram_quantile(
            "gremlin_proxy_upstream_latency_seconds",
            Some(target),
            from,
            now_us,
            0.99,
        );
        let trend: Vec<f64> = req.iter().map(|(_, v)| *v).collect();
        out.push_str(&format!(
            "{target:<16} {up_cell} {:>8} {:>8} {:>9}  {}\n",
            fmt_rate(req.last().map(|(_, v)| *v)),
            fmt_rate(err.last().map(|(_, v)| *v)),
            p99.map(format_seconds).unwrap_or_else(|| "-".to_string()),
            sparkline(&trend, 12),
        ));
    }
    out
}

fn cmd_replay(args: &[String]) -> Result<String, Box<dyn Error>> {
    use gremlin::core::FlightLog;

    if let Some(root) = flag_value(args, "--root") {
        return replay_root(root);
    }
    let dir = positional(args, 0)?;
    let log =
        FlightLog::load(dir).map_err(|e| format!("cannot load flight recording {dir:?}: {e}"))?;
    if has_flag(args, "--json") {
        return Ok(serde_json::to_string_pretty(&serde_json::json!({
            "schema_version": log.meta.schema_version,
            "recipe": log.meta.recipe,
            "started_at_us": log.meta.started_at_us,
            "window_us": log.meta.window_us,
            "records": log.records.len(),
            "snapshots": log.snapshots.len(),
            "timeseries": log.timeseries.len(),
            "report": log.report,
        }))?);
    }
    let mut out = log.render_timeline().trim_end().to_string();
    let metrics = log.render_metrics();
    if !metrics.is_empty() {
        out.push('\n');
        out.push_str(metrics.trim_end());
    }
    Ok(out)
}

/// `gremlin replay --root <flight-root>` — one line per recorded run,
/// newest last: outcome, recipe, scenario count, anomalous edges.
fn replay_root(root: &str) -> Result<String, Box<dyn Error>> {
    use gremlin::core::CoverageLedger;

    let ledger =
        CoverageLedger::scan(root).map_err(|e| format!("cannot scan flight root {root:?}: {e}"))?;
    if ledger.runs().is_empty() {
        return Ok(format!("no recorded runs under {root}"));
    }
    let mut out = format!("{} run(s) under {root}\n", ledger.runs_scanned());
    for run in ledger.runs() {
        // Manual Display impls ignore format widths, so pad the
        // rendered string instead.
        let outcome = run.outcome.to_string();
        out.push_str(&format!(
            "  [{outcome:>10}] {} — {} scenario(s)",
            run.recipe,
            run.scenarios.len(),
        ));
        if !run.anomalous_edges.is_empty() {
            out.push_str(&format!("; anomalous: {}", run.anomalous_edges.join(", ")));
        }
        if let Some(dir) = &run.flight_dir {
            out.push_str(&format!(" ({})", dir.display()));
        }
        out.push('\n');
    }
    Ok(out.trim_end().to_string())
}

fn cmd_coverage(args: &[String]) -> Result<String, Box<dyn Error>> {
    use gremlin::core::{CoverageLedger, DEFAULT_DRIFT_Z};

    let root = positional(args, 0)?;
    let drift_z = match flag_value(args, "--drift-z") {
        Some(raw) => raw
            .parse::<f64>()
            .map_err(|e| format!("bad --drift-z {raw:?}: {e}"))?,
        None => DEFAULT_DRIFT_Z,
    };
    let graph = match flag_value(args, "--graph") {
        Some(path) => Some(load_graph(path)?),
        None => None,
    };
    let ledger = CoverageLedger::scan_with(root, drift_z)
        .map_err(|e| format!("cannot scan flight root {root:?}: {e}"))?;
    if has_flag(args, "--json") {
        return Ok(serde_json::to_string_pretty(&ledger.summary())?);
    }
    if has_flag(args, "--markdown") {
        return Ok(ledger.to_markdown(graph.as_ref()).trim_end().to_string());
    }
    Ok(ledger.render(graph.as_ref(), true).trim_end().to_string())
}

/// Colors an anomaly state for terminal output (green nominal,
/// yellow suspect, red anomalous, dim warming).
fn paint_state(state: &str) -> String {
    let color = match state {
        "nominal" => "\x1b[32m",
        "suspect" => "\x1b[33m",
        "anomalous" => "\x1b[31m",
        _ => "\x1b[2m",
    };
    format!("{color}{state}\x1b[0m")
}

/// Renders one `gremlin watch` dashboard frame from the collector's
/// `/health` body (and, when available, `/stats`).
fn render_watch_frame(
    addr: &str,
    health: &str,
    stats: Option<&str>,
) -> Result<String, Box<dyn Error>> {
    use gremlin::core::format_duration;
    use std::time::Duration;

    let health: serde_json::Value =
        serde_json::from_str(health).map_err(|e| format!("bad /health body: {e}"))?;
    let window_us = health["window_us"].as_u64().unwrap_or(0);
    let clock_us = health["clock_us"].as_u64().unwrap_or(0);
    let mut out = format!(
        "gremlin watch — collector {addr} (window {}, clock {})\n\n",
        format_duration(Duration::from_micros(window_us)),
        format_duration(Duration::from_micros(clock_us)),
    );

    out.push_str(&format!(
        "{:<24} {:>9} {:>7} {:>10} {:>10} {:>8} {:>7} {:>7}  {}\n",
        "EDGE", "RATE", "ERR%", "P50", "P99", "REQS", "FAULTS", "SCORE", "STATE"
    ));
    let edges = health["edges"].as_array().cloned().unwrap_or_default();
    let scores = health["scores"].as_array().cloned().unwrap_or_default();
    if edges.is_empty() {
        out.push_str("  (no traffic observed yet)\n");
    }
    for edge in &edges {
        let src = edge["src"].as_str().unwrap_or("?");
        let dst = edge["dst"].as_str().unwrap_or("?");
        let rate = edge["rate_rps"].as_f64().unwrap_or(0.0);
        let err = edge["error_rate"].as_f64().unwrap_or(0.0) * 100.0;
        let p50 = Duration::from_micros(edge["p50_us"].as_u64().unwrap_or(0));
        let p99 = Duration::from_micros(edge["p99_us"].as_u64().unwrap_or(0));
        let requests = edge["requests"].as_u64().unwrap_or(0);
        let faults = edge["fault_hits"].as_u64().unwrap_or(0);
        // The anomaly score/state trail the numeric columns so the
        // ANSI color codes never skew the table alignment.
        let (score_txt, state_txt) = match scores
            .iter()
            .find(|score| score["src"] == src && score["dst"] == dst)
        {
            Some(score) => (
                format!("{:.1}", score["score"].as_f64().unwrap_or(0.0)),
                paint_state(score["state"].as_str().unwrap_or("?")),
            ),
            None => ("-".to_string(), "-".to_string()),
        };
        out.push_str(&format!(
            "{:<24} {:>8.1}/s {:>6.1}% {:>10} {:>10} {:>8} {:>7} {:>7}  {}\n",
            format!("{src} -> {dst}"),
            rate,
            err,
            format_duration(p50),
            format_duration(p99),
            requests,
            faults,
            score_txt,
            state_txt,
        ));
    }

    let checks = health["checks"].as_array().cloned().unwrap_or_default();
    if !checks.is_empty() {
        out.push_str("\nCHECKS\n");
        for check in &checks {
            let verdict = check["verdict"].as_str().unwrap_or("?").to_uppercase();
            let name = check["name"].as_str().unwrap_or("?");
            let detail = check["detail"].as_str().unwrap_or("");
            if detail.is_empty() {
                out.push_str(&format!("  [{verdict}] {name}\n"));
            } else {
                out.push_str(&format!("  [{verdict}] {name} — {detail}\n"));
            }
        }
    }

    if let Some(stats) = stats {
        if let Ok(stats) = serde_json::from_str::<serde_json::Value>(stats) {
            out.push_str(&format!(
                "\nevents={} tail_cursor={} tail_subscribers={} alert_subscribers={}\n",
                stats["events"].as_u64().unwrap_or(0),
                stats["tail_cursor"].as_u64().unwrap_or(0),
                stats["tail_subscribers"].as_u64().unwrap_or(0),
                stats["alert_subscribers"].as_u64().unwrap_or(0),
            ));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("gremlin-cli-test-{}-{name}", std::process::id()));
        let mut file = std::fs::File::create(&path).unwrap();
        file.write_all(contents.as_bytes()).unwrap();
        path
    }

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_and_unknown() {
        assert!(run(&args(&["help"])).unwrap().contains("usage"));
        assert!(run(&args(&["bogus"])).is_err());
        assert!(run(&args(&[])).unwrap().contains("usage"));
    }

    #[test]
    fn graph_simple_format() {
        let path = write_temp(
            "graph.json",
            r#"{"edges": [["web", "db"], ["web", "cache"]]}"#,
        );
        let out = run(&args(&["graph", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("web -> cache, db"), "{out}");
        let dot = run(&args(&["graph", path.to_str().unwrap(), "--dot"])).unwrap();
        assert!(dot.contains("\"web\" -> \"db\""));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn graph_round_trip_format() {
        let graph = AppGraph::from_edges(vec![("a", "b")]);
        let path = write_temp("graph-rt.json", &serde_json::to_string(&graph).unwrap());
        let out = run(&args(&["graph", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("a -> b"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn translate_scenario() {
        let graph_path = write_temp("tg.json", r#"{"edges": [["web", "db"]]}"#);
        let scenario = Scenario::overload("db").with_pattern("test-*");
        let scenario_path = write_temp("ts.json", &serde_json::to_string(&scenario).unwrap());
        let out = run(&args(&[
            "translate",
            graph_path.to_str().unwrap(),
            scenario_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("overload db"), "{out}");
        assert!(out.contains("\"src\": \"web\""), "{out}");
        let _ = std::fs::remove_file(graph_path);
        let _ = std::fs::remove_file(scenario_path);
    }

    #[test]
    fn check_and_trace_over_exported_log() {
        use gremlin::store::Event;
        use std::time::Duration;
        let store = EventStore::new();
        store.record_event(
            Event::request("user", "web", "GET", "/x")
                .with_request_id("test-9")
                .with_timestamp(0),
        );
        store.record_event(
            Event::response("user", "web", 200, Duration::from_millis(10))
                .with_request_id("test-9")
                .with_timestamp(100),
        );
        let path = write_temp("events.ndjson", &store.export_json().unwrap());

        let out = run(&args(&[
            "check",
            path.to_str().unwrap(),
            "--assert",
            "timeouts",
            "--service",
            "web",
            "--max-latency",
            "1s",
        ]))
        .unwrap();
        assert!(out.contains("[PASS]"), "{out}");

        let out = run(&args(&[
            "check",
            path.to_str().unwrap(),
            "--assert",
            "request-count",
            "--src",
            "user",
            "--dst",
            "web",
        ]))
        .unwrap();
        assert!(out.contains("1 request(s)"), "{out}");

        let out = run(&args(&["trace", path.to_str().unwrap(), "test-9"])).unwrap();
        assert!(out.contains("user -> web"), "{out}");
        assert!(out.contains("=> 200"), "{out}");

        assert!(run(&args(&["trace", path.to_str().unwrap(), "missing"])).is_err());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn trace_renders_waterfall_and_exports_otlp_json() {
        use gremlin::store::{import_otlp, Event, OtlpTrace};
        use std::time::Duration;
        let store = EventStore::new();
        store.record_event(
            Event::request("user", "web", "GET", "/x")
                .with_request_id("test-7")
                .with_timestamp(0)
                .with_span_id("aaaaaaaaaaaaaaaa"),
        );
        store.record_event(
            Event::request("web", "db", "GET", "/q")
                .with_request_id("test-7")
                .with_timestamp(100)
                .with_span_id("bbbbbbbbbbbbbbbb")
                .with_parent_id("aaaaaaaaaaaaaaaa"),
        );
        store.record_event(
            Event::response("web", "db", 200, Duration::from_micros(400))
                .with_request_id("test-7")
                .with_timestamp(500)
                .with_span_id("bbbbbbbbbbbbbbbb")
                .with_parent_id("aaaaaaaaaaaaaaaa"),
        );
        store.record_event(
            Event::response("user", "web", 200, Duration::from_micros(900))
                .with_request_id("test-7")
                .with_timestamp(900)
                .with_span_id("aaaaaaaaaaaaaaaa"),
        );
        let path = write_temp("trace.ndjson", &store.export_json().unwrap());

        let out = run(&args(&["trace", path.to_str().unwrap(), "test-7"])).unwrap();
        assert!(out.contains("user -> web"), "{out}");
        assert!(out.contains("trace test-7 (2 span(s), depth 2"), "{out}");
        assert!(out.contains("  web -> db GET /q"), "indented child: {out}");
        assert!(out.contains('='), "time bars: {out}");

        // --json emits OTLP that round-trips through the importer.
        let json = run(&args(&[
            "trace",
            path.to_str().unwrap(),
            "test-7",
            "--json",
        ]))
        .unwrap();
        let otlp: OtlpTrace = serde_json::from_str(&json).unwrap();
        let records = import_otlp(&otlp);
        assert_eq!(records.len(), 2);
        assert!(records
            .iter()
            .any(|r| r.parent_id.as_deref() == Some("aaaaaaaaaaaaaaaa")));

        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn tail_streams_events_from_a_live_collector() {
        use gremlin::proxy::CollectorServer;
        use gremlin::store::Event;

        let store = EventStore::shared();
        let collector = CollectorServer::start(Arc::clone(&store), "127.0.0.1:0").unwrap();
        store.record_event(Event::request("user", "web", "GET", "/x").with_request_id("t-1"));
        store.record_event(Event::request("web", "db", "GET", "/q").with_request_id("t-2"));

        // --from 0 replays history; --limit bounds the otherwise
        // endless stream so the test terminates.
        let out = run(&args(&[
            "tail",
            &collector.local_addr().to_string(),
            "--from",
            "0",
            "--limit",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("tailed 2 event(s)"), "{out}");

        assert!(run(&args(&["tail", "not-an-addr"])).is_err());
    }

    #[test]
    fn watch_json_and_dashboard_against_live_collector() {
        use gremlin::proxy::CollectorServer;
        use gremlin::store::Event;
        use std::time::Duration;

        let store = EventStore::shared();
        let collector = CollectorServer::start(Arc::clone(&store), "127.0.0.1:0").unwrap();
        store.record_event(
            Event::request("web", "db", "GET", "/q")
                .with_request_id("t-1")
                .with_timestamp(1_000),
        );
        let mut reply =
            Event::response("web", "db", 200, Duration::from_millis(2)).with_request_id("t-1");
        reply.timestamp_us = 3_000;
        store.record_event(reply);
        let addr = collector.local_addr().to_string();

        let json = run(&args(&["watch", &addr, "--json"])).unwrap();
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(value["schema_version"], 2);
        assert_eq!(value["edges"][0]["src"], "web");
        assert_eq!(value["edges"][0]["requests"], 1);
        assert_eq!(value["scores"].as_array().map(Vec::len), Some(0));

        // One dashboard frame, then exit.
        let out = run(&args(&[
            "watch",
            &addr,
            "--count",
            "1",
            "--interval",
            "1ms",
        ]))
        .unwrap();
        assert!(out.contains("watched 1 frame(s)"), "{out}");

        assert!(run(&args(&["watch", "not-an-addr"])).is_err());
    }

    #[test]
    fn watch_frame_renders_edges_checks_and_stats() {
        let health = r#"{
            "schema_version": 2,
            "window_us": 10000000,
            "clock_us": 12000000,
            "edges": [{
                "src": "web", "dst": "db",
                "requests": 124, "responses": 120, "errors": 6, "fault_hits": 3,
                "rate_rps": 12.4, "error_rate": 0.05,
                "p50_us": 3100, "p99_us": 9800, "last_seen_us": 12000000
            }],
            "checks": [{
                "name": "LiveLatencySlo(web, p99 <= 100ms)",
                "verdict": "failing",
                "detail": "p99 180ms over bound",
                "windows": 2,
                "first_failing_at_us": 10000000,
                "violated_at_us": null
            }],
            "scores": [{
                "src": "web", "dst": "db", "state": "suspect",
                "score": 6.2, "rate_z": 0.3, "error_z": 0.0, "latency_z": 6.2,
                "peak_score": 6.2, "windows": 4,
                "first_suspect_at_us": 11000000, "anomalous_at_us": null,
                "baseline": null
            }]
        }"#;
        let stats =
            r#"{"events":124,"tail_cursor":248,"tail_subscribers":1,"alert_subscribers":0}"#;
        let frame = render_watch_frame("127.0.0.1:9000", health, Some(stats)).unwrap();
        assert!(frame.contains("web -> db"), "{frame}");
        assert!(frame.contains("12.4/s"), "{frame}");
        assert!(frame.contains("5.0%"), "{frame}");
        assert!(frame.contains("SCORE"), "{frame}");
        assert!(frame.contains("6.2"), "{frame}");
        assert!(frame.contains("suspect"), "{frame}");
        assert!(frame.contains("[FAILING] LiveLatencySlo"), "{frame}");
        assert!(frame.contains("tail_subscribers=1"), "{frame}");

        // No traffic renders a placeholder instead of an empty table.
        // A version-1 body (no schema_version/scores) still renders:
        // edges without a score show placeholder columns.
        let empty = render_watch_frame(
            "127.0.0.1:9000",
            r#"{"window_us":0,"clock_us":0,"edges":[],"checks":[]}"#,
            None,
        )
        .unwrap();
        assert!(empty.contains("no traffic observed yet"), "{empty}");

        assert!(render_watch_frame("a", "not json", None).is_err());
    }

    #[test]
    fn watch_frame_scoreless_edges_render_placeholders() {
        let health = r#"{
            "schema_version": 2,
            "window_us": 1000000,
            "clock_us": 2000000,
            "edges": [{
                "src": "web", "dst": "cache",
                "requests": 10, "responses": 10, "errors": 0, "fault_hits": 0,
                "rate_rps": 10.0, "error_rate": 0.0,
                "p50_us": 900, "p99_us": 1600, "last_seen_us": 2000000
            }],
            "checks": [],
            "scores": []
        }"#;
        let frame = render_watch_frame("127.0.0.1:9000", health, None).unwrap();
        let edge_line = frame
            .lines()
            .find(|line| line.contains("web -> cache"))
            .unwrap();
        assert!(edge_line.trim_end().ends_with('-'), "{edge_line}");
    }

    #[test]
    fn replay_renders_a_recorded_timeline() {
        use gremlin::core::anomaly::{AnomalyAlert, EdgeState};
        use gremlin::core::{AlertEvent, FlightRecorder, FlightSummary, MonitorRecord, Verdict};

        let root = std::env::temp_dir().join(format!("gremlin-cli-replay-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let mut recorder = FlightRecorder::create(&root, "cli replay", 5, 1_000_000).unwrap();
        recorder
            .append_records(&[
                MonitorRecord::Verdict(AlertEvent {
                    seq: 0,
                    at_us: 1_000_000,
                    check: "LiveAnomalousEdge(user -> web)".to_string(),
                    from: Verdict::Pending,
                    to: Verdict::Passing,
                    detail: "edge user -> web nominal".to_string(),
                }),
                MonitorRecord::Anomaly(AnomalyAlert {
                    seq: 1,
                    at_us: 2_000_000,
                    src: "user".to_string(),
                    dst: "web".to_string(),
                    from: EdgeState::Nominal,
                    to: EdgeState::Suspect,
                    score: 6.2,
                    detail: "latency z 6.2".to_string(),
                }),
            ])
            .unwrap();
        let dir = recorder
            .finish(&FlightSummary {
                name: "cli replay".to_string(),
                passed: true,
                injected: Vec::new(),
                checks: Vec::new(),
                monitor: Vec::new(),
                anomalies: Vec::new(),
                scenarios: vec![gremlin::core::Scenario::crash("web")],
            })
            .unwrap();

        let out = run(&args(&["replay", dir.to_str().unwrap()])).unwrap();
        assert!(
            out.contains("flight recording of recipe \"cli replay\""),
            "{out}"
        );
        assert!(out.contains("user -> web nominal -> suspect"), "{out}");
        assert!(out.contains("outcome: PASSED"), "{out}");

        let json = run(&args(&["replay", dir.to_str().unwrap(), "--json"])).unwrap();
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(value["recipe"], "cli replay");
        assert_eq!(value["records"], 2);
        assert_eq!(value["report"]["passed"], true);

        assert!(run(&args(&["replay", "/nonexistent-flight-dir"])).is_err());

        // --root mode: one line per recorded run under the root.
        let listing = run(&args(&["replay", "--root", root.to_str().unwrap()])).unwrap();
        assert!(listing.contains("1 run(s) under"), "{listing}");
        assert!(listing.contains("cli replay — 1 scenario(s)"), "{listing}");
        assert!(listing.contains("pass"), "{listing}");

        // coverage over the same root: the crash scenario covers one
        // service-scoped cell.
        let scorecard = run(&args(&["coverage", root.to_str().unwrap()])).unwrap();
        assert!(scorecard.contains("1 run(s) scanned"), "{scorecard}");
        assert!(scorecard.contains("1 cell(s) covered"), "{scorecard}");
        let markdown = run(&args(&["coverage", root.to_str().unwrap(), "--markdown"])).unwrap();
        assert!(
            markdown.contains("# Resilience coverage scorecard"),
            "{markdown}"
        );
        let json = run(&args(&["coverage", root.to_str().unwrap(), "--json"])).unwrap();
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(value["runs_scanned"], 1);
        assert!(run(&args(&[
            "coverage",
            root.to_str().unwrap(),
            "--drift-z",
            "nope"
        ]))
        .is_err());

        // An empty or missing root renders, it does not error.
        let empty = run(&args(&["replay", "--root", "/nonexistent-flight-root"])).unwrap();
        assert!(empty.contains("no recorded runs"), "{empty}");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn install_against_live_agent() {
        use gremlin::proxy::{AgentConfig, ControlServer, GremlinAgent};
        let backend_addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let agent = Arc::new(
            GremlinAgent::start(
                AgentConfig::new("web").route("db", vec![backend_addr]),
                EventStore::shared(),
            )
            .unwrap(),
        );
        let control = ControlServer::start(Arc::clone(&agent), "127.0.0.1:0").unwrap();

        let graph_path = write_temp("ig.json", r#"{"edges": [["web", "db"]]}"#);
        let scenario = Scenario::disconnect("web", "db").with_pattern("test-*");
        let scenario_path = write_temp("is.json", &serde_json::to_string(&scenario).unwrap());

        let out = run(&args(&[
            "install",
            graph_path.to_str().unwrap(),
            scenario_path.to_str().unwrap(),
            "--agents",
            &control.local_addr().to_string(),
        ]))
        .unwrap();
        assert!(out.contains("installed 1 rule(s)"), "{out}");
        assert_eq!(agent.rules().len(), 1);

        let out = run(&args(&["rules", &control.local_addr().to_string()])).unwrap();
        assert!(out.contains("web -> db"), "{out}");

        let out = run(&args(&["health", &control.local_addr().to_string()])).unwrap();
        assert!(out.contains("service=web"), "{out}");

        let out = run(&args(&[
            "clear",
            "--agents",
            &control.local_addr().to_string(),
        ]))
        .unwrap();
        assert!(out.contains("cleared"), "{out}");
        assert!(agent.rules().is_empty());

        let _ = std::fs::remove_file(graph_path);
        let _ = std::fs::remove_file(scenario_path);
    }

    #[test]
    fn campaign_runs_recipes_against_a_live_agent() {
        use gremlin::core::CampaignRecipe;
        use gremlin::proxy::{AgentConfig, ControlServer, GremlinAgent};
        use std::time::Duration;

        let backend_addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let agent = Arc::new(
            GremlinAgent::start(
                AgentConfig::new("web").route("db", vec![backend_addr]),
                EventStore::shared(),
            )
            .unwrap(),
        );
        let control = ControlServer::start(Arc::clone(&agent), "127.0.0.1:0").unwrap();

        let graph_path = write_temp("cg.json", r#"{"edges": [["web", "db"]]}"#);
        // Both recipes fault the same edge, so they serialize into
        // two waves.
        let spec = CampaignSpec {
            max_in_flight: None,
            recipes: vec![
                CampaignRecipe::new("abort-db")
                    .scenario(Scenario::abort("web", "db", 503))
                    .hold(Duration::from_millis(20)),
                CampaignRecipe::new("slow-db")
                    .scenario(Scenario::delay("web", "db", Duration::from_millis(5)))
                    .hold(Duration::from_millis(20)),
            ],
        };
        let spec_path = write_temp("cc.json", &serde_json::to_string(&spec).unwrap());

        let out = run(&args(&[
            "campaign",
            graph_path.to_str().unwrap(),
            spec_path.to_str().unwrap(),
            "--agents",
            &control.local_addr().to_string(),
        ]))
        .unwrap();
        assert!(out.contains("campaign: 2 recipe(s) in 2 wave(s)"), "{out}");
        assert!(out.contains("[PASS] abort-db"), "{out}");
        assert!(out.contains("[PASS] slow-db"), "{out}");
        // The final wave boundary flushed the fleet.
        assert!(agent.rules().is_empty());

        // Missing --agents and empty campaigns error cleanly.
        assert!(run(&args(&[
            "campaign",
            graph_path.to_str().unwrap(),
            spec_path.to_str().unwrap(),
        ]))
        .is_err());
        let empty_path = write_temp("ce.json", r#"{"recipes":[]}"#);
        assert!(run(&args(&[
            "campaign",
            graph_path.to_str().unwrap(),
            empty_path.to_str().unwrap(),
            "--agents",
            &control.local_addr().to_string(),
        ]))
        .is_err());

        let _ = std::fs::remove_file(graph_path);
        let _ = std::fs::remove_file(spec_path);
        let _ = std::fs::remove_file(empty_path);
    }

    #[test]
    fn metrics_scrapes_a_live_agent() {
        use gremlin::proxy::{AgentConfig, ControlServer, GremlinAgent};
        let backend_addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let agent = Arc::new(
            GremlinAgent::start(
                AgentConfig::new("web").route("db", vec![backend_addr]),
                EventStore::shared(),
            )
            .unwrap(),
        );
        let control = ControlServer::start(Arc::clone(&agent), "127.0.0.1:0").unwrap();
        let addr = control.local_addr().to_string();

        let out = run(&args(&["metrics", &addr])).unwrap();
        assert!(
            out.contains("gremlin_proxy_requests_total{dst=db,service=web} 0"),
            "{out}"
        );
        // Histogram families collapse into one summary line.
        assert!(
            out.contains("gremlin_proxy_upstream_latency_seconds"),
            "{out}"
        );
        assert!(out.contains("count=0"), "{out}");
        assert!(!out.contains("_bucket"), "{out}");

        let raw = run(&args(&["metrics", &addr, "--raw"])).unwrap();
        assert!(
            raw.contains("# TYPE gremlin_proxy_requests_total counter"),
            "{raw}"
        );
        assert!(raw.contains("_bucket{"), "{raw}");

        // --targets spelling and multi-target headers.
        let multi = run(&args(&["metrics", "--targets", &format!("{addr},{addr}")])).unwrap();
        assert!(multi.contains(&format!("## {addr}")), "{multi}");

        assert!(run(&args(&["metrics"])).is_err());
        assert!(run(&args(&["metrics", "not-an-addr"])).is_err());
    }

    #[test]
    fn generate_emits_the_test_matrix() {
        let path = write_temp("gen.json", r#"{"edges": [["user", "web"], ["web", "db"]]}"#);
        let out = run(&args(&[
            "generate",
            path.to_str().unwrap(),
            "--exclude",
            "user",
            "--pattern",
            "probe-*",
        ]))
        .unwrap();
        let tests: Vec<gremlin::core::autogen::GeneratedTest> = serde_json::from_str(&out).unwrap();
        assert_eq!(tests.len(), 3, "one edge, three probes");
        assert!(tests
            .iter()
            .all(|t| t.scenario.pattern == gremlin::store::Pattern::new("probe-*")));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn watch_reconnects_after_a_collector_restart() {
        use gremlin::proxy::CollectorServer;
        use std::time::Duration;

        let store = EventStore::shared();
        let collector = CollectorServer::start(Arc::clone(&store), "127.0.0.1:0").unwrap();
        let addr = collector.local_addr();
        collector.shutdown();

        // Bring a collector back on the same port while watch is in
        // its backoff loop: the dashboard must ride out the gap
        // instead of exiting on the first refused connection.
        let restart_store = Arc::clone(&store);
        let restarter = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(300));
            for _ in 0..40 {
                match CollectorServer::start(Arc::clone(&restart_store), addr) {
                    Ok(server) => return server,
                    Err(_) => std::thread::sleep(Duration::from_millis(25)),
                }
            }
            panic!("could not rebind collector on {addr}");
        });
        let out = run(&args(&[
            "watch",
            &addr.to_string(),
            "--count",
            "1",
            "--interval",
            "1ms",
        ]))
        .unwrap();
        assert!(out.contains("watched 1 frame(s)"), "{out}");
        restarter.join().unwrap().shutdown();

        // With the collector gone for good and zero retries, watch
        // fails fast instead of hanging.
        assert!(run(&args(&[
            "watch",
            &addr.to_string(),
            "--count",
            "1",
            "--retries",
            "0"
        ]))
        .is_err());
    }

    #[test]
    fn top_renders_a_live_fleet_dashboard() {
        use gremlin::http::{ConnInfo, HttpServer, Request, Response, StatusCode};
        use gremlin::proxy::{CollectorServer, Scraper};
        use gremlin::store::{HealthMonitor, DEFAULT_HEALTH_WINDOW};
        use gremlin::telemetry::{MetricsRegistry, TimeSeriesStore};

        // One fake agent serving real proxy-style metrics.
        let agent_registry = MetricsRegistry::shared();
        agent_registry
            .counter(
                "gremlin_proxy_requests_total",
                "requests",
                &[("service", "web"), ("dst", "db")],
            )
            .add(10);
        let registry = Arc::clone(&agent_registry);
        let agent = HttpServer::bind("127.0.0.1:0", move |_req: Request, _conn: &ConnInfo| {
            Response::builder(StatusCode::OK)
                .body(registry.render_prometheus())
                .build()
        })
        .unwrap();

        let scraper = Arc::new(Scraper::new(TimeSeriesStore::shared()));
        scraper.add_target("web", agent.local_addr().to_string());
        scraper.scrape_at(1_000_000);
        agent_registry
            .counter(
                "gremlin_proxy_requests_total",
                "requests",
                &[("service", "web"), ("dst", "db")],
            )
            .add(20);
        scraper.scrape_at(2_000_000);
        scraper.store().annotate(1_500_000, "install", "crash db");

        let store = EventStore::shared();
        let monitor = Arc::new(HealthMonitor::new(
            Arc::clone(&store),
            DEFAULT_HEALTH_WINDOW,
        ));
        let collector = CollectorServer::start_with_fleet(
            store,
            "127.0.0.1:0",
            MetricsRegistry::shared(),
            monitor,
            Some(Arc::clone(&scraper)),
        )
        .unwrap();

        let out = run(&args(&[
            "top",
            &collector.local_addr().to_string(),
            "--count",
            "1",
            "--interval",
            "1ms",
        ]))
        .unwrap();
        assert!(out.contains("monitored 1 frame(s)"), "{out}");

        // The renderer itself, against a hand-built store: rates,
        // up/stale columns and the phase line all show up.
        let local = TimeSeriesStore::new();
        let body = "up{instance=\"web\"} 1\n\
             gremlin_proxy_requests_total{instance=\"web\",service=\"web\"} 10\n\
             up{instance=\"db\"} 0\n\
             gremlin_scrape_stale{instance=\"db\"} 1\n";
        ingest_federated(&local, 1_000_000, body);
        let body2 = body.replace(
            "gremlin_proxy_requests_total{instance=\"web\",service=\"web\"} 10",
            "gremlin_proxy_requests_total{instance=\"web\",service=\"web\"} 40",
        );
        ingest_federated(&local, 2_000_000, &body2);
        let index = serde_json::json!({
            "annotations": [{"at_us": 1_500_000, "phase": "install", "detail": "crash db"}],
        });
        let frame = render_top_frame("collector:0", &local, Some(&index), 2_000_000);
        assert!(frame.contains("2 target(s)"), "{frame}");
        assert!(frame.contains("phase: install (crash db)"), "{frame}");
        assert!(frame.contains("up"), "{frame}");
        assert!(frame.contains("stale"), "{frame}");
        // 30 requests over 1s -> 30.0 req/s, and a sparkline cell.
        assert!(frame.contains("30.0"), "{frame}");
        assert!(frame.contains('█'), "{frame}");

        assert!(run(&args(&["top", "not-an-addr"])).is_err());
    }

    #[test]
    fn replay_renders_recorded_metric_history() {
        use gremlin::core::{FlightRecorder, FlightSummary};
        use gremlin::telemetry::TimeSeriesStore;

        let root = std::env::temp_dir().join(format!("gremlin-cli-tsrp-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let timeline = TimeSeriesStore::new();
        timeline.append("local", "demo_requests_total", &[], 1_000_000, 5.0);
        timeline.append("local", "demo_requests_total", &[], 2_000_000, 45.0);
        timeline.annotate(1_500_000, "install", "overload db");

        let mut recorder = FlightRecorder::create(&root, "ts replay", 5, 1_000_000).unwrap();
        recorder.record_timeseries(&timeline).unwrap();
        let dir = recorder
            .finish(&FlightSummary {
                name: "ts replay".to_string(),
                passed: true,
                injected: Vec::new(),
                checks: Vec::new(),
                monitor: Vec::new(),
                anomalies: Vec::new(),
                scenarios: Vec::new(),
            })
            .unwrap();

        let out = run(&args(&["replay", dir.to_str().unwrap()])).unwrap();
        assert!(out.contains("metric history: 1 series"), "{out}");
        assert!(out.contains("install: overload db"), "{out}");
        assert!(out.contains("+40 over the run"), "{out}");

        let json = run(&args(&["replay", dir.to_str().unwrap(), "--json"])).unwrap();
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(value["timeseries"], 3, "2 points + 1 annotation");

        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn bad_inputs_error_cleanly() {
        assert!(run(&args(&["graph", "/nonexistent.json"])).is_err());
        assert!(run(&args(&["install", "a", "b"])).is_err());
        assert!(run(&args(&["rules", "not-an-addr"])).is_err());
        let path = write_temp("empty.ndjson", "");
        assert!(run(&args(&["check", path.to_str().unwrap()])).is_err());
        assert!(run(&args(&[
            "check",
            path.to_str().unwrap(),
            "--assert",
            "nonsense"
        ]))
        .is_err());
        let _ = std::fs::remove_file(path);
    }
}

//! Property-based tests for the resilience patterns: the circuit
//! breaker against a reference model, retry-count bounds, backoff
//! monotonicity and bulkhead accounting.

use std::time::Duration;

use proptest::prelude::*;

use gremlin_mesh::resilience::{
    Backoff, Bulkhead, BulkheadConfig, CircuitBreaker, CircuitBreakerConfig, CircuitState,
    RetryPolicy,
};

/// One step of a breaker interaction.
#[derive(Debug, Clone, Copy)]
enum BreakerOp {
    CallSuccess,
    CallFailure,
}

fn breaker_ops() -> impl Strategy<Value = Vec<BreakerOp>> {
    proptest::collection::vec(
        prop_oneof![Just(BreakerOp::CallSuccess), Just(BreakerOp::CallFailure)],
        0..200,
    )
}

/// A reference model of the breaker with an effectively infinite open
/// window (so the time-driven half-open transition never fires and
/// the model stays deterministic).
struct BreakerModel {
    threshold: u32,
    consecutive_failures: u32,
    open: bool,
}

impl BreakerModel {
    fn apply(&mut self, op: BreakerOp) -> bool {
        if self.open {
            return false; // call rejected
        }
        match op {
            BreakerOp::CallSuccess => {
                self.consecutive_failures = 0;
            }
            BreakerOp::CallFailure => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.threshold {
                    self.open = true;
                }
            }
        }
        true
    }
}

proptest! {
    /// The breaker's admit/reject decisions and final state match the
    /// reference model for any operation sequence.
    #[test]
    fn breaker_matches_reference_model(
        ops in breaker_ops(),
        threshold in 1u32..10,
    ) {
        let breaker = CircuitBreaker::new(CircuitBreakerConfig {
            failure_threshold: threshold,
            open_duration: Duration::from_secs(3600),
            success_threshold: 1,
        });
        let mut model = BreakerModel {
            threshold,
            consecutive_failures: 0,
            open: false,
        };
        for op in ops {
            let model_admitted = model.apply(op);
            let breaker_admitted = breaker.try_acquire();
            prop_assert_eq!(breaker_admitted, model_admitted);
            if breaker_admitted {
                match op {
                    BreakerOp::CallSuccess => breaker.record_success(),
                    BreakerOp::CallFailure => breaker.record_failure(),
                }
            }
        }
        let expected = if model.open { CircuitState::Open } else { CircuitState::Closed };
        prop_assert_eq!(breaker.state(), expected);
    }

    /// The breaker trips at most once per episode: with an infinite
    /// open window and no successes, open_transitions is 0 or 1.
    #[test]
    fn breaker_trips_once_per_episode(failures in 0u32..30, threshold in 1u32..10) {
        let breaker = CircuitBreaker::new(CircuitBreakerConfig {
            failure_threshold: threshold,
            open_duration: Duration::from_secs(3600),
            success_threshold: 1,
        });
        for _ in 0..failures {
            if breaker.try_acquire() {
                breaker.record_failure();
            }
        }
        let expected_transitions = u64::from(failures >= threshold);
        prop_assert_eq!(breaker.open_transitions(), expected_transitions);
    }

    /// `RetryPolicy::run` performs exactly
    /// `min(first_success + 1, max_tries)` attempts.
    #[test]
    fn retry_attempt_count_is_bounded(
        max_tries in 1u32..8,
        first_success in proptest::option::of(0u32..10),
    ) {
        let policy = RetryPolicy::new(max_tries).with_backoff(Backoff::none());
        let mut attempts = 0u32;
        let result: Result<u32, u32> = policy.run(|attempt| {
            attempts += 1;
            match first_success {
                Some(success_at) if attempt >= success_at => Ok(attempt),
                _ => Err(attempt),
            }
        });
        let expected = match first_success {
            Some(success_at) if success_at < max_tries => success_at + 1,
            _ => max_tries,
        };
        prop_assert_eq!(attempts, expected);
        prop_assert_eq!(result.is_ok(), matches!(first_success, Some(s) if s < max_tries));
    }

    /// Backoff delays are monotone non-decreasing for factor >= 1 and
    /// never exceed the cap.
    #[test]
    fn backoff_monotone_and_capped(
        base_ms in 1u64..1000,
        factor in 1.0f64..4.0,
        max_ms in 1u64..10_000,
    ) {
        let backoff = Backoff {
            base: Duration::from_millis(base_ms),
            factor,
            max: Duration::from_millis(max_ms),
            jitter: false,
        };
        let mut previous = Duration::ZERO;
        for retry in 0..12 {
            let delay = backoff.delay_for(retry);
            prop_assert!(delay <= Duration::from_millis(max_ms));
            prop_assert!(delay >= previous || delay == Duration::from_millis(max_ms));
            previous = delay;
        }
    }

    /// Jittered delays stay within [delay/2, delay].
    #[test]
    fn backoff_jitter_bounds(base_ms in 2u64..500, retry in 0u32..6) {
        let backoff = Backoff {
            base: Duration::from_millis(base_ms),
            factor: 2.0,
            max: Duration::from_secs(60),
            jitter: true,
        };
        let nominal = backoff.delay_for(retry);
        for _ in 0..20 {
            let sampled = backoff.sample_delay(retry);
            prop_assert!(sampled <= nominal);
            prop_assert!(sampled >= nominal.mul_f64(0.5) - Duration::from_nanos(1));
        }
    }

    /// Bulkhead accounting: a random acquire/release interleaving
    /// never exceeds capacity, and counters reconcile.
    #[test]
    fn bulkhead_accounting(
        capacity in 1usize..8,
        ops in proptest::collection::vec(any::<bool>(), 0..100),
    ) {
        let bulkhead = Bulkhead::new(BulkheadConfig { max_concurrent: capacity });
        let mut held = Vec::new();
        let mut expected_rejections = 0u64;
        let mut expected_admissions = 0u64;
        for acquire in ops {
            if acquire {
                match bulkhead.try_acquire() {
                    Some(permit) => {
                        expected_admissions += 1;
                        held.push(permit);
                        prop_assert!(held.len() <= capacity);
                    }
                    None => {
                        expected_rejections += 1;
                        prop_assert_eq!(held.len(), capacity);
                    }
                }
            } else if !held.is_empty() {
                held.pop();
            }
            prop_assert_eq!(bulkhead.in_flight(), held.len());
        }
        prop_assert_eq!(bulkhead.admitted(), expected_admissions);
        prop_assert_eq!(bulkhead.rejected(), expected_rejections);
    }
}

//! Whole-application deployments: services plus their Gremlin agents,
//! wired over loopback TCP.
//!
//! A [`Deployment`] mirrors the paper's sidecar model (§6): every
//! service's outbound traffic flows through its own Gremlin agent.
//! An optional *ingress* agent fronts an edge service on behalf of a
//! synthetic `user`, so even user-facing behaviour is observed by the
//! data plane (the paper's §6 "test input generation" assumes test
//! load can be injected via a Gremlin agent).

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;

use gremlin_http::{ClientConfig, HttpClient, Request, Response};
use gremlin_proxy::{AgentConfig, AgentControl, GremlinAgent, ProxyError};
use gremlin_store::EventStore;

use crate::error::MeshError;
use crate::registry::ServiceRegistry;
use crate::service::{Microservice, ServiceSpec};

/// Builds a [`Deployment`] from service specs.
///
/// The builder is `Clone`, which makes it a reusable *blueprint*: the
/// paper's §9 suggests canaries — fresh copies of the application
/// dedicated to test requests — as the answer to state cleanup, and
/// `builder.clone().build()` stamps out exactly that (every service,
/// agent, breaker and queue starts from scratch on new ports).
///
/// # Examples
///
/// ```
/// use gremlin_mesh::behaviors::StaticResponder;
/// use gremlin_mesh::{Deployment, ResiliencePolicy, ServiceSpec};
///
/// # fn main() -> Result<(), gremlin_mesh::MeshError> {
/// let deployment = Deployment::builder()
///     .service(ServiceSpec::new("backend", StaticResponder::ok("data")))
///     .service(
///         ServiceSpec::new(
///             "frontend",
///             gremlin_mesh::behaviors::Aggregator::new(vec!["backend".into()], "/"),
///         )
///         .dependency("backend", ResiliencePolicy::new()),
///     )
///     .ingress("user", "frontend")
///     .build()?;
/// let response = deployment.call_with_id("frontend", "/", "test-1")?;
/// assert_eq!(response.body_str(), "backend=ok");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default, Clone)]
pub struct DeploymentBuilder {
    specs: Vec<ServiceSpec>,
    proxied: bool,
    seed: Option<u64>,
    ingress: Vec<(String, String)>,
    agent_client: Option<ClientConfig>,
}

impl DeploymentBuilder {
    /// Creates a builder for a proxied (agent-per-service)
    /// deployment.
    pub fn new() -> DeploymentBuilder {
        DeploymentBuilder {
            specs: Vec::new(),
            proxied: true,
            seed: None,
            ingress: Vec::new(),
            agent_client: None,
        }
    }

    /// Adds a service.
    pub fn service(mut self, spec: ServiceSpec) -> DeploymentBuilder {
        self.specs.push(spec);
        self
    }

    /// Enables or disables Gremlin agents. An unproxied deployment is
    /// the baseline: services call each other directly.
    pub fn proxied(mut self, proxied: bool) -> DeploymentBuilder {
        self.proxied = proxied;
        self
    }

    /// Seeds every agent's probability RNG (reproducible fault
    /// sampling).
    pub fn seed(mut self, seed: u64) -> DeploymentBuilder {
        self.seed = Some(seed);
        self
    }

    /// Adds an ingress agent: test traffic from the synthetic caller
    /// `user` to `edge_service` flows through (and is observed by) a
    /// Gremlin agent.
    pub fn ingress(
        mut self,
        user: impl Into<String>,
        edge_service: impl Into<String>,
    ) -> DeploymentBuilder {
        self.ingress.push((user.into(), edge_service.into()));
        self
    }

    /// Overrides the HTTP client configuration agents use for
    /// upstream calls.
    pub fn agent_client(mut self, config: ClientConfig) -> DeploymentBuilder {
        self.agent_client = Some(config);
        self
    }

    /// Starts every service and agent.
    ///
    /// # Errors
    ///
    /// Returns an error if a service or agent fails to start, or if a
    /// declared dependency has no registered instances.
    pub fn build(self) -> Result<Deployment, MeshError> {
        let registry = ServiceRegistry::shared();
        let store = EventStore::shared();

        // 1. Start all services; replicas register in the registry.
        let mut services = HashMap::new();
        for spec in &self.specs {
            let service = Microservice::start(spec, Arc::clone(&registry))?;
            services.insert(spec.name.clone(), service);
        }

        // 2. Start one agent per service *instance* (paper Figure 3)
        //    with outbound dependency routes, then point each
        //    replica's clients at its own sidecar.
        let mut agents: HashMap<String, Vec<Arc<GremlinAgent>>> = HashMap::new();
        if self.proxied {
            for spec in &self.specs {
                if spec.dependencies.is_empty() {
                    continue;
                }
                for replica in 0..spec.replicas {
                    let mut config = AgentConfig::new(spec.name.clone())
                        .name(format!("agent-{}-{replica}", spec.name));
                    if let Some(seed) = self.seed {
                        config = config.seed(seed.wrapping_add(replica as u64));
                    }
                    if let Some(client) = &self.agent_client {
                        config = config.client(client.clone());
                    }
                    for dependency in &spec.dependencies {
                        let upstreams = registry.instances(&dependency.dst);
                        if upstreams.is_empty() {
                            return Err(MeshError::UnknownDependency(dependency.dst.clone()));
                        }
                        config = config.route(dependency.dst.clone(), upstreams);
                    }
                    let agent = Arc::new(
                        GremlinAgent::start(config, store.clone()).map_err(proxy_to_mesh)?,
                    );
                    let source_key = crate::registry::instance_key(&spec.name, replica);
                    for dependency in &spec.dependencies {
                        let addr = agent
                            .route_addr(&dependency.dst)
                            .expect("route registered at agent start");
                        registry.set_route(source_key.clone(), dependency.dst.clone(), addr);
                    }
                    agents.entry(spec.name.clone()).or_default().push(agent);
                }
            }
        }

        // 3. Ingress agents for synthetic user traffic.
        let mut ingress_addrs: HashMap<String, SocketAddr> = HashMap::new();
        for (user, edge) in &self.ingress {
            let upstreams = registry.instances(edge);
            if upstreams.is_empty() {
                return Err(MeshError::UnknownDependency(edge.clone()));
            }
            let mut config = AgentConfig::new(user.clone()).route(edge.clone(), upstreams);
            if let Some(seed) = self.seed {
                config = config.seed(seed);
            }
            let agent =
                Arc::new(GremlinAgent::start(config, store.clone()).map_err(proxy_to_mesh)?);
            let addr = agent.route_addr(edge).expect("ingress route registered");
            ingress_addrs.insert(edge.clone(), addr);
            agents.entry(user.clone()).or_default().push(agent);
        }

        Ok(Deployment {
            registry,
            store,
            services,
            agents,
            ingress_addrs,
            client: HttpClient::new(),
        })
    }
}

fn proxy_to_mesh(err: ProxyError) -> MeshError {
    match err {
        ProxyError::Http(http) => MeshError::Http(http),
        other => MeshError::Unhandled(other.to_string()),
    }
}

/// A running application: services, agents, registry and the shared
/// observation store.
pub struct Deployment {
    registry: Arc<ServiceRegistry>,
    store: Arc<EventStore>,
    services: HashMap<String, Microservice>,
    agents: HashMap<String, Vec<Arc<GremlinAgent>>>,
    ingress_addrs: HashMap<String, SocketAddr>,
    client: HttpClient,
}

impl std::fmt::Debug for Deployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Deployment")
            .field("services", &self.services.keys().collect::<Vec<_>>())
            .field("agents", &self.agents.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl Deployment {
    /// Starts building a deployment.
    pub fn builder() -> DeploymentBuilder {
        DeploymentBuilder::new()
    }

    /// The shared observation store all agents log to.
    pub fn store(&self) -> &Arc<EventStore> {
        &self.store
    }

    /// The deployment's service registry.
    pub fn registry(&self) -> &Arc<ServiceRegistry> {
        &self.registry
    }

    /// The running service named `name`.
    pub fn service(&self, name: &str) -> Option<&Microservice> {
        self.services.get(name)
    }

    /// Direct address of `name`'s first replica.
    pub fn service_addr(&self, name: &str) -> Option<SocketAddr> {
        self.services.get(name).map(Microservice::addr)
    }

    /// The agent fronting outbound calls of `service`'s first
    /// instance (including ingress users).
    pub fn agent(&self, service: &str) -> Option<&Arc<GremlinAgent>> {
        self.agents.get(service).and_then(|list| list.first())
    }

    /// Every agent instance fronting `service` (one per replica,
    /// paper Figure 3).
    pub fn agents_for(&self, service: &str) -> &[Arc<GremlinAgent>] {
        self.agents.get(service).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Every agent in the deployment, ordered by service name then
    /// replica.
    pub fn agents(&self) -> Vec<Arc<GremlinAgent>> {
        let mut names: Vec<&String> = self.agents.keys().collect();
        names.sort();
        names
            .into_iter()
            .flat_map(|name| self.agents[name].iter().cloned())
            .collect()
    }

    /// Every agent as an [`AgentControl`] handle, ready for the
    /// Failure Orchestrator.
    pub fn controls(&self) -> Vec<Arc<dyn AgentControl>> {
        self.agents()
            .into_iter()
            .map(|agent| agent as Arc<dyn AgentControl>)
            .collect()
    }

    /// The address test traffic for `service` should be sent to: the
    /// ingress agent's listener when one exists, otherwise the
    /// service itself.
    pub fn entry_addr(&self, service: &str) -> Option<SocketAddr> {
        self.ingress_addrs
            .get(service)
            .copied()
            .or_else(|| self.service_addr(service))
    }

    /// Sends `request` to `service` through its entry point.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::UnknownDependency`] for unknown services
    /// or [`MeshError::Http`] for transport failures.
    pub fn call(&self, service: &str, request: Request) -> Result<Response, MeshError> {
        let addr = self
            .entry_addr(service)
            .ok_or_else(|| MeshError::UnknownDependency(service.to_string()))?;
        self.client.send(addr, request).map_err(MeshError::Http)
    }

    /// Convenience: `GET path` on `service` stamped with request ID
    /// `id`.
    ///
    /// # Errors
    ///
    /// Same as [`Deployment::call`].
    pub fn call_with_id(&self, service: &str, path: &str, id: &str) -> Result<Response, MeshError> {
        self.call(
            service,
            Request::builder(gremlin_http::Method::Get, path)
                .request_id(id)
                .build(),
        )
    }

    /// Every `(src, dst)` edge covered by an agent route
    /// (deduplicated across replicas).
    pub fn edges(&self) -> Vec<(String, String)> {
        let mut edges = Vec::new();
        for (src, agent_list) in &self.agents {
            for agent in agent_list {
                for (dst, _) in agent.routes() {
                    edges.push((src.clone(), dst));
                }
            }
        }
        edges.sort();
        edges.dedup();
        edges
    }

    /// Flushes the rules of every agent (between chained test steps).
    pub fn clear_all_rules(&self) {
        for agent in self.agents.values().flatten() {
            GremlinAgent::clear_rules(agent);
        }
    }

    /// Names of all running services (sorted).
    pub fn service_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.services.keys().cloned().collect();
        names.sort();
        names
    }

    /// **Really** stops every replica of `name` and deregisters it —
    /// the ground truth Gremlin's *emulated* crash (TCP-reset rules)
    /// approximates without touching the service (§3.1). Returns
    /// `false` when no such service runs.
    ///
    /// Unlike an emulated crash this cannot be undone, affects every
    /// flow (not just `test-*`), and leaves the agents' route tables
    /// pointing at dead ports.
    pub fn kill_service(&mut self, name: &str) -> bool {
        match self.services.remove(name) {
            Some(service) => {
                self.registry.deregister_service(name);
                service.shutdown();
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behaviors::{Aggregator, StaticResponder};
    use crate::client::ResiliencePolicy;
    use gremlin_proxy::{AbortKind, Rule};
    use gremlin_store::Query;

    fn two_tier() -> Deployment {
        Deployment::builder()
            .service(ServiceSpec::new("serviceB", StaticResponder::ok("b-data")))
            .service(
                ServiceSpec::new("serviceA", Aggregator::new(vec!["serviceB".into()], "/api"))
                    .dependency("serviceB", ResiliencePolicy::new()),
            )
            .ingress("user", "serviceA")
            .seed(11)
            .build()
            .unwrap()
    }

    #[test]
    fn traffic_flows_through_agents_and_is_logged() {
        let deployment = two_tier();
        let resp = deployment.call_with_id("serviceA", "/", "test-1").unwrap();
        assert_eq!(resp.body_str(), "serviceB=ok");

        // Both the user->serviceA and serviceA->serviceB hops were
        // observed.
        let store = deployment.store();
        assert_eq!(store.query(&Query::requests("user", "serviceA")).len(), 1);
        assert_eq!(
            store.query(&Query::requests("serviceA", "serviceB")).len(),
            1
        );
        let reply = &store.query(&Query::replies("serviceA", "serviceB"))[0];
        assert_eq!(reply.request_id.as_deref(), Some("test-1"));
    }

    #[test]
    fn fault_injection_on_inner_edge() {
        let deployment = two_tier();
        deployment
            .agent("serviceA")
            .unwrap()
            .install_rules(&[
                Rule::abort("serviceA", "serviceB", AbortKind::Status(503)).with_pattern("test-*")
            ])
            .unwrap();
        let resp = deployment.call_with_id("serviceA", "/", "test-2").unwrap();
        // Aggregator tolerates the failure gracefully.
        assert_eq!(resp.body_str(), "serviceB=error(503)");
        deployment.clear_all_rules();
        let resp = deployment.call_with_id("serviceA", "/", "test-3").unwrap();
        assert_eq!(resp.body_str(), "serviceB=ok");
    }

    #[test]
    fn unproxied_baseline_has_no_agents() {
        let deployment = Deployment::builder()
            .service(ServiceSpec::new("serviceB", StaticResponder::ok("b")))
            .service(
                ServiceSpec::new("serviceA", Aggregator::new(vec!["serviceB".into()], "/"))
                    .dependency("serviceB", ResiliencePolicy::new()),
            )
            .proxied(false)
            .build()
            .unwrap();
        assert!(deployment.agents().is_empty());
        let resp = deployment.call_with_id("serviceA", "/", "test-1").unwrap();
        assert_eq!(resp.body_str(), "serviceB=ok");
        assert!(deployment.store().is_empty(), "no agents, no observations");
    }

    #[test]
    fn unknown_dependency_fails_build() {
        let err = Deployment::builder()
            .service(
                ServiceSpec::new("a", StaticResponder::ok(""))
                    .dependency("ghost", ResiliencePolicy::new()),
            )
            .build()
            .unwrap_err();
        assert!(matches!(err, MeshError::UnknownDependency(_)));
    }

    #[test]
    fn edges_and_names_enumerate() {
        let deployment = two_tier();
        assert_eq!(
            deployment.edges(),
            vec![
                ("serviceA".to_string(), "serviceB".to_string()),
                ("user".to_string(), "serviceA".to_string()),
            ]
        );
        assert_eq!(deployment.service_names(), vec!["serviceA", "serviceB"]);
        assert_eq!(deployment.controls().len(), 2);
    }

    #[test]
    fn cloned_builder_stamps_out_canaries() {
        let blueprint = Deployment::builder()
            .service(ServiceSpec::new("serviceB", StaticResponder::ok("b")))
            .service(
                ServiceSpec::new("serviceA", Aggregator::new(vec!["serviceB".into()], "/"))
                    .dependency("serviceB", ResiliencePolicy::new()),
            );
        let first = blueprint.clone().build().unwrap();
        let second = blueprint.build().unwrap();
        // Independent instances on independent ports.
        assert_ne!(
            first.service_addr("serviceA"),
            second.service_addr("serviceA")
        );
        first.call_with_id("serviceA", "/", "test-1").unwrap();
        assert!(!first.store().is_empty());
        assert!(second.store().is_empty(), "canary state is fresh");
    }

    #[test]
    fn replicas_get_proxied_round_robin() {
        let deployment = Deployment::builder()
            .service(ServiceSpec::new("serviceB", StaticResponder::ok("b")).replicas(2))
            .service(
                ServiceSpec::new("serviceA", Aggregator::new(vec!["serviceB".into()], "/"))
                    .dependency("serviceB", ResiliencePolicy::new()),
            )
            .build()
            .unwrap();
        for i in 0..4 {
            deployment
                .call_with_id("serviceA", "/", &format!("test-{i}"))
                .unwrap();
        }
        assert_eq!(
            deployment
                .store()
                .query(&Query::requests("serviceA", "serviceB"))
                .len(),
            4
        );
    }
}

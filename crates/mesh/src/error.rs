//! Error types for the microservice runtime.

use std::error::Error as StdError;
use std::fmt;

use gremlin_http::HttpError;

/// Errors surfaced to service behaviours when a dependency call
/// fails.
#[derive(Debug)]
#[non_exhaustive]
pub enum MeshError {
    /// The underlying HTTP exchange failed (timeout, connection
    /// refused/reset, protocol error). Behaviours with graceful
    /// degradation handle this variant.
    Http(HttpError),
    /// The circuit breaker guarding the dependency is open; the call
    /// was not attempted.
    CircuitOpen {
        /// The guarded dependency.
        dst: String,
    },
    /// The bulkhead guarding the dependency had no capacity left; the
    /// call was not attempted.
    BulkheadFull {
        /// The guarded dependency.
        dst: String,
    },
    /// The service has no configured dependency with this name.
    UnknownDependency(String),
    /// An error escaped the failure-handling library entirely — the
    /// model of the Unirest connect-timeout bug the paper's case
    /// study uncovered (§7.1). Behaviours do **not** handle this
    /// variant gracefully; the runtime turns it into a 500.
    Unhandled(String),
}

impl fmt::Display for MeshError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeshError::Http(err) => write!(f, "dependency call failed: {err}"),
            MeshError::CircuitOpen { dst } => write!(f, "circuit breaker open for {dst}"),
            MeshError::BulkheadFull { dst } => write!(f, "bulkhead full for {dst}"),
            MeshError::UnknownDependency(dst) => write!(f, "unknown dependency {dst:?}"),
            MeshError::Unhandled(msg) => write!(f, "unhandled library error: {msg}"),
        }
    }
}

impl StdError for MeshError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            MeshError::Http(err) => Some(err),
            _ => None,
        }
    }
}

impl From<HttpError> for MeshError {
    fn from(err: HttpError) -> Self {
        MeshError::Http(err)
    }
}

impl MeshError {
    /// Returns `true` if graceful failure-handling code is expected
    /// to catch this error (everything except
    /// [`MeshError::Unhandled`]).
    pub fn is_handleable(&self) -> bool {
        !matches!(self, MeshError::Unhandled(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for err in [
            MeshError::Http(HttpError::Timeout),
            MeshError::CircuitOpen { dst: "db".into() },
            MeshError::BulkheadFull { dst: "db".into() },
            MeshError::UnknownDependency("x".into()),
            MeshError::Unhandled("boom".into()),
        ] {
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn handleable_classification() {
        assert!(MeshError::Http(HttpError::Timeout).is_handleable());
        assert!(MeshError::CircuitOpen { dst: "d".into() }.is_handleable());
        assert!(!MeshError::Unhandled("x".into()).is_handleable());
    }

    #[test]
    fn source_chains_http() {
        let err = MeshError::Http(HttpError::Timeout);
        assert!(err.source().is_some());
    }
}

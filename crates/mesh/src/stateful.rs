//! Stateful service behaviours modelling the remaining Table 1
//! outages: a publish–subscribe message bus with bounded queues
//! (Parse.ly's "Kafkapocalypse", Stackdriver), a caching aggregator
//! (the BBC services that survived were the ones with local caches),
//! and a billing ledger (the Twilio double-billing incident).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use gremlin_http::{Request, Response, StatusCode};

use crate::error::MeshError;
use crate::service::{RequestContext, ServiceBehavior};

/// A publish–subscribe message bus with bounded per-topic queues.
///
/// Paths:
///
/// * `POST /publish/{topic}` — enqueue the body; `503` when the
///   topic's queue is full (publishers block/fail — the Parse.ly
///   cascade);
/// * `GET /consume/{topic}` — dequeue one message (`204` when empty);
/// * `GET /depth/{topic}` — current queue depth.
///
/// When a `forward_to` dependency is configured, every published
/// message is also forwarded downstream (`POST /write`) — the
/// Stackdriver topology where the bus drains into Cassandra. If the
/// forward fails, the message stays queued, so a dead store fills
/// the queues and eventually blocks publishers.
#[derive(Debug)]
pub struct MessageBus {
    capacity: usize,
    forward_to: Option<String>,
    topics: Mutex<HashMap<String, Vec<Vec<u8>>>>,
    published: AtomicU64,
    rejected: AtomicU64,
}

impl MessageBus {
    /// A bus with `capacity` messages per topic and no forwarding.
    pub fn new(capacity: usize) -> Arc<MessageBus> {
        Arc::new(MessageBus {
            capacity,
            forward_to: None,
            topics: Mutex::new(HashMap::new()),
            published: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        })
    }

    /// A bus that forwards each published message to `dst` and only
    /// dequeues on successful forwarding.
    pub fn forwarding(capacity: usize, dst: impl Into<String>) -> Arc<MessageBus> {
        Arc::new(MessageBus {
            capacity,
            forward_to: Some(dst.into()),
            topics: Mutex::new(HashMap::new()),
            published: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        })
    }

    /// Messages accepted since startup.
    pub fn published(&self) -> u64 {
        self.published.load(Ordering::Relaxed)
    }

    /// Publishes rejected because a queue was full.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Current depth of `topic`.
    pub fn depth(&self, topic: &str) -> usize {
        self.topics.lock().get(topic).map(Vec::len).unwrap_or(0)
    }
}

impl ServiceBehavior for Arc<MessageBus> {
    fn handle(&self, request: &Request, ctx: &RequestContext<'_>) -> Response {
        let path = request.path().to_string();
        if let Some(topic) = path.strip_prefix("/publish/") {
            // Try to drain to the downstream store first when
            // forwarding is configured.
            let forwarded = match &self.forward_to {
                Some(dst) => {
                    let mut forward = Request::builder(gremlin_http::Method::Post, "/write")
                        .body(request.body().clone())
                        .build();
                    if let Some(id) = ctx.request_id() {
                        forward.set_request_id(id.to_string());
                    }
                    matches!(
                        ctx.call(dst, forward),
                        Ok(resp) if resp.status().is_success()
                    )
                }
                None => true,
            };
            if forwarded && self.forward_to.is_some() {
                // Forwarded straight through; nothing left to queue.
                self.published.fetch_add(1, Ordering::Relaxed);
                return Response::ok("forwarded");
            }
            // Queue locally (either no forwarding, or the downstream
            // store failed and the message must wait).
            let mut topics = self.topics.lock();
            let queue = topics.entry(topic.to_string()).or_default();
            if queue.len() >= self.capacity {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                return Response::builder(StatusCode::SERVICE_UNAVAILABLE)
                    .body("queue full")
                    .build();
            }
            queue.push(request.body().to_vec());
            self.published.fetch_add(1, Ordering::Relaxed);
            Response::builder(StatusCode::ACCEPTED)
                .body("queued")
                .build()
        } else if let Some(topic) = path.strip_prefix("/consume/") {
            let mut topics = self.topics.lock();
            match topics.get_mut(topic).and_then(|queue| {
                if queue.is_empty() {
                    None
                } else {
                    Some(queue.remove(0))
                }
            }) {
                Some(message) => Response::ok(message),
                None => Response::builder(StatusCode::NO_CONTENT).build(),
            }
        } else if let Some(topic) = path.strip_prefix("/depth/") {
            Response::ok(self.depth(topic).to_string())
        } else {
            Response::error(StatusCode::NOT_FOUND)
        }
    }
}

/// An aggregator with a local response cache: on a dependency
/// failure it serves the last good response instead of an error —
/// the pattern that kept some BBC services alive during the 2014
/// database overload.
#[derive(Debug)]
pub struct CachingAggregator {
    backend: String,
    path: String,
    cache: Mutex<Option<String>>,
    cache_hits: AtomicU64,
}

impl CachingAggregator {
    /// Creates an aggregator over `GET {path}` on `backend` with an
    /// empty cache.
    pub fn new(backend: impl Into<String>, path: impl Into<String>) -> Arc<CachingAggregator> {
        Arc::new(CachingAggregator {
            backend: backend.into(),
            path: path.into(),
            cache: Mutex::new(None),
            cache_hits: AtomicU64::new(0),
        })
    }

    /// Times the cache satisfied a request during backend failure.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }
}

impl ServiceBehavior for Arc<CachingAggregator> {
    fn handle(&self, _request: &Request, ctx: &RequestContext<'_>) -> Response {
        match ctx.get(&self.backend, &self.path) {
            Ok(resp) if resp.status().is_success() => {
                let body = resp.body_str();
                *self.cache.lock() = Some(body.clone());
                Response::ok(format!("fresh:{body}"))
            }
            _ => match self.cache.lock().clone() {
                Some(cached) => {
                    self.cache_hits.fetch_add(1, Ordering::Relaxed);
                    Response::ok(format!("cached:{cached}"))
                }
                None => Response::builder(StatusCode::SERVICE_UNAVAILABLE)
                    .body("backend down and cache empty")
                    .build(),
            },
        }
    }
}

/// A payment backend keeping a charge ledger — the substrate of the
/// Twilio 2013 incident, where a database failure made the billing
/// service charge customers repeatedly.
///
/// `POST /charge` appends a charge attributed to the request's
/// Gremlin ID; `GET /charges` reports `id=count` lines. A correct
/// billing pipeline never produces two charges for one logical
/// payment; retrying a timed-out (but actually successful) charge
/// does exactly that.
#[derive(Debug, Default)]
pub struct ChargeLedger {
    charges: Mutex<HashMap<String, u64>>,
}

impl ChargeLedger {
    /// Creates an empty ledger.
    pub fn new() -> Arc<ChargeLedger> {
        Arc::new(ChargeLedger::default())
    }

    /// Charges recorded against `id`.
    pub fn charges_for(&self, id: &str) -> u64 {
        self.charges.lock().get(id).copied().unwrap_or(0)
    }

    /// IDs charged more than once — double-billed customers.
    pub fn double_billed(&self) -> Vec<String> {
        let mut ids: Vec<String> = self
            .charges
            .lock()
            .iter()
            .filter(|(_, count)| **count > 1)
            .map(|(id, _)| id.clone())
            .collect();
        ids.sort();
        ids
    }
}

impl ServiceBehavior for Arc<ChargeLedger> {
    fn handle(&self, request: &Request, ctx: &RequestContext<'_>) -> Response {
        match request.path() {
            "/charge" => {
                let id = ctx.request_id().unwrap_or("anonymous").to_string();
                let mut charges = self.charges.lock();
                *charges.entry(id.clone()).or_insert(0) += 1;
                Response::ok(format!("charged:{id}"))
            }
            "/charges" => {
                let charges = self.charges.lock();
                let mut lines: Vec<String> = charges
                    .iter()
                    .map(|(id, count)| format!("{id}={count}"))
                    .collect();
                lines.sort();
                Response::ok(lines.join("\n"))
            }
            _ => Response::error(StatusCode::NOT_FOUND),
        }
    }
}

/// The billing front-end calling the payment backend, optionally
/// retrying failed charges — **unsafe** for non-idempotent calls,
/// which is precisely the Twilio bug.
#[derive(Debug, Clone)]
pub struct BillingService {
    payments: String,
    retry_on_timeout: bool,
    max_tries: u32,
}

impl BillingService {
    /// A billing service that never retries charges.
    pub fn new(payments: impl Into<String>) -> BillingService {
        BillingService {
            payments: payments.into(),
            retry_on_timeout: false,
            max_tries: 1,
        }
    }

    /// Enables the buggy behaviour: timed-out charges are retried up
    /// to `max_tries` total attempts.
    pub fn with_naive_retries(mut self, max_tries: u32) -> BillingService {
        self.retry_on_timeout = true;
        self.max_tries = max_tries.max(1);
        self
    }
}

impl ServiceBehavior for BillingService {
    fn handle(&self, request: &Request, ctx: &RequestContext<'_>) -> Response {
        if request.path() != "/bill" {
            return Response::error(StatusCode::NOT_FOUND);
        }
        let attempts = if self.retry_on_timeout {
            self.max_tries
        } else {
            1
        };
        let mut last_error = None;
        for _ in 0..attempts {
            let charge = Request::builder(gremlin_http::Method::Post, "/charge").build();
            match ctx.call(&self.payments, charge) {
                Ok(resp) if resp.status().is_success() => {
                    return Response::ok(format!("billed;{}", resp.body_str()))
                }
                Ok(resp) => {
                    last_error = Some(format!("payment backend answered {}", resp.status()));
                }
                Err(MeshError::Http(err)) if err.is_timeout() => {
                    // The charge may or may not have landed. Retrying
                    // here is the bug.
                    last_error = Some("charge timed out".to_string());
                }
                Err(err) => {
                    last_error = Some(err.to_string());
                    break;
                }
            }
        }
        Response::builder(StatusCode::BAD_GATEWAY)
            .body(last_error.unwrap_or_else(|| "billing failed".to_string()))
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ResiliencePolicy;
    use crate::registry::ServiceRegistry;
    use crate::service::{Microservice, ServiceSpec};
    use gremlin_http::{HttpClient, Method};

    fn send(addr: std::net::SocketAddr, method: Method, path: &str, id: &str) -> Response {
        HttpClient::new()
            .send(addr, Request::builder(method, path).request_id(id).build())
            .unwrap()
    }

    #[test]
    fn message_bus_publish_consume() {
        let registry = ServiceRegistry::shared();
        let bus = MessageBus::new(2);
        let svc =
            Microservice::start(&ServiceSpec::new("bus", Arc::clone(&bus)), registry).unwrap();
        let resp = send(svc.addr(), Method::Post, "/publish/metrics", "test-1");
        assert_eq!(resp.status(), StatusCode::ACCEPTED);
        assert_eq!(bus.depth("metrics"), 1);
        let resp = send(svc.addr(), Method::Get, "/consume/metrics", "test-2");
        assert_eq!(resp.status(), StatusCode::OK);
        assert_eq!(bus.depth("metrics"), 0);
        let resp = send(svc.addr(), Method::Get, "/consume/metrics", "test-3");
        assert_eq!(resp.status(), StatusCode::NO_CONTENT);
    }

    #[test]
    fn message_bus_rejects_when_full() {
        let registry = ServiceRegistry::shared();
        let bus = MessageBus::new(2);
        let svc =
            Microservice::start(&ServiceSpec::new("bus", Arc::clone(&bus)), registry).unwrap();
        for i in 0..2 {
            let resp = send(svc.addr(), Method::Post, "/publish/t", &format!("test-{i}"));
            assert_eq!(resp.status(), StatusCode::ACCEPTED);
        }
        let resp = send(svc.addr(), Method::Post, "/publish/t", "test-overflow");
        assert_eq!(resp.status(), StatusCode::SERVICE_UNAVAILABLE);
        assert_eq!(bus.rejected(), 1);
        assert_eq!(bus.published(), 2);
        let resp = send(svc.addr(), Method::Get, "/depth/t", "test-d");
        assert_eq!(resp.body_str(), "2");
    }

    #[test]
    fn forwarding_bus_queues_when_store_is_down() {
        let registry = ServiceRegistry::shared();
        // No "store" service registered: forwards always fail.
        let bus = MessageBus::forwarding(3, "store");
        let svc = Microservice::start(
            &ServiceSpec::new("bus", Arc::clone(&bus)).dependency("store", ResiliencePolicy::new()),
            registry,
        )
        .unwrap();
        for i in 0..3 {
            let resp = send(svc.addr(), Method::Post, "/publish/t", &format!("test-{i}"));
            assert_eq!(
                resp.status(),
                StatusCode::ACCEPTED,
                "queued while store down"
            );
        }
        // The queue is now full: the failure has percolated to
        // publishers.
        let resp = send(svc.addr(), Method::Post, "/publish/t", "test-x");
        assert_eq!(resp.status(), StatusCode::SERVICE_UNAVAILABLE);
        assert_eq!(bus.depth("t"), 3);
    }

    #[test]
    fn forwarding_bus_passes_through_when_store_up() {
        let registry = ServiceRegistry::shared();
        let _store = Microservice::start(
            &ServiceSpec::new("store", crate::behaviors::StaticResponder::ok("stored")),
            Arc::clone(&registry),
        )
        .unwrap();
        let bus = MessageBus::forwarding(2, "store");
        let svc = Microservice::start(
            &ServiceSpec::new("bus", Arc::clone(&bus)).dependency("store", ResiliencePolicy::new()),
            registry,
        )
        .unwrap();
        let resp = send(svc.addr(), Method::Post, "/publish/t", "test-1");
        assert_eq!(resp.status(), StatusCode::OK);
        assert_eq!(resp.body_str(), "forwarded");
        assert_eq!(bus.depth("t"), 0);
    }

    #[test]
    fn caching_aggregator_serves_stale_on_failure() {
        let registry = ServiceRegistry::shared();
        let backend = Microservice::start(
            &ServiceSpec::new("db", crate::behaviors::StaticResponder::ok("rows-v1")),
            Arc::clone(&registry),
        )
        .unwrap();
        let cache = CachingAggregator::new("db", "/q");
        let svc = Microservice::start(
            &ServiceSpec::new("web", Arc::clone(&cache)).dependency(
                "db",
                ResiliencePolicy::new().timeout(std::time::Duration::from_millis(500)),
            ),
            Arc::clone(&registry),
        )
        .unwrap();

        // Warm the cache.
        let resp = send(svc.addr(), Method::Get, "/", "test-1");
        assert_eq!(resp.body_str(), "fresh:rows-v1");

        // Kill the backend for real; the cache takes over.
        backend.shutdown();
        registry.deregister_service("db");
        let resp = send(svc.addr(), Method::Get, "/", "test-2");
        assert_eq!(resp.body_str(), "cached:rows-v1");
        assert_eq!(cache.cache_hits(), 1);
    }

    #[test]
    fn caching_aggregator_cold_cache_fails() {
        let registry = ServiceRegistry::shared();
        let cache = CachingAggregator::new("db", "/q");
        let svc = Microservice::start(
            &ServiceSpec::new("web", cache).dependency("db", ResiliencePolicy::new()),
            registry,
        )
        .unwrap();
        let resp = send(svc.addr(), Method::Get, "/", "test-1");
        assert_eq!(resp.status(), StatusCode::SERVICE_UNAVAILABLE);
    }

    #[test]
    fn charge_ledger_counts_per_flow() {
        let registry = ServiceRegistry::shared();
        let ledger = ChargeLedger::new();
        let svc = Microservice::start(&ServiceSpec::new("payments", Arc::clone(&ledger)), registry)
            .unwrap();
        send(svc.addr(), Method::Post, "/charge", "test-cust-1");
        send(svc.addr(), Method::Post, "/charge", "test-cust-1");
        send(svc.addr(), Method::Post, "/charge", "test-cust-2");
        assert_eq!(ledger.charges_for("test-cust-1"), 2);
        assert_eq!(ledger.charges_for("test-cust-2"), 1);
        assert_eq!(ledger.double_billed(), vec!["test-cust-1".to_string()]);
        let resp = send(svc.addr(), Method::Get, "/charges", "test-q");
        assert_eq!(resp.body_str(), "test-cust-1=2\ntest-cust-2=1");
    }

    #[test]
    fn billing_service_happy_path_charges_once() {
        let registry = ServiceRegistry::shared();
        let ledger = ChargeLedger::new();
        let _payments = Microservice::start(
            &ServiceSpec::new("payments", Arc::clone(&ledger)),
            Arc::clone(&registry),
        )
        .unwrap();
        let billing = Microservice::start(
            &ServiceSpec::new(
                "billing",
                BillingService::new("payments").with_naive_retries(3),
            )
            .dependency(
                "payments",
                ResiliencePolicy::new().timeout(std::time::Duration::from_secs(1)),
            ),
            registry,
        )
        .unwrap();
        let resp = send(billing.addr(), Method::Post, "/bill", "test-cust-9");
        assert_eq!(resp.status(), StatusCode::OK);
        assert_eq!(ledger.charges_for("test-cust-9"), 1);
        assert!(ledger.double_billed().is_empty());
    }
}

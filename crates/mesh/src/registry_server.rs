//! An HTTP face for the [`ServiceRegistry`] — the "service registry"
//! the paper's sidecars may fetch their dependency mappings from
//! (§6).
//!
//! The endpoint implements the discovery contract consumed by
//! `gremlin_proxy::discovery::fetch_instances`:
//!
//! | Method | Path                    | Effect                                   |
//! |--------|-------------------------|------------------------------------------|
//! | GET    | `/instances/{service}`  | JSON array of `"ip:port"` strings        |
//! | GET    | `/services`             | JSON array of known service names        |
//! | POST   | `/register/{service}`   | register the instance given in the body  |

use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::Arc;

use gremlin_http::{ConnInfo, HttpServer, Method, Request, Response, StatusCode};

use crate::error::MeshError;
use crate::registry::ServiceRegistry;

/// A running registry endpoint.
#[derive(Debug)]
pub struct RegistryServer {
    server: HttpServer,
    registry: Arc<ServiceRegistry>,
}

impl RegistryServer {
    /// Starts the endpoint on `addr`, serving `registry`.
    ///
    /// # Errors
    ///
    /// Returns an error if the address cannot be bound.
    pub fn start(
        registry: Arc<ServiceRegistry>,
        addr: impl ToSocketAddrs,
    ) -> Result<RegistryServer, MeshError> {
        let handler_registry = Arc::clone(&registry);
        let server = HttpServer::bind(addr, move |request: Request, _conn: &ConnInfo| {
            handle(&handler_registry, request)
        })
        .map_err(MeshError::Http)?;
        Ok(RegistryServer { server, registry })
    }

    /// The endpoint's address.
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// The registry behind the endpoint.
    pub fn registry(&self) -> &Arc<ServiceRegistry> {
        &self.registry
    }
}

fn handle(registry: &Arc<ServiceRegistry>, request: Request) -> Response {
    let path = request.path().to_string();
    match (request.method().clone(), path.as_str()) {
        (Method::Get, "/services") => json_ok(serde_json_array(registry.services().into_iter())),
        (Method::Get, _) if path.starts_with("/instances/") => {
            let service = &path["/instances/".len()..];
            let instances = registry
                .instances(service)
                .into_iter()
                .map(|addr| addr.to_string());
            json_ok(serde_json_array(instances))
        }
        (Method::Post, _) if path.starts_with("/register/") => {
            let service = path["/register/".len()..].to_string();
            let body = String::from_utf8_lossy(request.body()).trim().to_string();
            match body.parse::<SocketAddr>() {
                Ok(addr) => {
                    registry.register_instance(service, addr);
                    Response::builder(StatusCode::NO_CONTENT).build()
                }
                Err(err) => Response::builder(StatusCode::BAD_REQUEST)
                    .body(format!("bad instance address {body:?}: {err}"))
                    .build(),
            }
        }
        _ => Response::error(StatusCode::NOT_FOUND),
    }
}

fn json_ok(body: String) -> Response {
    Response::builder(StatusCode::OK)
        .header("Content-Type", "application/json")
        .body(body)
        .build()
}

/// Builds a JSON string array without pulling serde into the hot
/// path (names and addresses contain no characters needing escape).
fn serde_json_array(items: impl Iterator<Item = String>) -> String {
    let quoted: Vec<String> = items.map(|item| format!("\"{item}\"")).collect();
    format!("[{}]", quoted.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gremlin_http::HttpClient;

    fn addr(port: u16) -> SocketAddr {
        format!("127.0.0.1:{port}").parse().unwrap()
    }

    fn start() -> (RegistryServer, HttpClient) {
        let registry = ServiceRegistry::shared();
        registry.register_instance("db", addr(9001));
        registry.register_instance("db", addr(9002));
        let server = RegistryServer::start(registry, "127.0.0.1:0").unwrap();
        (server, HttpClient::new())
    }

    #[test]
    fn lists_instances_and_services() {
        let (server, client) = start();
        let resp = client
            .send(server.local_addr(), Request::get("/instances/db"))
            .unwrap();
        assert_eq!(resp.body_str(), "[\"127.0.0.1:9001\",\"127.0.0.1:9002\"]");
        let resp = client
            .send(server.local_addr(), Request::get("/services"))
            .unwrap();
        assert_eq!(resp.body_str(), "[\"db\"]");
        let resp = client
            .send(server.local_addr(), Request::get("/instances/ghost"))
            .unwrap();
        assert_eq!(resp.body_str(), "[]");
    }

    #[test]
    fn registers_new_instances() {
        let (server, client) = start();
        let resp = client
            .send(
                server.local_addr(),
                Request::builder(Method::Post, "/register/cache")
                    .body("127.0.0.1:7000")
                    .build(),
            )
            .unwrap();
        assert_eq!(resp.status(), StatusCode::NO_CONTENT);
        assert_eq!(server.registry().instances("cache"), vec![addr(7000)]);
    }

    #[test]
    fn rejects_bad_registration() {
        let (server, client) = start();
        let resp = client
            .send(
                server.local_addr(),
                Request::builder(Method::Post, "/register/cache")
                    .body("not-an-address")
                    .build(),
            )
            .unwrap();
        assert_eq!(resp.status(), StatusCode::BAD_REQUEST);
    }

    #[test]
    fn unknown_path_404s() {
        let (server, client) = start();
        let resp = client
            .send(server.local_addr(), Request::get("/whatever"))
            .unwrap();
        assert_eq!(resp.status(), StatusCode::NOT_FOUND);
    }

    #[test]
    fn agent_discovers_routes_through_the_endpoint() {
        use gremlin_http::HttpServer as Backend;
        use gremlin_proxy::{AgentConfig, GremlinAgent};
        use gremlin_store::EventStore;

        // A real backend registered under "db".
        let backend = Backend::bind("127.0.0.1:0", |_req: Request, _conn: &ConnInfo| {
            Response::ok("rows")
        })
        .unwrap();
        let registry = ServiceRegistry::shared();
        registry.register_instance("db", backend.local_addr());
        let endpoint = RegistryServer::start(registry, "127.0.0.1:0").unwrap();

        // The agent fetches its upstreams dynamically.
        let config = AgentConfig::new("web")
            .route_discovered("db", endpoint.local_addr())
            .unwrap();
        let agent = GremlinAgent::start(config, EventStore::shared()).unwrap();
        let client = HttpClient::new();
        let resp = client
            .send(agent.route_addr("db").unwrap(), Request::get("/q"))
            .unwrap();
        assert_eq!(resp.body_str(), "rows");
    }

    #[test]
    fn discovery_fails_for_unknown_service() {
        use gremlin_proxy::AgentConfig;
        let registry = ServiceRegistry::shared();
        let endpoint = RegistryServer::start(registry, "127.0.0.1:0").unwrap();
        assert!(AgentConfig::new("web")
            .route_discovered("ghost", endpoint.local_addr())
            .is_err());
    }
}

//! # gremlin-mesh
//!
//! A microservice runtime — the *system under test* for the Gremlin
//! resilience-testing framework (Heorhiadi et al., ICDCS 2016).
//!
//! The paper evaluates Gremlin against real applications (an IBM
//! enterprise app, WordPress + ElasticPress + MySQL, Docker-packaged
//! binary trees). This crate provides the equivalent substrate:
//!
//! * [`Microservice`] — named HTTP services with pluggable
//!   [`ServiceBehavior`] application logic and replica support;
//! * [`resilience`] — the §2.1 patterns (timeouts, bounded retries,
//!   circuit breakers, bulkheads), available per dependency edge via
//!   [`ResiliencePolicy`] — including deliberately *missing* or
//!   *buggy* variants, because that is what resilience testing
//!   uncovers;
//! * [`behaviors`] — models of the case-study applications;
//! * [`Deployment`] — whole applications wired through Gremlin agents
//!   over loopback TCP, matching the paper's sidecar model.
//!
//! # Examples
//!
//! ```
//! use gremlin_mesh::behaviors::StaticResponder;
//! use gremlin_mesh::{Deployment, ResiliencePolicy, ServiceSpec};
//! use gremlin_mesh::behaviors::Aggregator;
//!
//! # fn main() -> Result<(), gremlin_mesh::MeshError> {
//! let deployment = Deployment::builder()
//!     .service(ServiceSpec::new("serviceB", StaticResponder::ok("data")))
//!     .service(
//!         ServiceSpec::new("serviceA", Aggregator::new(vec!["serviceB".into()], "/api"))
//!             .dependency("serviceB", ResiliencePolicy::hardened()),
//!     )
//!     .build()?;
//!
//! let response = deployment.call_with_id("serviceA", "/", "test-1")?;
//! assert_eq!(response.body_str(), "serviceB=ok");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod behaviors;
pub mod client;
pub mod deployment;
pub mod error;
pub mod registry;
pub mod registry_server;
pub mod resilience;
pub mod service;
pub mod stateful;

pub use client::{DependencyClient, ResiliencePolicy};
pub use deployment::{Deployment, DeploymentBuilder};
pub use error::MeshError;
pub use registry::ServiceRegistry;
pub use registry_server::RegistryServer;
pub use service::{DependencySpec, Microservice, RequestContext, ServiceBehavior, ServiceSpec};

/// Result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, MeshError>;

//! Reusable service behaviours modelling the applications in the
//! paper's case studies and benchmarks (§7): static backends,
//! fan-out aggregators, fallback-style search (the
//! WordPress/ElasticPress study), path-routing front-ends (bulkhead
//! scenarios) and tree topologies (the scaling benchmark).

use std::time::Duration;

use gremlin_http::{Request, Response, StatusCode};

use crate::error::MeshError;
use crate::service::{RequestContext, ServiceBehavior};

/// Responds with a fixed status and body after simulating `work` of
/// processing time.
#[derive(Debug, Clone)]
pub struct StaticResponder {
    status: StatusCode,
    body: String,
    work: Duration,
}

impl StaticResponder {
    /// A `200 OK` responder with the given body.
    pub fn ok(body: impl Into<String>) -> StaticResponder {
        StaticResponder {
            status: StatusCode::OK,
            body: body.into(),
            work: Duration::ZERO,
        }
    }

    /// A responder with an arbitrary status.
    pub fn with_status(status: StatusCode, body: impl Into<String>) -> StaticResponder {
        StaticResponder {
            status,
            body: body.into(),
            work: Duration::ZERO,
        }
    }

    /// Adds simulated per-request processing time.
    pub fn work(mut self, work: Duration) -> StaticResponder {
        self.work = work;
        self
    }
}

impl ServiceBehavior for StaticResponder {
    fn handle(&self, _request: &Request, _ctx: &RequestContext<'_>) -> Response {
        if self.work > Duration::ZERO {
            std::thread::sleep(self.work);
        }
        Response::builder(self.status)
            .body(self.body.clone())
            .build()
    }
}

/// Calls every listed dependency in order and aggregates the results.
///
/// The aggregator tolerates individual failures (it reports them in
/// the body and still answers `200`, like a portal rendering partial
/// content) — except [`MeshError::Unhandled`] errors, which escape
/// the graceful path and produce a `500`, reproducing the Unirest
/// case study (§7.1).
#[derive(Debug, Clone)]
pub struct Aggregator {
    backends: Vec<String>,
    path: String,
}

impl Aggregator {
    /// Aggregates `GET {path}` across `backends`.
    pub fn new(backends: Vec<String>, path: impl Into<String>) -> Aggregator {
        Aggregator {
            backends,
            path: path.into(),
        }
    }
}

impl ServiceBehavior for Aggregator {
    fn handle(&self, _request: &Request, ctx: &RequestContext<'_>) -> Response {
        let mut parts = Vec::with_capacity(self.backends.len());
        for backend in &self.backends {
            match ctx.get(backend, &self.path) {
                Ok(resp) if resp.status().is_success() => {
                    parts.push(format!("{backend}=ok"));
                }
                Ok(resp) => {
                    parts.push(format!("{backend}=error({})", resp.status()));
                }
                Err(err) if err.is_handleable() => {
                    parts.push(format!("{backend}=unavailable"));
                }
                Err(err) => {
                    // The modeled library bug: the error percolates.
                    return Response::builder(StatusCode::INTERNAL_SERVER_ERROR)
                        .body(format!("unhandled error: {err}"))
                        .build();
                }
            }
        }
        Response::ok(parts.join(","))
    }
}

/// The WordPress + ElasticPress model (§7.1): try the primary search
/// backend, and on *any* graceful failure fall back to the secondary.
///
/// Crucially, the fallback only helps once the primary call
/// *returns* — with no timeout configured on the primary edge, an
/// injected delay stalls the whole request, which is exactly the bug
/// Figure 5 demonstrates.
#[derive(Debug, Clone)]
pub struct FallbackSearch {
    primary: String,
    secondary: String,
    path: String,
}

impl FallbackSearch {
    /// Searches `primary` first, falling back to `secondary`.
    pub fn new(
        primary: impl Into<String>,
        secondary: impl Into<String>,
        path: impl Into<String>,
    ) -> FallbackSearch {
        FallbackSearch {
            primary: primary.into(),
            secondary: secondary.into(),
            path: path.into(),
        }
    }
}

impl ServiceBehavior for FallbackSearch {
    fn handle(&self, _request: &Request, ctx: &RequestContext<'_>) -> Response {
        match ctx.get(&self.primary, &self.path) {
            Ok(resp) if resp.status().is_success() => {
                Response::ok(format!("source={};{}", self.primary, resp.body_str()))
            }
            Ok(_) | Err(_) => match ctx.get(&self.secondary, &self.path) {
                Ok(resp) if resp.status().is_success() => {
                    Response::ok(format!("source={};{}", self.secondary, resp.body_str()))
                }
                Ok(resp) => Response::builder(resp.status())
                    .body("both search backends failed")
                    .build(),
                Err(_) => Response::builder(StatusCode::SERVICE_UNAVAILABLE)
                    .body("both search backends unavailable")
                    .build(),
            },
        }
    }
}

/// Routes request paths to different dependencies — the bulkhead
/// scenario's front-end: `/slow/...` traffic hits a degraded
/// dependency while `/fast/...` traffic must keep flowing.
#[derive(Debug, Clone, Default)]
pub struct PathRouter {
    routes: Vec<(String, String, String)>,
}

impl PathRouter {
    /// Creates an empty router (unmatched paths get `404`).
    pub fn new() -> PathRouter {
        PathRouter::default()
    }

    /// Routes paths starting with `prefix` to `GET {path}` on `dst`.
    pub fn route(
        mut self,
        prefix: impl Into<String>,
        dst: impl Into<String>,
        path: impl Into<String>,
    ) -> PathRouter {
        self.routes.push((prefix.into(), dst.into(), path.into()));
        self
    }
}

impl ServiceBehavior for PathRouter {
    fn handle(&self, request: &Request, ctx: &RequestContext<'_>) -> Response {
        for (prefix, dst, path) in &self.routes {
            if request.path().starts_with(prefix.as_str()) {
                return match ctx.get(dst, path) {
                    Ok(resp) if resp.status().is_success() => {
                        Response::ok(format!("via={dst};{}", resp.body_str()))
                    }
                    Ok(resp) => Response::builder(resp.status())
                        .body(format!("{dst} failed"))
                        .build(),
                    Err(MeshError::BulkheadFull { .. }) => {
                        Response::builder(StatusCode::TOO_MANY_REQUESTS)
                            .body(format!("{dst} bulkhead full"))
                            .build()
                    }
                    Err(MeshError::CircuitOpen { .. }) => {
                        Response::builder(StatusCode::SERVICE_UNAVAILABLE)
                            .body(format!("{dst} circuit open"))
                            .build()
                    }
                    Err(err) if err.is_handleable() => Response::builder(StatusCode::BAD_GATEWAY)
                        .body(format!("{dst} unavailable"))
                        .build(),
                    Err(err) => Response::builder(StatusCode::INTERNAL_SERVER_ERROR)
                        .body(format!("unhandled error: {err}"))
                        .build(),
                };
            }
        }
        Response::error(StatusCode::NOT_FOUND)
    }
}

/// Calls a fixed list of children and succeeds only if all succeed —
/// the node behaviour for the binary-tree topologies of the paper's
/// scaling benchmark (§7.2).
#[derive(Debug, Clone)]
pub struct TreeNode {
    children: Vec<String>,
}

impl TreeNode {
    /// A node calling the given children (a leaf when empty).
    pub fn new(children: Vec<String>) -> TreeNode {
        TreeNode { children }
    }
}

impl ServiceBehavior for TreeNode {
    fn handle(&self, _request: &Request, ctx: &RequestContext<'_>) -> Response {
        let mut descendants = 0u64;
        for child in &self.children {
            match ctx.get(child, "/tree") {
                Ok(resp) if resp.status().is_success() => {
                    descendants += 1 + resp.body_str().trim().parse::<u64>().unwrap_or(0);
                }
                Ok(resp) => {
                    return Response::builder(resp.status())
                        .body(format!("child {child} failed"))
                        .build()
                }
                Err(err) if err.is_handleable() => {
                    return Response::builder(StatusCode::BAD_GATEWAY)
                        .body(format!("child {child} unavailable"))
                        .build()
                }
                Err(err) => {
                    return Response::builder(StatusCode::INTERNAL_SERVER_ERROR)
                        .body(format!("unhandled error: {err}"))
                        .build()
                }
            }
        }
        // Body carries the number of reachable descendants, letting
        // tests verify the whole tree was traversed.
        Response::ok(descendants.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ResiliencePolicy;
    use crate::registry::ServiceRegistry;
    use crate::service::{Microservice, ServiceSpec};
    use gremlin_http::HttpClient;
    use std::sync::Arc;

    fn get(addr: std::net::SocketAddr, path: &str) -> Response {
        HttpClient::new().send(addr, Request::get(path)).unwrap()
    }

    #[test]
    fn static_responder() {
        let registry = ServiceRegistry::shared();
        let svc = Microservice::start(
            &ServiceSpec::new("s", StaticResponder::ok("hello")),
            registry,
        )
        .unwrap();
        assert_eq!(get(svc.addr(), "/").body_str(), "hello");
    }

    #[test]
    fn aggregator_partial_failure_is_tolerated() {
        let registry = ServiceRegistry::shared();
        let _up = Microservice::start(
            &ServiceSpec::new("up", StaticResponder::ok("x")),
            Arc::clone(&registry),
        )
        .unwrap();
        let _down = Microservice::start(
            &ServiceSpec::new(
                "down",
                StaticResponder::with_status(StatusCode::SERVICE_UNAVAILABLE, ""),
            ),
            Arc::clone(&registry),
        )
        .unwrap();
        let agg = Microservice::start(
            &ServiceSpec::new(
                "agg",
                Aggregator::new(vec!["up".into(), "down".into(), "ghost".into()], "/"),
            )
            .dependency("up", ResiliencePolicy::new())
            .dependency("down", ResiliencePolicy::new())
            .dependency("ghost", ResiliencePolicy::new()),
            registry,
        )
        .unwrap();
        let resp = get(agg.addr(), "/");
        assert_eq!(resp.status(), StatusCode::OK);
        assert_eq!(resp.body_str(), "up=ok,down=error(503),ghost=unavailable");
    }

    #[test]
    fn fallback_search_uses_secondary_on_error() {
        let registry = ServiceRegistry::shared();
        let _primary = Microservice::start(
            &ServiceSpec::new(
                "es",
                StaticResponder::with_status(StatusCode::SERVICE_UNAVAILABLE, ""),
            ),
            Arc::clone(&registry),
        )
        .unwrap();
        let _secondary = Microservice::start(
            &ServiceSpec::new("mysql", StaticResponder::ok("rows")),
            Arc::clone(&registry),
        )
        .unwrap();
        let wp = Microservice::start(
            &ServiceSpec::new("wp", FallbackSearch::new("es", "mysql", "/search"))
                .dependency("es", ResiliencePolicy::new())
                .dependency("mysql", ResiliencePolicy::new()),
            registry,
        )
        .unwrap();
        let resp = get(wp.addr(), "/search");
        assert_eq!(resp.body_str(), "source=mysql;rows");
    }

    #[test]
    fn fallback_search_prefers_primary() {
        let registry = ServiceRegistry::shared();
        let _primary = Microservice::start(
            &ServiceSpec::new("es", StaticResponder::ok("hits")),
            Arc::clone(&registry),
        )
        .unwrap();
        let _secondary = Microservice::start(
            &ServiceSpec::new("mysql", StaticResponder::ok("rows")),
            Arc::clone(&registry),
        )
        .unwrap();
        let wp = Microservice::start(
            &ServiceSpec::new("wp", FallbackSearch::new("es", "mysql", "/search"))
                .dependency("es", ResiliencePolicy::new())
                .dependency("mysql", ResiliencePolicy::new()),
            registry,
        )
        .unwrap();
        assert_eq!(get(wp.addr(), "/search").body_str(), "source=es;hits");
    }

    #[test]
    fn fallback_search_both_down() {
        let registry = ServiceRegistry::shared();
        let wp = Microservice::start(
            &ServiceSpec::new("wp", FallbackSearch::new("es", "mysql", "/search"))
                .dependency("es", ResiliencePolicy::new())
                .dependency("mysql", ResiliencePolicy::new()),
            registry,
        )
        .unwrap();
        let resp = get(wp.addr(), "/search");
        assert_eq!(resp.status(), StatusCode::SERVICE_UNAVAILABLE);
    }

    #[test]
    fn path_router_routes_by_prefix() {
        let registry = ServiceRegistry::shared();
        let _a = Microservice::start(
            &ServiceSpec::new("svc-a", StaticResponder::ok("A")),
            Arc::clone(&registry),
        )
        .unwrap();
        let _b = Microservice::start(
            &ServiceSpec::new("svc-b", StaticResponder::ok("B")),
            Arc::clone(&registry),
        )
        .unwrap();
        let router = Microservice::start(
            &ServiceSpec::new(
                "router",
                PathRouter::new()
                    .route("/a", "svc-a", "/work")
                    .route("/b", "svc-b", "/work"),
            )
            .dependency("svc-a", ResiliencePolicy::new())
            .dependency("svc-b", ResiliencePolicy::new()),
            registry,
        )
        .unwrap();
        assert_eq!(get(router.addr(), "/a/1").body_str(), "via=svc-a;A");
        assert_eq!(get(router.addr(), "/b/2").body_str(), "via=svc-b;B");
        assert_eq!(get(router.addr(), "/c").status(), StatusCode::NOT_FOUND);
    }

    #[test]
    fn tree_node_counts_descendants() {
        let registry = ServiceRegistry::shared();
        let _leaf1 = Microservice::start(
            &ServiceSpec::new("leaf1", TreeNode::new(vec![])),
            Arc::clone(&registry),
        )
        .unwrap();
        let _leaf2 = Microservice::start(
            &ServiceSpec::new("leaf2", TreeNode::new(vec![])),
            Arc::clone(&registry),
        )
        .unwrap();
        let root = Microservice::start(
            &ServiceSpec::new("root", TreeNode::new(vec!["leaf1".into(), "leaf2".into()]))
                .dependency("leaf1", ResiliencePolicy::new())
                .dependency("leaf2", ResiliencePolicy::new()),
            registry,
        )
        .unwrap();
        assert_eq!(get(root.addr(), "/tree").body_str(), "2");
    }

    #[test]
    fn tree_node_fails_when_child_unavailable() {
        let registry = ServiceRegistry::shared();
        let root = Microservice::start(
            &ServiceSpec::new("root", TreeNode::new(vec!["missing".into()]))
                .dependency("missing", ResiliencePolicy::new()),
            registry,
        )
        .unwrap();
        let resp = get(root.addr(), "/tree");
        assert_eq!(resp.status(), StatusCode::BAD_GATEWAY);
    }
}

//! Service discovery for the mesh: who runs where, and which address
//! a caller should dial for each dependency.
//!
//! The paper's sidecar model (§6) configures each service proxy with
//! mappings `localhost:<port>` → list of remote instances, statically
//! or from a service registry. This registry plays that role for the
//! whole deployment: it records every service instance, and a *route*
//! per `(src, dst)` edge pointing the caller at its local Gremlin
//! agent (or directly at the destination in unproxied baselines).

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;

use parking_lot::RwLock;

/// The registry key for one replica of a service: `name#replica`.
///
/// Routes can be registered per instance (each replica dials its own
/// sidecar agent, paper Figure 3); [`ServiceRegistry::resolve`] falls
/// back from the instance key to the bare service name and finally
/// to direct instances of the destination.
pub fn instance_key(service: &str, replica: usize) -> String {
    format!("{service}#{replica}")
}

/// Shared, concurrently updatable service registry.
#[derive(Debug, Default)]
pub struct ServiceRegistry {
    instances: RwLock<HashMap<String, Vec<SocketAddr>>>,
    routes: RwLock<HashMap<(String, String), SocketAddr>>,
}

impl ServiceRegistry {
    /// Creates an empty registry.
    pub fn new() -> ServiceRegistry {
        ServiceRegistry::default()
    }

    /// Creates an empty registry behind an [`Arc`].
    pub fn shared() -> Arc<ServiceRegistry> {
        Arc::new(ServiceRegistry::new())
    }

    /// Records an instance of `service` listening at `addr`.
    pub fn register_instance(&self, service: impl Into<String>, addr: SocketAddr) {
        self.instances
            .write()
            .entry(service.into())
            .or_default()
            .push(addr);
    }

    /// All known instances of `service`.
    pub fn instances(&self, service: &str) -> Vec<SocketAddr> {
        self.instances
            .read()
            .get(service)
            .cloned()
            .unwrap_or_default()
    }

    /// All registered service names (sorted for determinism).
    pub fn services(&self) -> Vec<String> {
        let mut names: Vec<String> = self.instances.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Sets the address `src` must dial to reach `dst` (normally the
    /// local Gremlin agent's route listener).
    pub fn set_route(&self, src: impl Into<String>, dst: impl Into<String>, addr: SocketAddr) {
        self.routes.write().insert((src.into(), dst.into()), addr);
    }

    /// Resolves the address `src` should dial for `dst`: an explicit
    /// route for the exact source key if present, else a route for
    /// the bare service name (when `src` is an instance key like
    /// `web#1`), else the first registered instance of `dst` (direct,
    /// unproxied communication).
    pub fn resolve(&self, src: &str, dst: &str) -> Option<SocketAddr> {
        let routes = self.routes.read();
        if let Some(addr) = routes.get(&(src.to_string(), dst.to_string())) {
            return Some(*addr);
        }
        if let Some((service, _)) = src.split_once('#') {
            if let Some(addr) = routes.get(&(service.to_string(), dst.to_string())) {
                return Some(*addr);
            }
        }
        drop(routes);
        self.instances
            .read()
            .get(dst)
            .and_then(|v| v.first().copied())
    }

    /// Removes all instances of `service` (emulating that every
    /// replica really went away, as opposed to Gremlin's emulated
    /// crashes).
    pub fn deregister_service(&self, service: &str) {
        self.instances.write().remove(service);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(port: u16) -> SocketAddr {
        format!("127.0.0.1:{port}").parse().unwrap()
    }

    #[test]
    fn register_and_list_instances() {
        let reg = ServiceRegistry::new();
        reg.register_instance("b", addr(1000));
        reg.register_instance("b", addr(1001));
        assert_eq!(reg.instances("b"), vec![addr(1000), addr(1001)]);
        assert!(reg.instances("missing").is_empty());
        assert_eq!(reg.services(), vec!["b".to_string()]);
    }

    #[test]
    fn resolve_prefers_route_over_instance() {
        let reg = ServiceRegistry::new();
        reg.register_instance("b", addr(1000));
        assert_eq!(reg.resolve("a", "b"), Some(addr(1000)));
        reg.set_route("a", "b", addr(2000));
        assert_eq!(reg.resolve("a", "b"), Some(addr(2000)));
        // Other callers still go direct.
        assert_eq!(reg.resolve("c", "b"), Some(addr(1000)));
    }

    #[test]
    fn resolve_unknown_is_none() {
        let reg = ServiceRegistry::new();
        assert_eq!(reg.resolve("a", "nothing"), None);
    }

    #[test]
    fn deregister_removes_instances() {
        let reg = ServiceRegistry::new();
        reg.register_instance("b", addr(1000));
        reg.deregister_service("b");
        assert_eq!(reg.resolve("a", "b"), None);
    }
}

//! The dependency client: application-side failure-handling logic.
//!
//! Every microservice in the mesh calls its dependencies through a
//! [`DependencyClient`] configured with a [`ResiliencePolicy`] — the
//! combination of timeout, bounded-retry, circuit-breaker and
//! bulkhead patterns (or their deliberate absence). This is the code
//! whose behaviour Gremlin recipes verify from the network.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use gremlin_http::{ClientConfig, HttpClient, Request, Response};

use crate::error::MeshError;
use crate::registry::ServiceRegistry;
use crate::resilience::{
    Bulkhead, BulkheadConfig, CallPool, CircuitBreaker, CircuitBreakerConfig, RetryPolicy,
};

/// The failure-handling configuration for one dependency edge.
///
/// The default policy is deliberately **naive** — no timeouts, no
/// retries, no breaker, no bulkhead — matching how much real-world
/// code ships (the paper's ElasticPress case study found exactly
/// this). Use the builder methods to add patterns.
///
/// # Examples
///
/// ```
/// use gremlin_mesh::{ResiliencePolicy};
/// use gremlin_mesh::resilience::RetryPolicy;
/// use std::time::Duration;
///
/// let policy = ResiliencePolicy::new()
///     .timeout(Duration::from_secs(1))
///     .retry(RetryPolicy::new(5));
/// assert_eq!(policy.read_timeout, Some(Duration::from_secs(1)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ResiliencePolicy {
    /// Deadline for TCP connection establishment.
    pub connect_timeout: Option<Duration>,
    /// Deadline for receiving the full response.
    pub read_timeout: Option<Duration>,
    /// Bounded-retry policy.
    pub retry: Option<RetryPolicy>,
    /// Circuit-breaker configuration.
    pub circuit_breaker: Option<CircuitBreakerConfig>,
    /// Bulkhead configuration.
    pub bulkhead: Option<BulkheadConfig>,
    /// Models the Unirest library bug from the paper's case study
    /// (§7.1): read timeouts are handled gracefully, but errors from
    /// the TCP connection phase escape the failure-handling layer as
    /// [`MeshError::Unhandled`].
    pub unirest_connect_bug: bool,
}

impl ResiliencePolicy {
    /// A policy with no resilience patterns at all.
    pub fn new() -> ResiliencePolicy {
        ResiliencePolicy::default()
    }

    /// A sensible hardened policy: 1 s connect / 2 s read timeouts,
    /// 3 retry attempts, a default circuit breaker and a default
    /// bulkhead.
    pub fn hardened() -> ResiliencePolicy {
        ResiliencePolicy {
            connect_timeout: Some(Duration::from_secs(1)),
            read_timeout: Some(Duration::from_secs(2)),
            retry: Some(RetryPolicy::default()),
            circuit_breaker: Some(CircuitBreakerConfig::default()),
            bulkhead: Some(BulkheadConfig::default()),
            unirest_connect_bug: false,
        }
    }

    /// Sets both connect and read timeouts to `timeout`.
    pub fn timeout(mut self, timeout: Duration) -> ResiliencePolicy {
        self.connect_timeout = Some(timeout);
        self.read_timeout = Some(timeout);
        self
    }

    /// Sets only the read timeout.
    pub fn read_timeout(mut self, timeout: Duration) -> ResiliencePolicy {
        self.read_timeout = Some(timeout);
        self
    }

    /// Sets only the connect timeout.
    pub fn connect_timeout(mut self, timeout: Duration) -> ResiliencePolicy {
        self.connect_timeout = Some(timeout);
        self
    }

    /// Adds a bounded-retry policy.
    pub fn retry(mut self, retry: RetryPolicy) -> ResiliencePolicy {
        self.retry = Some(retry);
        self
    }

    /// Adds a circuit breaker.
    pub fn circuit_breaker(mut self, config: CircuitBreakerConfig) -> ResiliencePolicy {
        self.circuit_breaker = Some(config);
        self
    }

    /// Adds a bulkhead.
    pub fn bulkhead(mut self, config: BulkheadConfig) -> ResiliencePolicy {
        self.bulkhead = Some(config);
        self
    }

    /// Enables the modeled Unirest connect-phase bug.
    pub fn with_unirest_connect_bug(mut self) -> ResiliencePolicy {
        self.unirest_connect_bug = true;
        self
    }
}

/// A policy-wrapped HTTP client for one `(src, dst)` dependency edge.
pub struct DependencyClient {
    src: String,
    dst: String,
    registry: Arc<ServiceRegistry>,
    http: HttpClient,
    retry: Option<RetryPolicy>,
    breaker: Option<Arc<CircuitBreaker>>,
    bulkhead: Option<Bulkhead>,
    shared_pool: Option<CallPool>,
    unirest_connect_bug: bool,
    calls: AtomicU64,
    failures: AtomicU64,
}

impl std::fmt::Debug for DependencyClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DependencyClient")
            .field("src", &self.src)
            .field("dst", &self.dst)
            .field("retry", &self.retry.is_some())
            .field("breaker", &self.breaker.is_some())
            .field("bulkhead", &self.bulkhead.is_some())
            .finish()
    }
}

impl DependencyClient {
    /// Creates a client for calls from `src` to `dst`, resolving the
    /// concrete address through `registry` at each call.
    pub fn new(
        src: impl Into<String>,
        dst: impl Into<String>,
        policy: &ResiliencePolicy,
        registry: Arc<ServiceRegistry>,
    ) -> DependencyClient {
        DependencyClient::with_shared_pool(src, dst, policy, registry, None)
    }

    /// Like [`DependencyClient::new`], but outbound calls draw from a
    /// service-wide shared [`CallPool`] **when the edge has no
    /// bulkhead** — the naive shared-thread-pool arrangement the
    /// bulkhead pattern exists to replace (§2.1). A configured
    /// bulkhead acts as the edge's private pool instead.
    pub fn with_shared_pool(
        src: impl Into<String>,
        dst: impl Into<String>,
        policy: &ResiliencePolicy,
        registry: Arc<ServiceRegistry>,
        shared_pool: Option<CallPool>,
    ) -> DependencyClient {
        let http = HttpClient::with_config(ClientConfig {
            connect_timeout: policy.connect_timeout,
            read_timeout: policy.read_timeout,
            write_timeout: policy.read_timeout,
            ..ClientConfig::default()
        });
        DependencyClient {
            src: src.into(),
            dst: dst.into(),
            registry,
            http,
            retry: policy.retry.clone(),
            breaker: policy
                .circuit_breaker
                .map(|c| Arc::new(CircuitBreaker::new(c))),
            bulkhead: policy.bulkhead.map(Bulkhead::new),
            shared_pool,
            unirest_connect_bug: policy.unirest_connect_bug,
            calls: AtomicU64::new(0),
            failures: AtomicU64::new(0),
        }
    }

    /// The destination service name.
    pub fn dst(&self) -> &str {
        &self.dst
    }

    /// The circuit breaker guarding this edge, if configured.
    pub fn breaker(&self) -> Option<&Arc<CircuitBreaker>> {
        self.breaker.as_ref()
    }

    /// The bulkhead guarding this edge, if configured.
    pub fn bulkhead(&self) -> Option<&Bulkhead> {
        self.bulkhead.as_ref()
    }

    /// Total logical calls issued (not counting retries).
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Logical calls that ultimately failed.
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    /// Issues `request` to the dependency, applying the configured
    /// resilience patterns.
    ///
    /// An HTTP response is returned even when its status is an error
    /// (the application decides what a `503` means); `Err` is
    /// reserved for calls that produced no response at all.
    ///
    /// # Errors
    ///
    /// * [`MeshError::BulkheadFull`] — rejected before attempting.
    /// * [`MeshError::CircuitOpen`] — breaker is open, failed fast.
    /// * [`MeshError::Http`] — transport failure after exhausting
    ///   retries.
    /// * [`MeshError::UnknownDependency`] — no address for `dst`.
    /// * [`MeshError::Unhandled`] — the modeled Unirest connect bug.
    pub fn call(&self, request: Request) -> Result<Response, MeshError> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        let mut _bulkhead_permit = None;
        let mut _pool_permit = None;
        match &self.bulkhead {
            Some(bulkhead) => match bulkhead.try_acquire() {
                Some(permit) => _bulkhead_permit = Some(permit),
                None => {
                    self.failures.fetch_add(1, Ordering::Relaxed);
                    return Err(MeshError::BulkheadFull {
                        dst: self.dst.clone(),
                    });
                }
            },
            None => {
                // No bulkhead: draw from the shared pool, blocking —
                // exactly how a degraded dependency exhausts it.
                if let Some(pool) = &self.shared_pool {
                    _pool_permit = Some(pool.acquire());
                }
            }
        };

        let result = self.call_with_retries(&request);
        if result.is_err() {
            self.failures.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    fn call_with_retries(&self, request: &Request) -> Result<Response, MeshError> {
        let max_tries = self.retry.as_ref().map(RetryPolicy::max_tries).unwrap_or(1);
        let mut attempt: u32 = 0;
        loop {
            if let Some(breaker) = &self.breaker {
                if !breaker.try_acquire() {
                    return Err(MeshError::CircuitOpen {
                        dst: self.dst.clone(),
                    });
                }
            }
            let addr = self
                .registry
                .resolve(&self.src, &self.dst)
                .ok_or_else(|| MeshError::UnknownDependency(self.dst.clone()))?;

            match self.http.send(addr, request.clone()) {
                Ok(response) if !response.status().is_server_error() => {
                    if let Some(breaker) = &self.breaker {
                        breaker.record_success();
                    }
                    return Ok(response);
                }
                Ok(error_response) => {
                    // 5xx: a failed API call for resilience purposes,
                    // but still a response the application can use.
                    if let Some(breaker) = &self.breaker {
                        breaker.record_failure();
                    }
                    attempt += 1;
                    if attempt >= max_tries {
                        return Ok(error_response);
                    }
                }
                Err(err) => {
                    if let Some(breaker) = &self.breaker {
                        breaker.record_failure();
                    }
                    attempt += 1;
                    if attempt >= max_tries {
                        if self.unirest_connect_bug && err.is_connection_error() {
                            // The modeled library bug: connect-phase
                            // errors escape the graceful handling
                            // path entirely.
                            return Err(MeshError::Unhandled(format!(
                                "unirest: unexpected connection error calling {}: {err}",
                                self.dst
                            )));
                        }
                        return Err(MeshError::Http(err));
                    }
                }
            }
            if let Some(retry) = &self.retry {
                let delay = retry.backoff().sample_delay(attempt - 1);
                if delay > Duration::ZERO {
                    std::thread::sleep(delay);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilience::Backoff;
    use gremlin_http::{ConnInfo, HttpServer, Response as HttpResponse, StatusCode};
    use std::sync::atomic::AtomicUsize;

    fn registry_with(dst: &str, addr: std::net::SocketAddr) -> Arc<ServiceRegistry> {
        let registry = ServiceRegistry::shared();
        registry.register_instance(dst, addr);
        registry
    }

    #[test]
    fn plain_call_succeeds() {
        let server = HttpServer::bind("127.0.0.1:0", |_req: Request, _conn: &ConnInfo| {
            HttpResponse::ok("fine")
        })
        .unwrap();
        let registry = registry_with("b", server.local_addr());
        let client = DependencyClient::new("a", "b", &ResiliencePolicy::new(), registry);
        let resp = client.call(Request::get("/")).unwrap();
        assert_eq!(resp.body_str(), "fine");
        assert_eq!(client.calls(), 1);
        assert_eq!(client.failures(), 0);
    }

    #[test]
    fn unknown_dependency_errors() {
        let registry = ServiceRegistry::shared();
        let client = DependencyClient::new("a", "ghost", &ResiliencePolicy::new(), registry);
        let err = client.call(Request::get("/")).unwrap_err();
        assert!(matches!(err, MeshError::UnknownDependency(_)));
    }

    #[test]
    fn retries_on_server_error_then_delivers_last_response() {
        let hits = Arc::new(AtomicUsize::new(0));
        let hits_in_handler = Arc::clone(&hits);
        let server = HttpServer::bind("127.0.0.1:0", move |_req: Request, _conn: &ConnInfo| {
            hits_in_handler.fetch_add(1, Ordering::SeqCst);
            HttpResponse::error(StatusCode::SERVICE_UNAVAILABLE)
        })
        .unwrap();
        let registry = registry_with("b", server.local_addr());
        let policy =
            ResiliencePolicy::new().retry(RetryPolicy::new(4).with_backoff(Backoff::none()));
        let client = DependencyClient::new("a", "b", &policy, registry);
        let resp = client.call(Request::get("/")).unwrap();
        assert_eq!(resp.status(), StatusCode::SERVICE_UNAVAILABLE);
        assert_eq!(hits.load(Ordering::SeqCst), 4, "bounded retries");
    }

    #[test]
    fn retries_recover_from_transient_failure() {
        let hits = Arc::new(AtomicUsize::new(0));
        let hits_in_handler = Arc::clone(&hits);
        let server = HttpServer::bind("127.0.0.1:0", move |_req: Request, _conn: &ConnInfo| {
            if hits_in_handler.fetch_add(1, Ordering::SeqCst) < 2 {
                HttpResponse::error(StatusCode::SERVICE_UNAVAILABLE)
            } else {
                HttpResponse::ok("recovered")
            }
        })
        .unwrap();
        let registry = registry_with("b", server.local_addr());
        let policy =
            ResiliencePolicy::new().retry(RetryPolicy::new(5).with_backoff(Backoff::none()));
        let client = DependencyClient::new("a", "b", &policy, registry);
        let resp = client.call(Request::get("/")).unwrap();
        assert_eq!(resp.body_str(), "recovered");
    }

    #[test]
    fn client_error_is_not_retried() {
        let hits = Arc::new(AtomicUsize::new(0));
        let hits_in_handler = Arc::clone(&hits);
        let server = HttpServer::bind("127.0.0.1:0", move |_req: Request, _conn: &ConnInfo| {
            hits_in_handler.fetch_add(1, Ordering::SeqCst);
            HttpResponse::error(StatusCode::NOT_FOUND)
        })
        .unwrap();
        let registry = registry_with("b", server.local_addr());
        let policy =
            ResiliencePolicy::new().retry(RetryPolicy::new(5).with_backoff(Backoff::none()));
        let client = DependencyClient::new("a", "b", &policy, registry);
        let resp = client.call(Request::get("/")).unwrap();
        assert_eq!(resp.status(), StatusCode::NOT_FOUND);
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn circuit_breaker_opens_and_fails_fast() {
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let registry = registry_with("b", dead);
        let policy = ResiliencePolicy::new()
            .connect_timeout(Duration::from_millis(200))
            .circuit_breaker(CircuitBreakerConfig {
                failure_threshold: 3,
                open_duration: Duration::from_secs(60),
                success_threshold: 1,
            });
        let client = DependencyClient::new("a", "b", &policy, registry);
        for _ in 0..3 {
            assert!(matches!(
                client.call(Request::get("/")).unwrap_err(),
                MeshError::Http(_)
            ));
        }
        // Breaker now open: failing fast without dialing.
        let err = client.call(Request::get("/")).unwrap_err();
        assert!(matches!(err, MeshError::CircuitOpen { .. }));
        assert_eq!(
            client.breaker().unwrap().state(),
            crate::resilience::CircuitState::Open
        );
    }

    #[test]
    fn bulkhead_rejects_when_full() {
        use std::thread;
        let server = HttpServer::bind("127.0.0.1:0", |_req: Request, _conn: &ConnInfo| {
            thread::sleep(Duration::from_millis(300));
            HttpResponse::ok("slow")
        })
        .unwrap();
        let registry = registry_with("b", server.local_addr());
        let policy = ResiliencePolicy::new().bulkhead(BulkheadConfig { max_concurrent: 1 });
        let client = Arc::new(DependencyClient::new("a", "b", &policy, registry));

        let background = {
            let client = Arc::clone(&client);
            thread::spawn(move || client.call(Request::get("/slow")))
        };
        thread::sleep(Duration::from_millis(80));
        let err = client.call(Request::get("/fast")).unwrap_err();
        assert!(matches!(err, MeshError::BulkheadFull { .. }));
        assert!(background.join().unwrap().is_ok());
    }

    #[test]
    fn read_timeout_fires_as_handleable_http_error() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let mut held = Vec::new();
            while let Ok((s, _)) = listener.accept() {
                held.push(s);
            }
        });
        let registry = registry_with("b", addr);
        let policy = ResiliencePolicy::new().read_timeout(Duration::from_millis(100));
        let client = DependencyClient::new("a", "b", &policy, registry);
        let err = client.call(Request::get("/")).unwrap_err();
        match err {
            MeshError::Http(http) => assert!(http.is_timeout()),
            other => panic!("expected http timeout, got {other}"),
        }
    }

    #[test]
    fn unirest_bug_escalates_connection_errors() {
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let registry = registry_with("b", dead);
        let policy = ResiliencePolicy::new()
            .read_timeout(Duration::from_millis(200))
            .with_unirest_connect_bug();
        let client = DependencyClient::new("a", "b", &policy, registry);
        let err = client.call(Request::get("/")).unwrap_err();
        assert!(matches!(err, MeshError::Unhandled(_)), "got {err}");
        assert!(!err.is_handleable());
    }

    #[test]
    fn unirest_bug_still_handles_read_timeouts_gracefully() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let mut held = Vec::new();
            while let Ok((s, _)) = listener.accept() {
                held.push(s);
            }
        });
        let registry = registry_with("b", addr);
        let policy = ResiliencePolicy::new()
            .read_timeout(Duration::from_millis(100))
            .with_unirest_connect_bug();
        let client = DependencyClient::new("a", "b", &policy, registry);
        let err = client.call(Request::get("/")).unwrap_err();
        assert!(err.is_handleable(), "read timeout must stay handleable");
    }
}

//! The microservice runtime: named services with pluggable behaviour,
//! per-dependency resilience policies, and replica support.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use gremlin_http::{
    header_names, ConnInfo, HttpError, HttpServer, Request, Response, ServerConfig, StatusCode,
};

use crate::client::{DependencyClient, ResiliencePolicy};
use crate::error::MeshError;
use crate::registry::ServiceRegistry;

/// Application logic of a microservice.
///
/// Behaviours receive the incoming request plus a [`RequestContext`]
/// through which they call dependencies; the context propagates the
/// Gremlin request ID downstream automatically, as real microservice
/// stacks propagate trace headers (paper §4.1).
pub trait ServiceBehavior: Send + Sync + 'static {
    /// Produces the response for `request`.
    fn handle(&self, request: &Request, ctx: &RequestContext<'_>) -> Response;
}

impl<F> ServiceBehavior for F
where
    F: Fn(&Request, &RequestContext<'_>) -> Response + Send + Sync + 'static,
{
    fn handle(&self, request: &Request, ctx: &RequestContext<'_>) -> Response {
        self(request, ctx)
    }
}

/// Per-request view a behaviour uses to reach its dependencies.
pub struct RequestContext<'a> {
    service: &'a str,
    request_id: Option<String>,
    span_id: Option<String>,
    deps: &'a HashMap<String, Arc<DependencyClient>>,
}

impl<'a> RequestContext<'a> {
    /// The name of the service handling the request.
    pub fn service(&self) -> &str {
        self.service
    }

    /// The propagated request ID, if the incoming request carried
    /// one.
    pub fn request_id(&self) -> Option<&str> {
        self.request_id.as_deref()
    }

    /// The span ID the upstream agent minted for the call currently
    /// being handled, if the incoming request carried one.
    pub fn span_id(&self) -> Option<&str> {
        self.span_id.as_deref()
    }

    /// Calls dependency `dst` with `request`, stamping the propagated
    /// request ID and span ID (so the sidecar agent can record this
    /// service's current span as the outbound call's parent) and
    /// applying the edge's resilience policy.
    ///
    /// # Errors
    ///
    /// See [`DependencyClient::call`]; additionally returns
    /// [`MeshError::UnknownDependency`] when `dst` was not declared
    /// in the service's spec.
    pub fn call(&self, dst: &str, mut request: Request) -> Result<Response, MeshError> {
        let client = self
            .deps
            .get(dst)
            .ok_or_else(|| MeshError::UnknownDependency(dst.to_string()))?;
        if let Some(id) = &self.request_id {
            if request.request_id().is_none() {
                request.set_request_id(id.clone());
            }
        }
        if let Some(span) = &self.span_id {
            if request.span_id().is_none() {
                request.set_span_id(span.clone());
            }
        }
        client.call(request)
    }

    /// Convenience: `GET path` on dependency `dst`.
    ///
    /// # Errors
    ///
    /// Same as [`RequestContext::call`].
    pub fn get(&self, dst: &str, path: &str) -> Result<Response, MeshError> {
        self.call(dst, Request::get(path))
    }

    /// Direct access to a dependency's client (to inspect breaker or
    /// bulkhead state).
    pub fn dependency(&self, dst: &str) -> Option<&Arc<DependencyClient>> {
        self.deps.get(dst)
    }

    /// Names of all declared dependencies (sorted).
    pub fn dependencies(&self) -> Vec<String> {
        let mut names: Vec<String> = self.deps.keys().cloned().collect();
        names.sort();
        names
    }
}

/// A declared dependency edge with its resilience policy.
#[derive(Debug, Clone)]
pub struct DependencySpec {
    /// Destination service name.
    pub dst: String,
    /// Failure-handling configuration for this edge.
    pub policy: ResiliencePolicy,
}

/// Static description of one microservice.
#[derive(Clone)]
pub struct ServiceSpec {
    /// Logical service name.
    pub name: String,
    /// Application logic.
    pub behavior: Arc<dyn ServiceBehavior>,
    /// Declared dependencies.
    pub dependencies: Vec<DependencySpec>,
    /// Number of instances to run.
    pub replicas: usize,
    /// Worker threads per instance.
    pub workers: usize,
    /// Size of the shared outbound-call pool; `None` leaves outbound
    /// concurrency unbounded. Dependencies with their own bulkhead
    /// bypass the shared pool (§2.1).
    pub shared_call_pool: Option<usize>,
}

impl std::fmt::Debug for ServiceSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceSpec")
            .field("name", &self.name)
            .field(
                "dependencies",
                &self.dependencies.iter().map(|d| &d.dst).collect::<Vec<_>>(),
            )
            .field("replicas", &self.replicas)
            .finish()
    }
}

impl ServiceSpec {
    /// Creates a spec for `name` with the given behaviour.
    pub fn new(name: impl Into<String>, behavior: impl ServiceBehavior) -> ServiceSpec {
        ServiceSpec {
            name: name.into(),
            behavior: Arc::new(behavior),
            dependencies: Vec::new(),
            replicas: 1,
            workers: 8,
            shared_call_pool: None,
        }
    }

    /// Declares a dependency on `dst` with `policy`.
    pub fn dependency(mut self, dst: impl Into<String>, policy: ResiliencePolicy) -> ServiceSpec {
        self.dependencies.push(DependencySpec {
            dst: dst.into(),
            policy,
        });
        self
    }

    /// Sets the replica count.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero.
    pub fn replicas(mut self, replicas: usize) -> ServiceSpec {
        assert!(replicas > 0, "replicas must be non-zero");
        self.replicas = replicas;
        self
    }

    /// Sets worker threads per instance.
    pub fn workers(mut self, workers: usize) -> ServiceSpec {
        self.workers = workers;
        self
    }

    /// Bounds outbound API-call concurrency with a shared pool of
    /// `slots` (the naive arrangement bulkheads replace).
    pub fn shared_call_pool(mut self, slots: usize) -> ServiceSpec {
        self.shared_call_pool = Some(slots);
        self
    }
}

/// A running microservice (possibly multiple replicas).
///
/// Instances register themselves in the [`ServiceRegistry`] at
/// startup; dropping the service stops every replica.
pub struct Microservice {
    name: String,
    servers: Vec<HttpServer>,
    /// Per-replica dependency clients — each instance owns its own
    /// clients (and call pool), like separate processes would.
    deps: Vec<Arc<HashMap<String, Arc<DependencyClient>>>>,
}

impl std::fmt::Debug for Microservice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Microservice")
            .field("name", &self.name)
            .field("replicas", &self.servers.len())
            .finish()
    }
}

impl Microservice {
    /// Starts every replica of the service described by `spec`,
    /// registering instances in `registry`.
    ///
    /// # Errors
    ///
    /// Returns an error if a listener cannot be bound.
    pub fn start(
        spec: &ServiceSpec,
        registry: Arc<ServiceRegistry>,
    ) -> Result<Microservice, MeshError> {
        let mut all_deps = Vec::with_capacity(spec.replicas);
        let mut servers = Vec::with_capacity(spec.replicas);
        for replica in 0..spec.replicas {
            // Each replica is its own "process": its own dependency
            // clients, its own shared call pool, and (in proxied
            // deployments) its own sidecar agent resolved through the
            // instance key.
            let shared_pool = spec.shared_call_pool.map(crate::resilience::CallPool::new);
            let source_key = crate::registry::instance_key(&spec.name, replica);
            let mut deps: HashMap<String, Arc<DependencyClient>> = HashMap::new();
            for dependency in &spec.dependencies {
                deps.insert(
                    dependency.dst.clone(),
                    Arc::new(DependencyClient::with_shared_pool(
                        source_key.clone(),
                        dependency.dst.clone(),
                        &dependency.policy,
                        Arc::clone(&registry),
                        shared_pool.clone(),
                    )),
                );
            }
            let deps = Arc::new(deps);
            all_deps.push(Arc::clone(&deps));

            let behavior = Arc::clone(&spec.behavior);
            let deps_for_handler = deps;
            let name = spec.name.clone();
            let server = HttpServer::bind_with_config(
                "127.0.0.1:0",
                move |request: Request, _conn: &ConnInfo| {
                    let ctx = RequestContext {
                        service: &name,
                        request_id: request.request_id().map(str::to_string),
                        span_id: request.span_id().map(str::to_string),
                        deps: &deps_for_handler,
                    };
                    let outcome =
                        catch_unwind(AssertUnwindSafe(|| behavior.handle(&request, &ctx)));
                    let mut response = match outcome {
                        Ok(response) => response,
                        Err(_) => Response::builder(StatusCode::INTERNAL_SERVER_ERROR)
                            .body("behavior panicked")
                            .build(),
                    };
                    // Echo the request ID so callers and agents can
                    // correlate.
                    if let Some(id) = request.request_id() {
                        response
                            .headers_mut()
                            .insert(header_names::REQUEST_ID, id.to_string());
                    }
                    response
                },
                ServerConfig {
                    workers: spec.workers,
                    name: format!("{}-{replica}", spec.name),
                    ..ServerConfig::default()
                },
            )
            .map_err(|err: HttpError| MeshError::Http(err))?;
            registry.register_instance(spec.name.clone(), server.local_addr());
            servers.push(server);
        }

        Ok(Microservice {
            name: spec.name.clone(),
            servers,
            deps: all_deps,
        })
    }

    /// The service's logical name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Address of the first replica.
    pub fn addr(&self) -> SocketAddr {
        self.servers[0].local_addr()
    }

    /// Addresses of every replica.
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.servers.iter().map(HttpServer::local_addr).collect()
    }

    /// Total requests served across replicas.
    pub fn requests_served(&self) -> usize {
        self.servers.iter().map(HttpServer::requests_served).sum()
    }

    /// The first replica's dependency client for `dst`, if declared.
    pub fn dependency(&self, dst: &str) -> Option<&Arc<DependencyClient>> {
        self.deps.first().and_then(|map| map.get(dst))
    }

    /// A specific replica's dependency client for `dst`.
    pub fn replica_dependency(&self, replica: usize, dst: &str) -> Option<&Arc<DependencyClient>> {
        self.deps.get(replica).and_then(|map| map.get(dst))
    }

    /// Stops every replica (also happens on drop).
    pub fn shutdown(self) {
        for server in self.servers {
            server.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gremlin_http::{HttpClient, Method};

    fn echo_behavior() -> impl ServiceBehavior {
        |request: &Request, ctx: &RequestContext<'_>| {
            Response::ok(format!(
                "{}:{}:{}",
                ctx.service(),
                request.path(),
                ctx.request_id().unwrap_or("-")
            ))
        }
    }

    #[test]
    fn starts_and_serves() {
        let registry = ServiceRegistry::shared();
        let spec = ServiceSpec::new("svc", echo_behavior());
        let service = Microservice::start(&spec, Arc::clone(&registry)).unwrap();
        let client = HttpClient::new();
        let resp = client
            .send(
                service.addr(),
                Request::builder(Method::Get, "/p")
                    .request_id("test-1")
                    .build(),
            )
            .unwrap();
        assert_eq!(resp.body_str(), "svc:/p:test-1");
        assert_eq!(resp.headers().get(header_names::REQUEST_ID), Some("test-1"));
        assert_eq!(registry.instances("svc").len(), 1);
    }

    #[test]
    fn replicas_all_register() {
        let registry = ServiceRegistry::shared();
        let spec = ServiceSpec::new("multi", echo_behavior()).replicas(3);
        let service = Microservice::start(&spec, Arc::clone(&registry)).unwrap();
        assert_eq!(service.addrs().len(), 3);
        assert_eq!(registry.instances("multi").len(), 3);
    }

    #[test]
    fn panicking_behavior_becomes_500() {
        let registry = ServiceRegistry::shared();
        let spec = ServiceSpec::new(
            "panicky",
            |_req: &Request, _ctx: &RequestContext<'_>| -> Response { panic!("boom") },
        );
        let service = Microservice::start(&spec, registry).unwrap();
        let client = HttpClient::new();
        let resp = client.send(service.addr(), Request::get("/")).unwrap();
        assert_eq!(resp.status(), StatusCode::INTERNAL_SERVER_ERROR);
    }

    #[test]
    fn context_calls_dependency_and_propagates_id() {
        let registry = ServiceRegistry::shared();
        let backend_spec =
            ServiceSpec::new("backend", |_req: &Request, ctx: &RequestContext<'_>| {
                Response::ok(format!("backend saw {}", ctx.request_id().unwrap_or("-")))
            });
        let _backend = Microservice::start(&backend_spec, Arc::clone(&registry)).unwrap();

        let front_spec =
            ServiceSpec::new(
                "front",
                |_req: &Request, ctx: &RequestContext<'_>| match ctx.get("backend", "/inner") {
                    Ok(resp) => Response::ok(format!("front got: {}", resp.body_str())),
                    Err(err) => Response::builder(StatusCode::BAD_GATEWAY)
                        .body(err.to_string())
                        .build(),
                },
            )
            .dependency("backend", ResiliencePolicy::new());
        let front = Microservice::start(&front_spec, registry).unwrap();

        let client = HttpClient::new();
        let resp = client
            .send(
                front.addr(),
                Request::builder(Method::Get, "/outer")
                    .request_id("test-xyz")
                    .build(),
            )
            .unwrap();
        assert_eq!(resp.body_str(), "front got: backend saw test-xyz");
    }

    #[test]
    fn context_forwards_span_header_to_dependency() {
        let registry = ServiceRegistry::shared();
        let backend_spec = ServiceSpec::new(
            "span-backend",
            |request: &Request, _ctx: &RequestContext<'_>| {
                Response::ok(format!("span={}", request.span_id().unwrap_or("-")))
            },
        );
        let _backend = Microservice::start(&backend_spec, Arc::clone(&registry)).unwrap();

        let front_spec = ServiceSpec::new(
            "span-front",
            |_req: &Request, ctx: &RequestContext<'_>| match ctx.get("span-backend", "/inner") {
                Ok(resp) => resp,
                Err(err) => Response::builder(StatusCode::BAD_GATEWAY)
                    .body(err.to_string())
                    .build(),
            },
        )
        .dependency("span-backend", ResiliencePolicy::new());
        let front = Microservice::start(&front_spec, registry).unwrap();

        let client = HttpClient::new();
        let with_span = Request::builder(Method::Get, "/outer")
            .header(header_names::SPAN_ID, "deadbeef00000001")
            .build();
        let resp = client.send(front.addr(), with_span).unwrap();
        // Without an agent between the services the header arrives
        // verbatim; with agents, each hop replaces it with a fresh
        // span and moves this one into X-Gremlin-Parent.
        assert_eq!(resp.body_str(), "span=deadbeef00000001");

        let resp = client.send(front.addr(), Request::get("/outer")).unwrap();
        assert_eq!(resp.body_str(), "span=-");
    }

    #[test]
    fn unknown_dependency_in_context() {
        let registry = ServiceRegistry::shared();
        let spec = ServiceSpec::new(
            "lonely",
            |_req: &Request, ctx: &RequestContext<'_>| match ctx.get("nobody", "/") {
                Err(MeshError::UnknownDependency(_)) => Response::ok("correctly unknown"),
                _ => Response::error(StatusCode::INTERNAL_SERVER_ERROR),
            },
        );
        let service = Microservice::start(&spec, registry).unwrap();
        let client = HttpClient::new();
        let resp = client.send(service.addr(), Request::get("/")).unwrap();
        assert_eq!(resp.body_str(), "correctly unknown");
    }

    #[test]
    fn dependencies_listing() {
        let registry = ServiceRegistry::shared();
        let spec = ServiceSpec::new("svc", |_req: &Request, ctx: &RequestContext<'_>| {
            Response::ok(ctx.dependencies().join(","))
        })
        .dependency("zeta", ResiliencePolicy::new())
        .dependency("alpha", ResiliencePolicy::new());
        let service = Microservice::start(&spec, registry).unwrap();
        let client = HttpClient::new();
        let resp = client.send(service.addr(), Request::get("/")).unwrap();
        assert_eq!(resp.body_str(), "alpha,zeta");
    }
}

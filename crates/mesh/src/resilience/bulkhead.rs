//! The bulkhead resilience pattern (paper §2.1).
//!
//! A bulkhead isolates each dependency behind its own concurrency
//! budget, so a degraded downstream service cannot exhaust the shared
//! resources (threads, connections) a microservice needs to keep
//! answering requests that do not touch the slow dependency.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Configuration for a [`Bulkhead`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BulkheadConfig {
    /// Maximum concurrent calls allowed through.
    pub max_concurrent: usize,
}

impl Default for BulkheadConfig {
    fn default() -> Self {
        BulkheadConfig { max_concurrent: 10 }
    }
}

#[derive(Debug)]
struct BulkheadState {
    in_flight: AtomicUsize,
    rejected: AtomicU64,
    admitted: AtomicU64,
}

/// A non-blocking concurrency limiter.
///
/// [`Bulkhead::try_acquire`] either admits the call (returning an
/// RAII [`BulkheadPermit`] that releases the slot on drop) or rejects
/// it immediately — degraded dependencies must not queue work.
///
/// # Examples
///
/// ```
/// use gremlin_mesh::resilience::{Bulkhead, BulkheadConfig};
///
/// let bulkhead = Bulkhead::new(BulkheadConfig { max_concurrent: 1 });
/// let permit = bulkhead.try_acquire().expect("first call admitted");
/// assert!(bulkhead.try_acquire().is_none(), "second concurrent call rejected");
/// drop(permit);
/// assert!(bulkhead.try_acquire().is_some(), "slot released");
/// ```
#[derive(Debug, Clone)]
pub struct Bulkhead {
    config: BulkheadConfig,
    state: Arc<BulkheadState>,
}

impl Bulkhead {
    /// Creates a bulkhead admitting at most
    /// [`max_concurrent`](BulkheadConfig::max_concurrent) calls.
    ///
    /// # Panics
    ///
    /// Panics if `max_concurrent` is zero.
    pub fn new(config: BulkheadConfig) -> Bulkhead {
        assert!(config.max_concurrent > 0, "max_concurrent must be non-zero");
        Bulkhead {
            config,
            state: Arc::new(BulkheadState {
                in_flight: AtomicUsize::new(0),
                rejected: AtomicU64::new(0),
                admitted: AtomicU64::new(0),
            }),
        }
    }

    /// The bulkhead's configuration.
    pub fn config(&self) -> &BulkheadConfig {
        &self.config
    }

    /// Attempts to claim a slot; `None` means the bulkhead is full
    /// and the call must be rejected.
    pub fn try_acquire(&self) -> Option<BulkheadPermit> {
        let mut current = self.state.in_flight.load(Ordering::Relaxed);
        loop {
            if current >= self.config.max_concurrent {
                self.state.rejected.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            match self.state.in_flight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.state.admitted.fetch_add(1, Ordering::Relaxed);
                    return Some(BulkheadPermit {
                        state: Arc::clone(&self.state),
                    });
                }
                Err(actual) => current = actual,
            }
        }
    }

    /// Calls currently holding a permit.
    pub fn in_flight(&self) -> usize {
        self.state.in_flight.load(Ordering::Relaxed)
    }

    /// Total calls rejected for lack of capacity.
    pub fn rejected(&self) -> u64 {
        self.state.rejected.load(Ordering::Relaxed)
    }

    /// Total calls admitted.
    pub fn admitted(&self) -> u64 {
        self.state.admitted.load(Ordering::Relaxed)
    }
}

/// RAII guard for a bulkhead slot; dropping it frees the slot.
pub struct BulkheadPermit {
    state: Arc<BulkheadState>,
}

impl fmt::Debug for BulkheadPermit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BulkheadPermit")
            .field("in_flight", &self.state.in_flight.load(Ordering::Relaxed))
            .finish()
    }
}

impl Drop for BulkheadPermit {
    fn drop(&mut self) {
        self.state.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn admits_up_to_capacity() {
        let b = Bulkhead::new(BulkheadConfig { max_concurrent: 3 });
        let p1 = b.try_acquire().unwrap();
        let p2 = b.try_acquire().unwrap();
        let p3 = b.try_acquire().unwrap();
        assert!(b.try_acquire().is_none());
        assert_eq!(b.in_flight(), 3);
        assert_eq!(b.admitted(), 3);
        assert_eq!(b.rejected(), 1);
        drop((p1, p2, p3));
        assert_eq!(b.in_flight(), 0);
    }

    #[test]
    fn permit_drop_frees_slot() {
        let b = Bulkhead::new(BulkheadConfig { max_concurrent: 1 });
        {
            let _p = b.try_acquire().unwrap();
            assert!(b.try_acquire().is_none());
        }
        assert!(b.try_acquire().is_some());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = Bulkhead::new(BulkheadConfig { max_concurrent: 0 });
    }

    #[test]
    fn clones_share_capacity() {
        let b = Bulkhead::new(BulkheadConfig { max_concurrent: 1 });
        let b2 = b.clone();
        let _p = b.try_acquire().unwrap();
        assert!(b2.try_acquire().is_none());
    }

    #[test]
    fn concurrent_acquire_never_exceeds_capacity() {
        let b = Bulkhead::new(BulkheadConfig { max_concurrent: 4 });
        let peak = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..16)
            .map(|_| {
                let b = b.clone();
                let peak = Arc::clone(&peak);
                thread::spawn(move || {
                    for _ in 0..50 {
                        if let Some(_permit) = b.try_acquire() {
                            peak.fetch_max(b.in_flight(), Ordering::SeqCst);
                            thread::sleep(Duration::from_micros(100));
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 4);
        assert_eq!(b.in_flight(), 0);
    }
}

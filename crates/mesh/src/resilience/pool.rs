//! A shared, blocking concurrency pool for outbound API calls — the
//! resource the bulkhead pattern protects.
//!
//! The paper's §2.1: *"If a shared thread pool is used to make API
//! calls to multiple microservices, thread pool resources can be
//! quickly exhausted when one of the downstream services degrades."*
//! [`CallPool`] models that shared pool: calls **block** waiting for
//! a slot, so a degraded dependency holding slots starves every other
//! dependency — unless per-dependency
//! [`Bulkhead`](crate::resilience::Bulkhead)s are used instead.

use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

#[derive(Debug)]
struct PoolState {
    in_use: Mutex<usize>,
    available: Condvar,
    capacity: usize,
}

/// A blocking semaphore shared by all of a service's outbound calls.
///
/// # Examples
///
/// ```
/// use gremlin_mesh::resilience::CallPool;
///
/// let pool = CallPool::new(2);
/// let a = pool.acquire();
/// let b = pool.acquire();
/// assert_eq!(pool.in_use(), 2);
/// drop(a);
/// let _c = pool.acquire(); // a slot was freed, returns immediately
/// drop(b);
/// ```
#[derive(Debug, Clone)]
pub struct CallPool {
    state: Arc<PoolState>,
}

impl CallPool {
    /// Creates a pool with `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> CallPool {
        assert!(capacity > 0, "call pool capacity must be non-zero");
        CallPool {
            state: Arc::new(PoolState {
                in_use: Mutex::new(0),
                available: Condvar::new(),
                capacity,
            }),
        }
    }

    /// Blocks until a slot is free, then claims it. The returned
    /// permit frees the slot on drop.
    pub fn acquire(&self) -> CallPoolPermit {
        let mut in_use = self.state.in_use.lock();
        while *in_use >= self.state.capacity {
            self.state.available.wait(&mut in_use);
        }
        *in_use += 1;
        CallPoolPermit {
            state: Arc::clone(&self.state),
        }
    }

    /// Claims a slot only if one is free.
    pub fn try_acquire(&self) -> Option<CallPoolPermit> {
        let mut in_use = self.state.in_use.lock();
        if *in_use >= self.state.capacity {
            return None;
        }
        *in_use += 1;
        Some(CallPoolPermit {
            state: Arc::clone(&self.state),
        })
    }

    /// Slots currently claimed.
    pub fn in_use(&self) -> usize {
        *self.state.in_use.lock()
    }

    /// Total slots.
    pub fn capacity(&self) -> usize {
        self.state.capacity
    }
}

/// RAII guard for a [`CallPool`] slot.
#[derive(Debug)]
pub struct CallPoolPermit {
    state: Arc<PoolState>,
}

impl Drop for CallPoolPermit {
    fn drop(&mut self) {
        let mut in_use = self.state.in_use.lock();
        *in_use -= 1;
        self.state.available.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::{Duration, Instant};

    #[test]
    fn acquire_and_release() {
        let pool = CallPool::new(2);
        let a = pool.acquire();
        assert_eq!(pool.in_use(), 1);
        let b = pool.try_acquire().unwrap();
        assert!(pool.try_acquire().is_none());
        drop(a);
        assert_eq!(pool.in_use(), 1);
        assert!(pool.try_acquire().is_some());
        drop(b);
        assert_eq!(pool.in_use(), 0);
        assert_eq!(pool.capacity(), 2);
    }

    #[test]
    fn acquire_blocks_until_free() {
        let pool = CallPool::new(1);
        let permit = pool.acquire();
        let pool_for_thread = pool.clone();
        let waiter = thread::spawn(move || {
            let started = Instant::now();
            let _p = pool_for_thread.acquire();
            started.elapsed()
        });
        thread::sleep(Duration::from_millis(100));
        drop(permit);
        let waited = waiter.join().unwrap();
        assert!(waited >= Duration::from_millis(80), "waited {waited:?}");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = CallPool::new(0);
    }

    #[test]
    fn contended_pool_never_exceeds_capacity() {
        let pool = CallPool::new(3);
        let peak = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..12)
            .map(|_| {
                let pool = pool.clone();
                let peak = Arc::clone(&peak);
                thread::spawn(move || {
                    for _ in 0..20 {
                        let _permit = pool.acquire();
                        let mut p = peak.lock();
                        *p = (*p).max(pool.in_use());
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert!(*peak.lock() <= 3);
        assert_eq!(pool.in_use(), 0);
    }
}

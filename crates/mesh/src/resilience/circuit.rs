//! The circuit-breaker resilience pattern (paper §2.1).
//!
//! A circuit breaker prevents failures from cascading along a
//! microservice chain. After `failure_threshold` consecutive failed
//! calls, the breaker *opens*: calls fail fast (the caller serves a
//! cached or default response) for `open_duration`. The breaker then
//! admits probe calls (*half-open*); `success_threshold` consecutive
//! successes close it again, and any probe failure re-opens it.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// Configuration for a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitBreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long the breaker stays open before admitting probes (the
    /// paper's `Tdelta`).
    pub open_duration: Duration,
    /// Consecutive probe successes required to close the breaker.
    pub success_threshold: u32,
}

impl Default for CircuitBreakerConfig {
    fn default() -> Self {
        CircuitBreakerConfig {
            failure_threshold: 5,
            open_duration: Duration::from_secs(30),
            success_threshold: 1,
        }
    }
}

/// The observable state of a circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CircuitState {
    /// Calls flow normally; consecutive failures are counted.
    Closed,
    /// Calls fail fast without reaching the dependency.
    Open,
    /// Probe calls are admitted to test whether the dependency
    /// recovered.
    HalfOpen,
}

impl fmt::Display for CircuitState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitState::Closed => f.write_str("closed"),
            CircuitState::Open => f.write_str("open"),
            CircuitState::HalfOpen => f.write_str("half-open"),
        }
    }
}

#[derive(Debug)]
struct BreakerInner {
    state: CircuitState,
    consecutive_failures: u32,
    consecutive_successes: u32,
    opened_at: Option<Instant>,
}

/// A thread-safe circuit breaker.
///
/// # Examples
///
/// ```
/// use gremlin_mesh::resilience::{CircuitBreaker, CircuitBreakerConfig, CircuitState};
/// use std::time::Duration;
///
/// let breaker = CircuitBreaker::new(CircuitBreakerConfig {
///     failure_threshold: 2,
///     open_duration: Duration::from_millis(50),
///     success_threshold: 1,
/// });
/// assert!(breaker.try_acquire());
/// breaker.record_failure();
/// breaker.record_failure();
/// assert_eq!(breaker.state(), CircuitState::Open);
/// assert!(!breaker.try_acquire()); // fails fast
/// ```
#[derive(Debug)]
pub struct CircuitBreaker {
    config: CircuitBreakerConfig,
    inner: Mutex<BreakerInner>,
    open_transitions: AtomicU64,
    fast_failures: AtomicU64,
}

impl CircuitBreaker {
    /// Creates a closed breaker with the given configuration.
    pub fn new(config: CircuitBreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            inner: Mutex::new(BreakerInner {
                state: CircuitState::Closed,
                consecutive_failures: 0,
                consecutive_successes: 0,
                opened_at: None,
            }),
            open_transitions: AtomicU64::new(0),
            fast_failures: AtomicU64::new(0),
        }
    }

    /// The breaker's configuration.
    pub fn config(&self) -> &CircuitBreakerConfig {
        &self.config
    }

    /// Asks permission to attempt a call. Returns `false` when the
    /// call must fail fast (breaker open). An open breaker whose
    /// `open_duration` has elapsed transitions to half-open and admits
    /// the call as a probe.
    pub fn try_acquire(&self) -> bool {
        let mut inner = self.inner.lock();
        match inner.state {
            CircuitState::Closed => true,
            CircuitState::HalfOpen => true,
            CircuitState::Open => {
                let expired = inner
                    .opened_at
                    .map(|at| at.elapsed() >= self.config.open_duration)
                    .unwrap_or(true);
                if expired {
                    inner.state = CircuitState::HalfOpen;
                    inner.consecutive_successes = 0;
                    true
                } else {
                    self.fast_failures.fetch_add(1, Ordering::Relaxed);
                    false
                }
            }
        }
    }

    /// Records a successful call.
    pub fn record_success(&self) {
        let mut inner = self.inner.lock();
        match inner.state {
            CircuitState::Closed => {
                inner.consecutive_failures = 0;
            }
            CircuitState::HalfOpen => {
                inner.consecutive_successes += 1;
                if inner.consecutive_successes >= self.config.success_threshold {
                    inner.state = CircuitState::Closed;
                    inner.consecutive_failures = 0;
                    inner.consecutive_successes = 0;
                    inner.opened_at = None;
                }
            }
            CircuitState::Open => {
                // A success from a call admitted before the trip;
                // ignored while open.
            }
        }
    }

    /// Records a failed call.
    pub fn record_failure(&self) {
        let mut inner = self.inner.lock();
        match inner.state {
            CircuitState::Closed => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= self.config.failure_threshold {
                    self.trip(&mut inner);
                }
            }
            CircuitState::HalfOpen => {
                // A failed probe re-opens immediately.
                self.trip(&mut inner);
            }
            CircuitState::Open => {}
        }
    }

    fn trip(&self, inner: &mut BreakerInner) {
        inner.state = CircuitState::Open;
        inner.opened_at = Some(Instant::now());
        inner.consecutive_successes = 0;
        self.open_transitions.fetch_add(1, Ordering::Relaxed);
    }

    /// The current state (an open breaker past its `open_duration`
    /// still reports `Open` until the next [`CircuitBreaker::try_acquire`]).
    pub fn state(&self) -> CircuitState {
        self.inner.lock().state
    }

    /// How many times the breaker has tripped open.
    pub fn open_transitions(&self) -> u64 {
        self.open_transitions.load(Ordering::Relaxed)
    }

    /// How many calls failed fast while the breaker was open.
    pub fn fast_failures(&self) -> u64 {
        self.fast_failures.load(Ordering::Relaxed)
    }

    /// Forces the breaker back to the closed state (for tests and
    /// manual recovery).
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        inner.state = CircuitState::Closed;
        inner.consecutive_failures = 0;
        inner.consecutive_successes = 0;
        inner.opened_at = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn quick_config() -> CircuitBreakerConfig {
        CircuitBreakerConfig {
            failure_threshold: 3,
            open_duration: Duration::from_millis(50),
            success_threshold: 2,
        }
    }

    #[test]
    fn stays_closed_below_threshold() {
        let b = CircuitBreaker::new(quick_config());
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), CircuitState::Closed);
        assert!(b.try_acquire());
    }

    #[test]
    fn success_resets_failure_count() {
        let b = CircuitBreaker::new(quick_config());
        b.record_failure();
        b.record_failure();
        b.record_success();
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), CircuitState::Closed);
    }

    #[test]
    fn trips_open_at_threshold_and_fails_fast() {
        let b = CircuitBreaker::new(quick_config());
        for _ in 0..3 {
            assert!(b.try_acquire());
            b.record_failure();
        }
        assert_eq!(b.state(), CircuitState::Open);
        assert!(!b.try_acquire());
        assert_eq!(b.open_transitions(), 1);
        assert_eq!(b.fast_failures(), 1);
    }

    #[test]
    fn half_open_after_open_duration() {
        let b = CircuitBreaker::new(quick_config());
        for _ in 0..3 {
            b.record_failure();
        }
        assert!(!b.try_acquire());
        thread::sleep(Duration::from_millis(60));
        assert!(b.try_acquire());
        assert_eq!(b.state(), CircuitState::HalfOpen);
    }

    #[test]
    fn probe_failure_reopens() {
        let b = CircuitBreaker::new(quick_config());
        for _ in 0..3 {
            b.record_failure();
        }
        thread::sleep(Duration::from_millis(60));
        assert!(b.try_acquire());
        b.record_failure();
        assert_eq!(b.state(), CircuitState::Open);
        assert!(!b.try_acquire());
        assert_eq!(b.open_transitions(), 2);
    }

    #[test]
    fn closes_after_success_threshold_probes() {
        let b = CircuitBreaker::new(quick_config());
        for _ in 0..3 {
            b.record_failure();
        }
        thread::sleep(Duration::from_millis(60));
        assert!(b.try_acquire());
        b.record_success();
        assert_eq!(b.state(), CircuitState::HalfOpen); // needs 2 successes
        assert!(b.try_acquire());
        b.record_success();
        assert_eq!(b.state(), CircuitState::Closed);
        assert!(b.try_acquire());
    }

    #[test]
    fn reset_closes_breaker() {
        let b = CircuitBreaker::new(quick_config());
        for _ in 0..3 {
            b.record_failure();
        }
        b.reset();
        assert_eq!(b.state(), CircuitState::Closed);
        assert!(b.try_acquire());
    }

    #[test]
    fn concurrent_failures_trip_once_per_episode() {
        let b = std::sync::Arc::new(CircuitBreaker::new(CircuitBreakerConfig {
            failure_threshold: 10,
            open_duration: Duration::from_secs(60),
            success_threshold: 1,
        }));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let b = std::sync::Arc::clone(&b);
                thread::spawn(move || {
                    for _ in 0..100 {
                        if b.try_acquire() {
                            b.record_failure();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.state(), CircuitState::Open);
        assert_eq!(b.open_transitions(), 1);
    }

    #[test]
    fn state_display() {
        assert_eq!(CircuitState::Closed.to_string(), "closed");
        assert_eq!(CircuitState::Open.to_string(), "open");
        assert_eq!(CircuitState::HalfOpen.to_string(), "half-open");
    }
}

//! The bounded-retry resilience pattern (paper §2.1).
//!
//! Bounded retries handle transient failures by retrying an API call
//! a limited number of times, usually with exponential backoff to
//! avoid overloading the callee.

use std::time::Duration;

use rand::Rng;

/// Exponential backoff schedule between retry attempts.
#[derive(Debug, Clone, PartialEq)]
pub struct Backoff {
    /// Delay before the first retry.
    pub base: Duration,
    /// Multiplier applied per subsequent retry.
    pub factor: f64,
    /// Upper bound on any single delay.
    pub max: Duration,
    /// When `true`, each delay is scaled by a uniform factor in
    /// `[0.5, 1.0]` to decorrelate retry storms.
    pub jitter: bool,
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff {
            base: Duration::from_millis(10),
            factor: 2.0,
            max: Duration::from_secs(5),
            jitter: false,
        }
    }
}

impl Backoff {
    /// A constant (non-growing) backoff.
    pub fn constant(delay: Duration) -> Backoff {
        Backoff {
            base: delay,
            factor: 1.0,
            max: delay,
            jitter: false,
        }
    }

    /// No waiting between retries.
    pub fn none() -> Backoff {
        Backoff::constant(Duration::ZERO)
    }

    /// The delay before retry number `retry` (0-based), before
    /// jitter.
    pub fn delay_for(&self, retry: u32) -> Duration {
        let scaled = self.base.as_secs_f64() * self.factor.powi(retry as i32);
        let capped = scaled.min(self.max.as_secs_f64());
        Duration::from_secs_f64(capped.max(0.0))
    }

    /// The delay before retry number `retry`, with jitter applied if
    /// enabled.
    pub fn sample_delay(&self, retry: u32) -> Duration {
        let delay = self.delay_for(retry);
        if self.jitter && delay > Duration::ZERO {
            let scale: f64 = rand::thread_rng().gen_range(0.5..=1.0);
            delay.mul_f64(scale)
        } else {
            delay
        }
    }
}

/// A bounded-retry policy: at most `max_tries` total attempts with
/// [`Backoff`] between them.
///
/// # Examples
///
/// ```
/// use gremlin_mesh::resilience::{Backoff, RetryPolicy};
/// use std::time::Duration;
///
/// let policy = RetryPolicy::new(3).with_backoff(Backoff::none());
/// let mut attempts = 0;
/// let result: Result<(), &str> = policy.run(|_attempt| {
///     attempts += 1;
///     Err("still failing")
/// });
/// assert!(result.is_err());
/// assert_eq!(attempts, 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    max_tries: u32,
    backoff: Backoff,
}

impl RetryPolicy {
    /// Creates a policy allowing `max_tries` total attempts (so
    /// `max_tries - 1` retries).
    ///
    /// # Panics
    ///
    /// Panics if `max_tries` is zero.
    pub fn new(max_tries: u32) -> RetryPolicy {
        assert!(max_tries > 0, "max_tries must be at least 1");
        RetryPolicy {
            max_tries,
            backoff: Backoff::default(),
        }
    }

    /// Builder-style: sets the backoff schedule.
    pub fn with_backoff(mut self, backoff: Backoff) -> RetryPolicy {
        self.backoff = backoff;
        self
    }

    /// Total attempts permitted.
    pub fn max_tries(&self) -> u32 {
        self.max_tries
    }

    /// The backoff schedule.
    pub fn backoff(&self) -> &Backoff {
        &self.backoff
    }

    /// Runs `op` until it succeeds or the attempt budget is spent,
    /// sleeping per the backoff schedule between attempts. `op`
    /// receives the 0-based attempt number.
    ///
    /// # Errors
    ///
    /// Returns the error from the final attempt.
    pub fn run<T, E>(&self, mut op: impl FnMut(u32) -> Result<T, E>) -> Result<T, E> {
        let mut attempt = 0;
        loop {
            match op(attempt) {
                Ok(value) => return Ok(value),
                Err(err) => {
                    attempt += 1;
                    if attempt >= self.max_tries {
                        return Err(err);
                    }
                    let delay = self.backoff.sample_delay(attempt - 1);
                    if delay > Duration::ZERO {
                        std::thread::sleep(delay);
                    }
                }
            }
        }
    }
}

impl Default for RetryPolicy {
    /// Three attempts with the default exponential backoff.
    fn default() -> Self {
        RetryPolicy::new(3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let b = Backoff {
            base: Duration::from_millis(10),
            factor: 2.0,
            max: Duration::from_millis(35),
            jitter: false,
        };
        assert_eq!(b.delay_for(0), Duration::from_millis(10));
        assert_eq!(b.delay_for(1), Duration::from_millis(20));
        assert_eq!(b.delay_for(2), Duration::from_millis(35)); // capped (40 -> 35)
        assert_eq!(b.delay_for(10), Duration::from_millis(35));
    }

    #[test]
    fn constant_backoff() {
        let b = Backoff::constant(Duration::from_millis(7));
        assert_eq!(b.delay_for(0), Duration::from_millis(7));
        assert_eq!(b.delay_for(5), Duration::from_millis(7));
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let b = Backoff {
            base: Duration::from_millis(100),
            factor: 1.0,
            max: Duration::from_millis(100),
            jitter: true,
        };
        for _ in 0..50 {
            let d = b.sample_delay(0);
            assert!(d >= Duration::from_millis(50), "{d:?}");
            assert!(d <= Duration::from_millis(100), "{d:?}");
        }
    }

    #[test]
    fn run_succeeds_first_try() {
        let policy = RetryPolicy::new(5).with_backoff(Backoff::none());
        let mut calls = 0;
        let result: Result<u32, ()> = policy.run(|_| {
            calls += 1;
            Ok(42)
        });
        assert_eq!(result.unwrap(), 42);
        assert_eq!(calls, 1);
    }

    #[test]
    fn run_bounded_attempts() {
        let policy = RetryPolicy::new(4).with_backoff(Backoff::none());
        let mut calls = 0;
        let result: Result<(), u32> = policy.run(|attempt| {
            calls += 1;
            Err(attempt)
        });
        assert_eq!(result.unwrap_err(), 3); // last attempt number
        assert_eq!(calls, 4);
    }

    #[test]
    fn run_recovers_mid_way() {
        let policy = RetryPolicy::new(5).with_backoff(Backoff::none());
        let result: Result<u32, ()> =
            policy.run(|attempt| if attempt < 2 { Err(()) } else { Ok(attempt) });
        assert_eq!(result.unwrap(), 2);
    }

    #[test]
    fn run_sleeps_between_attempts() {
        let policy = RetryPolicy::new(3).with_backoff(Backoff::constant(Duration::from_millis(20)));
        let started = Instant::now();
        let _: Result<(), ()> = policy.run(|_| Err(()));
        // Two sleeps of 20ms between three attempts.
        assert!(started.elapsed() >= Duration::from_millis(40));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_tries_panics() {
        let _ = RetryPolicy::new(0);
    }

    #[test]
    fn default_is_three_tries() {
        assert_eq!(RetryPolicy::default().max_tries(), 3);
    }
}

//! Implementations of the resiliency design patterns the paper's §2.1
//! lists as best practice for cloud-native microservices: timeouts,
//! bounded retries, circuit breakers and bulkheads.
//!
//! Timeouts are configured directly on the dependency client (connect
//! and read deadlines, see
//! [`ResiliencePolicy`](crate::client::ResiliencePolicy)); the other
//! three patterns live here as standalone, independently testable
//! building blocks. These are the mechanisms whose *presence and
//! correctness* Gremlin recipes verify from the outside.

mod bulkhead;
mod circuit;
mod pool;
mod retry;

pub use bulkhead::{Bulkhead, BulkheadConfig, BulkheadPermit};
pub use circuit::{CircuitBreaker, CircuitBreakerConfig, CircuitState};
pub use pool::{CallPool, CallPoolPermit};
pub use retry::{Backoff, RetryPolicy};

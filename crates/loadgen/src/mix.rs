//! Weighted workload mixes: realistic traffic where different request
//! classes hit different paths (e.g. 80% catalog reads, 20% checkout
//! writes) — what the bulkhead scenarios need to drive slow and fast
//! paths concurrently.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gremlin_http::{ClientConfig, HttpClient, Method, Request};

use crate::generator::{CallOutcome, LoadReport};

/// One request class in a mix.
#[derive(Debug, Clone)]
pub struct MixClass {
    /// Label used in the per-class report and the request-ID prefix
    /// (IDs are `{prefix}-{label}-{seq}`).
    pub label: String,
    /// Request path.
    pub path: String,
    /// Relative weight (any positive number).
    pub weight: f64,
}

/// A weighted multi-class workload aimed at one address.
///
/// # Examples
///
/// ```no_run
/// use gremlin_loadgen::{WorkloadMix};
/// use std::time::Duration;
///
/// let target = "127.0.0.1:8080".parse().unwrap();
/// let mix = WorkloadMix::new(target)
///     .class("read", "/catalog", 8.0)
///     .class("write", "/checkout", 2.0)
///     .seed(7);
/// let report = mix.run_closed(4, 25);
/// println!("reads: {:?}", report.class_report("read").summary());
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadMix {
    target: SocketAddr,
    classes: Vec<MixClass>,
    id_prefix: String,
    read_timeout: Option<Duration>,
    seed: Option<u64>,
}

impl WorkloadMix {
    /// Creates an empty mix aimed at `target`.
    pub fn new(target: SocketAddr) -> WorkloadMix {
        WorkloadMix {
            target,
            classes: Vec::new(),
            id_prefix: "test".to_string(),
            read_timeout: Some(Duration::from_secs(30)),
            seed: None,
        }
    }

    /// Adds a request class.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not positive and finite.
    pub fn class(
        mut self,
        label: impl Into<String>,
        path: impl Into<String>,
        weight: f64,
    ) -> WorkloadMix {
        assert!(
            weight.is_finite() && weight > 0.0,
            "class weight must be positive"
        );
        self.classes.push(MixClass {
            label: label.into(),
            path: path.into(),
            weight,
        });
        self
    }

    /// Sets the request-ID prefix (default `test`).
    pub fn id_prefix(mut self, prefix: impl Into<String>) -> WorkloadMix {
        self.id_prefix = prefix.into();
        self
    }

    /// Sets the per-request read timeout.
    pub fn read_timeout(mut self, timeout: Option<Duration>) -> WorkloadMix {
        self.read_timeout = timeout;
        self
    }

    /// Seeds class sampling for reproducible mixes.
    pub fn seed(mut self, seed: u64) -> WorkloadMix {
        self.seed = Some(seed);
        self
    }

    fn pick<'a>(&'a self, rng: &mut StdRng) -> &'a MixClass {
        let total: f64 = self.classes.iter().map(|c| c.weight).sum();
        let mut roll = rng.gen_range(0.0..total);
        for class in &self.classes {
            if roll < class.weight {
                return class;
            }
            roll -= class.weight;
        }
        self.classes.last().expect("non-empty mix")
    }

    /// Runs `workers` closed-loop workers, each issuing
    /// `requests_per_worker` requests sampled from the mix.
    ///
    /// # Panics
    ///
    /// Panics if no classes were added.
    pub fn run_closed(&self, workers: usize, requests_per_worker: usize) -> MixReport {
        assert!(!self.classes.is_empty(), "mix has no classes");
        let started = Instant::now();
        let sequence = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..workers)
            .map(|worker| {
                let mix = self.clone();
                let sequence = Arc::clone(&sequence);
                thread::spawn(move || {
                    let mut rng = match mix.seed {
                        Some(seed) => StdRng::seed_from_u64(seed.wrapping_add(worker as u64)),
                        None => StdRng::from_entropy(),
                    };
                    let client = HttpClient::with_config(ClientConfig {
                        read_timeout: mix.read_timeout,
                        write_timeout: mix.read_timeout,
                        ..ClientConfig::default()
                    });
                    let mut outcomes = Vec::with_capacity(requests_per_worker);
                    for _ in 0..requests_per_worker {
                        let class = mix.pick(&mut rng).clone();
                        let seq = sequence.fetch_add(1, Ordering::Relaxed);
                        let id = format!("{}-{}-{seq}", mix.id_prefix, class.label);
                        let request = Request::builder(Method::Get, class.path.clone())
                            .request_id(id.clone())
                            .build();
                        let call_started = Instant::now();
                        let outcome = match client.send(mix.target, request) {
                            Ok(response) => CallOutcome {
                                request_id: id,
                                latency: call_started.elapsed(),
                                status: Some(response.status().as_u16()),
                                error: None,
                            },
                            Err(err) => CallOutcome {
                                request_id: id,
                                latency: call_started.elapsed(),
                                status: None,
                                error: Some(err.to_string()),
                            },
                        };
                        outcomes.push((class.label, outcome));
                    }
                    outcomes
                })
            })
            .collect();
        let mut labelled = Vec::new();
        for handle in handles {
            labelled.extend(handle.join().expect("mix worker panicked"));
        }
        MixReport {
            labelled,
            wall: started.elapsed(),
        }
    }
}

/// Results of a mixed run, retrievable per class or combined.
#[derive(Debug, Clone, Default)]
pub struct MixReport {
    labelled: Vec<(String, CallOutcome)>,
    /// Wall-clock duration of the run.
    pub wall: Duration,
}

impl MixReport {
    /// Total requests issued.
    pub fn len(&self) -> usize {
        self.labelled.len()
    }

    /// Returns `true` when nothing was issued.
    pub fn is_empty(&self) -> bool {
        self.labelled.is_empty()
    }

    /// Requests belonging to `label`.
    pub fn class_count(&self, label: &str) -> usize {
        self.labelled.iter().filter(|(l, _)| l == label).count()
    }

    /// A [`LoadReport`] view of one class.
    pub fn class_report(&self, label: &str) -> LoadReport {
        LoadReport {
            outcomes: self
                .labelled
                .iter()
                .filter(|(l, _)| l == label)
                .map(|(_, o)| o.clone())
                .collect(),
            wall: self.wall,
        }
    }

    /// A [`LoadReport`] view of every request.
    pub fn combined(&self) -> LoadReport {
        LoadReport {
            outcomes: self.labelled.iter().map(|(_, o)| o.clone()).collect(),
            wall: self.wall,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gremlin_http::{ConnInfo, HttpServer, Response};

    fn path_server() -> HttpServer {
        HttpServer::bind("127.0.0.1:0", |req: Request, _conn: &ConnInfo| {
            Response::ok(req.path().to_string())
        })
        .unwrap()
    }

    #[test]
    fn mix_respects_weights_roughly() {
        let server = path_server();
        let report = WorkloadMix::new(server.local_addr())
            .class("hot", "/hot", 9.0)
            .class("cold", "/cold", 1.0)
            .seed(5)
            .run_closed(2, 100);
        assert_eq!(report.len(), 200);
        let hot = report.class_count("hot");
        let cold = report.class_count("cold");
        assert_eq!(hot + cold, 200);
        assert!(hot > 150, "hot={hot}");
        assert!(cold > 2, "cold={cold}");
    }

    #[test]
    fn class_report_filters_correctly() {
        let server = path_server();
        let report = WorkloadMix::new(server.local_addr())
            .class("a", "/a", 1.0)
            .class("b", "/b", 1.0)
            .seed(1)
            .run_closed(1, 40);
        let a = report.class_report("a");
        assert_eq!(a.len(), report.class_count("a"));
        assert!(a.outcomes.iter().all(|o| o.request_id.contains("-a-")));
        assert_eq!(report.combined().len(), 40);
        assert_eq!(report.class_report("nope").len(), 0);
    }

    #[test]
    fn seeded_mixes_are_reproducible() {
        let server = path_server();
        let mix = WorkloadMix::new(server.local_addr())
            .class("x", "/x", 1.0)
            .class("y", "/y", 1.0)
            .seed(42);
        let first = mix.clone().run_closed(1, 30);
        let second = mix.run_closed(1, 30);
        assert_eq!(first.class_count("x"), second.class_count("x"));
    }

    #[test]
    #[should_panic(expected = "no classes")]
    fn empty_mix_panics() {
        let server = path_server();
        let _ = WorkloadMix::new(server.local_addr()).run_closed(1, 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_weight_panics() {
        let server = path_server();
        let _ = WorkloadMix::new(server.local_addr()).class("z", "/z", 0.0);
    }
}

//! Load generators that drive test traffic through a deployment.
//!
//! The paper (§6) leaves test-input generation to the operator,
//! assuming a standard load-generation tool; its benchmarks inject
//! batches of test requests (e.g. "100 test requests", §7.2) and its
//! case studies measure response-time CDFs under load. These
//! generators fill that role: closed-loop workers, a fixed-rate open
//! loop, and a simple sequential driver — all stamping Gremlin
//! request IDs so agents can match test flows.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use gremlin_http::{ClientConfig, HttpClient, Method, Request};
use gremlin_telemetry::{Counter, LatencyHistogram, MetricsRegistry};

use crate::stats::{Cdf, LatencySummary};

/// The outcome of one generated request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallOutcome {
    /// The request ID the call was stamped with.
    pub request_id: String,
    /// End-to-end latency as seen by the generator.
    pub latency: Duration,
    /// HTTP status, or `None` when the call failed at the transport
    /// level.
    pub status: Option<u16>,
    /// Transport error description, when `status` is `None`.
    pub error: Option<String>,
}

impl CallOutcome {
    /// `true` for 2xx/3xx responses.
    pub fn is_success(&self) -> bool {
        matches!(self.status, Some(code) if code < 400)
    }
}

/// Aggregated results of one load run.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Per-request outcomes in completion order.
    pub outcomes: Vec<CallOutcome>,
    /// Wall-clock duration of the whole run.
    pub wall: Duration,
}

impl LoadReport {
    /// Number of requests issued.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Returns `true` when no requests were issued.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Requests that received a 2xx/3xx response.
    pub fn successes(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_success()).count()
    }

    /// Requests that received an HTTP error or failed entirely.
    pub fn failures(&self) -> usize {
        self.len() - self.successes()
    }

    /// Requests that failed at the transport level.
    pub fn transport_errors(&self) -> usize {
        self.outcomes.iter().filter(|o| o.status.is_none()).count()
    }

    /// Requests carrying the given status code.
    pub fn with_status(&self, status: u16) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.status == Some(status))
            .count()
    }

    /// All latencies, in completion order.
    pub fn latencies(&self) -> Vec<Duration> {
        self.outcomes.iter().map(|o| o.latency).collect()
    }

    /// Achieved request rate (requests / wall-clock second).
    pub fn throughput(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.len() as f64 / self.wall.as_secs_f64()
    }

    /// Latency summary; `None` for an empty run.
    pub fn summary(&self) -> Option<LatencySummary> {
        LatencySummary::from_latencies(&self.latencies())
    }

    /// Latency CDF of the run.
    pub fn cdf(&self) -> Cdf {
        Cdf::from_latencies(&self.latencies())
    }
}

/// Telemetry handles cloned into every load worker.
#[derive(Debug, Clone)]
struct LoadgenTelemetry {
    ok: Arc<Counter>,
    errors: Arc<Counter>,
    latency: Arc<LatencyHistogram>,
}

impl LoadgenTelemetry {
    fn new(registry: &MetricsRegistry) -> LoadgenTelemetry {
        let result = |kind: &str| {
            registry.counter(
                "gremlin_loadgen_requests_total",
                "Requests issued by the load generator, by outcome.",
                &[("result", kind)],
            )
        };
        LoadgenTelemetry {
            ok: result("ok"),
            errors: result("error"),
            latency: registry.histogram(
                "gremlin_loadgen_latency_seconds",
                "End-to-end latency seen by the load generator.",
                &[],
            ),
        }
    }

    fn observe(&self, outcome: &CallOutcome) {
        self.latency.record(outcome.latency);
        if outcome.is_success() {
            self.ok.inc();
        } else {
            self.errors.inc();
        }
    }
}

/// A configurable HTTP load generator aimed at one address.
#[derive(Debug, Clone)]
pub struct LoadGenerator {
    target: SocketAddr,
    path: String,
    id_prefix: String,
    think_time: Duration,
    read_timeout: Option<Duration>,
    connect_timeout: Option<Duration>,
    telemetry: Option<LoadgenTelemetry>,
}

impl LoadGenerator {
    /// Creates a generator for `GET /` at `target` with ID prefix
    /// `test`.
    pub fn new(target: SocketAddr) -> LoadGenerator {
        LoadGenerator {
            target,
            path: "/".to_string(),
            id_prefix: "test".to_string(),
            think_time: Duration::ZERO,
            read_timeout: Some(Duration::from_secs(30)),
            connect_timeout: Some(Duration::from_secs(5)),
            telemetry: None,
        }
    }

    /// Sets the request path.
    pub fn path(mut self, path: impl Into<String>) -> LoadGenerator {
        self.path = path.into();
        self
    }

    /// Sets the request-ID prefix (IDs are `{prefix}-{seq}`).
    pub fn id_prefix(mut self, prefix: impl Into<String>) -> LoadGenerator {
        self.id_prefix = prefix.into();
        self
    }

    /// Adds think time between a worker's consecutive requests.
    pub fn think_time(mut self, think_time: Duration) -> LoadGenerator {
        self.think_time = think_time;
        self
    }

    /// Sets the per-request read timeout (`None` = wait forever,
    /// like a client with no timeout pattern).
    pub fn read_timeout(mut self, timeout: Option<Duration>) -> LoadGenerator {
        self.read_timeout = timeout;
        self
    }

    /// Sets the connect timeout.
    pub fn connect_timeout(mut self, timeout: Option<Duration>) -> LoadGenerator {
        self.connect_timeout = timeout;
        self
    }

    /// Records per-request outcome counters
    /// (`gremlin_loadgen_requests_total{result=...}`) and a latency
    /// histogram (`gremlin_loadgen_latency_seconds`) into `registry`.
    pub fn telemetry(mut self, registry: &MetricsRegistry) -> LoadGenerator {
        self.telemetry = Some(LoadgenTelemetry::new(registry));
        self
    }

    fn client(&self) -> HttpClient {
        HttpClient::with_config(ClientConfig {
            connect_timeout: self.connect_timeout,
            read_timeout: self.read_timeout,
            write_timeout: self.read_timeout,
            ..ClientConfig::default()
        })
    }

    fn issue(&self, client: &HttpClient, id: &str) -> CallOutcome {
        let request = Request::builder(Method::Get, self.path.clone())
            .request_id(id)
            .build();
        let started = Instant::now();
        let outcome = match client.send(self.target, request) {
            Ok(response) => CallOutcome {
                request_id: id.to_string(),
                latency: started.elapsed(),
                status: Some(response.status().as_u16()),
                error: None,
            },
            Err(err) => CallOutcome {
                request_id: id.to_string(),
                latency: started.elapsed(),
                status: None,
                error: Some(err.to_string()),
            },
        };
        if let Some(telemetry) = &self.telemetry {
            telemetry.observe(&outcome);
        }
        outcome
    }

    /// Issues `count` requests one after another on a single
    /// connection — the paper's "inject N test requests" batches.
    pub fn run_sequential(&self, count: usize) -> LoadReport {
        let client = self.client();
        let started = Instant::now();
        let outcomes = (0..count)
            .map(|seq| {
                if seq > 0 && !self.think_time.is_zero() {
                    thread::sleep(self.think_time);
                }
                self.issue(&client, &format!("{}-{seq}", self.id_prefix))
            })
            .collect();
        LoadReport {
            outcomes,
            wall: started.elapsed(),
        }
    }

    /// Runs `workers` closed-loop workers, each issuing
    /// `requests_per_worker` requests back-to-back.
    pub fn run_closed(&self, workers: usize, requests_per_worker: usize) -> LoadReport {
        let started = Instant::now();
        let sequence = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let generator = self.clone();
                let sequence = Arc::clone(&sequence);
                thread::spawn(move || {
                    let client = generator.client();
                    let mut outcomes = Vec::with_capacity(requests_per_worker);
                    for _ in 0..requests_per_worker {
                        let seq = sequence.fetch_add(1, Ordering::Relaxed);
                        outcomes.push(
                            generator.issue(&client, &format!("{}-{seq}", generator.id_prefix)),
                        );
                        if !generator.think_time.is_zero() {
                            thread::sleep(generator.think_time);
                        }
                    }
                    outcomes
                })
            })
            .collect();
        let mut outcomes = Vec::with_capacity(workers * requests_per_worker);
        for handle in handles {
            outcomes.extend(handle.join().expect("load worker panicked"));
        }
        LoadReport {
            outcomes,
            wall: started.elapsed(),
        }
    }

    /// Issues requests at a fixed rate for `duration`, each on its
    /// own thread so slow responses do not throttle the arrival
    /// process (open-loop).
    pub fn run_open(&self, rate_per_sec: f64, duration: Duration) -> LoadReport {
        assert!(rate_per_sec > 0.0, "rate must be positive");
        let interval = Duration::from_secs_f64(1.0 / rate_per_sec);
        let started = Instant::now();
        let mut handles = Vec::new();
        let mut seq = 0usize;
        while started.elapsed() < duration {
            let generator = self.clone();
            let id = format!("{}-{seq}", self.id_prefix);
            seq += 1;
            handles.push(thread::spawn(move || {
                let client = generator.client();
                generator.issue(&client, &id)
            }));
            thread::sleep(interval);
        }
        let outcomes = handles
            .into_iter()
            .map(|handle| handle.join().expect("load worker panicked"))
            .collect();
        LoadReport {
            outcomes,
            wall: started.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gremlin_http::{ConnInfo, HttpServer, Response, StatusCode};

    fn echo_server() -> HttpServer {
        HttpServer::bind("127.0.0.1:0", |req: Request, _conn: &ConnInfo| {
            match req.request_id() {
                Some(id) if id.ends_with("-3") => Response::error(StatusCode::SERVICE_UNAVAILABLE),
                _ => Response::ok("ok"),
            }
        })
        .unwrap()
    }

    #[test]
    fn sequential_run_stamps_ids() {
        let server = echo_server();
        let report = LoadGenerator::new(server.local_addr())
            .id_prefix("test")
            .run_sequential(5);
        assert_eq!(report.len(), 5);
        assert_eq!(report.successes(), 4);
        assert_eq!(report.with_status(503), 1);
        assert_eq!(report.transport_errors(), 0);
        assert_eq!(report.outcomes[0].request_id, "test-0");
        assert!(report.summary().is_some());
        assert!(report.throughput() > 0.0);
    }

    #[test]
    fn telemetry_counts_outcomes() {
        let server = echo_server();
        let registry = MetricsRegistry::new();
        let report = LoadGenerator::new(server.local_addr())
            .telemetry(&registry)
            .run_sequential(5); // id "-3" answers 503
        assert_eq!(report.successes(), 4);
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_value("gremlin_loadgen_requests_total", &[("result", "ok")]),
            Some(4)
        );
        assert_eq!(
            snap.counter_value("gremlin_loadgen_requests_total", &[("result", "error")]),
            Some(1)
        );
        assert_eq!(
            snap.histogram("gremlin_loadgen_latency_seconds", &[])
                .unwrap()
                .count(),
            5
        );
    }

    #[test]
    fn closed_loop_runs_all_workers() {
        let server = echo_server();
        let report = LoadGenerator::new(server.local_addr()).run_closed(4, 10);
        assert_eq!(report.len(), 40);
        // IDs are unique.
        let mut ids: Vec<_> = report.outcomes.iter().map(|o| &o.request_id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 40);
    }

    #[test]
    fn open_loop_respects_duration() {
        let server = echo_server();
        let report =
            LoadGenerator::new(server.local_addr()).run_open(50.0, Duration::from_millis(300));
        // ~15 requests expected; allow broad slack for CI noise.
        assert!(report.len() >= 5, "got {}", report.len());
        assert!(report.wall >= Duration::from_millis(300));
    }

    #[test]
    fn transport_errors_are_recorded() {
        let dead = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let report = LoadGenerator::new(dead).run_sequential(3);
        assert_eq!(report.transport_errors(), 3);
        assert_eq!(report.successes(), 0);
        assert!(report.outcomes[0].error.is_some());
        assert!(!report.outcomes[0].is_success());
    }

    #[test]
    fn think_time_slows_the_loop() {
        let server = echo_server();
        let report = LoadGenerator::new(server.local_addr())
            .think_time(Duration::from_millis(30))
            .run_sequential(4);
        assert!(report.wall >= Duration::from_millis(90));
    }

    #[test]
    fn empty_report() {
        let server = echo_server();
        let report = LoadGenerator::new(server.local_addr()).run_sequential(0);
        assert!(report.is_empty());
        assert!(report.summary().is_none());
        assert_eq!(report.failures(), 0);
    }
}

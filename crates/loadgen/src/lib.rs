//! # gremlin-loadgen
//!
//! Test-load generation and latency statistics for the Gremlin
//! resilience-testing framework (Heorhiadi et al., ICDCS 2016).
//!
//! The paper assumes a standard load-generation tool drives test
//! traffic through the application while Gremlin stages failures
//! (§6), and its evaluation reports response-time CDFs (Figures 5, 6
//! and 8). This crate provides:
//!
//! * [`LoadGenerator`] — sequential, closed-loop and open-loop HTTP
//!   load, with every request stamped with a Gremlin request ID so
//!   the data plane can match test flows;
//! * [`LoadReport`] — per-request outcomes with success/error
//!   breakdowns;
//! * [`Cdf`], [`LatencySummary`], [`percentile`] — the statistics the
//!   figures are built from.
//!
//! # Examples
//!
//! ```
//! use gremlin_http::{HttpServer, Request, Response};
//! use gremlin_loadgen::LoadGenerator;
//!
//! # fn main() {
//! let server = HttpServer::bind("127.0.0.1:0", |_req: Request, _conn: &_| {
//!     Response::ok("hello")
//! })
//! .unwrap();
//!
//! let report = LoadGenerator::new(server.local_addr())
//!     .id_prefix("test")
//!     .run_sequential(10);
//! assert_eq!(report.successes(), 10);
//! let cdf = report.cdf();
//! assert_eq!(cdf.len(), 10);
//! # }
//! ```

#![warn(missing_docs)]

pub mod generator;
pub mod mix;
pub mod stats;

pub use generator::{CallOutcome, LoadGenerator, LoadReport};
pub use mix::{MixClass, MixReport, WorkloadMix};
pub use stats::{percentile, Cdf, LatencySummary};

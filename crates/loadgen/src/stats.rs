//! Latency statistics: percentiles, summaries and CDFs (the paper
//! reports response-time CDFs in Figures 5, 6 and 8).

use std::fmt;
use std::time::Duration;

use gremlin_telemetry::HistogramSnapshot;

/// Computes the `p`-th percentile (0.0..=1.0) of a set of latencies
/// using nearest-rank on a sorted copy.
///
/// The ranking itself is [`gremlin_telemetry::percentile`] — the same
/// math the mesh's bucketed histograms approximate — applied to a
/// sorted copy of the raw samples, so load-generator summaries stay
/// sample-exact.
///
/// Returns `None` for an empty slice.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
pub fn percentile(latencies: &[Duration], p: f64) -> Option<Duration> {
    let mut sorted = latencies.to_vec();
    sorted.sort();
    gremlin_telemetry::percentile(&sorted, p)
}

/// Summary statistics over a latency sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    /// Sample size.
    pub count: usize,
    /// Smallest latency.
    pub min: Duration,
    /// Median (p50).
    pub p50: Duration,
    /// 90th percentile.
    pub p90: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Largest latency.
    pub max: Duration,
    /// Arithmetic mean.
    pub mean: Duration,
}

impl LatencySummary {
    /// Summarizes `latencies`; returns `None` when empty.
    pub fn from_latencies(latencies: &[Duration]) -> Option<LatencySummary> {
        if latencies.is_empty() {
            return None;
        }
        let mut sorted = latencies.to_vec();
        sorted.sort();
        let total: Duration = sorted.iter().sum();
        Some(LatencySummary {
            count: sorted.len(),
            min: sorted[0],
            p50: percentile(&sorted, 0.50).expect("non-empty"),
            p90: percentile(&sorted, 0.90).expect("non-empty"),
            p99: percentile(&sorted, 0.99).expect("non-empty"),
            max: *sorted.last().expect("non-empty"),
            mean: total / sorted.len() as u32,
        })
    }

    /// Summarizes a telemetry histogram snapshot; returns `None` when
    /// the snapshot holds no samples.
    ///
    /// Unlike [`LatencySummary::from_latencies`], the percentiles are
    /// quantized to the histogram's bucket bounds (≤ ~3.1% relative
    /// error); `min`, `max` and `mean` are exact.
    pub fn from_snapshot(snapshot: &HistogramSnapshot) -> Option<LatencySummary> {
        Some(LatencySummary {
            count: snapshot.count() as usize,
            min: snapshot.min()?,
            p50: snapshot.p50()?,
            p90: snapshot.p90()?,
            p99: snapshot.p99()?,
            max: snapshot.max()?,
            mean: snapshot.mean()?,
        })
    }
}

impl fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} min={:?} p50={:?} p90={:?} p99={:?} max={:?} mean={:?}",
            self.count, self.min, self.p50, self.p90, self.p99, self.max, self.mean
        )
    }
}

/// An empirical cumulative distribution function over latencies.
#[derive(Debug, Clone, PartialEq)]
pub struct Cdf {
    points: Vec<(Duration, f64)>,
}

impl Cdf {
    /// Builds the empirical CDF of `latencies` (sorted ascending;
    /// each point is `(latency, cumulative_fraction)`).
    pub fn from_latencies(latencies: &[Duration]) -> Cdf {
        let mut sorted = latencies.to_vec();
        sorted.sort();
        let n = sorted.len() as f64;
        let points = sorted
            .into_iter()
            .enumerate()
            .map(|(index, latency)| (latency, (index + 1) as f64 / n))
            .collect();
        Cdf { points }
    }

    /// The `(latency, fraction)` points.
    pub fn points(&self) -> &[(Duration, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when built from no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Fraction of samples at or below `latency` (0.0 when empty).
    pub fn fraction_at_or_below(&self, latency: Duration) -> f64 {
        let below = self
            .points
            .iter()
            .take_while(|(l, _)| *l <= latency)
            .count();
        if self.points.is_empty() {
            0.0
        } else {
            below as f64 / self.points.len() as f64
        }
    }

    /// The latency at quantile `q` (the CDF's inverse); `None` when
    /// empty.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        percentile(&self.points.iter().map(|(l, _)| *l).collect::<Vec<_>>(), q)
    }

    /// Renders the CDF as sampled rows (`quantiles` evenly spaced
    /// fractions) for text reports — the shape the paper's figures
    /// plot.
    pub fn to_rows(&self, quantiles: usize) -> Vec<(f64, Duration)> {
        if self.is_empty() || quantiles == 0 {
            return Vec::new();
        }
        (1..=quantiles)
            .map(|i| {
                let q = i as f64 / quantiles as f64;
                (q, self.quantile(q).expect("non-empty"))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(values: &[u64]) -> Vec<Duration> {
        values.iter().map(|v| Duration::from_millis(*v)).collect()
    }

    #[test]
    fn percentile_nearest_rank() {
        let lat = ms(&[10, 20, 30, 40, 50]);
        assert_eq!(percentile(&lat, 0.0).unwrap(), Duration::from_millis(10));
        assert_eq!(percentile(&lat, 0.5).unwrap(), Duration::from_millis(30));
        assert_eq!(percentile(&lat, 1.0).unwrap(), Duration::from_millis(50));
        assert_eq!(percentile(&lat, 0.9).unwrap(), Duration::from_millis(50));
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    #[should_panic(expected = "in [0, 1]")]
    fn percentile_rejects_bad_p() {
        let _ = percentile(&ms(&[1]), 1.5);
    }

    #[test]
    fn summary_basics() {
        let summary = LatencySummary::from_latencies(&ms(&[10, 20, 30, 40])).unwrap();
        assert_eq!(summary.count, 4);
        assert_eq!(summary.min, Duration::from_millis(10));
        assert_eq!(summary.max, Duration::from_millis(40));
        assert_eq!(summary.p50, Duration::from_millis(20));
        assert_eq!(summary.mean, Duration::from_millis(25));
        assert!(LatencySummary::from_latencies(&[]).is_none());
        assert!(!summary.to_string().is_empty());
    }

    #[test]
    fn summary_from_histogram_snapshot() {
        use gremlin_telemetry::LatencyHistogram;
        let hist = LatencyHistogram::new();
        for v in [10u64, 20, 30, 40] {
            hist.record(Duration::from_micros(v));
        }
        let summary = LatencySummary::from_snapshot(&hist.snapshot()).unwrap();
        // Values below 64µs land in exact buckets, so the summary
        // matches the sample-exact path.
        assert_eq!(summary.count, 4);
        assert_eq!(summary.min, Duration::from_micros(10));
        assert_eq!(summary.p50, Duration::from_micros(20));
        assert_eq!(summary.max, Duration::from_micros(40));
        assert_eq!(summary.mean, Duration::from_micros(25));
        assert!(LatencySummary::from_snapshot(&LatencyHistogram::new().snapshot()).is_none());
    }

    #[test]
    fn cdf_fractions() {
        let cdf = Cdf::from_latencies(&ms(&[10, 20, 30, 40]));
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf.fraction_at_or_below(Duration::from_millis(9)), 0.0);
        assert_eq!(cdf.fraction_at_or_below(Duration::from_millis(20)), 0.5);
        assert_eq!(cdf.fraction_at_or_below(Duration::from_millis(100)), 1.0);
        assert_eq!(cdf.quantile(0.5).unwrap(), Duration::from_millis(20));
    }

    #[test]
    fn cdf_points_are_monotone() {
        let cdf = Cdf::from_latencies(&ms(&[5, 1, 3, 2, 4]));
        let points = cdf.points();
        for pair in points.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
            assert!(pair[0].1 < pair[1].1);
        }
        assert!((points.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_rows_sampling() {
        let cdf = Cdf::from_latencies(&ms(&[10, 20, 30, 40, 50, 60, 70, 80, 90, 100]));
        let rows = cdf.to_rows(4);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[3], (1.0, Duration::from_millis(100)));
        assert!(Cdf::from_latencies(&[]).to_rows(4).is_empty());
    }

    #[test]
    fn empty_cdf() {
        let cdf = Cdf::from_latencies(&[]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_at_or_below(Duration::from_secs(1)), 0.0);
        assert_eq!(cdf.quantile(0.5), None);
    }
}

//! Glob-style patterns for matching request IDs.
//!
//! Gremlin rules and log queries select request flows by matching the
//! propagated request ID against patterns such as `test-*` (paper
//! §4.1). Patterns support `*` (any run of characters, including
//! empty) and `?` (exactly one character). Parsing classifies each
//! pattern into a fast-path form — [`Pattern::Any`],
//! [`Pattern::Exact`] or [`Pattern::Prefix`] — falling back to a full
//! glob matcher only when needed; §7.2 of the paper calls out exactly
//! this optimization (structured, prefix-based IDs) as the way to
//! reduce rule-matching overhead.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// A compiled request-ID pattern.
///
/// # Examples
///
/// ```
/// use gremlin_store::Pattern;
///
/// let p: Pattern = "test-*".parse().unwrap();
/// assert!(p.matches("test-123"));
/// assert!(!p.matches("prod-123"));
/// assert!(matches!(p, Pattern::Prefix(_)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub enum Pattern {
    /// Matches every message, with or without a request ID (`*`).
    #[default]
    Any,
    /// Matches exactly this ID (no wildcards present).
    Exact(String),
    /// Matches IDs beginning with this prefix (`prefix*`).
    Prefix(String),
    /// General glob with `*` and `?` wildcards.
    Glob(String),
}

impl Pattern {
    /// Compiles `text` into its cheapest matching form.
    pub fn new(text: &str) -> Pattern {
        if text == "*" {
            return Pattern::Any;
        }
        let has_question = text.contains('?');
        let star_count = text.matches('*').count();
        if !has_question && star_count == 0 {
            return Pattern::Exact(text.to_string());
        }
        if !has_question && star_count == 1 && text.ends_with('*') {
            return Pattern::Prefix(text[..text.len() - 1].to_string());
        }
        Pattern::Glob(text.to_string())
    }

    /// Returns `true` if `id` matches the pattern.
    pub fn matches(&self, id: &str) -> bool {
        match self {
            Pattern::Any => true,
            Pattern::Exact(exact) => id == exact,
            Pattern::Prefix(prefix) => id.starts_with(prefix.as_str()),
            Pattern::Glob(glob) => glob_match(glob.as_bytes(), id.as_bytes()),
        }
    }

    /// Returns `true` if an optional ID matches: a missing ID matches
    /// only [`Pattern::Any`].
    pub fn matches_opt(&self, id: Option<&str>) -> bool {
        match id {
            Some(id) => self.matches(id),
            None => matches!(self, Pattern::Any),
        }
    }

    /// The original pattern text.
    pub fn as_str(&self) -> String {
        match self {
            Pattern::Any => "*".to_string(),
            Pattern::Exact(s) => s.clone(),
            Pattern::Prefix(p) => format!("{p}*"),
            Pattern::Glob(g) => g.clone(),
        }
    }
}

/// Patterns serialize as their glob text (`"test-*"`), the form the
/// paper's recipes use and the control API ships.
impl Serialize for Pattern {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.as_str())
    }
}

impl<'de> Deserialize<'de> for Pattern {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let text = String::deserialize(deserializer)?;
        Ok(Pattern::new(&text))
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.as_str())
    }
}

impl FromStr for Pattern {
    type Err = std::convert::Infallible;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(Pattern::new(s))
    }
}

impl From<&str> for Pattern {
    fn from(s: &str) -> Self {
        Pattern::new(s)
    }
}

/// Iterative glob matcher with backtracking over `*` (classic
/// two-pointer algorithm, linear in practice).
fn glob_match(pattern: &[u8], text: &[u8]) -> bool {
    let (mut p, mut t) = (0usize, 0usize);
    let (mut star_p, mut star_t) = (usize::MAX, 0usize);
    while t < text.len() {
        if p < pattern.len() && (pattern[p] == b'?' || pattern[p] == text[t]) {
            p += 1;
            t += 1;
        } else if p < pattern.len() && pattern[p] == b'*' {
            star_p = p;
            star_t = t;
            p += 1;
        } else if star_p != usize::MAX {
            p = star_p + 1;
            star_t += 1;
            t = star_t;
        } else {
            return false;
        }
    }
    while p < pattern.len() && pattern[p] == b'*' {
        p += 1;
    }
    p == pattern.len()
}

/// A reference glob matcher (recursive) used by property tests to
/// validate the optimized implementation.
#[doc(hidden)]
pub fn glob_match_reference(pattern: &str, text: &str) -> bool {
    fn rec(p: &[u8], t: &[u8]) -> bool {
        match (p.first(), t.first()) {
            (None, None) => true,
            (Some(b'*'), _) => rec(&p[1..], t) || (!t.is_empty() && rec(p, &t[1..])),
            (Some(b'?'), Some(_)) => rec(&p[1..], &t[1..]),
            (Some(a), Some(b)) if a == b => rec(&p[1..], &t[1..]),
            _ => false,
        }
    }
    rec(pattern.as_bytes(), text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert_eq!(Pattern::new("*"), Pattern::Any);
        assert_eq!(Pattern::new("abc"), Pattern::Exact("abc".into()));
        assert_eq!(Pattern::new("test-*"), Pattern::Prefix("test-".into()));
        assert!(matches!(Pattern::new("a*b"), Pattern::Glob(_)));
        assert!(matches!(Pattern::new("a?c"), Pattern::Glob(_)));
        assert!(matches!(Pattern::new("*suffix"), Pattern::Glob(_)));
        assert!(matches!(Pattern::new("a*b*"), Pattern::Glob(_)));
    }

    #[test]
    fn any_matches_everything() {
        let p = Pattern::Any;
        assert!(p.matches(""));
        assert!(p.matches("anything"));
        assert!(p.matches_opt(None));
        assert!(p.matches_opt(Some("x")));
    }

    #[test]
    fn exact_matching() {
        let p = Pattern::new("test-1");
        assert!(p.matches("test-1"));
        assert!(!p.matches("test-10"));
        assert!(!p.matches_opt(None));
    }

    #[test]
    fn prefix_matching() {
        let p = Pattern::new("test-*");
        assert!(p.matches("test-"));
        assert!(p.matches("test-42"));
        assert!(!p.matches("tes"));
        assert!(!p.matches_opt(None));
    }

    #[test]
    fn glob_matching() {
        let p = Pattern::new("a*c?e");
        assert!(p.matches("abcde"));
        assert!(p.matches("aXYZcZe"));
        assert!(!p.matches("ace"));
        let p = Pattern::new("*end");
        assert!(p.matches("the end"));
        assert!(!p.matches("the end!"));
        let p = Pattern::new("a**b");
        assert!(p.matches("ab"));
        assert!(p.matches("aXb"));
    }

    #[test]
    fn glob_empty_cases() {
        assert!(glob_match(b"*", b""));
        assert!(!glob_match(b"?", b""));
        assert!(glob_match(b"", b""));
        assert!(!glob_match(b"", b"x"));
    }

    #[test]
    fn display_round_trip() {
        for text in ["*", "exact", "pre-*", "a*b?c"] {
            let p = Pattern::new(text);
            assert_eq!(p.to_string(), text);
            assert_eq!(Pattern::new(&p.to_string()), p);
        }
    }

    #[test]
    fn optimized_agrees_with_reference_on_samples() {
        let patterns = ["*", "a*", "*a", "a?b", "a*b*c", "??", "abc", "a*a*a*a"];
        let texts = ["", "a", "ab", "abc", "aXbYc", "aaaa", "abab", "aXb"];
        for pattern in patterns {
            let compiled = Pattern::new(pattern);
            for text in texts {
                assert_eq!(
                    compiled.matches(text),
                    glob_match_reference(pattern, text),
                    "pattern={pattern} text={text}"
                );
            }
        }
    }
}

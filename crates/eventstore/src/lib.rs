//! # gremlin-store
//!
//! The centralized observation store of the Gremlin resilience-testing
//! framework (Heorhiadi et al., ICDCS 2016).
//!
//! During a resilience test, Gremlin agents (see `gremlin-proxy`) log
//! every API call they proxy — request and response, timestamps,
//! request IDs, and any fault actions applied. The paper shipped these
//! logs through logstash into Elasticsearch; this crate replaces that
//! pipeline with an in-memory, indexed [`EventStore`] offering the
//! same query surface the Assertion Checker needs: filtered,
//! time-sorted retrieval of observations ([`Query`]).
//!
//! The crate also hosts the [`Pattern`] matcher used to select request
//! flows (`test-*` style IDs) by both the data-plane rule engine and
//! the query layer.
//!
//! # Examples
//!
//! ```
//! use gremlin_store::{Event, EventStore, Query, Pattern};
//! use std::time::Duration;
//!
//! let store = EventStore::new();
//! store.record_event(
//!     Event::request("serviceA", "serviceB", "GET", "/api")
//!         .with_request_id("test-1"),
//! );
//! store.record_event(
//!     Event::response("serviceA", "serviceB", 503, Duration::from_millis(3))
//!         .with_request_id("test-1"),
//! );
//!
//! let replies = store.query(
//!     &Query::replies("serviceA", "serviceB").with_id_pattern(Pattern::new("test-*")),
//! );
//! assert_eq!(replies.len(), 1);
//! assert_eq!(replies[0].status(), Some(503));
//! ```

#![warn(missing_docs)]

pub mod baseline;
pub mod event;
pub mod health;
pub mod name;
pub mod pattern;
pub mod query;
pub mod spans;
pub mod store;

pub use baseline::{mad, median, wilson_upper, BaselineBuilder, EdgeBaseline, MAD_SIGMA};
pub use event::{now_micros, AppliedFault, Event, EventKind, Micros};
pub use health::{EdgeHealth, HealthMonitor, DEFAULT_HEALTH_WINDOW};
pub use name::Name;
pub use pattern::Pattern;
pub use query::{KindFilter, Query};
pub use spans::{
    assemble_spans, export_otlp, import_otlp, spans_from_store, OtlpTrace, SpanRecord,
};
pub use store::{EventSink, EventStore};

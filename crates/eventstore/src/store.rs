//! The centralized observation store.
//!
//! Gremlin agents report every observation to a central store; the
//! Assertion Checker then runs queries over it (paper §4.2). The
//! paper's implementation used logstash + Elasticsearch; this store
//! provides the same query surface — filtered, time-sorted retrieval —
//! as an in-memory indexed structure.
//!
//! # Sharding
//!
//! A resilience test at production traffic levels has every agent
//! thread appending observations concurrently. A single
//! `RwLock<Vec<Event>>` serializes all of them; instead the store is
//! split into N shards (default: one per CPU), each with its own lock,
//! event vector, and edge/request-ID indices. A write touches exactly
//! one shard; queries fan out over all shards and merge the matches
//! back into one timestamp-sorted list.
//!
//! Every event is tagged with a global, monotonically increasing
//! sequence number when it is recorded. Merged query results are
//! ordered by `(timestamp, sequence)`, which reproduces exactly the
//! order the previous single-vector implementation produced with a
//! stable sort by timestamp (ties broken by insertion order).

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::pattern::Pattern;

use gremlin_telemetry::{Counter, Gauge, LatencyHistogram, MetricsRegistry};
use parking_lot::RwLock;

use crate::event::{Event, Micros};
use crate::name::Name;
use crate::query::Query;

/// A sink that accepts observation events.
///
/// Gremlin agents hold an `Arc<dyn EventSink>`; in single-process
/// deployments this is the [`EventStore`] itself, in distributed
/// deployments it can be a forwarding client.
pub trait EventSink: Send + Sync {
    /// Records one observation.
    fn record(&self, event: Event);

    /// Records a batch of observations. The default implementation
    /// records events one by one; sinks with per-call overhead (a lock
    /// acquisition, a network round trip) should override it.
    fn record_batch(&self, events: Vec<Event>) {
        for event in events {
            self.record(event);
        }
    }
}

/// An in-memory, sharded, indexed, concurrently-writable event store.
///
/// Events are indexed by `(src, dst)` edge for the common
/// `GetRequests(Src, Dst, …)` query shape. Query results are always
/// sorted by timestamp, regardless of arrival order.
///
/// # Examples
///
/// ```
/// use gremlin_store::{Event, EventStore, Query};
/// use std::time::Duration;
///
/// let store = EventStore::new();
/// store.record_event(Event::request("a", "b", "GET", "/x").with_request_id("test-1"));
/// store.record_event(Event::response("a", "b", 503, Duration::from_millis(2)).with_request_id("test-1"));
///
/// let requests = store.query(&Query::requests("a", "b"));
/// assert_eq!(requests.len(), 1);
/// let replies = store.query(&Query::replies("a", "b"));
/// assert_eq!(replies[0].status(), Some(503));
/// ```
#[derive(Debug)]
pub struct EventStore {
    shards: Box<[Shard]>,
    /// Global insertion sequence; total-orders events across shards.
    seq: AtomicU64,
    /// Total stored events, maintained outside the shard locks so
    /// `len()` never has to fan out.
    count: AtomicUsize,
    /// Telemetry handles, set via [`EventStore::enable_telemetry`].
    telemetry: RwLock<Option<StoreTelemetry>>,
}

#[derive(Debug, Default)]
struct Shard {
    inner: RwLock<ShardInner>,
}

#[derive(Debug, Clone)]
struct StoredEvent {
    /// Global insertion sequence number; ties on timestamp sort in
    /// insertion order, matching the old stable-sort behavior.
    seq: u64,
    event: Event,
}

#[derive(Debug, Default)]
struct ShardInner {
    events: Vec<StoredEvent>,
    /// Edge index: (src, dst) -> indices into `events`.
    edges: HashMap<(Name, Name), Vec<usize>>,
    /// Request-ID index: id -> indices into `events`. A BTreeMap so
    /// prefix patterns can range-scan.
    ids: BTreeMap<Name, Vec<usize>>,
}

#[derive(Debug)]
struct StoreTelemetry {
    appends: Arc<Counter>,
    size: Arc<Gauge>,
    query_seconds: Arc<LatencyHistogram>,
    /// One gauge per shard, labelled `shard="<index>"`.
    shard_events: Vec<Arc<Gauge>>,
}

impl StoreTelemetry {
    fn new(registry: &MetricsRegistry, shards: usize) -> StoreTelemetry {
        let shard_events = (0..shards)
            .map(|index| {
                let label = index.to_string();
                registry.gauge(
                    "gremlin_store_shard_events",
                    "Events currently held by each observation-store shard.",
                    &[("shard", label.as_str())],
                )
            })
            .collect();
        StoreTelemetry {
            appends: registry.counter(
                "gremlin_store_appends_total",
                "Events appended to the observation store.",
                &[],
            ),
            size: registry.gauge(
                "gremlin_store_events",
                "Events currently held by the observation store.",
                &[],
            ),
            query_seconds: registry.histogram(
                "gremlin_store_query_seconds",
                "Latency of observation-store queries.",
                &[],
            ),
            shard_events,
        }
    }
}

impl ShardInner {
    fn append(&mut self, seq: u64, event: Event) {
        let index = self.events.len();
        self.edges
            .entry((event.src.clone(), event.dst.clone()))
            .or_default()
            .push(index);
        if let Some(id) = &event.request_id {
            self.ids.entry(id.clone()).or_default().push(index);
        }
        self.events.push(StoredEvent { seq, event });
    }

    fn rebuild_indexes(&mut self) {
        self.edges.clear();
        self.ids.clear();
        for index in 0..self.events.len() {
            let event = &self.events[index].event;
            self.edges
                .entry((event.src.clone(), event.dst.clone()))
                .or_default()
                .push(index);
            if let Some(id) = &event.request_id {
                self.ids.entry(id.clone()).or_default().push(index);
            }
        }
    }

    /// Candidate indices for an id-pattern fast path, or `None` when
    /// the pattern cannot use the index.
    fn id_candidates(&self, pattern: &Pattern) -> Option<Vec<usize>> {
        match pattern {
            Pattern::Exact(id) => Some(self.ids.get(id.as_str()).cloned().unwrap_or_default()),
            Pattern::Prefix(prefix) => {
                let mut indices = Vec::new();
                for (_, slots) in self
                    .ids
                    .range::<str, _>((
                        std::ops::Bound::Included(prefix.as_str()),
                        std::ops::Bound::Unbounded,
                    ))
                    .take_while(|(id, _)| id.starts_with(prefix.as_str()))
                {
                    indices.extend_from_slice(slots);
                }
                indices.sort_unstable();
                Some(indices)
            }
            Pattern::Any | Pattern::Glob(_) => None,
        }
    }
}

fn default_shards() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(1, 64)
}

impl EventStore {
    /// Creates an empty store with one shard per available CPU.
    pub fn new() -> EventStore {
        EventStore::with_shards(default_shards())
    }

    /// Creates an empty store with an explicit shard count (minimum 1).
    pub fn with_shards(shards: usize) -> EventStore {
        let shards = shards.max(1);
        EventStore {
            shards: (0..shards).map(|_| Shard::default()).collect(),
            seq: AtomicU64::new(0),
            count: AtomicUsize::new(0),
            telemetry: RwLock::new(None),
        }
    }

    /// Creates an empty store behind an [`Arc`], ready to share with
    /// agents.
    pub fn shared() -> Arc<EventStore> {
        Arc::new(EventStore::new())
    }

    /// Number of shards this store spreads writes over.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Starts recording store activity (appends, total and per-shard
    /// size, query latency) into `registry`. Idempotent in effect:
    /// calling again re-binds the handles to the given registry.
    pub fn enable_telemetry(&self, registry: &MetricsRegistry) {
        let telemetry = StoreTelemetry::new(registry, self.shards.len());
        telemetry
            .size
            .set(self.count.load(Ordering::Relaxed) as i64);
        for (index, shard) in self.shards.iter().enumerate() {
            telemetry.shard_events[index].set(shard.inner.read().events.len() as i64);
        }
        *self.telemetry.write() = Some(telemetry);
    }

    fn shard_for(&self, seq: u64) -> usize {
        (seq % self.shards.len() as u64) as usize
    }

    /// Appends one event.
    pub fn record_event(&self, event: Event) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let shard = self.shard_for(seq);
        let shard_len = {
            let mut inner = self.shards[shard].inner.write();
            inner.append(seq, event);
            inner.events.len()
        };
        self.count.fetch_add(1, Ordering::Relaxed);
        if let Some(telemetry) = self.telemetry.read().as_ref() {
            telemetry.appends.inc();
            telemetry
                .size
                .set(self.count.load(Ordering::Relaxed) as i64);
            telemetry.shard_events[shard].set(shard_len as i64);
        }
    }

    /// Appends a batch of events, acquiring each shard lock at most
    /// once. This is the path collectors use so one lock acquisition
    /// covers a whole agent batch.
    pub fn record_batch(&self, events: Vec<Event>) {
        let n = events.len();
        if n == 0 {
            return;
        }
        let base = self.seq.fetch_add(n as u64, Ordering::Relaxed);
        let mut buckets: Vec<Vec<(u64, Event)>> = Vec::new();
        buckets.resize_with(self.shards.len(), Vec::new);
        for (offset, event) in events.into_iter().enumerate() {
            let seq = base + offset as u64;
            buckets[self.shard_for(seq)].push((seq, event));
        }
        let mut shard_lens: Vec<(usize, usize)> = Vec::new();
        for (shard, bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let mut inner = self.shards[shard].inner.write();
            for (seq, event) in bucket {
                inner.append(seq, event);
            }
            shard_lens.push((shard, inner.events.len()));
        }
        self.count.fetch_add(n, Ordering::Relaxed);
        if let Some(telemetry) = self.telemetry.read().as_ref() {
            telemetry.appends.add(n as u64);
            telemetry
                .size
                .set(self.count.load(Ordering::Relaxed) as i64);
            for (shard, len) in shard_lens {
                telemetry.shard_events[shard].set(len as i64);
            }
        }
    }

    /// Appends many events.
    pub fn extend(&self, events: impl IntoIterator<Item = Event>) {
        self.record_batch(events.into_iter().collect());
    }

    /// Number of stored events.
    pub fn len(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    /// Returns `true` if the store holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes all events (used between test runs; paper §9 "state
    /// cleanup").
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            let mut inner = shard.inner.write();
            inner.events.clear();
            inner.edges.clear();
            inner.ids.clear();
        }
        self.count.store(0, Ordering::Relaxed);
        if let Some(telemetry) = self.telemetry.read().as_ref() {
            telemetry.size.set(0);
            for gauge in &telemetry.shard_events {
                gauge.set(0);
            }
        }
    }

    /// Drops every event older than `cutoff_us` (log retention for
    /// long-running agents), returning how many were removed. Shard
    /// indexes are rebuilt.
    pub fn prune_before(&self, cutoff_us: Micros) -> usize {
        let mut removed = 0;
        let mut shard_lens: Vec<usize> = Vec::with_capacity(self.shards.len());
        for shard in self.shards.iter() {
            let mut inner = shard.inner.write();
            let before = inner.events.len();
            inner
                .events
                .retain(|stored| stored.event.timestamp_us >= cutoff_us);
            let dropped = before - inner.events.len();
            if dropped > 0 {
                inner.rebuild_indexes();
                removed += dropped;
            }
            shard_lens.push(inner.events.len());
        }
        if removed > 0 {
            self.count.fetch_sub(removed, Ordering::Relaxed);
        }
        if let Some(telemetry) = self.telemetry.read().as_ref() {
            telemetry
                .size
                .set(self.count.load(Ordering::Relaxed) as i64);
            for (shard, len) in shard_lens.into_iter().enumerate() {
                telemetry.shard_events[shard].set(len as i64);
            }
        }
        removed
    }

    /// Returns every stored event sorted by timestamp (insertion order
    /// on ties).
    pub fn snapshot(&self) -> Vec<Event> {
        let mut all: Vec<StoredEvent> = Vec::with_capacity(self.len());
        for shard in self.shards.iter() {
            all.extend(shard.inner.read().events.iter().cloned());
        }
        all.sort_unstable_by_key(|stored| (stored.event.timestamp_us, stored.seq));
        all.into_iter().map(|stored| stored.event).collect()
    }

    /// Runs `query`, returning matching events sorted by timestamp
    /// (insertion order on ties).
    ///
    /// When the query names both a source and destination, each
    /// shard's edge index narrows the scan; otherwise the request-ID
    /// index is tried before falling back to a full scan. Matches from
    /// all shards are merged by `(timestamp, insertion sequence)`.
    pub fn query(&self, query: &Query) -> Vec<Event> {
        let started = Instant::now();
        let mut matched = self.collect_matches(query);
        matched.sort_unstable_by_key(|stored| (stored.event.timestamp_us, stored.seq));
        let result: Vec<Event> = matched.into_iter().map(|stored| stored.event).collect();
        if let Some(telemetry) = self.telemetry.read().as_ref() {
            telemetry.query_seconds.record(started.elapsed());
        }
        result
    }

    fn collect_matches(&self, query: &Query) -> Vec<StoredEvent> {
        let mut matched: Vec<StoredEvent> = Vec::new();
        let edge_key: Option<(Name, Name)> = match (&query.src, &query.dst) {
            (Some(src), Some(dst)) => Some((Name::from(src.as_str()), Name::from(dst.as_str()))),
            _ => None,
        };
        for shard in self.shards.iter() {
            let inner = shard.inner.read();
            match &edge_key {
                Some(key) => {
                    if let Some(indices) = inner.edges.get(key) {
                        matched.extend(
                            indices
                                .iter()
                                .map(|&i| &inner.events[i])
                                .filter(|stored| query.matches_unindexed(&stored.event))
                                .cloned(),
                        );
                    }
                }
                None => {
                    // No edge filter: try the request-ID index before
                    // falling back to a full scan.
                    let candidates = query
                        .id_pattern
                        .as_ref()
                        .and_then(|pattern| inner.id_candidates(pattern));
                    match candidates {
                        Some(indices) => matched.extend(
                            indices
                                .iter()
                                .map(|&i| &inner.events[i])
                                .filter(|stored| query.matches(&stored.event))
                                .cloned(),
                        ),
                        None => matched.extend(
                            inner
                                .events
                                .iter()
                                .filter(|stored| query.matches(&stored.event))
                                .cloned(),
                        ),
                    }
                }
            }
        }
        matched
    }

    /// Counts matching events without materializing them.
    pub fn count(&self, query: &Query) -> usize {
        let edge_key: Option<(Name, Name)> = match (&query.src, &query.dst) {
            (Some(src), Some(dst)) => Some((Name::from(src.as_str()), Name::from(dst.as_str()))),
            _ => None,
        };
        let mut total = 0;
        for shard in self.shards.iter() {
            let inner = shard.inner.read();
            total += match &edge_key {
                Some(key) => match inner.edges.get(key) {
                    Some(indices) => indices
                        .iter()
                        .filter(|&&i| query.matches_unindexed(&inner.events[i].event))
                        .count(),
                    None => 0,
                },
                None => inner
                    .events
                    .iter()
                    .filter(|stored| query.matches(&stored.event))
                    .count(),
            };
        }
        total
    }

    /// The timestamp of the earliest stored event, if any.
    pub fn earliest(&self) -> Option<Micros> {
        self.shards
            .iter()
            .filter_map(|shard| {
                shard
                    .inner
                    .read()
                    .events
                    .iter()
                    .map(|stored| stored.event.timestamp_us)
                    .min()
            })
            .min()
    }

    /// The timestamp of the latest stored event, if any.
    pub fn latest(&self) -> Option<Micros> {
        self.shards
            .iter()
            .filter_map(|shard| {
                shard
                    .inner
                    .read()
                    .events
                    .iter()
                    .map(|stored| stored.event.timestamp_us)
                    .max()
            })
            .max()
    }

    /// Returns every event with insertion sequence `>= cursor`, in
    /// arrival order, together with the cursor to pass on the next
    /// poll.
    ///
    /// This is the live-tail API: a follower starts at `0` (full
    /// history) or [`EventStore::tail_cursor`] (future events only)
    /// and calls again with each returned cursor to receive exactly
    /// the events that arrived in between. Per-shard vectors are not
    /// sequence-sorted under concurrent writers, so each poll filters
    /// and re-sorts the tail.
    pub fn events_after(&self, cursor: u64) -> (Vec<Event>, u64) {
        let mut fresh: Vec<StoredEvent> = Vec::new();
        for shard in self.shards.iter() {
            let inner = shard.inner.read();
            fresh.extend(
                inner
                    .events
                    .iter()
                    .filter(|stored| stored.seq >= cursor)
                    .cloned(),
            );
        }
        fresh.sort_unstable_by_key(|stored| stored.seq);
        let next = fresh.last().map(|stored| stored.seq + 1).unwrap_or(cursor);
        (fresh.into_iter().map(|stored| stored.event).collect(), next)
    }

    /// The cursor positioned after every event recorded so far; a
    /// tail started here sees only future events.
    pub fn tail_cursor(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Every distinct request ID seen in the store, sorted.
    pub fn request_ids(&self) -> Vec<Name> {
        let mut ids: Vec<Name> = Vec::new();
        for shard in self.shards.iter() {
            ids.extend(shard.inner.read().ids.keys().cloned());
        }
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Serializes every event as newline-delimited JSON.
    ///
    /// # Errors
    ///
    /// Returns a `serde_json::Error` if serialization fails.
    pub fn export_json(&self) -> serde_json::Result<String> {
        let mut out = String::new();
        for event in self.snapshot() {
            out.push_str(&serde_json::to_string(&event)?);
            out.push('\n');
        }
        Ok(out)
    }

    /// Imports newline-delimited JSON produced by
    /// [`EventStore::export_json`].
    ///
    /// # Errors
    ///
    /// Returns a `serde_json::Error` on the first malformed line.
    pub fn import_json(&self, text: &str) -> serde_json::Result<usize> {
        let mut imported = 0;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let event: Event = serde_json::from_str(line)?;
            self.record_event(event);
            imported += 1;
        }
        Ok(imported)
    }
}

impl Default for EventStore {
    fn default() -> EventStore {
        EventStore::new()
    }
}

impl EventSink for EventStore {
    fn record(&self, event: Event) {
        self.record_event(event);
    }

    fn record_batch(&self, events: Vec<Event>) {
        EventStore::record_batch(self, events);
    }
}

impl EventSink for Arc<EventStore> {
    fn record(&self, event: Event) {
        self.record_event(event);
    }

    fn record_batch(&self, events: Vec<Event>) {
        EventStore::record_batch(self, events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use std::time::Duration;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::request("a", "b", "GET", "/1")
                .with_request_id("test-1")
                .with_timestamp(30),
            Event::request("a", "b", "GET", "/2")
                .with_request_id("test-2")
                .with_timestamp(10),
            Event::response("a", "b", 200, Duration::from_millis(1))
                .with_request_id("test-1")
                .with_timestamp(40),
            Event::request("b", "c", "GET", "/3")
                .with_request_id("test-1")
                .with_timestamp(20),
        ]
    }

    #[test]
    fn record_and_len() {
        let store = EventStore::new();
        assert!(store.is_empty());
        store.extend(sample_events());
        assert_eq!(store.len(), 4);
        assert!(!store.is_empty());
    }

    #[test]
    fn query_by_edge_sorted_by_time() {
        let store = EventStore::new();
        store.extend(sample_events());
        let result = store.query(&Query::edge("a", "b"));
        assert_eq!(result.len(), 3);
        let times: Vec<_> = result.iter().map(|e| e.timestamp_us).collect();
        assert_eq!(times, vec![10, 30, 40]);
    }

    #[test]
    fn query_requests_and_replies() {
        let store = EventStore::new();
        store.extend(sample_events());
        let requests = store.query(&Query::requests("a", "b"));
        assert_eq!(requests.len(), 2);
        assert!(requests.iter().all(|e| e.kind.is_request()));
        let replies = store.query(&Query::replies("a", "b"));
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].status(), Some(200));
    }

    #[test]
    fn query_unindexed_scans_everything() {
        let store = EventStore::new();
        store.extend(sample_events());
        let all = store.query(&Query::new());
        assert_eq!(all.len(), 4);
        let by_id = store.query(&Query::new().with_request_id("test-1"));
        assert_eq!(by_id.len(), 3);
    }

    #[test]
    fn count_matches_query_len() {
        let store = EventStore::new();
        store.extend(sample_events());
        for q in [
            Query::new(),
            Query::edge("a", "b"),
            Query::requests("a", "b"),
            Query::edge("nope", "b"),
        ] {
            assert_eq!(store.count(&q), store.query(&q).len());
        }
    }

    #[test]
    fn clear_empties_store() {
        let store = EventStore::new();
        store.extend(sample_events());
        store.clear();
        assert!(store.is_empty());
        assert!(store.query(&Query::edge("a", "b")).is_empty());
    }

    #[test]
    fn id_index_exact_and_prefix_queries() {
        let store = EventStore::new();
        store.extend(sample_events()); // ids test-1 (x3), test-2
                                       // Exact: uses the id index.
        let exact = store.query(&Query::new().with_request_id("test-1"));
        assert_eq!(exact.len(), 3);
        assert!(exact
            .windows(2)
            .all(|w| w[0].timestamp_us <= w[1].timestamp_us));
        // Prefix: range-scans the id index.
        let prefix = store.query(&Query::new().with_id_pattern(Pattern::new("test-*")));
        assert_eq!(prefix.len(), 4);
        // Prefix that excludes some ids.
        let narrow = store.query(&Query::new().with_id_pattern(Pattern::new("test-2*")));
        assert_eq!(narrow.len(), 1);
        // Glob falls back to the scan and agrees.
        let glob = store.query(&Query::new().with_id_pattern(Pattern::new("test-?")));
        assert_eq!(glob.len(), 4);
        // Missing id.
        assert!(store
            .query(&Query::new().with_request_id("nope"))
            .is_empty());
    }

    #[test]
    fn id_index_combines_with_other_filters() {
        let store = EventStore::new();
        store.extend(sample_events());
        // id test-1 exists on edges (a,b) and (b,c); restrict by kind.
        let query = Query {
            kind: crate::KindFilter::Requests,
            id_pattern: Some(Pattern::Exact("test-1".into())),
            ..Query::default()
        };
        let result = store.query(&query);
        assert_eq!(result.len(), 2);
        assert!(result.iter().all(|e| e.kind.is_request()));
        assert_eq!(store.count(&query), 2);
    }

    #[test]
    fn id_index_survives_prune_and_clear() {
        let store = EventStore::new();
        store.extend(sample_events());
        store.prune_before(25);
        let after_prune = store.query(&Query::new().with_request_id("test-1"));
        assert_eq!(after_prune.len(), 2); // timestamps 30 and 40 remain
        store.clear();
        assert!(store
            .query(&Query::new().with_request_id("test-1"))
            .is_empty());
    }

    #[test]
    fn prune_removes_old_events_and_keeps_index_valid() {
        let store = EventStore::new();
        store.extend(sample_events()); // timestamps 10, 20, 30, 40
        let removed = store.prune_before(25);
        assert_eq!(removed, 2);
        assert_eq!(store.len(), 2);
        assert_eq!(store.earliest(), Some(30));
        // The rebuilt index still answers edge queries correctly.
        let edge = store.query(&Query::edge("a", "b"));
        assert_eq!(edge.len(), 2);
        assert!(edge.iter().all(|e| e.timestamp_us >= 25));
        assert_eq!(store.count(&Query::edge("a", "b")), 2);
    }

    #[test]
    fn prune_noop_when_nothing_old() {
        let store = EventStore::new();
        store.extend(sample_events());
        assert_eq!(store.prune_before(0), 0);
        assert_eq!(store.len(), 4);
        assert_eq!(store.query(&Query::edge("a", "b")).len(), 3);
    }

    #[test]
    fn prune_everything() {
        let store = EventStore::new();
        store.extend(sample_events());
        assert_eq!(store.prune_before(u64::MAX), 4);
        assert!(store.is_empty());
        assert!(store.query(&Query::edge("a", "b")).is_empty());
    }

    #[test]
    fn earliest_latest() {
        let store = EventStore::new();
        assert_eq!(store.earliest(), None);
        store.extend(sample_events());
        assert_eq!(store.earliest(), Some(10));
        assert_eq!(store.latest(), Some(40));
    }

    #[test]
    fn json_export_import_round_trip() {
        let store = EventStore::new();
        store.extend(sample_events());
        let json = store.export_json().unwrap();
        let restored = EventStore::new();
        let n = restored.import_json(&json).unwrap();
        assert_eq!(n, 4);
        assert_eq!(restored.snapshot(), store.snapshot());
    }

    #[test]
    fn import_skips_blank_lines() {
        let store = EventStore::new();
        let event = Event::request("a", "b", "GET", "/").with_timestamp(1);
        let json = format!("\n{}\n\n", serde_json::to_string(&event).unwrap());
        assert_eq!(store.import_json(&json).unwrap(), 1);
    }

    #[test]
    fn import_rejects_garbage() {
        let store = EventStore::new();
        assert!(store.import_json("not json").is_err());
    }

    #[test]
    fn concurrent_writers() {
        let store = EventStore::shared();
        let mut handles = Vec::new();
        for thread_id in 0..8 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    store.record_event(
                        Event::request("a", "b", "GET", format!("/{thread_id}/{i}"))
                            .with_timestamp((thread_id * 1000 + i) as u64),
                    );
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(store.len(), 800);
        let sorted = store.snapshot();
        assert!(sorted
            .windows(2)
            .all(|w| w[0].timestamp_us <= w[1].timestamp_us));
    }

    #[test]
    fn shard_counts() {
        assert!(EventStore::new().shard_count() >= 1);
        assert_eq!(EventStore::with_shards(3).shard_count(), 3);
        // Minimum of one shard even when asked for zero.
        assert_eq!(EventStore::with_shards(0).shard_count(), 1);
    }

    /// The sharded store must produce byte-identical query results —
    /// same events, same order — as a single-shard (i.e. the old
    /// unsharded) store, including on timestamp ties where the
    /// insertion sequence breaks the tie.
    #[test]
    fn sharded_query_order_matches_single_shard() {
        let single = EventStore::with_shards(1);
        let sharded = EventStore::with_shards(4);
        let mut events = sample_events();
        // Timestamp ties across different shards.
        for i in 0..20 {
            events.push(
                Event::request("a", "b", "GET", format!("/tie/{i}"))
                    .with_request_id(format!("test-tie-{i}"))
                    .with_timestamp(50),
            );
        }
        for event in &events {
            single.record_event(event.clone());
            sharded.record_event(event.clone());
        }
        let queries = [
            Query::new(),
            Query::edge("a", "b"),
            Query::requests("a", "b"),
            Query::replies("a", "b"),
            Query::new().with_request_id("test-1"),
            Query::new().with_id_pattern(Pattern::new("test-*")),
            Query::new().with_id_pattern(Pattern::new("test-tie-1?")),
            Query::new().with_time_range(20, 51),
        ];
        for query in &queries {
            assert_eq!(
                single.query(query),
                sharded.query(query),
                "query: {query:?}"
            );
            assert_eq!(single.count(query), sharded.count(query));
        }
        assert_eq!(single.snapshot(), sharded.snapshot());
    }

    #[test]
    fn record_batch_spreads_and_queries_agree() {
        let store = EventStore::with_shards(4);
        store.record_batch(sample_events());
        assert_eq!(store.len(), 4);
        let result = store.query(&Query::edge("a", "b"));
        let times: Vec<_> = result.iter().map(|e| e.timestamp_us).collect();
        assert_eq!(times, vec![10, 30, 40]);
        // Batches spread over more than one shard.
        let populated = store
            .shards
            .iter()
            .filter(|shard| !shard.inner.read().events.is_empty())
            .count();
        assert!(populated > 1);
        store.record_batch(Vec::new());
        assert_eq!(store.len(), 4);
    }

    #[test]
    fn telemetry_tracks_appends_size_and_queries() {
        let registry = MetricsRegistry::new();
        let store = EventStore::new();
        store.record_event(Event::request("a", "b", "GET", "/pre").with_timestamp(1));
        store.enable_telemetry(&registry);
        // Size reflects pre-existing events; appends only count new ones.
        assert_eq!(
            registry.snapshot().gauge_value("gremlin_store_events", &[]),
            Some(1)
        );
        store.extend(sample_events());
        let _ = store.query(&Query::edge("a", "b"));
        store.prune_before(25);
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_value("gremlin_store_appends_total", &[]),
            Some(4)
        );
        // prune_before(25) drops timestamps 1, 10 and 20, keeping 30 and 40.
        assert_eq!(snap.gauge_value("gremlin_store_events", &[]), Some(2));
        assert_eq!(
            snap.histogram("gremlin_store_query_seconds", &[])
                .unwrap()
                .count(),
            1
        );
        store.clear();
        assert_eq!(
            registry.snapshot().gauge_value("gremlin_store_events", &[]),
            Some(0)
        );
    }

    #[test]
    fn telemetry_tracks_per_shard_sizes() {
        let registry = MetricsRegistry::new();
        let store = EventStore::with_shards(2);
        store.enable_telemetry(&registry);
        store.record_batch(sample_events()); // 4 events round-robin over 2 shards
        let snap = registry.snapshot();
        let shard0 = snap.gauge_value("gremlin_store_shard_events", &[("shard", "0")]);
        let shard1 = snap.gauge_value("gremlin_store_shard_events", &[("shard", "1")]);
        assert_eq!(shard0, Some(2));
        assert_eq!(shard1, Some(2));
        store.clear();
        let snap = registry.snapshot();
        assert_eq!(
            snap.gauge_value("gremlin_store_shard_events", &[("shard", "0")]),
            Some(0)
        );
    }

    #[test]
    fn events_after_tails_in_arrival_order() {
        let store = EventStore::with_shards(4);
        store.extend(sample_events());
        // From zero: full history in insertion (not timestamp) order.
        let (all, cursor) = store.events_after(0);
        assert_eq!(all.len(), 4);
        let times: Vec<_> = all.iter().map(|e| e.timestamp_us).collect();
        assert_eq!(times, vec![30, 10, 40, 20]);
        // Nothing new: cursor is stable.
        let (none, same) = store.events_after(cursor);
        assert!(none.is_empty());
        assert_eq!(same, cursor);
        // New arrivals show up exactly once.
        store.record_event(Event::request("x", "y", "GET", "/new").with_timestamp(5));
        let (fresh, next) = store.events_after(cursor);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].src, "x");
        assert!(next > cursor);
    }

    #[test]
    fn tail_cursor_skips_history() {
        let store = EventStore::new();
        store.extend(sample_events());
        let cursor = store.tail_cursor();
        let (none, _) = store.events_after(cursor);
        assert!(none.is_empty());
        store.record_event(Event::request("x", "y", "GET", "/only-this"));
        let (fresh, _) = store.events_after(cursor);
        assert_eq!(fresh.len(), 1);
    }

    #[test]
    fn request_ids_are_distinct_and_sorted() {
        let store = EventStore::with_shards(3);
        store.extend(sample_events()); // test-1 (x3), test-2
        store.record_event(Event::request("a", "b", "GET", "/anon")); // no id
        let ids = store.request_ids();
        assert_eq!(ids.len(), 2);
        assert_eq!(ids[0], "test-1");
        assert_eq!(ids[1], "test-2");
    }

    #[test]
    fn sink_trait_records() {
        let store = EventStore::shared();
        let sink: Arc<dyn EventSink> = store.clone();
        sink.record(Event::request("x", "y", "GET", "/"));
        sink.record_batch(vec![
            Event::request("x", "y", "GET", "/a"),
            Event::request("x", "y", "GET", "/b"),
        ]);
        assert_eq!(store.len(), 3);
        assert!(matches!(
            store.snapshot()[0].kind,
            EventKind::Request { .. }
        ));
    }
}

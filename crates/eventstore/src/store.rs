//! The centralized observation store.
//!
//! Gremlin agents report every observation to a central store; the
//! Assertion Checker then runs queries over it (paper §4.2). The
//! paper's implementation used logstash + Elasticsearch; this store
//! provides the same query surface — filtered, time-sorted retrieval —
//! as an in-memory indexed structure.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Instant;

use crate::pattern::Pattern;

use gremlin_telemetry::{Counter, Gauge, LatencyHistogram, MetricsRegistry};
use parking_lot::RwLock;

use crate::event::{Event, Micros};
use crate::query::Query;

/// A sink that accepts observation events.
///
/// Gremlin agents hold an `Arc<dyn EventSink>`; in single-process
/// deployments this is the [`EventStore`] itself, in distributed
/// deployments it can be a forwarding client.
pub trait EventSink: Send + Sync {
    /// Records one observation.
    fn record(&self, event: Event);
}

/// An in-memory, indexed, concurrently-writable event store.
///
/// Events are indexed by `(src, dst)` edge for the common
/// `GetRequests(Src, Dst, …)` query shape. Query results are always
/// sorted by timestamp, regardless of arrival order.
///
/// # Examples
///
/// ```
/// use gremlin_store::{Event, EventStore, Query};
/// use std::time::Duration;
///
/// let store = EventStore::new();
/// store.record_event(Event::request("a", "b", "GET", "/x").with_request_id("test-1"));
/// store.record_event(Event::response("a", "b", 503, Duration::from_millis(2)).with_request_id("test-1"));
///
/// let requests = store.query(&Query::requests("a", "b"));
/// assert_eq!(requests.len(), 1);
/// let replies = store.query(&Query::replies("a", "b"));
/// assert_eq!(replies[0].status(), Some(503));
/// ```
#[derive(Debug, Default)]
pub struct EventStore {
    inner: RwLock<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    events: Vec<Event>,
    /// Edge index: (src, dst) -> indices into `events`.
    edges: HashMap<(String, String), Vec<usize>>,
    /// Request-ID index: id -> indices into `events`. A BTreeMap so
    /// prefix patterns can range-scan.
    ids: BTreeMap<String, Vec<usize>>,
    /// Telemetry handles, set via [`EventStore::enable_telemetry`].
    /// Lives behind the store's own lock, so instrumented operations
    /// pay no extra synchronization.
    telemetry: Option<StoreTelemetry>,
}

#[derive(Debug)]
struct StoreTelemetry {
    appends: Arc<Counter>,
    size: Arc<Gauge>,
    query_seconds: Arc<LatencyHistogram>,
}

impl StoreTelemetry {
    fn new(registry: &MetricsRegistry) -> StoreTelemetry {
        StoreTelemetry {
            appends: registry.counter(
                "gremlin_store_appends_total",
                "Events appended to the observation store.",
                &[],
            ),
            size: registry.gauge(
                "gremlin_store_events",
                "Events currently held by the observation store.",
                &[],
            ),
            query_seconds: registry.histogram(
                "gremlin_store_query_seconds",
                "Latency of observation-store queries.",
                &[],
            ),
        }
    }
}

impl Inner {
    fn index_event(&mut self, index: usize) {
        let event = &self.events[index];
        self.edges
            .entry((event.src.clone(), event.dst.clone()))
            .or_default()
            .push(index);
        if let Some(id) = &event.request_id {
            self.ids.entry(id.clone()).or_default().push(index);
        }
    }

    fn rebuild_indexes(&mut self) {
        self.edges.clear();
        self.ids.clear();
        for index in 0..self.events.len() {
            self.index_event(index);
        }
    }

    /// Candidate indices for an id-pattern fast path, or `None` when
    /// the pattern cannot use the index.
    fn id_candidates(&self, pattern: &Pattern) -> Option<Vec<usize>> {
        match pattern {
            Pattern::Exact(id) => {
                Some(self.ids.get(id).cloned().unwrap_or_default())
            }
            Pattern::Prefix(prefix) => {
                let mut indices = Vec::new();
                for (_, slots) in self
                    .ids
                    .range::<String, _>((
                        std::ops::Bound::Included(prefix.clone()),
                        std::ops::Bound::Unbounded,
                    ))
                    .take_while(|(id, _)| id.starts_with(prefix.as_str()))
                {
                    indices.extend_from_slice(slots);
                }
                indices.sort_unstable();
                Some(indices)
            }
            Pattern::Any | Pattern::Glob(_) => None,
        }
    }
}

impl EventStore {
    /// Creates an empty store.
    pub fn new() -> EventStore {
        EventStore::default()
    }

    /// Creates an empty store behind an [`Arc`], ready to share with
    /// agents.
    pub fn shared() -> Arc<EventStore> {
        Arc::new(EventStore::new())
    }

    /// Starts recording store activity (appends, size, query latency)
    /// into `registry`. Idempotent in effect: calling again re-binds
    /// the handles to the given registry.
    pub fn enable_telemetry(&self, registry: &MetricsRegistry) {
        let mut inner = self.inner.write();
        let telemetry = StoreTelemetry::new(registry);
        telemetry.size.set(inner.events.len() as i64);
        inner.telemetry = Some(telemetry);
    }

    /// Appends one event.
    pub fn record_event(&self, event: Event) {
        let mut inner = self.inner.write();
        let index = inner.events.len();
        inner.events.push(event);
        inner.index_event(index);
        if let Some(telemetry) = &inner.telemetry {
            telemetry.appends.inc();
            telemetry.size.set(inner.events.len() as i64);
        }
    }

    /// Appends many events.
    pub fn extend(&self, events: impl IntoIterator<Item = Event>) {
        for event in events {
            self.record_event(event);
        }
    }

    /// Number of stored events.
    pub fn len(&self) -> usize {
        self.inner.read().events.len()
    }

    /// Returns `true` if the store holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes all events (used between test runs; paper §9 "state
    /// cleanup").
    pub fn clear(&self) {
        let mut inner = self.inner.write();
        inner.events.clear();
        inner.edges.clear();
        inner.ids.clear();
        if let Some(telemetry) = &inner.telemetry {
            telemetry.size.set(0);
        }
    }

    /// Drops every event older than `cutoff_us` (log retention for
    /// long-running agents), returning how many were removed. The
    /// edge index is rebuilt.
    pub fn prune_before(&self, cutoff_us: Micros) -> usize {
        let mut inner = self.inner.write();
        let before = inner.events.len();
        inner.events.retain(|event| event.timestamp_us >= cutoff_us);
        let removed = before - inner.events.len();
        if removed > 0 {
            inner.rebuild_indexes();
        }
        if let Some(telemetry) = &inner.telemetry {
            telemetry.size.set(inner.events.len() as i64);
        }
        removed
    }

    /// Returns every stored event sorted by timestamp.
    pub fn snapshot(&self) -> Vec<Event> {
        let inner = self.inner.read();
        let mut events = inner.events.clone();
        events.sort_by_key(|e| e.timestamp_us);
        events
    }

    /// Runs `query`, returning matching events sorted by timestamp.
    ///
    /// When the query names both a source and destination, the edge
    /// index narrows the scan; otherwise all events are filtered.
    pub fn query(&self, query: &Query) -> Vec<Event> {
        let started = Instant::now();
        let inner = self.inner.read();
        let mut result: Vec<Event> = match (&query.src, &query.dst) {
            (Some(src), Some(dst)) => {
                match inner.edges.get(&(src.clone(), dst.clone())) {
                    Some(indices) => indices
                        .iter()
                        .map(|&i| &inner.events[i])
                        .filter(|e| query.matches_unindexed(e))
                        .cloned()
                        .collect(),
                    None => Vec::new(),
                }
            }
            _ => {
                // No edge filter: try the request-ID index before
                // falling back to a full scan.
                let candidates = query
                    .id_pattern
                    .as_ref()
                    .and_then(|pattern| inner.id_candidates(pattern));
                match candidates {
                    Some(indices) => indices
                        .iter()
                        .map(|&i| &inner.events[i])
                        .filter(|e| query.matches(e))
                        .cloned()
                        .collect(),
                    None => inner
                        .events
                        .iter()
                        .filter(|e| query.matches(e))
                        .cloned()
                        .collect(),
                }
            }
        };
        result.sort_by_key(|e| e.timestamp_us);
        if let Some(telemetry) = &inner.telemetry {
            telemetry.query_seconds.record(started.elapsed());
        }
        result
    }

    /// Counts matching events without materializing them.
    pub fn count(&self, query: &Query) -> usize {
        let inner = self.inner.read();
        match (&query.src, &query.dst) {
            (Some(src), Some(dst)) => match inner.edges.get(&(src.clone(), dst.clone())) {
                Some(indices) => indices
                    .iter()
                    .filter(|&&i| query.matches_unindexed(&inner.events[i]))
                    .count(),
                None => 0,
            },
            _ => inner.events.iter().filter(|e| query.matches(e)).count(),
        }
    }

    /// The timestamp of the earliest stored event, if any.
    pub fn earliest(&self) -> Option<Micros> {
        self.inner.read().events.iter().map(|e| e.timestamp_us).min()
    }

    /// The timestamp of the latest stored event, if any.
    pub fn latest(&self) -> Option<Micros> {
        self.inner.read().events.iter().map(|e| e.timestamp_us).max()
    }

    /// Serializes every event as newline-delimited JSON.
    ///
    /// # Errors
    ///
    /// Returns a `serde_json::Error` if serialization fails.
    pub fn export_json(&self) -> serde_json::Result<String> {
        let mut out = String::new();
        for event in self.snapshot() {
            out.push_str(&serde_json::to_string(&event)?);
            out.push('\n');
        }
        Ok(out)
    }

    /// Imports newline-delimited JSON produced by
    /// [`EventStore::export_json`].
    ///
    /// # Errors
    ///
    /// Returns a `serde_json::Error` on the first malformed line.
    pub fn import_json(&self, text: &str) -> serde_json::Result<usize> {
        let mut imported = 0;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let event: Event = serde_json::from_str(line)?;
            self.record_event(event);
            imported += 1;
        }
        Ok(imported)
    }
}

impl EventSink for EventStore {
    fn record(&self, event: Event) {
        self.record_event(event);
    }
}

impl EventSink for Arc<EventStore> {
    fn record(&self, event: Event) {
        self.record_event(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use std::time::Duration;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::request("a", "b", "GET", "/1")
                .with_request_id("test-1")
                .with_timestamp(30),
            Event::request("a", "b", "GET", "/2")
                .with_request_id("test-2")
                .with_timestamp(10),
            Event::response("a", "b", 200, Duration::from_millis(1))
                .with_request_id("test-1")
                .with_timestamp(40),
            Event::request("b", "c", "GET", "/3")
                .with_request_id("test-1")
                .with_timestamp(20),
        ]
    }

    #[test]
    fn record_and_len() {
        let store = EventStore::new();
        assert!(store.is_empty());
        store.extend(sample_events());
        assert_eq!(store.len(), 4);
        assert!(!store.is_empty());
    }

    #[test]
    fn query_by_edge_sorted_by_time() {
        let store = EventStore::new();
        store.extend(sample_events());
        let result = store.query(&Query::edge("a", "b"));
        assert_eq!(result.len(), 3);
        let times: Vec<_> = result.iter().map(|e| e.timestamp_us).collect();
        assert_eq!(times, vec![10, 30, 40]);
    }

    #[test]
    fn query_requests_and_replies() {
        let store = EventStore::new();
        store.extend(sample_events());
        let requests = store.query(&Query::requests("a", "b"));
        assert_eq!(requests.len(), 2);
        assert!(requests.iter().all(|e| e.kind.is_request()));
        let replies = store.query(&Query::replies("a", "b"));
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].status(), Some(200));
    }

    #[test]
    fn query_unindexed_scans_everything() {
        let store = EventStore::new();
        store.extend(sample_events());
        let all = store.query(&Query::new());
        assert_eq!(all.len(), 4);
        let by_id = store.query(&Query::new().with_request_id("test-1"));
        assert_eq!(by_id.len(), 3);
    }

    #[test]
    fn count_matches_query_len() {
        let store = EventStore::new();
        store.extend(sample_events());
        for q in [
            Query::new(),
            Query::edge("a", "b"),
            Query::requests("a", "b"),
            Query::edge("nope", "b"),
        ] {
            assert_eq!(store.count(&q), store.query(&q).len());
        }
    }

    #[test]
    fn clear_empties_store() {
        let store = EventStore::new();
        store.extend(sample_events());
        store.clear();
        assert!(store.is_empty());
        assert!(store.query(&Query::edge("a", "b")).is_empty());
    }

    #[test]
    fn id_index_exact_and_prefix_queries() {
        let store = EventStore::new();
        store.extend(sample_events()); // ids test-1 (x3), test-2
        // Exact: uses the id index.
        let exact = store.query(&Query::new().with_request_id("test-1"));
        assert_eq!(exact.len(), 3);
        assert!(exact.windows(2).all(|w| w[0].timestamp_us <= w[1].timestamp_us));
        // Prefix: range-scans the id index.
        let prefix = store.query(&Query::new().with_id_pattern(Pattern::new("test-*")));
        assert_eq!(prefix.len(), 4);
        // Prefix that excludes some ids.
        let narrow = store.query(&Query::new().with_id_pattern(Pattern::new("test-2*")));
        assert_eq!(narrow.len(), 1);
        // Glob falls back to the scan and agrees.
        let glob = store.query(&Query::new().with_id_pattern(Pattern::new("test-?")));
        assert_eq!(glob.len(), 4);
        // Missing id.
        assert!(store
            .query(&Query::new().with_request_id("nope"))
            .is_empty());
    }

    #[test]
    fn id_index_combines_with_other_filters() {
        let store = EventStore::new();
        store.extend(sample_events());
        // id test-1 exists on edges (a,b) and (b,c); restrict by kind.
        let query = Query {
            kind: crate::KindFilter::Requests,
            id_pattern: Some(Pattern::Exact("test-1".into())),
            ..Query::default()
        };
        let result = store.query(&query);
        assert_eq!(result.len(), 2);
        assert!(result.iter().all(|e| e.kind.is_request()));
        assert_eq!(store.count(&query), 2);
    }

    #[test]
    fn id_index_survives_prune_and_clear() {
        let store = EventStore::new();
        store.extend(sample_events());
        store.prune_before(25);
        let after_prune = store.query(&Query::new().with_request_id("test-1"));
        assert_eq!(after_prune.len(), 2); // timestamps 30 and 40 remain
        store.clear();
        assert!(store
            .query(&Query::new().with_request_id("test-1"))
            .is_empty());
    }

    #[test]
    fn prune_removes_old_events_and_keeps_index_valid() {
        let store = EventStore::new();
        store.extend(sample_events()); // timestamps 10, 20, 30, 40
        let removed = store.prune_before(25);
        assert_eq!(removed, 2);
        assert_eq!(store.len(), 2);
        assert_eq!(store.earliest(), Some(30));
        // The rebuilt index still answers edge queries correctly.
        let edge = store.query(&Query::edge("a", "b"));
        assert_eq!(edge.len(), 2);
        assert!(edge.iter().all(|e| e.timestamp_us >= 25));
        assert_eq!(store.count(&Query::edge("a", "b")), 2);
    }

    #[test]
    fn prune_noop_when_nothing_old() {
        let store = EventStore::new();
        store.extend(sample_events());
        assert_eq!(store.prune_before(0), 0);
        assert_eq!(store.len(), 4);
        assert_eq!(store.query(&Query::edge("a", "b")).len(), 3);
    }

    #[test]
    fn prune_everything() {
        let store = EventStore::new();
        store.extend(sample_events());
        assert_eq!(store.prune_before(u64::MAX), 4);
        assert!(store.is_empty());
        assert!(store.query(&Query::edge("a", "b")).is_empty());
    }

    #[test]
    fn earliest_latest() {
        let store = EventStore::new();
        assert_eq!(store.earliest(), None);
        store.extend(sample_events());
        assert_eq!(store.earliest(), Some(10));
        assert_eq!(store.latest(), Some(40));
    }

    #[test]
    fn json_export_import_round_trip() {
        let store = EventStore::new();
        store.extend(sample_events());
        let json = store.export_json().unwrap();
        let restored = EventStore::new();
        let n = restored.import_json(&json).unwrap();
        assert_eq!(n, 4);
        assert_eq!(restored.snapshot(), store.snapshot());
    }

    #[test]
    fn import_skips_blank_lines() {
        let store = EventStore::new();
        let event = Event::request("a", "b", "GET", "/").with_timestamp(1);
        let json = format!("\n{}\n\n", serde_json::to_string(&event).unwrap());
        assert_eq!(store.import_json(&json).unwrap(), 1);
    }

    #[test]
    fn import_rejects_garbage() {
        let store = EventStore::new();
        assert!(store.import_json("not json").is_err());
    }

    #[test]
    fn concurrent_writers() {
        let store = EventStore::shared();
        let mut handles = Vec::new();
        for thread_id in 0..8 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    store.record_event(
                        Event::request("a", "b", "GET", format!("/{thread_id}/{i}"))
                            .with_timestamp((thread_id * 1000 + i) as u64),
                    );
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(store.len(), 800);
        let sorted = store.snapshot();
        assert!(sorted.windows(2).all(|w| w[0].timestamp_us <= w[1].timestamp_us));
    }

    #[test]
    fn telemetry_tracks_appends_size_and_queries() {
        let registry = MetricsRegistry::new();
        let store = EventStore::new();
        store.record_event(Event::request("a", "b", "GET", "/pre").with_timestamp(1));
        store.enable_telemetry(&registry);
        // Size reflects pre-existing events; appends only count new ones.
        assert_eq!(
            registry.snapshot().gauge_value("gremlin_store_events", &[]),
            Some(1)
        );
        store.extend(sample_events());
        let _ = store.query(&Query::edge("a", "b"));
        store.prune_before(25);
        let snap = registry.snapshot();
        assert_eq!(snap.counter_value("gremlin_store_appends_total", &[]), Some(4));
        // prune_before(25) drops timestamps 1, 10 and 20, keeping 30 and 40.
        assert_eq!(snap.gauge_value("gremlin_store_events", &[]), Some(2));
        assert_eq!(
            snap.histogram("gremlin_store_query_seconds", &[]).unwrap().count(),
            1
        );
        store.clear();
        assert_eq!(
            registry.snapshot().gauge_value("gremlin_store_events", &[]),
            Some(0)
        );
    }

    #[test]
    fn sink_trait_records() {
        let store = EventStore::shared();
        let sink: Arc<dyn EventSink> = store.clone();
        sink.record(Event::request("x", "y", "GET", "/"));
        assert_eq!(store.len(), 1);
        assert!(matches!(
            store.snapshot()[0].kind,
            EventKind::Request { .. }
        ));
    }
}

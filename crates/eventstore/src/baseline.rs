//! Per-edge steady-state baselines learned during fault-free warmup.
//!
//! The Assertion Checker and the streaming monitor both take
//! operator-supplied thresholds; the paper notes that "expected
//! behavior" differs per dependency edge. An [`EdgeBaseline`] captures
//! one edge's steady state from a fault-free warmup phase — request
//! rate (EWMA + MAD dispersion over per-window samples), error rate
//! (Wilson upper confidence bound), and latency percentiles (from
//! `gremlin-telemetry` histogram snapshots, with MAD dispersion over
//! per-window medians) — so later windows can be scored as robust
//! z-scores against the learned profile instead of fixed limits.
//!
//! The statistics are deliberately robust: medians and MAD instead of
//! mean/stddev (a single warmup hiccup must not inflate the scale),
//! and every dispersion is floored (a relative and an absolute floor)
//! so a perfectly steady warmup can never produce a zero scale and
//! turn ordinary jitter into infinite z-scores.

use serde::{Deserialize, Serialize};

use gremlin_telemetry::HistogramSnapshot;

/// Scale factor turning a MAD into a robust standard-deviation
/// estimate (for normally distributed data).
pub const MAD_SIGMA: f64 = 1.4826;

/// EWMA smoothing factor for the request-rate baseline.
const RATE_EWMA_ALPHA: f64 = 0.3;

/// Relative floor on the rate scale, as a fraction of the baseline
/// rate.
const RATE_REL_FLOOR: f64 = 0.25;
/// Absolute floor on the rate scale, requests/second.
const RATE_ABS_FLOOR: f64 = 0.5;
/// Relative floor on the latency scale, as a fraction of the baseline
/// percentile.
const LATENCY_REL_FLOOR: f64 = 0.25;
/// Absolute floor on the latency scale, microseconds.
const LATENCY_ABS_FLOOR_US: f64 = 1_000.0;
/// Floor on the error-rate margin (the Wilson half-width).
const ERROR_MARGIN_FLOOR: f64 = 0.02;
/// z for the 95% Wilson upper confidence bound.
const WILSON_Z: f64 = 1.96;

/// Median of a sample; `0.0` for an empty slice.
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 0 {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    } else {
        sorted[mid]
    }
}

/// Median absolute deviation of a sample around `center`; `0.0` for
/// an empty slice.
pub fn mad(values: &[f64], center: f64) -> f64 {
    let deviations: Vec<f64> = values.iter().map(|v| (v - center).abs()).collect();
    median(&deviations)
}

/// Wilson score interval upper bound for a binomial proportion with
/// `failures` successes out of `trials`, at confidence `z` (e.g.
/// `1.96` for 95%). Returns `1.0` when `trials` is zero — with no
/// observations nothing can be ruled out.
pub fn wilson_upper(failures: u64, trials: u64, z: f64) -> f64 {
    if trials == 0 {
        return 1.0;
    }
    let n = trials as f64;
    let p = failures as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = p + z2 / (2.0 * n);
    let margin = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((center + margin) / denom).clamp(0.0, 1.0)
}

/// One edge's learned steady-state profile.
///
/// Built by a [`BaselineBuilder`] from fault-free warmup windows; the
/// `*_z` methods score a later window against the profile as robust
/// z-scores. Every scale is floored, so the scores are always finite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeBaseline {
    /// Calling service.
    pub src: String,
    /// Called service.
    pub dst: String,
    /// Warmup windows (with traffic) the profile was learned from.
    pub windows: u32,
    /// Exponentially weighted moving average of per-window request
    /// rates, requests/second.
    pub rate_ewma: f64,
    /// Median absolute deviation of per-window request rates.
    pub rate_mad: f64,
    /// Failed fraction of responses over the whole warmup.
    pub error_rate: f64,
    /// Wilson 95% upper confidence bound on the error rate.
    pub error_upper: f64,
    /// Responses observed during warmup.
    pub responses: u64,
    /// p50 reply latency over the whole warmup, microseconds.
    pub p50_us: u64,
    /// p99 reply latency over the whole warmup, microseconds.
    pub p99_us: u64,
    /// Median absolute deviation of per-window p50 latencies,
    /// microseconds.
    pub latency_mad_us: f64,
}

impl EdgeBaseline {
    /// Robust z-score of a window's request rate against the
    /// baseline. Two-sided: both a surge and a collapse (e.g. a
    /// crashed dependency) are surprising.
    pub fn rate_z(&self, rate_rps: f64) -> f64 {
        let scale = (MAD_SIGMA * self.rate_mad)
            .max(RATE_REL_FLOOR * self.rate_ewma)
            .max(RATE_ABS_FLOOR);
        (rate_rps - self.rate_ewma).abs() / scale
    }

    /// Robust z-score of a window's error rate. One-sided: only an
    /// error rate *above* the Wilson upper bound is surprising, scaled
    /// by the (floored) Wilson margin. `0.0` for a window with no
    /// responses.
    pub fn error_z(&self, errors: u64, responses: u64) -> f64 {
        if responses == 0 {
            return 0.0;
        }
        let rate = errors as f64 / responses as f64;
        let excess = rate - self.error_upper;
        if excess <= 0.0 {
            return 0.0;
        }
        excess / (self.error_upper - self.error_rate).max(ERROR_MARGIN_FLOOR)
    }

    /// Robust z-score of a window's latency percentiles. One-sided:
    /// only slower-than-baseline is surprising. `0.0` when the warmup
    /// saw no replies on the edge.
    pub fn latency_z(&self, p50_us: u64, p99_us: u64) -> f64 {
        if self.responses == 0 {
            return 0.0;
        }
        let mad = MAD_SIGMA * self.latency_mad_us;
        let scale50 = mad
            .max(LATENCY_REL_FLOOR * self.p50_us as f64)
            .max(LATENCY_ABS_FLOOR_US);
        let scale99 = mad
            .max(LATENCY_REL_FLOOR * self.p99_us as f64)
            .max(LATENCY_ABS_FLOOR_US);
        let z50 = (p50_us as f64 - self.p50_us as f64) / scale50;
        let z99 = (p99_us as f64 - self.p99_us as f64) / scale99;
        z50.max(z99).max(0.0)
    }
}

/// Accumulates fault-free warmup windows for one edge and builds the
/// [`EdgeBaseline`].
///
/// # Examples
///
/// ```
/// use gremlin_store::BaselineBuilder;
/// use gremlin_telemetry::{HistogramSnapshot, LatencyHistogram};
/// use std::time::Duration;
///
/// let mut builder = BaselineBuilder::new("web", "db");
/// for _ in 0..5 {
///     let hist = LatencyHistogram::new();
///     for _ in 0..10 {
///         hist.record(Duration::from_millis(5));
///     }
///     builder.add_window(10.0, 10, 0, &hist.snapshot());
/// }
/// let baseline = builder.build();
/// assert_eq!(baseline.windows, 5);
/// assert!(baseline.rate_z(10.0) < 1.0);
/// assert!(baseline.rate_z(100.0) > 3.0);
/// ```
#[derive(Debug)]
pub struct BaselineBuilder {
    src: String,
    dst: String,
    rates: Vec<f64>,
    window_p50s: Vec<f64>,
    errors: u64,
    responses: u64,
    latency: HistogramSnapshot,
}

impl BaselineBuilder {
    /// Creates an empty builder for the `src -> dst` edge.
    pub fn new(src: impl Into<String>, dst: impl Into<String>) -> BaselineBuilder {
        BaselineBuilder {
            src: src.into(),
            dst: dst.into(),
            rates: Vec::new(),
            window_p50s: Vec::new(),
            errors: 0,
            responses: 0,
            latency: HistogramSnapshot::empty(),
        }
    }

    /// Folds one warmup window into the profile: the window's request
    /// rate, its response/error counts, and the latency distribution
    /// of just that window (a snapshot delta).
    pub fn add_window(
        &mut self,
        rate_rps: f64,
        responses: u64,
        errors: u64,
        latency: &HistogramSnapshot,
    ) {
        self.rates.push(rate_rps);
        self.responses += responses;
        self.errors += errors;
        if !latency.is_empty() {
            if let Some(p50) = latency.percentile(0.50) {
                self.window_p50s.push(p50.as_micros() as f64);
            }
            self.latency = self.latency.merge(latency);
        }
    }

    /// Warmup windows folded in so far.
    pub fn windows(&self) -> u32 {
        self.rates.len() as u32
    }

    /// Builds the baseline from the windows folded in so far.
    pub fn build(&self) -> EdgeBaseline {
        let mut ewma = 0.0;
        for (i, rate) in self.rates.iter().enumerate() {
            ewma = if i == 0 {
                *rate
            } else {
                RATE_EWMA_ALPHA * rate + (1.0 - RATE_EWMA_ALPHA) * ewma
            };
        }
        let rate_mad = mad(&self.rates, median(&self.rates));
        let error_rate = if self.responses == 0 {
            0.0
        } else {
            self.errors as f64 / self.responses as f64
        };
        EdgeBaseline {
            src: self.src.clone(),
            dst: self.dst.clone(),
            windows: self.windows(),
            rate_ewma: ewma,
            rate_mad,
            error_rate,
            error_upper: wilson_upper(self.errors, self.responses, WILSON_Z),
            responses: self.responses,
            p50_us: self
                .latency
                .percentile(0.50)
                .map(|d| d.as_micros() as u64)
                .unwrap_or(0),
            p99_us: self
                .latency
                .percentile(0.99)
                .map(|d| d.as_micros() as u64)
                .unwrap_or(0),
            latency_mad_us: mad(&self.window_p50s, median(&self.window_p50s)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gremlin_telemetry::LatencyHistogram;
    use std::time::Duration;

    fn window_hist(latency_ms: u64, count: usize) -> HistogramSnapshot {
        let hist = LatencyHistogram::new();
        for _ in 0..count {
            hist.record(Duration::from_millis(latency_ms));
        }
        hist.snapshot()
    }

    fn steady_baseline() -> EdgeBaseline {
        let mut builder = BaselineBuilder::new("a", "b");
        for _ in 0..6 {
            builder.add_window(10.0, 10, 0, &window_hist(5, 10));
        }
        builder.build()
    }

    #[test]
    fn median_and_mad_basics() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[1.0, 3.0]), 2.0);
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
        assert_eq!(mad(&[1.0, 2.0, 3.0], 2.0), 1.0);
        assert_eq!(mad(&[], 0.0), 0.0);
    }

    #[test]
    fn wilson_upper_bounds() {
        // No observations: nothing can be ruled out.
        assert_eq!(wilson_upper(0, 0, 1.96), 1.0);
        // Clean warmup: upper bound shrinks with sample size.
        let small = wilson_upper(0, 10, 1.96);
        let large = wilson_upper(0, 1000, 1.96);
        assert!(small > large, "{small} vs {large}");
        assert!(large < 0.01, "{large}");
        // All failures: bound pinned near 1.
        assert!(wilson_upper(10, 10, 1.96) > 0.7);
        assert!(wilson_upper(10, 10, 1.96) <= 1.0);
    }

    #[test]
    fn steady_windows_score_near_zero() {
        let baseline = steady_baseline();
        assert_eq!(baseline.windows, 6);
        assert!((baseline.rate_ewma - 10.0).abs() < 1e-9);
        assert_eq!(baseline.error_rate, 0.0);
        assert!(baseline.error_upper > 0.0 && baseline.error_upper < 0.1);
        assert!(baseline.p50_us >= 4_000 && baseline.p50_us <= 6_000);
        // An identical window is unsurprising in every dimension.
        assert!(baseline.rate_z(10.0) < 0.5);
        assert_eq!(baseline.error_z(0, 10), 0.0);
        assert!(baseline.latency_z(baseline.p50_us, baseline.p99_us) < 0.5);
    }

    #[test]
    fn deviations_score_high() {
        let baseline = steady_baseline();
        // Rate collapse (crashed dependency) and surge both register.
        assert!(baseline.rate_z(0.0) > 3.0);
        assert!(baseline.rate_z(40.0) > 3.0);
        // A 60ms delay against a 5ms baseline is a massive z.
        assert!(baseline.latency_z(60_000, 60_000) > 10.0);
        // Faster than baseline is not an anomaly.
        assert_eq!(baseline.latency_z(0, 0), 0.0);
        // An all-error window blows far past the Wilson bound.
        assert!(baseline.error_z(10, 10) > 3.0);
        // A single error in a small window stays under the bar.
        assert!(baseline.error_z(1, 20) < 3.0);
    }

    #[test]
    fn degenerate_inputs_stay_finite_and_zero() {
        // A baseline learned from zero-traffic windows must never
        // produce NaN or infinity.
        let mut builder = BaselineBuilder::new("a", "b");
        builder.add_window(0.0, 0, 0, &HistogramSnapshot::empty());
        let baseline = builder.build();
        assert_eq!(baseline.error_rate, 0.0);
        assert_eq!(baseline.error_upper, 1.0);
        assert_eq!(baseline.p50_us, 0);
        for z in [
            baseline.rate_z(0.0),
            baseline.rate_z(100.0),
            baseline.error_z(0, 0),
            baseline.error_z(5, 5),
            baseline.latency_z(1_000_000, 1_000_000),
        ] {
            assert!(z.is_finite(), "{z}");
        }
        // No warmup responses: latency is unscorable, not infinite.
        assert_eq!(baseline.latency_z(1_000_000, 1_000_000), 0.0);
        // Zero responses in the scored window: error is unscorable.
        assert_eq!(steady_baseline().error_z(0, 0), 0.0);
    }

    #[test]
    fn serde_round_trips() {
        let baseline = steady_baseline();
        let json = serde_json::to_string(&baseline).unwrap();
        let back: EdgeBaseline = serde_json::from_str(&json).unwrap();
        assert_eq!(baseline, back);
    }
}

//! Observation events logged by Gremlin agents.
//!
//! Each agent records, for every API call it proxies (paper §4.1):
//! the message timestamp and request ID, parts of the message (method
//! and URI for requests, status code and latency for responses), and
//! any fault actions applied to the message.

use std::fmt;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use serde::{Deserialize, Serialize};

use crate::name::Name;

/// Microseconds since the UNIX epoch; the timestamp resolution of all
/// Gremlin observations.
pub type Micros = u64;

/// Returns the current wall-clock time in microseconds since the UNIX
/// epoch.
pub fn now_micros() -> Micros {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or(Duration::ZERO)
        .as_micros() as Micros
}

/// Which direction of an API call an event describes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum EventKind {
    /// A request observed flowing from `src` to `dst`.
    Request {
        /// HTTP method as text (e.g. `GET`).
        method: String,
        /// Request URI (path and query).
        uri: String,
    },
    /// A response (or synthesized error) observed flowing back from
    /// `dst` to `src`.
    Response {
        /// HTTP status code; `0` when the connection was reset before
        /// any status was produced (TCP-level abort, `Error=-1`).
        status: u16,
        /// Latency from request forwarding to response completion, as
        /// observed by the caller — including any Gremlin-injected
        /// delay.
        latency_us: Micros,
    },
}

impl EventKind {
    /// Returns `true` for request events.
    pub fn is_request(&self) -> bool {
        matches!(self, EventKind::Request { .. })
    }

    /// Returns `true` for response events.
    pub fn is_response(&self) -> bool {
        matches!(self, EventKind::Response { .. })
    }
}

/// The fault action a Gremlin agent applied to a message, recorded on
/// the observation (Table 2 primitives).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "action", rename_all = "snake_case")]
pub enum AppliedFault {
    /// The message was aborted with an application-level error code.
    Abort {
        /// The synthesized status code returned to the caller.
        status: u16,
    },
    /// The connection was reset at the TCP level (`Error=-1`), so the
    /// caller saw no application-level response at all.
    AbortReset,
    /// Message forwarding was delayed by the given interval.
    Delay {
        /// The injected delay in microseconds.
        delay_us: Micros,
    },
    /// Message bytes were rewritten.
    Modify,
}

impl fmt::Display for AppliedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppliedFault::Abort { status } => write!(f, "abort({status})"),
            AppliedFault::AbortReset => write!(f, "abort(reset)"),
            AppliedFault::Delay { delay_us } => write!(f, "delay({delay_us}us)"),
            AppliedFault::Modify => write!(f, "modify"),
        }
    }
}

/// One observation record reported by a Gremlin agent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Wall-clock timestamp in microseconds since the UNIX epoch.
    pub timestamp_us: Micros,
    /// The propagated request ID, if the message carried one.
    pub request_id: Option<Name>,
    /// Logical name of the calling service.
    pub src: Name,
    /// Logical name of the called service.
    pub dst: Name,
    /// Direction and message-specific details.
    pub kind: EventKind,
    /// Fault action applied by the agent, if any.
    pub fault: Option<AppliedFault>,
    /// Identity of the agent instance that logged the event.
    pub agent: Name,
    /// Span ID minted by the agent for this intercepted call
    /// (Dapper/Zipkin-style causal tracing). Absent in logs written
    /// before span propagation existed.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub span_id: Option<Name>,
    /// Span ID of the causally enclosing call, if the intercepted
    /// message carried one.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub parent_id: Option<Name>,
}

impl Event {
    /// Creates a request observation stamped with the current time.
    pub fn request(
        src: impl Into<Name>,
        dst: impl Into<Name>,
        method: impl Into<String>,
        uri: impl Into<String>,
    ) -> Event {
        Event {
            timestamp_us: now_micros(),
            request_id: None,
            src: src.into(),
            dst: dst.into(),
            kind: EventKind::Request {
                method: method.into(),
                uri: uri.into(),
            },
            fault: None,
            agent: Name::empty(),
            span_id: None,
            parent_id: None,
        }
    }

    /// Creates a response observation stamped with the current time.
    pub fn response(
        src: impl Into<Name>,
        dst: impl Into<Name>,
        status: u16,
        latency: Duration,
    ) -> Event {
        Event {
            timestamp_us: now_micros(),
            request_id: None,
            src: src.into(),
            dst: dst.into(),
            kind: EventKind::Response {
                status,
                latency_us: latency.as_micros() as Micros,
            },
            fault: None,
            agent: Name::empty(),
            span_id: None,
            parent_id: None,
        }
    }

    /// Builder-style: sets the request ID.
    pub fn with_request_id(mut self, id: impl Into<Name>) -> Event {
        self.request_id = Some(id.into());
        self
    }

    /// Builder-style: sets the timestamp.
    pub fn with_timestamp(mut self, timestamp_us: Micros) -> Event {
        self.timestamp_us = timestamp_us;
        self
    }

    /// Builder-style: records an applied fault.
    pub fn with_fault(mut self, fault: AppliedFault) -> Event {
        self.fault = Some(fault);
        self
    }

    /// Builder-style: sets the reporting agent name.
    pub fn with_agent(mut self, agent: impl Into<Name>) -> Event {
        self.agent = agent.into();
        self
    }

    /// Builder-style: sets the span ID of this intercepted call.
    pub fn with_span_id(mut self, span: impl Into<Name>) -> Event {
        self.span_id = Some(span.into());
        self
    }

    /// Builder-style: sets the parent span ID of this call.
    pub fn with_parent_id(mut self, parent: impl Into<Name>) -> Event {
        self.parent_id = Some(parent.into());
        self
    }

    /// For response events, the status code (0 = TCP-level failure).
    pub fn status(&self) -> Option<u16> {
        match &self.kind {
            EventKind::Response { status, .. } => Some(*status),
            EventKind::Request { .. } => None,
        }
    }

    /// The response latency as observed by the caller, including any
    /// injected delay (`withRule = true` in the paper's queries).
    pub fn observed_latency(&self) -> Option<Duration> {
        match &self.kind {
            EventKind::Response { latency_us, .. } => Some(Duration::from_micros(*latency_us)),
            EventKind::Request { .. } => None,
        }
    }

    /// The response latency with Gremlin's injected delay subtracted —
    /// the callee's untampered behavior (`withRule = false`).
    pub fn untampered_latency(&self) -> Option<Duration> {
        let observed = self.observed_latency()?;
        let injected = match &self.fault {
            Some(AppliedFault::Delay { delay_us }) => Duration::from_micros(*delay_us),
            _ => Duration::ZERO,
        };
        Some(observed.saturating_sub(injected))
    }

    /// Returns `true` if a fault action was applied to this message.
    pub fn is_faulted(&self) -> bool {
        self.fault.is_some()
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let id = self.request_id.as_deref().unwrap_or("-");
        match &self.kind {
            EventKind::Request { method, uri } => {
                write!(
                    f,
                    "[{}] {} -> {} {} {} id={}",
                    self.timestamp_us, self.src, self.dst, method, uri, id
                )?;
            }
            EventKind::Response { status, latency_us } => {
                write!(
                    f,
                    "[{}] {} <- {} status={} latency={}us id={}",
                    self.timestamp_us, self.src, self.dst, status, latency_us, id
                )?;
            }
        }
        if let Some(span) = &self.span_id {
            write!(f, " span={span}")?;
            if let Some(parent) = &self.parent_id {
                write!(f, " parent={parent}")?;
            }
        }
        if let Some(fault) = &self.fault {
            write!(f, " fault={fault}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_builders() {
        let e = Event::request("a", "b", "GET", "/x")
            .with_request_id("test-1")
            .with_timestamp(42)
            .with_agent("agent-a");
        assert_eq!(e.src, "a");
        assert_eq!(e.dst, "b");
        assert_eq!(e.timestamp_us, 42);
        assert_eq!(e.request_id.as_deref(), Some("test-1"));
        assert_eq!(e.agent, "agent-a");
        assert!(e.kind.is_request());
        assert!(!e.kind.is_response());
        assert_eq!(e.status(), None);
    }

    #[test]
    fn response_latency_views() {
        let e = Event::response("a", "b", 200, Duration::from_millis(150))
            .with_fault(AppliedFault::Delay { delay_us: 100_000 });
        assert_eq!(e.status(), Some(200));
        assert_eq!(e.observed_latency(), Some(Duration::from_millis(150)));
        assert_eq!(e.untampered_latency(), Some(Duration::from_millis(50)));
        assert!(e.is_faulted());
    }

    #[test]
    fn untampered_latency_saturates() {
        let e = Event::response("a", "b", 200, Duration::from_millis(10))
            .with_fault(AppliedFault::Delay { delay_us: 100_000 });
        assert_eq!(e.untampered_latency(), Some(Duration::ZERO));
    }

    #[test]
    fn non_delay_fault_does_not_affect_untampered_latency() {
        let e = Event::response("a", "b", 503, Duration::from_millis(5))
            .with_fault(AppliedFault::Abort { status: 503 });
        assert_eq!(e.untampered_latency(), Some(Duration::from_millis(5)));
    }

    #[test]
    fn serde_round_trip() {
        let e = Event::response("a", "b", 503, Duration::from_millis(1))
            .with_request_id("test-9")
            .with_fault(AppliedFault::Abort { status: 503 });
        let json = serde_json::to_string(&e).unwrap();
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }

    #[test]
    fn display_contains_key_fields() {
        let e = Event::request("web", "db", "GET", "/q").with_request_id("test-3");
        let text = e.to_string();
        assert!(text.contains("web"));
        assert!(text.contains("db"));
        assert!(text.contains("test-3"));
        let e = Event::response("web", "db", 503, Duration::from_millis(1))
            .with_fault(AppliedFault::AbortReset);
        assert!(e.to_string().contains("fault=abort(reset)"));
    }

    #[test]
    fn span_fields_round_trip() {
        let e = Event::request("a", "b", "GET", "/x")
            .with_span_id("00aa11bb22cc33dd")
            .with_parent_id("ffee00aa11bb22cc");
        let json = serde_json::to_string(&e).unwrap();
        assert!(json.contains("span_id"));
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
        let text = e.to_string();
        assert!(text.contains("span=00aa11bb22cc33dd"));
        assert!(text.contains("parent=ffee00aa11bb22cc"));
    }

    #[test]
    fn legacy_json_without_spans_still_parses() {
        // A log line written before span propagation existed.
        let json = r#"{"timestamp_us":1,"request_id":"test-1","src":"a","dst":"b",
            "kind":{"type":"request","method":"GET","uri":"/x"},"fault":null,"agent":"a-1"}"#;
        let e: Event = serde_json::from_str(json).unwrap();
        assert_eq!(e.span_id, None);
        assert_eq!(e.parent_id, None);
        // And spanless events serialize without the new keys.
        let out = serde_json::to_string(&e).unwrap();
        assert!(!out.contains("span_id"));
        assert!(!out.contains("parent_id"));
    }

    #[test]
    fn now_micros_is_monotonic_enough() {
        let a = now_micros();
        let b = now_micros();
        assert!(b >= a);
        assert!(a > 1_600_000_000_000_000); // after Sep 2020
    }
}

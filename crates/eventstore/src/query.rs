//! Query descriptions for retrieving filtered observation lists.
//!
//! These are the substrate for the paper's `GetRequests(Src, Dst,
//! ID)` and `GetReplies(Src, Dst, ID)` queries (Table 3): each returns
//! the matching observations sorted by time — what the paper calls an
//! *RList*.

use serde::{Deserialize, Serialize};

use crate::event::{Event, Micros};
use crate::pattern::Pattern;

/// Filter on the event direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
#[derive(Default)]
pub enum KindFilter {
    /// Only request observations.
    Requests,
    /// Only response observations.
    Replies,
    /// Both directions.
    #[default]
    All,
}

/// A declarative event query.
///
/// All filters are conjunctive; unset filters match everything.
///
/// # Examples
///
/// ```
/// use gremlin_store::{Query, Pattern};
///
/// let q = Query::requests("web", "db").with_id_pattern(Pattern::new("test-*"));
/// assert_eq!(q.src.as_deref(), Some("web"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Calling service name.
    pub src: Option<String>,
    /// Called service name.
    pub dst: Option<String>,
    /// Direction filter.
    pub kind: KindFilter,
    /// Request-ID pattern; `None` matches any event including ones
    /// without an ID.
    pub id_pattern: Option<Pattern>,
    /// Inclusive lower bound on the timestamp.
    pub from_us: Option<Micros>,
    /// Exclusive upper bound on the timestamp.
    pub until_us: Option<Micros>,
    /// When set, only events whose fault presence matches: `true`
    /// keeps faulted events only, `false` keeps untouched events only.
    pub faulted: Option<bool>,
}

impl Query {
    /// An unconstrained query matching every event.
    pub fn new() -> Query {
        Query::default()
    }

    /// Every event (either direction) on the `src -> dst` edge.
    pub fn edge(src: impl Into<String>, dst: impl Into<String>) -> Query {
        Query {
            src: Some(src.into()),
            dst: Some(dst.into()),
            ..Query::default()
        }
    }

    /// Requests flowing `src -> dst` (the paper's `GetRequests`).
    pub fn requests(src: impl Into<String>, dst: impl Into<String>) -> Query {
        Query {
            kind: KindFilter::Requests,
            ..Query::edge(src, dst)
        }
    }

    /// Replies flowing back for calls `src -> dst` (the paper's
    /// `GetReplies`).
    pub fn replies(src: impl Into<String>, dst: impl Into<String>) -> Query {
        Query {
            kind: KindFilter::Replies,
            ..Query::edge(src, dst)
        }
    }

    /// Builder-style: restrict to request IDs matching `pattern`.
    pub fn with_id_pattern(mut self, pattern: Pattern) -> Query {
        self.id_pattern = Some(pattern);
        self
    }

    /// Builder-style: restrict to an exact request ID.
    pub fn with_request_id(self, id: impl Into<String>) -> Query {
        self.with_id_pattern(Pattern::Exact(id.into()))
    }

    /// Builder-style: restrict to timestamps in `[from, until)`.
    pub fn with_time_range(mut self, from_us: Micros, until_us: Micros) -> Query {
        self.from_us = Some(from_us);
        self.until_us = Some(until_us);
        self
    }

    /// Builder-style: restrict by fault presence.
    pub fn with_faulted(mut self, faulted: bool) -> Query {
        self.faulted = Some(faulted);
        self
    }

    /// Returns `true` if `event` satisfies every filter.
    pub fn matches(&self, event: &Event) -> bool {
        if let Some(src) = &self.src {
            if &event.src != src {
                return false;
            }
        }
        if let Some(dst) = &self.dst {
            if &event.dst != dst {
                return false;
            }
        }
        self.matches_unindexed(event)
    }

    /// Like [`Query::matches`] but skips the src/dst comparison — used
    /// when an index has already narrowed candidates to one edge.
    pub(crate) fn matches_unindexed(&self, event: &Event) -> bool {
        match self.kind {
            KindFilter::Requests if !event.kind.is_request() => return false,
            KindFilter::Replies if !event.kind.is_response() => return false,
            _ => {}
        }
        if let Some(pattern) = &self.id_pattern {
            if !pattern.matches_opt(event.request_id.as_deref()) {
                return false;
            }
        }
        if let Some(from) = self.from_us {
            if event.timestamp_us < from {
                return false;
            }
        }
        if let Some(until) = self.until_us {
            if event.timestamp_us >= until {
                return false;
            }
        }
        if let Some(faulted) = self.faulted {
            if event.is_faulted() != faulted {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::AppliedFault;
    use std::time::Duration;

    fn request(src: &str, dst: &str, id: &str, ts: Micros) -> Event {
        Event::request(src, dst, "GET", "/")
            .with_request_id(id)
            .with_timestamp(ts)
    }

    #[test]
    fn edge_filter() {
        let q = Query::edge("a", "b");
        assert!(q.matches(&request("a", "b", "x", 0)));
        assert!(!q.matches(&request("a", "c", "x", 0)));
        assert!(!q.matches(&request("b", "b", "x", 0)));
    }

    #[test]
    fn kind_filter() {
        let req = request("a", "b", "x", 0);
        let resp = Event::response("a", "b", 200, Duration::ZERO).with_request_id("x");
        assert!(Query::requests("a", "b").matches(&req));
        assert!(!Query::requests("a", "b").matches(&resp));
        assert!(Query::replies("a", "b").matches(&resp));
        assert!(!Query::replies("a", "b").matches(&req));
        assert!(Query::edge("a", "b").matches(&req));
        assert!(Query::edge("a", "b").matches(&resp));
    }

    #[test]
    fn id_pattern_filter() {
        let q = Query::new().with_id_pattern(Pattern::new("test-*"));
        assert!(q.matches(&request("a", "b", "test-5", 0)));
        assert!(!q.matches(&request("a", "b", "prod-5", 0)));
        let no_id = Event::request("a", "b", "GET", "/");
        assert!(!q.matches(&no_id));
        assert!(Query::new().matches(&no_id));
        assert!(Query::new().with_id_pattern(Pattern::Any).matches(&no_id));
    }

    #[test]
    fn time_range_filter_is_half_open() {
        let q = Query::new().with_time_range(10, 20);
        assert!(!q.matches(&request("a", "b", "x", 9)));
        assert!(q.matches(&request("a", "b", "x", 10)));
        assert!(q.matches(&request("a", "b", "x", 19)));
        assert!(!q.matches(&request("a", "b", "x", 20)));
    }

    #[test]
    fn faulted_filter() {
        let clean = request("a", "b", "x", 0);
        let faulted = request("a", "b", "x", 0).with_fault(AppliedFault::Abort { status: 503 });
        let only_faulted = Query::new().with_faulted(true);
        let only_clean = Query::new().with_faulted(false);
        assert!(only_faulted.matches(&faulted));
        assert!(!only_faulted.matches(&clean));
        assert!(only_clean.matches(&clean));
        assert!(!only_clean.matches(&faulted));
    }

    #[test]
    fn exact_request_id_builder() {
        let q = Query::new().with_request_id("test-1");
        assert!(q.matches(&request("a", "b", "test-1", 0)));
        assert!(!q.matches(&request("a", "b", "test-10", 0)));
    }

    #[test]
    fn serde_round_trip() {
        let q = Query::requests("a", "b")
            .with_id_pattern(Pattern::new("test-*"))
            .with_time_range(1, 2)
            .with_faulted(true);
        let json = serde_json::to_string(&q).unwrap();
        let back: Query = serde_json::from_str(&json).unwrap();
        assert_eq!(q, back);
    }
}

//! Per-edge live health aggregation over the observation stream.
//!
//! The Assertion Checker (paper §4.2) evaluates expectations *after* a
//! recipe finishes by querying the full store. The [`HealthMonitor`]
//! here is the streaming counterpart: it consumes new events
//! incrementally through [`EventStore::events_after`] — never a full
//! store scan — and maintains a per-`(src, dst)` **edge health
//! matrix**: request/response/error totals, fault-injection hit
//! counts, latency percentiles (via `gremlin-telemetry` histograms),
//! and sliding-window request and error rates.
//!
//! Windows are measured in *event time* (the timestamps the agents
//! stamped), so replaying a recorded log produces the same matrix a
//! live run did.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use gremlin_telemetry::LatencyHistogram;

use crate::event::{Event, Micros};
use crate::name::Name;
use crate::store::EventStore;

/// Default sliding-window length for rate computations.
pub const DEFAULT_HEALTH_WINDOW: Duration = Duration::from_secs(10);

/// One row of the edge health matrix: the live state of a single
/// `(src, dst)` call edge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeHealth {
    /// Calling service.
    pub src: String,
    /// Called service.
    pub dst: String,
    /// Requests observed since the monitor started.
    pub requests: u64,
    /// Responses observed since the monitor started.
    pub responses: u64,
    /// Failed responses (status 0 or 5xx) since the monitor started.
    pub errors: u64,
    /// Messages on which an agent applied a fault action.
    pub fault_hits: u64,
    /// Requests per second over the sliding window.
    pub rate_rps: f64,
    /// Failed responses as a fraction of responses in the window
    /// (0.0 when the window holds no responses).
    pub error_rate: f64,
    /// p50 response latency in microseconds, over all observations.
    pub p50_us: u64,
    /// p99 response latency in microseconds, over all observations.
    pub p99_us: u64,
    /// Event-time timestamp of the newest observation on the edge.
    pub last_seen_us: Micros,
}

/// Internal per-edge accumulator.
struct EdgeStats {
    requests: u64,
    responses: u64,
    errors: u64,
    fault_hits: u64,
    latency: LatencyHistogram,
    /// Request timestamps inside the sliding window.
    window_requests: VecDeque<Micros>,
    /// `(timestamp, failed)` for responses inside the window.
    window_responses: VecDeque<(Micros, bool)>,
    last_seen_us: Micros,
}

impl EdgeStats {
    fn new() -> EdgeStats {
        EdgeStats {
            requests: 0,
            responses: 0,
            errors: 0,
            fault_hits: 0,
            latency: LatencyHistogram::new(),
            window_requests: VecDeque::new(),
            window_responses: VecDeque::new(),
            last_seen_us: 0,
        }
    }

    fn observe(&mut self, event: &Event) {
        self.last_seen_us = self.last_seen_us.max(event.timestamp_us);
        if event.fault.is_some() {
            self.fault_hits += 1;
        }
        if event.kind.is_request() {
            self.requests += 1;
            self.window_requests.push_back(event.timestamp_us);
        } else if let Some(status) = event.status() {
            self.responses += 1;
            let failed = status == 0 || (500..600).contains(&status);
            if failed {
                self.errors += 1;
            }
            self.window_responses
                .push_back((event.timestamp_us, failed));
            if let Some(latency) = event.observed_latency() {
                self.latency.record(latency);
            }
        }
    }

    /// Drops window entries older than `horizon`.
    fn prune(&mut self, horizon: Micros) {
        while self.window_requests.front().is_some_and(|ts| *ts < horizon) {
            self.window_requests.pop_front();
        }
        while self
            .window_responses
            .front()
            .is_some_and(|(ts, _)| *ts < horizon)
        {
            self.window_responses.pop_front();
        }
    }

    fn snapshot(&self, src: &Name, dst: &Name, window: Duration) -> EdgeHealth {
        // Degenerate windows must degrade to 0.0, never NaN/inf: the
        // divisor is floored (a zero-length window still divides by
        // 1µs) and an empty window is explicitly rate 0.
        let window_secs = window.as_secs_f64().max(1e-6);
        let snap = self.latency.snapshot();
        let window_errors = self
            .window_responses
            .iter()
            .filter(|(_, failed)| *failed)
            .count();
        let window_responses = self.window_responses.len();
        EdgeHealth {
            src: src.to_string(),
            dst: dst.to_string(),
            requests: self.requests,
            responses: self.responses,
            errors: self.errors,
            fault_hits: self.fault_hits,
            rate_rps: if self.window_requests.is_empty() {
                0.0
            } else {
                self.window_requests.len() as f64 / window_secs
            },
            error_rate: if window_responses == 0 {
                0.0
            } else {
                window_errors as f64 / window_responses as f64
            },
            p50_us: snap
                .percentile(0.50)
                .map(|d| d.as_micros() as u64)
                .unwrap_or(0),
            p99_us: snap
                .percentile(0.99)
                .map(|d| d.as_micros() as u64)
                .unwrap_or(0),
            last_seen_us: self.last_seen_us,
        }
    }
}

struct HealthInner {
    cursor: u64,
    /// Latest event-time timestamp seen; the "now" of window pruning.
    clock_us: Micros,
    edges: BTreeMap<(Name, Name), EdgeStats>,
}

/// Streaming per-edge health aggregation over an [`EventStore`].
///
/// Every [`HealthMonitor::poll`] consumes exactly the events recorded
/// since the previous poll (via [`EventStore::events_after`]) and
/// folds them into the matrix; it never rescans the store. Layered
/// consumers — the live assertion engine in `gremlin-core` — receive
/// the same fresh batch from `poll` so one cursor drives everything.
///
/// # Examples
///
/// ```
/// use gremlin_store::{Event, EventStore, HealthMonitor};
/// use std::time::Duration;
///
/// let store = EventStore::shared();
/// let monitor = HealthMonitor::new(store.clone(), Duration::from_secs(10));
/// store.record_event(Event::request("a", "b", "GET", "/x").with_timestamp(1_000_000));
/// store.record_event(Event::response("a", "b", 503, Duration::from_millis(2)).with_timestamp(2_000_000));
/// monitor.poll();
/// let matrix = monitor.snapshot();
/// assert_eq!(matrix.len(), 1);
/// assert_eq!(matrix[0].requests, 1);
/// assert_eq!(matrix[0].errors, 1);
/// ```
pub struct HealthMonitor {
    store: Arc<EventStore>,
    window: Duration,
    inner: Mutex<HealthInner>,
}

impl std::fmt::Debug for HealthMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("HealthMonitor")
            .field("window", &self.window)
            .field("cursor", &inner.cursor)
            .field("edges", &inner.edges.len())
            .finish()
    }
}

impl HealthMonitor {
    /// Creates a monitor over `store` with the given sliding-window
    /// length, starting from the beginning of the stream (events
    /// already recorded are folded in on the first poll).
    pub fn new(store: Arc<EventStore>, window: Duration) -> HealthMonitor {
        HealthMonitor {
            store,
            window,
            inner: Mutex::new(HealthInner {
                cursor: 0,
                clock_us: 0,
                edges: BTreeMap::new(),
            }),
        }
    }

    /// Creates a monitor that only observes events recorded after this
    /// call (history is skipped).
    pub fn tailing(store: Arc<EventStore>, window: Duration) -> HealthMonitor {
        let cursor = store.tail_cursor();
        let monitor = HealthMonitor::new(store, window);
        monitor.inner.lock().cursor = cursor;
        monitor
    }

    /// The sliding-window length rates are computed over.
    pub fn window(&self) -> Duration {
        self.window
    }

    /// The store this monitor tails.
    pub fn store(&self) -> &Arc<EventStore> {
        &self.store
    }

    /// The monitor's position in the event stream (next sequence
    /// number it will consume).
    pub fn cursor(&self) -> u64 {
        self.inner.lock().cursor
    }

    /// Consumes every event recorded since the last poll, updates the
    /// matrix, and returns the fresh batch (in arrival order) for
    /// layered consumers.
    pub fn poll(&self) -> Vec<Event> {
        let mut inner = self.inner.lock();
        let (fresh, next) = self.store.events_after(inner.cursor);
        inner.cursor = next;
        if fresh.is_empty() {
            return fresh;
        }
        for event in &fresh {
            inner.clock_us = inner.clock_us.max(event.timestamp_us);
            inner
                .edges
                .entry((event.src.clone(), event.dst.clone()))
                .or_insert_with(EdgeStats::new)
                .observe(event);
        }
        let horizon = inner
            .clock_us
            .saturating_sub(self.window.as_micros() as Micros);
        for stats in inner.edges.values_mut() {
            stats.prune(horizon);
        }
        fresh
    }

    /// The current edge health matrix, sorted by `(src, dst)`.
    pub fn snapshot(&self) -> Vec<EdgeHealth> {
        let inner = self.inner.lock();
        inner
            .edges
            .iter()
            .map(|((src, dst), stats)| stats.snapshot(src, dst, self.window))
            .collect()
    }

    /// The health of one edge, if any traffic was observed on it.
    pub fn edge(&self, src: &str, dst: &str) -> Option<EdgeHealth> {
        let inner = self.inner.lock();
        inner
            .edges
            .get(&(Name::from(src), Name::from(dst)))
            .map(|stats| stats.snapshot(&Name::from(src), &Name::from(dst), self.window))
    }

    /// The latest event-time timestamp the monitor has folded in.
    pub fn clock_us(&self) -> Micros {
        self.inner.lock().clock_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::AppliedFault;

    fn sec(s: u64) -> Micros {
        s * 1_000_000
    }

    fn request(ts: Micros) -> Event {
        Event::request("a", "b", "GET", "/x")
            .with_request_id("test-1")
            .with_timestamp(ts)
    }

    fn reply(ts: Micros, status: u16, latency_ms: u64) -> Event {
        Event::response("a", "b", status, Duration::from_millis(latency_ms))
            .with_request_id("test-1")
            .with_timestamp(ts)
    }

    #[test]
    fn matrix_accumulates_totals_and_rates() {
        let store = EventStore::shared();
        let monitor = HealthMonitor::new(Arc::clone(&store), Duration::from_secs(10));
        for i in 0..10 {
            store.record_event(request(sec(i)));
            store.record_event(reply(
                sec(i) + 500_000,
                if i % 2 == 0 { 200 } else { 503 },
                5,
            ));
        }
        monitor.poll();
        let matrix = monitor.snapshot();
        assert_eq!(matrix.len(), 1);
        let edge = &matrix[0];
        assert_eq!(edge.src, "a");
        assert_eq!(edge.dst, "b");
        assert_eq!(edge.requests, 10);
        assert_eq!(edge.responses, 10);
        assert_eq!(edge.errors, 5);
        assert!(edge.rate_rps > 0.0, "window rate must be non-zero");
        assert!((edge.error_rate - 0.5).abs() < 1e-9, "{}", edge.error_rate);
        assert!(
            edge.p50_us >= 4_000 && edge.p50_us <= 6_000,
            "{}",
            edge.p50_us
        );
    }

    #[test]
    fn window_prunes_old_entries() {
        let store = EventStore::shared();
        let monitor = HealthMonitor::new(Arc::clone(&store), Duration::from_secs(5));
        store.record_event(request(sec(0)));
        store.record_event(request(sec(1)));
        monitor.poll();
        assert!(monitor.edge("a", "b").unwrap().rate_rps > 0.0);
        // A much later event pushes the clock forward; the old
        // requests leave the window, totals stay.
        store.record_event(request(sec(100)));
        monitor.poll();
        let edge = monitor.edge("a", "b").unwrap();
        assert_eq!(edge.requests, 3);
        assert!((edge.rate_rps - 0.2).abs() < 1e-9, "{}", edge.rate_rps);
    }

    #[test]
    fn fault_hits_are_counted() {
        let store = EventStore::shared();
        let monitor = HealthMonitor::new(Arc::clone(&store), DEFAULT_HEALTH_WINDOW);
        store.record_event(reply(sec(0), 503, 1).with_fault(AppliedFault::Abort { status: 503 }));
        monitor.poll();
        let edge = monitor.edge("a", "b").unwrap();
        assert_eq!(edge.fault_hits, 1);
        assert_eq!(edge.errors, 1);
    }

    #[test]
    fn poll_returns_only_fresh_events() {
        let store = EventStore::shared();
        let monitor = HealthMonitor::new(Arc::clone(&store), DEFAULT_HEALTH_WINDOW);
        store.record_event(request(sec(0)));
        assert_eq!(monitor.poll().len(), 1);
        assert!(monitor.poll().is_empty());
        store.record_event(request(sec(1)));
        store.record_event(request(sec(2)));
        assert_eq!(monitor.poll().len(), 2);
        assert_eq!(monitor.edge("a", "b").unwrap().requests, 3);
    }

    #[test]
    fn tailing_skips_history() {
        let store = EventStore::shared();
        store.record_event(request(sec(0)));
        let monitor = HealthMonitor::tailing(Arc::clone(&store), DEFAULT_HEALTH_WINDOW);
        assert!(monitor.poll().is_empty());
        store.record_event(request(sec(1)));
        assert_eq!(monitor.poll().len(), 1);
        assert_eq!(monitor.edge("a", "b").unwrap().requests, 1);
    }

    #[test]
    fn unknown_edge_is_none_and_serde_round_trips() {
        let store = EventStore::shared();
        let monitor = HealthMonitor::new(Arc::clone(&store), DEFAULT_HEALTH_WINDOW);
        assert!(monitor.edge("x", "y").is_none());
        store.record_event(request(sec(0)));
        monitor.poll();
        let matrix = monitor.snapshot();
        let json = serde_json::to_string(&matrix).unwrap();
        let back: Vec<EdgeHealth> = serde_json::from_str(&json).unwrap();
        assert_eq!(matrix, back);
    }

    #[test]
    fn degenerate_windows_yield_zero_not_nan() {
        // Requests with no responses: error rate and percentiles are
        // 0.0/0, not NaN.
        let store = EventStore::shared();
        let monitor = HealthMonitor::new(Arc::clone(&store), Duration::from_secs(5));
        store.record_event(request(sec(0)));
        monitor.poll();
        let edge = monitor.edge("a", "b").unwrap();
        assert_eq!(edge.error_rate, 0.0);
        assert_eq!(edge.p50_us, 0);
        assert_eq!(edge.p99_us, 0);
        assert!(edge.rate_rps.is_finite());

        // Everything pruned out of the window: rates drop to exactly
        // 0.0 while totals persist.
        store.record_event(reply(sec(100), 503, 1));
        monitor.poll();
        let edge = monitor.edge("a", "b").unwrap();
        assert_eq!(edge.requests, 1);
        assert_eq!(edge.rate_rps, 0.0, "zero-request window must be rate 0");

        // A zero-length window never divides by zero.
        let store = EventStore::shared();
        let zero = HealthMonitor::new(Arc::clone(&store), Duration::ZERO);
        store.record_event(request(sec(1)));
        store.record_event(reply(sec(1), 200, 1));
        zero.poll();
        let edge = zero.edge("a", "b").unwrap();
        assert!(edge.rate_rps.is_finite(), "{}", edge.rate_rps);
        assert!(edge.error_rate.is_finite());
    }

    #[test]
    fn monitor_never_runs_store_queries() {
        // The streaming contract: only events_after, never query().
        let registry = gremlin_telemetry::MetricsRegistry::new();
        let store = EventStore::shared();
        store.enable_telemetry(&registry);
        let monitor = HealthMonitor::new(Arc::clone(&store), DEFAULT_HEALTH_WINDOW);
        store.record_event(request(sec(0)));
        monitor.poll();
        monitor.snapshot();
        let queries = registry
            .snapshot()
            .histogram("gremlin_store_query_seconds", &[])
            .map(|h| h.count())
            .unwrap_or(0);
        assert_eq!(queries, 0, "health monitor must not scan the store");
    }
}

//! Interned service/agent/request-ID names.
//!
//! Every proxied message produces several [`Event`](crate::Event)s,
//! and each event used to carry owned `String` copies of the source
//! service, destination service, agent identity, and request ID. On
//! the data-plane hot path those strings are identical for the
//! lifetime of a route, so copying them per event is pure allocator
//! traffic. [`Name`] wraps an `Arc<str>`: cloning is a reference-count
//! bump, comparisons and hashing delegate to the underlying string,
//! and serde sees a plain JSON string, so the wire format is unchanged.

use std::borrow::Borrow;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::{Arc, OnceLock};

use serde::de::{Deserializer, Visitor};
use serde::ser::Serializer;
use serde::{Deserialize, Serialize};

/// A cheaply-cloneable, immutable string used for service names, agent
/// identities, and request IDs.
///
/// `Name` behaves like `&str` almost everywhere: it derefs to `str`,
/// compares and hashes by content, and converts from/into `String`.
///
/// # Examples
///
/// ```
/// use gremlin_store::Name;
///
/// let a = Name::from("serviceA");
/// let b = a.clone(); // refcount bump, no allocation
/// assert_eq!(a, b);
/// assert_eq!(a, "serviceA");
/// assert_eq!(a.len(), 8);
/// ```
#[derive(Clone)]
pub struct Name(Arc<str>);

impl Name {
    /// Creates a name from anything string-like.
    pub fn new(value: impl Into<Name>) -> Name {
        value.into()
    }

    /// The shared empty name (no allocation after first use).
    pub fn empty() -> Name {
        static EMPTY: OnceLock<Arc<str>> = OnceLock::new();
        Name(Arc::clone(EMPTY.get_or_init(|| Arc::from(""))))
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Returns `true` for the empty name.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Default for Name {
    fn default() -> Name {
        Name::empty()
    }
}

impl Deref for Name {
    type Target = str;

    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Name {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for Name {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl PartialEq for Name {
    fn eq(&self, other: &Name) -> bool {
        // Pointer equality first: interned names on the hot path are
        // clones of the same Arc.
        Arc::ptr_eq(&self.0, &other.0) || self.as_str() == other.as_str()
    }
}

impl Eq for Name {}

impl Hash for Name {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Must agree with `str`'s Hash so `Borrow<str>` lookups work.
        self.as_str().hash(state);
    }
}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Name) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Name {
    fn cmp(&self, other: &Name) -> Ordering {
        self.as_str().cmp(other.as_str())
    }
}

impl PartialEq<str> for Name {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Name {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for Name {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialEq<Name> for str {
    fn eq(&self, other: &Name) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<Name> for &str {
    fn eq(&self, other: &Name) -> bool {
        *self == other.as_str()
    }
}

impl PartialEq<Name> for String {
    fn eq(&self, other: &Name) -> bool {
        self.as_str() == other.as_str()
    }
}

impl From<&str> for Name {
    fn from(value: &str) -> Name {
        if value.is_empty() {
            return Name::empty();
        }
        Name(Arc::from(value))
    }
}

impl From<String> for Name {
    fn from(value: String) -> Name {
        if value.is_empty() {
            return Name::empty();
        }
        Name(Arc::from(value))
    }
}

impl From<&String> for Name {
    fn from(value: &String) -> Name {
        Name::from(value.as_str())
    }
}

impl From<Arc<str>> for Name {
    fn from(value: Arc<str>) -> Name {
        Name(value)
    }
}

impl From<&Name> for Name {
    fn from(value: &Name) -> Name {
        value.clone()
    }
}

impl From<Name> for String {
    fn from(value: Name) -> String {
        value.as_str().to_string()
    }
}

impl From<&Name> for String {
    fn from(value: &Name) -> String {
        value.as_str().to_string()
    }
}

// Hand-written serde impls: a `Name` is a plain JSON string on the
// wire, identical to the `String` fields it replaced.
impl Serialize for Name {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self.as_str())
    }
}

impl<'de> Deserialize<'de> for Name {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Name, D::Error> {
        struct NameVisitor;

        impl Visitor<'_> for NameVisitor {
            type Value = Name;

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a string")
            }

            fn visit_str<E: serde::de::Error>(self, value: &str) -> Result<Name, E> {
                Ok(Name::from(value))
            }

            fn visit_string<E: serde::de::Error>(self, value: String) -> Result<Name, E> {
                Ok(Name::from(value))
            }
        }

        deserializer.deserialize_str(NameVisitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{BTreeMap, HashMap};

    #[test]
    fn clone_shares_storage() {
        let a = Name::from("serviceA");
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.0, &b.0));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_is_shared_and_default() {
        let a = Name::empty();
        let b = Name::default();
        let c = Name::from("");
        assert!(Arc::ptr_eq(&a.0, &b.0));
        assert!(Arc::ptr_eq(&a.0, &c.0));
        assert_eq!(a.as_str(), "");
    }

    #[test]
    fn compares_with_str_forms() {
        let n = Name::from("web");
        assert_eq!(n, "web");
        assert_eq!(n, *"web");
        assert_eq!(n, String::from("web"));
        assert_eq!("web", n);
        assert_eq!(String::from("web"), n);
        assert_ne!(n, "db");
    }

    #[test]
    fn hash_and_ord_agree_with_str() {
        let mut map: HashMap<Name, u32> = HashMap::new();
        map.insert(Name::from("a"), 1);
        // Borrow<str> lets us look up by &str without allocating.
        assert_eq!(map.get("a"), Some(&1));
        assert_eq!(map.get("b"), None);

        let mut tree: BTreeMap<Name, u32> = BTreeMap::new();
        tree.insert(Name::from("ab"), 1);
        tree.insert(Name::from("ac"), 2);
        let hits: Vec<_> = tree
            .range::<str, _>((std::ops::Bound::Included("ab"), std::ops::Bound::Unbounded))
            .map(|(_, v)| *v)
            .collect();
        assert_eq!(hits, vec![1, 2]);
    }

    #[test]
    fn deref_gives_str_methods() {
        let n = Name::from("test-123");
        assert!(n.starts_with("test-"));
        assert_eq!(n.len(), 8);
        let opt = Some(n);
        assert_eq!(opt.as_deref(), Some("test-123"));
    }

    #[test]
    fn string_conversions() {
        let n = Name::from(String::from("x"));
        let s: String = n.clone().into();
        assert_eq!(s, "x");
        let s2: String = (&n).into();
        assert_eq!(s2, "x");
    }

    #[test]
    fn serde_is_a_plain_string() {
        let n = Name::from("serviceA");
        assert_eq!(serde_json::to_string(&n).unwrap(), "\"serviceA\"");
        let back: Name = serde_json::from_str("\"serviceA\"").unwrap();
        assert_eq!(back, n);
    }

    #[test]
    fn display_and_debug() {
        let n = Name::from("a-b");
        assert_eq!(n.to_string(), "a-b");
        assert_eq!(format!("{n:?}"), "\"a-b\"");
    }
}

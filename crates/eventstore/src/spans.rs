//! Span records: causally-linked observations of one request flow.
//!
//! Gremlin agents mint a span ID per intercepted call and propagate
//! `X-Gremlin-Span`/`X-Gremlin-Parent` headers (Dapper/Zipkin style,
//! paper §4.1). This module pairs the request/response [`Event`]s of
//! one request ID into [`SpanRecord`]s — one per intercepted call —
//! and converts them to and from an OTLP-style JSON document so
//! traces can be handed to standard tooling.
//!
//! Tree assembly and analysis (critical path, retry vs fan-out) live
//! in `gremlin-core::trace`; this layer only produces the flat,
//! serializable records both the collector and the analysis share.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::event::{AppliedFault, Event, EventKind, Micros};
use crate::name::Name;
use crate::pattern::Pattern;
use crate::query::Query;
use crate::store::EventStore;

/// One intercepted call of a flow: the request observation paired
/// with its response (when one was observed), keyed by the span ID
/// the agent minted for the call.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// The flow's request ID (the trace identifier).
    pub trace_id: String,
    /// Span ID minted by the agent; `None` for legacy events logged
    /// before span propagation existed.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub span_id: Option<Name>,
    /// Span ID of the causally enclosing call, if known.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub parent_id: Option<Name>,
    /// Calling service.
    pub src: Name,
    /// Called service.
    pub dst: Name,
    /// Method and URI of the request, e.g. `GET /cart`.
    pub call: String,
    /// When the request was observed.
    pub start_us: Micros,
    /// Caller-observed latency; `None` when no response was observed.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub latency_us: Option<Micros>,
    /// Response status (`0` = TCP-level failure); `None` when no
    /// response was observed.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub status: Option<u16>,
    /// Fault the agent applied to this call, if any.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub fault: Option<AppliedFault>,
    /// Agent instance that observed the call.
    #[serde(default = "Name::empty", skip_serializing_if = "Name::is_empty")]
    pub agent: Name,
}

impl SpanRecord {
    /// When the response was observed (`start + latency`), if one was.
    pub fn end_us(&self) -> Option<Micros> {
        self.latency_us.map(|latency| self.start_us + latency)
    }

    /// Returns `true` when the call ended in a failure (no response,
    /// TCP reset, or a 5xx).
    pub fn failed(&self) -> bool {
        match self.status {
            None | Some(0) => true,
            Some(status) => (500..600).contains(&status),
        }
    }
}

/// Pairs the time-sorted events of one request ID into span records.
///
/// Events carrying a span ID pair by that ID (request opens the span,
/// response closes it). Legacy events without span IDs fall back to
/// the [`FlowTrace`]-era pairing: a response matches the oldest
/// outstanding request on the same `(src, dst)` edge. Orphan
/// responses — no span and no outstanding request — are kept as their
/// own records rather than dropped.
///
/// [`FlowTrace`]: https://docs.rs/gremlin-core
pub fn assemble_spans(request_id: &str, events: &[Event]) -> Vec<SpanRecord> {
    let mut records: Vec<SpanRecord> = Vec::new();
    // Open spans by ID, as indices into `records`.
    let mut open: HashMap<Name, usize> = HashMap::new();
    // Open legacy (span-less) records awaiting a response, FIFO per
    // edge, as indices into `records`.
    let mut pending: Vec<usize> = Vec::new();
    for event in events {
        match &event.kind {
            EventKind::Request { method, uri } => {
                let index = records.len();
                records.push(SpanRecord {
                    trace_id: request_id.to_string(),
                    span_id: event.span_id.clone(),
                    parent_id: event.parent_id.clone(),
                    src: event.src.clone(),
                    dst: event.dst.clone(),
                    call: format!("{method} {uri}"),
                    start_us: event.timestamp_us,
                    latency_us: None,
                    status: None,
                    fault: event.fault.clone(),
                    agent: event.agent.clone(),
                });
                match &event.span_id {
                    Some(span) => {
                        open.insert(span.clone(), index);
                    }
                    None => pending.push(index),
                }
            }
            EventKind::Response { status, latency_us } => {
                let slot = match &event.span_id {
                    Some(span) => open.remove(span),
                    None => {
                        let position = pending.iter().position(|&index| {
                            records[index].src == event.src && records[index].dst == event.dst
                        });
                        position.map(|p| pending.remove(p))
                    }
                };
                match slot {
                    Some(index) => {
                        let record = &mut records[index];
                        record.status = Some(*status);
                        record.latency_us = Some(*latency_us);
                        if record.fault.is_none() {
                            record.fault = event.fault.clone();
                        }
                        if record.parent_id.is_none() {
                            record.parent_id = event.parent_id.clone();
                        }
                    }
                    None => {
                        // A response with no recorded request (log
                        // loss): surface it rather than dropping it.
                        records.push(SpanRecord {
                            trace_id: request_id.to_string(),
                            span_id: event.span_id.clone(),
                            parent_id: event.parent_id.clone(),
                            src: event.src.clone(),
                            dst: event.dst.clone(),
                            call: "(request not observed)".to_string(),
                            start_us: event.timestamp_us,
                            latency_us: Some(*latency_us),
                            status: Some(*status),
                            fault: event.fault.clone(),
                            agent: event.agent.clone(),
                        });
                    }
                }
            }
        }
    }
    records.sort_by(|a, b| a.start_us.cmp(&b.start_us));
    records
}

/// Queries `store` for the flow `request_id` and assembles its span
/// records.
pub fn spans_from_store(store: &EventStore, request_id: &str) -> Vec<SpanRecord> {
    let events = store.query(&Query::new().with_id_pattern(Pattern::Exact(request_id.to_string())));
    assemble_spans(request_id, &events)
}

// ---------------------------------------------------------------------------
// OTLP-style JSON export
// ---------------------------------------------------------------------------

/// An OTLP-style trace document: `resourceSpans` → `scopeSpans` →
/// flat span list, the JSON shape the OpenTelemetry collector and
/// Jaeger accept. Field coverage is the subset Gremlin records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct OtlpTrace {
    /// One entry per exporting resource; Gremlin emits exactly one.
    pub resource_spans: Vec<OtlpResourceSpans>,
}

/// Spans grouped under one resource.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct OtlpResourceSpans {
    /// Attributes identifying the emitting resource.
    pub resource: OtlpResource,
    /// Instrumentation scopes under the resource.
    pub scope_spans: Vec<OtlpScopeSpans>,
}

/// The emitting resource, identified by attributes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OtlpResource {
    /// Resource attributes (`service.name` etc.).
    pub attributes: Vec<OtlpKeyValue>,
}

/// Spans emitted by one instrumentation scope.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct OtlpScopeSpans {
    /// The instrumentation scope.
    pub scope: OtlpScope,
    /// The spans themselves.
    pub spans: Vec<OtlpSpan>,
}

/// An instrumentation scope (library) name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OtlpScope {
    /// Scope name, e.g. `gremlin-proxy`.
    pub name: String,
}

/// One exported span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct OtlpSpan {
    /// The trace (request) ID.
    pub trace_id: String,
    /// Span ID; empty for legacy records without one.
    #[serde(default)]
    pub span_id: String,
    /// Parent span ID; empty at the root or when unknown.
    #[serde(default, skip_serializing_if = "String::is_empty")]
    pub parent_span_id: String,
    /// Operation name (the `METHOD /uri` call).
    pub name: String,
    /// OTLP span kind; Gremlin agents observe outbound calls, so
    /// every span is `3` (CLIENT).
    pub kind: u32,
    /// Start time in nanoseconds since the UNIX epoch, as a string
    /// (OTLP JSON encodes 64-bit integers as strings).
    pub start_time_unix_nano: String,
    /// End time in nanoseconds; empty when no response was observed.
    #[serde(default, skip_serializing_if = "String::is_empty")]
    pub end_time_unix_nano: String,
    /// Gremlin-specific span attributes (`gremlin.src`, `gremlin.dst`,
    /// `http.status_code`, `gremlin.fault`, …).
    pub attributes: Vec<OtlpKeyValue>,
}

/// An OTLP attribute: a key with a typed value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OtlpKeyValue {
    /// Attribute key.
    pub key: String,
    /// Attribute value.
    pub value: OtlpValue,
}

/// An OTLP `AnyValue`; Gremlin only emits string values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct OtlpValue {
    /// The string payload.
    pub string_value: String,
}

fn attribute(key: &str, value: impl Into<String>) -> OtlpKeyValue {
    OtlpKeyValue {
        key: key.to_string(),
        value: OtlpValue {
            string_value: value.into(),
        },
    }
}

fn lookup<'a>(attributes: &'a [OtlpKeyValue], key: &str) -> Option<&'a str> {
    attributes
        .iter()
        .find(|kv| kv.key == key)
        .map(|kv| kv.value.string_value.as_str())
}

/// Renders span records as an OTLP-style trace document.
///
/// The document round-trips: [`import_otlp`] recovers the exact
/// records, including legacy spans without IDs and applied faults.
pub fn export_otlp(records: &[SpanRecord]) -> OtlpTrace {
    let spans = records
        .iter()
        .map(|record| {
            let mut attributes = vec![
                attribute("gremlin.src", record.src.as_str()),
                attribute("gremlin.dst", record.dst.as_str()),
            ];
            if !record.agent.is_empty() {
                attributes.push(attribute("gremlin.agent", record.agent.as_str()));
            }
            if let Some(status) = record.status {
                attributes.push(attribute("http.status_code", status.to_string()));
            }
            if let Some(fault) = &record.fault {
                // Serialized (not Display) so the importer can parse
                // the exact fault back.
                let json = serde_json::to_string(fault).unwrap_or_default();
                attributes.push(attribute("gremlin.fault", json));
            }
            OtlpSpan {
                trace_id: record.trace_id.clone(),
                span_id: record.span_id.as_deref().unwrap_or_default().to_string(),
                parent_span_id: record.parent_id.as_deref().unwrap_or_default().to_string(),
                name: record.call.clone(),
                kind: 3,
                start_time_unix_nano: (record.start_us * 1_000).to_string(),
                end_time_unix_nano: record
                    .end_us()
                    .map(|end| (end * 1_000).to_string())
                    .unwrap_or_default(),
                attributes,
            }
        })
        .collect();
    OtlpTrace {
        resource_spans: vec![OtlpResourceSpans {
            resource: OtlpResource {
                attributes: vec![attribute("service.name", "gremlin")],
            },
            scope_spans: vec![OtlpScopeSpans {
                scope: OtlpScope {
                    name: "gremlin-proxy".to_string(),
                },
                spans,
            }],
        }],
    }
}

/// Recovers span records from an OTLP-style trace document produced
/// by [`export_otlp`] (or compatible tooling).
pub fn import_otlp(trace: &OtlpTrace) -> Vec<SpanRecord> {
    let mut records = Vec::new();
    for resource in &trace.resource_spans {
        for scope in &resource.scope_spans {
            for span in &scope.spans {
                let start_us = span.start_time_unix_nano.parse::<u64>().unwrap_or_default() / 1_000;
                let end_us: Option<Micros> = span
                    .end_time_unix_nano
                    .parse::<u64>()
                    .ok()
                    .map(|nanos| nanos / 1_000);
                let fault = lookup(&span.attributes, "gremlin.fault")
                    .and_then(|json| serde_json::from_str(json).ok());
                records.push(SpanRecord {
                    trace_id: span.trace_id.clone(),
                    span_id: (!span.span_id.is_empty()).then(|| Name::from(span.span_id.as_str())),
                    parent_id: (!span.parent_span_id.is_empty())
                        .then(|| Name::from(span.parent_span_id.as_str())),
                    src: Name::from(lookup(&span.attributes, "gremlin.src").unwrap_or("")),
                    dst: Name::from(lookup(&span.attributes, "gremlin.dst").unwrap_or("")),
                    call: span.name.clone(),
                    start_us,
                    latency_us: end_us.map(|end| end.saturating_sub(start_us)),
                    status: lookup(&span.attributes, "http.status_code")
                        .and_then(|s| s.parse().ok()),
                    fault,
                    agent: Name::from(lookup(&span.attributes, "gremlin.agent").unwrap_or("")),
                });
            }
        }
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn spanned_request(
        src: &str,
        dst: &str,
        ts: Micros,
        span: &str,
        parent: Option<&str>,
    ) -> Event {
        let mut event = Event::request(src, dst, "GET", "/x")
            .with_request_id("test-1")
            .with_timestamp(ts)
            .with_span_id(span);
        if let Some(parent) = parent {
            event = event.with_parent_id(parent);
        }
        event
    }

    fn spanned_response(
        src: &str,
        dst: &str,
        status: u16,
        ts: Micros,
        ms: u64,
        span: &str,
    ) -> Event {
        Event::response(src, dst, status, Duration::from_millis(ms))
            .with_request_id("test-1")
            .with_timestamp(ts)
            .with_span_id(span)
    }

    #[test]
    fn spans_pair_by_id_not_edge_order() {
        // Two concurrent calls on the same edge; responses arrive in
        // the opposite order. Span IDs pair them correctly where the
        // legacy FIFO heuristic would cross them.
        let events = vec![
            spanned_request("a", "b", 0, "s1", None),
            spanned_request("a", "b", 10, "s2", None),
            spanned_response("a", "b", 500, 20, 1, "s2"),
            spanned_response("a", "b", 200, 30, 2, "s1"),
        ];
        let spans = assemble_spans("test-1", &events);
        assert_eq!(spans.len(), 2);
        let s1 = spans
            .iter()
            .find(|s| s.span_id.as_deref() == Some("s1"))
            .unwrap();
        let s2 = spans
            .iter()
            .find(|s| s.span_id.as_deref() == Some("s2"))
            .unwrap();
        assert_eq!(s1.status, Some(200));
        assert_eq!(s2.status, Some(500));
        assert!(s2.failed());
        assert!(!s1.failed());
    }

    #[test]
    fn legacy_events_pair_fifo_per_edge() {
        let events = vec![
            Event::request("a", "b", "GET", "/x")
                .with_request_id("test-1")
                .with_timestamp(0),
            Event::response("a", "b", 200, Duration::from_millis(1))
                .with_request_id("test-1")
                .with_timestamp(10),
        ];
        let spans = assemble_spans("test-1", &events);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].span_id, None);
        assert_eq!(spans[0].status, Some(200));
        assert_eq!(spans[0].latency_us, Some(1_000));
        assert_eq!(spans[0].end_us(), Some(1_000));
    }

    #[test]
    fn unanswered_and_orphan_records_kept() {
        let events = vec![
            spanned_request("a", "b", 0, "s1", None),
            // Orphan response: span never opened.
            spanned_response("b", "c", 200, 5, 1, "s9"),
        ];
        let spans = assemble_spans("test-1", &events);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].status, None);
        assert!(spans[0].failed());
        assert_eq!(spans[1].call, "(request not observed)");
    }

    #[test]
    fn parent_ids_survive_assembly() {
        let events = vec![
            spanned_request("user", "web", 0, "s1", None),
            spanned_request("web", "db", 10, "s2", Some("s1")),
            spanned_response("web", "db", 200, 20, 1, "s2"),
            spanned_response("user", "web", 200, 30, 3, "s1"),
        ];
        let spans = assemble_spans("test-1", &events);
        let child = spans.iter().find(|s| s.dst == "db").unwrap();
        assert_eq!(child.parent_id.as_deref(), Some("s1"));
    }

    #[test]
    fn from_store_filters_by_request_id() {
        let store = EventStore::new();
        store.record_event(spanned_request("a", "b", 0, "s1", None));
        store.record_event(
            Event::request("a", "b", "GET", "/other")
                .with_request_id("test-2")
                .with_timestamp(1),
        );
        let spans = spans_from_store(&store, "test-1");
        assert_eq!(spans.len(), 1);
    }

    #[test]
    fn otlp_round_trip_preserves_records() {
        let events = vec![
            spanned_request("user", "web", 100, "s1", None),
            {
                let mut e = spanned_request("web", "db", 110, "s2", Some("s1"));
                e.fault = Some(AppliedFault::Delay { delay_us: 50_000 });
                e.agent = Name::from("web-agent");
                e
            },
            spanned_response("web", "db", 200, 160, 50, "s2"),
            // Legacy span-less record and an unanswered request mix in.
            Event::request("web", "cache", "GET", "/k")
                .with_request_id("test-1")
                .with_timestamp(120),
        ];
        let spans = assemble_spans("test-1", &events);
        let exported = export_otlp(&spans);
        let json = serde_json::to_string_pretty(&exported).unwrap();
        assert!(json.contains("resourceSpans"));
        assert!(json.contains("startTimeUnixNano"));
        let parsed: OtlpTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, exported);
        let back = import_otlp(&parsed);
        assert_eq!(back, spans);
    }

    #[test]
    fn otlp_export_marks_client_kind_and_nanos() {
        let spans = assemble_spans(
            "test-1",
            &[
                spanned_request("a", "b", 7, "s1", None),
                spanned_response("a", "b", 503, 9, 2, "s1"),
            ],
        );
        let trace = export_otlp(&spans);
        let span = &trace.resource_spans[0].scope_spans[0].spans[0];
        assert_eq!(span.kind, 3);
        assert_eq!(span.start_time_unix_nano, "7000");
        assert_eq!(span.end_time_unix_nano, "2007000");
        assert_eq!(lookup(&span.attributes, "http.status_code"), Some("503"));
    }
}

//! Property-based tests for the pattern matcher and the indexed
//! query engine.

use std::time::Duration;

use proptest::prelude::*;

use gremlin_store::pattern::glob_match_reference;
use gremlin_store::{AppliedFault, Event, EventStore, KindFilter, Pattern, Query};

/// Strategy producing glob patterns over a tiny alphabet so that
/// wildcard collisions actually happen.
fn pattern_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just('a'),
            Just('b'),
            Just('c'),
            Just('*'),
            Just('?'),
            Just('-')
        ],
        0..8,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

fn text_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![Just('a'), Just('b'), Just('c'), Just('-')],
        0..10,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

proptest! {
    /// The optimized matcher (with its Any/Exact/Prefix fast paths)
    /// must agree with the simple recursive reference matcher.
    #[test]
    fn optimized_matcher_agrees_with_reference(
        pattern in pattern_strategy(),
        text in text_strategy(),
    ) {
        let compiled = Pattern::new(&pattern);
        prop_assert_eq!(
            compiled.matches(&text),
            glob_match_reference(&pattern, &text),
            "pattern={} text={}", pattern, text
        );
    }

    /// Compiling a pattern and printing it back yields an equivalent
    /// matcher.
    #[test]
    fn pattern_display_round_trip(pattern in pattern_strategy(), text in text_strategy()) {
        let compiled = Pattern::new(&pattern);
        let recompiled = Pattern::new(&compiled.to_string());
        prop_assert_eq!(compiled.matches(&text), recompiled.matches(&text));
    }
}

/// A generated event description small enough for proptest shrinking
/// to stay readable.
#[derive(Debug, Clone)]
struct EventSpec {
    src: u8,
    dst: u8,
    is_request: bool,
    id: Option<u8>,
    timestamp: u64,
    faulted: bool,
}

fn event_spec_strategy() -> impl Strategy<Value = EventSpec> {
    (
        0u8..3,
        0u8..3,
        any::<bool>(),
        proptest::option::of(0u8..4),
        0u64..1000,
        any::<bool>(),
    )
        .prop_map(|(src, dst, is_request, id, timestamp, faulted)| EventSpec {
            src,
            dst,
            is_request,
            id,
            timestamp,
            faulted,
        })
}

fn materialize(spec: &EventSpec) -> Event {
    let src = format!("svc-{}", spec.src);
    let dst = format!("svc-{}", spec.dst);
    let mut event = if spec.is_request {
        Event::request(src, dst, "GET", "/p")
    } else {
        Event::response(src, dst, 200, Duration::from_millis(1))
    };
    event.timestamp_us = spec.timestamp;
    if let Some(id) = spec.id {
        event.request_id = Some(format!("test-{id}").into());
    }
    if spec.faulted {
        event.fault = Some(AppliedFault::Abort { status: 503 });
    }
    event
}

proptest! {
    /// The indexed query path must return exactly what a naive filter
    /// over the full snapshot returns (same multiset, time-sorted).
    #[test]
    fn indexed_query_equals_naive_scan(
        specs in proptest::collection::vec(event_spec_strategy(), 0..60),
        src in 0u8..3,
        dst in 0u8..3,
        kind_choice in 0u8..3,
        from in 0u64..1000,
        len in 0u64..500,
    ) {
        let store = EventStore::new();
        let events: Vec<Event> = specs.iter().map(materialize).collect();
        store.extend(events.clone());

        let kind = match kind_choice {
            0 => KindFilter::Requests,
            1 => KindFilter::Replies,
            _ => KindFilter::All,
        };
        let query = Query {
            src: Some(format!("svc-{src}")),
            dst: Some(format!("svc-{dst}")),
            kind,
            id_pattern: Some(Pattern::new("test-*")),
            from_us: Some(from),
            until_us: Some(from + len),
            faulted: None,
        };

        let via_index = store.query(&query);
        let mut naive: Vec<Event> =
            events.iter().filter(|e| query.matches(e)).cloned().collect();
        naive.sort_by_key(|e| e.timestamp_us);

        // Same length and same sorted timestamps; content equality up
        // to reordering of equal timestamps.
        prop_assert_eq!(via_index.len(), naive.len());
        let index_ts: Vec<u64> = via_index.iter().map(|e| e.timestamp_us).collect();
        let naive_ts: Vec<u64> = naive.iter().map(|e| e.timestamp_us).collect();
        prop_assert_eq!(index_ts, naive_ts);
        prop_assert_eq!(store.count(&query), naive.len());
    }

    /// The request-ID index path (queries without src/dst) must also
    /// match the naive scan, for exact, prefix and glob patterns.
    #[test]
    fn id_indexed_query_equals_naive_scan(
        specs in proptest::collection::vec(event_spec_strategy(), 0..60),
        pattern_choice in 0u8..4,
        target_id in 0u8..4,
    ) {
        let store = EventStore::new();
        let events: Vec<Event> = specs.iter().map(materialize).collect();
        store.extend(events.clone());

        let pattern = match pattern_choice {
            0 => Pattern::Exact(format!("test-{target_id}")),
            1 => Pattern::new("test-*"),
            2 => Pattern::new(&format!("test-{target_id}*")),
            _ => Pattern::new("test-?"),
        };
        let query = Query {
            id_pattern: Some(pattern),
            ..Query::default()
        };
        let via_index = store.query(&query);
        let mut naive: Vec<Event> =
            events.iter().filter(|e| query.matches(e)).cloned().collect();
        naive.sort_by_key(|e| e.timestamp_us);
        prop_assert_eq!(via_index.len(), naive.len());
        let index_ts: Vec<u64> = via_index.iter().map(|e| e.timestamp_us).collect();
        let naive_ts: Vec<u64> = naive.iter().map(|e| e.timestamp_us).collect();
        prop_assert_eq!(index_ts, naive_ts);
    }

    /// JSON export/import preserves the full event set.
    #[test]
    fn json_round_trip_preserves_events(
        specs in proptest::collection::vec(event_spec_strategy(), 0..30),
    ) {
        let store = EventStore::new();
        store.extend(specs.iter().map(materialize));
        let json = store.export_json().unwrap();
        let restored = EventStore::new();
        restored.import_json(&json).unwrap();
        prop_assert_eq!(restored.snapshot(), store.snapshot());
    }
}

//! Stress tests for the sharded [`EventStore`] under concurrent
//! writers and queriers: no recorded event may be lost, and query
//! results must stay timestamp-sorted while writes are in flight.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use gremlin_store::{Event, EventStore, Query};

fn event(writer: usize, index: u64) -> Event {
    let mut event =
        Event::request("web", "db", "GET", "/q").with_request_id(format!("test-{writer}-{index}"));
    // Deliberately non-monotonic timestamps so merge order is
    // exercised, with plenty of ties across writers.
    event.timestamp_us = index % 64;
    event
}

#[test]
fn concurrent_writers_lose_nothing_and_queries_stay_sorted() {
    const WRITERS: usize = 4;
    const PER_WRITER: u64 = 2_000;

    let store = EventStore::shared();
    let stop = Arc::new(AtomicBool::new(false));

    let writers: Vec<_> = (0..WRITERS)
        .map(|writer| {
            let store = Arc::clone(&store);
            thread::spawn(move || {
                for index in 0..PER_WRITER {
                    if index % 5 == 0 {
                        // Mix batched and single appends.
                        store.record_batch(vec![event(writer, index)]);
                    } else {
                        store.record_event(event(writer, index));
                    }
                }
            })
        })
        .collect();

    // Queriers hammer the store while writes are in flight; every
    // observed result must be timestamp-sorted and internally
    // consistent.
    let queriers: Vec<_> = (0..3)
        .map(|_| {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut observed_len = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let results = store.query(&Query::requests("web", "db"));
                    assert!(
                        results
                            .windows(2)
                            .all(|pair| pair[0].timestamp_us <= pair[1].timestamp_us),
                        "query result not timestamp-sorted"
                    );
                    // The store only grows in this test.
                    assert!(
                        results.len() >= observed_len,
                        "events disappeared: saw {} then {}",
                        observed_len,
                        results.len()
                    );
                    observed_len = results.len();
                    thread::sleep(Duration::from_micros(200));
                }
            })
        })
        .collect();

    for writer in writers {
        writer.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for querier in queriers {
        querier.join().unwrap();
    }

    // Loss-free: every event from every writer is present exactly once.
    let total = WRITERS as u64 * PER_WRITER;
    assert_eq!(store.len() as u64, total);
    let all = store.snapshot();
    assert_eq!(all.len() as u64, total);
    assert!(all
        .windows(2)
        .all(|pair| pair[0].timestamp_us <= pair[1].timestamp_us));
    let mut ids: Vec<String> = all
        .iter()
        .map(|e| e.request_id.as_deref().unwrap().to_string())
        .collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len() as u64, total, "duplicate or missing request ids");

    // The indexed query path agrees with the snapshot.
    for writer in 0..WRITERS {
        let exact = store.query(&Query::new().with_request_id(format!("test-{writer}-7")));
        assert_eq!(exact.len(), 1);
    }
    let edge = store.query(&Query::requests("web", "db"));
    assert_eq!(edge.len() as u64, total);
}

#[test]
fn batched_and_single_appends_interleave_without_reordering_ties() {
    // All events share one timestamp: result order must be exactly
    // insertion order (the sequence number breaks ties), regardless
    // of how appends were batched.
    let store = EventStore::with_shards(4);
    let mut expected = Vec::new();
    for index in 0..100u64 {
        let mut e = Event::request("a", "b", "GET", "/x").with_request_id(format!("test-{index}"));
        e.timestamp_us = 42;
        expected.push(format!("test-{index}"));
        if index % 3 == 0 {
            store.record_batch(vec![e]);
        } else {
            store.record_event(e);
        }
    }
    let got: Vec<String> = store
        .snapshot()
        .iter()
        .map(|e| e.request_id.as_deref().unwrap().to_string())
        .collect();
    assert_eq!(got, expected);
}

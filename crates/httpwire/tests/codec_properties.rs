//! Property-based round-trip tests for the HTTP codec: any message
//! built from valid components survives serialize → parse intact.

use std::io::BufReader;

use proptest::prelude::*;

use gremlin_http::codec::{read_request, read_response, write_request, write_response};
use gremlin_http::{Method, Request, Response, StatusCode};

/// HTTP token characters (for methods and header names).
fn token() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[A-Za-z][A-Za-z0-9-]{0,15}").expect("valid regex")
}

/// A target path without whitespace or control characters.
fn target() -> impl Strategy<Value = String> {
    proptest::string::string_regex("/[a-zA-Z0-9/_.~%-]{0,40}(\\?[a-zA-Z0-9=&_-]{0,20})?")
        .expect("valid regex")
}

/// Header values: printable ASCII without CR/LF, trimmed (the codec
/// trims optional whitespace around values, per RFC 7230).
fn header_value() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[!-~]([ -~]{0,30}[!-~])?").expect("valid regex")
}

fn headers() -> impl Strategy<Value = Vec<(String, String)>> {
    proptest::collection::vec((token(), header_value()), 0..8).prop_map(|pairs| {
        // Names that collide with framing headers would be rewritten
        // by the codec; exclude them from the round-trip comparison.
        pairs
            .into_iter()
            .filter(|(name, _)| {
                !name.eq_ignore_ascii_case("content-length")
                    && !name.eq_ignore_ascii_case("transfer-encoding")
            })
            .collect()
    })
}

fn body() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..512)
}

fn method() -> impl Strategy<Value = Method> {
    prop_oneof![
        Just(Method::Get),
        Just(Method::Head),
        Just(Method::Post),
        Just(Method::Put),
        Just(Method::Delete),
        Just(Method::Options),
        Just(Method::Patch),
        token().prop_map(Method::Extension),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Requests round-trip bit-exactly (method, target, headers,
    /// body).
    #[test]
    fn request_round_trip(
        method in method(),
        target in target(),
        headers in headers(),
        body in body(),
    ) {
        let mut builder = Request::builder(method.clone(), target.clone());
        for (name, value) in &headers {
            builder = builder.header(name.clone(), value.clone());
        }
        let request = builder.body(body.clone()).build();

        let mut wire = Vec::new();
        write_request(&mut wire, &request).unwrap();
        let parsed = read_request(&mut BufReader::new(&wire[..])).unwrap();

        prop_assert_eq!(parsed.method(), &method);
        prop_assert_eq!(parsed.target(), target.as_str());
        prop_assert_eq!(&parsed.body()[..], &body[..]);
        for (name, value) in &headers {
            prop_assert!(
                parsed.headers().get_all(name).any(|v| v == value),
                "header {} lost", name
            );
        }
    }

    /// Responses round-trip bit-exactly (status, reason, headers,
    /// body).
    #[test]
    fn response_round_trip(
        code in 100u16..600,
        headers in headers(),
        body in body(),
    ) {
        let status = StatusCode::new(code).unwrap();
        let mut builder = Response::builder(status);
        for (name, value) in &headers {
            builder = builder.header(name.clone(), value.clone());
        }
        let response = builder.body(body.clone()).build();

        let mut wire = Vec::new();
        write_response(&mut wire, &response).unwrap();
        let parsed = read_response(&mut BufReader::new(&wire[..])).unwrap();

        prop_assert_eq!(parsed.status(), status);
        prop_assert_eq!(parsed.reason(), response.reason());
        prop_assert_eq!(&parsed.body()[..], &body[..]);
    }

    /// Two serialized messages on one stream parse back in order
    /// (keep-alive framing never bleeds).
    #[test]
    fn pipelined_framing(
        target_a in target(),
        target_b in target(),
        body_a in body(),
        body_b in body(),
    ) {
        let first = Request::builder(Method::Post, target_a.clone()).body(body_a.clone()).build();
        let second = Request::builder(Method::Post, target_b.clone()).body(body_b.clone()).build();
        let mut wire = Vec::new();
        write_request(&mut wire, &first).unwrap();
        write_request(&mut wire, &second).unwrap();

        let mut reader = BufReader::new(&wire[..]);
        let parsed_first = read_request(&mut reader).unwrap();
        let parsed_second = read_request(&mut reader).unwrap();
        prop_assert_eq!(parsed_first.target(), target_a.as_str());
        prop_assert_eq!(&parsed_first.body()[..], &body_a[..]);
        prop_assert_eq!(parsed_second.target(), target_b.as_str());
        prop_assert_eq!(&parsed_second.body()[..], &body_b[..]);
    }

    /// Arbitrary junk never panics the parser: it returns Ok or Err,
    /// but does not crash or loop.
    #[test]
    fn parser_is_total(junk in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = read_request(&mut BufReader::new(&junk[..]));
        let _ = read_response(&mut BufReader::new(&junk[..]));
    }
}

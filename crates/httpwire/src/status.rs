//! HTTP status codes.

use std::fmt;

use crate::error::HttpError;

/// An HTTP response status code (100..=999).
///
/// # Examples
///
/// ```
/// use gremlin_http::StatusCode;
///
/// let status = StatusCode::SERVICE_UNAVAILABLE;
/// assert_eq!(status.as_u16(), 503);
/// assert!(status.is_server_error());
/// assert_eq!(status.canonical_reason(), "Service Unavailable");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StatusCode(u16);

macro_rules! status_codes {
    ($($(#[$doc:meta])* ($num:expr, $konst:ident, $reason:expr);)+) => {
        impl StatusCode {
            $(
                $(#[$doc])*
                pub const $konst: StatusCode = StatusCode($num);
            )+

            /// Returns the canonical reason phrase for this status
            /// code, or `"Unknown"` for unregistered codes.
            pub fn canonical_reason(&self) -> &'static str {
                match self.0 {
                    $( $num => $reason, )+
                    _ => "Unknown",
                }
            }
        }
    };
}

status_codes! {
    /// `100 Continue`
    (100, CONTINUE, "Continue");
    /// `200 OK`
    (200, OK, "OK");
    /// `201 Created`
    (201, CREATED, "Created");
    /// `202 Accepted`
    (202, ACCEPTED, "Accepted");
    /// `204 No Content`
    (204, NO_CONTENT, "No Content");
    /// `301 Moved Permanently`
    (301, MOVED_PERMANENTLY, "Moved Permanently");
    /// `302 Found`
    (302, FOUND, "Found");
    /// `304 Not Modified`
    (304, NOT_MODIFIED, "Not Modified");
    /// `400 Bad Request`
    (400, BAD_REQUEST, "Bad Request");
    /// `401 Unauthorized`
    (401, UNAUTHORIZED, "Unauthorized");
    /// `403 Forbidden`
    (403, FORBIDDEN, "Forbidden");
    /// `404 Not Found`
    (404, NOT_FOUND, "Not Found");
    /// `405 Method Not Allowed`
    (405, METHOD_NOT_ALLOWED, "Method Not Allowed");
    /// `408 Request Timeout`
    (408, REQUEST_TIMEOUT, "Request Timeout");
    /// `409 Conflict`
    (409, CONFLICT, "Conflict");
    /// `413 Payload Too Large`
    (413, PAYLOAD_TOO_LARGE, "Payload Too Large");
    /// `429 Too Many Requests`
    (429, TOO_MANY_REQUESTS, "Too Many Requests");
    /// `500 Internal Server Error`
    (500, INTERNAL_SERVER_ERROR, "Internal Server Error");
    /// `501 Not Implemented`
    (501, NOT_IMPLEMENTED, "Not Implemented");
    /// `502 Bad Gateway`
    (502, BAD_GATEWAY, "Bad Gateway");
    /// `503 Service Unavailable`
    (503, SERVICE_UNAVAILABLE, "Service Unavailable");
    /// `504 Gateway Timeout`
    (504, GATEWAY_TIMEOUT, "Gateway Timeout");
}

impl StatusCode {
    /// Creates a status code, validating that it lies in 100..=999.
    ///
    /// # Errors
    ///
    /// Returns [`HttpError::InvalidStatusCode`] if `code` is outside
    /// the valid range.
    pub fn new(code: u16) -> Result<StatusCode, HttpError> {
        if (100..=999).contains(&code) {
            Ok(StatusCode(code))
        } else {
            Err(HttpError::InvalidStatusCode(code))
        }
    }

    /// Returns the numeric value of the status code.
    pub fn as_u16(&self) -> u16 {
        self.0
    }

    /// Returns `true` for 1xx codes.
    pub fn is_informational(&self) -> bool {
        (100..200).contains(&self.0)
    }

    /// Returns `true` for 2xx codes.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.0)
    }

    /// Returns `true` for 3xx codes.
    pub fn is_redirection(&self) -> bool {
        (300..400).contains(&self.0)
    }

    /// Returns `true` for 4xx codes.
    pub fn is_client_error(&self) -> bool {
        (400..500).contains(&self.0)
    }

    /// Returns `true` for 5xx codes.
    pub fn is_server_error(&self) -> bool {
        (500..600).contains(&self.0)
    }

    /// Returns `true` for any 4xx or 5xx code.
    ///
    /// Resilience patterns (retries, circuit breakers) treat these as
    /// failed API calls.
    pub fn is_error(&self) -> bool {
        self.is_client_error() || self.is_server_error()
    }
}

impl Default for StatusCode {
    fn default() -> Self {
        StatusCode::OK
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl TryFrom<u16> for StatusCode {
    type Error = HttpError;

    fn try_from(code: u16) -> Result<Self, Self::Error> {
        StatusCode::new(code)
    }
}

impl From<StatusCode> for u16 {
    fn from(status: StatusCode) -> u16 {
        status.as_u16()
    }
}

impl PartialEq<u16> for StatusCode {
    fn eq(&self, other: &u16) -> bool {
        self.0 == *other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_range() {
        assert!(StatusCode::new(99).is_err());
        assert!(StatusCode::new(1000).is_err());
        assert!(StatusCode::new(100).is_ok());
        assert!(StatusCode::new(999).is_ok());
    }

    #[test]
    fn classification() {
        assert!(StatusCode::CONTINUE.is_informational());
        assert!(StatusCode::OK.is_success());
        assert!(StatusCode::FOUND.is_redirection());
        assert!(StatusCode::NOT_FOUND.is_client_error());
        assert!(StatusCode::SERVICE_UNAVAILABLE.is_server_error());
        assert!(StatusCode::NOT_FOUND.is_error());
        assert!(StatusCode::SERVICE_UNAVAILABLE.is_error());
        assert!(!StatusCode::OK.is_error());
    }

    #[test]
    fn canonical_reasons() {
        assert_eq!(StatusCode::OK.canonical_reason(), "OK");
        assert_eq!(
            StatusCode::SERVICE_UNAVAILABLE.canonical_reason(),
            "Service Unavailable"
        );
        assert_eq!(StatusCode::new(599).unwrap().canonical_reason(), "Unknown");
    }

    #[test]
    fn conversions() {
        let s: StatusCode = 503u16.try_into().unwrap();
        assert_eq!(s, StatusCode::SERVICE_UNAVAILABLE);
        assert_eq!(u16::from(s), 503);
        assert_eq!(s, 503u16);
        assert_eq!(s.to_string(), "503");
    }
}

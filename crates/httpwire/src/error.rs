//! Error types for the HTTP codec, client and server.

use std::error::Error as StdError;
use std::fmt;
use std::io;

/// Errors produced while parsing, serializing or transporting HTTP
/// messages.
///
/// All fallible public functions in this crate return
/// [`Result<T, HttpError>`](crate::Result).
#[derive(Debug)]
#[non_exhaustive]
pub enum HttpError {
    /// An underlying socket or stream operation failed.
    Io(io::Error),
    /// The peer closed the connection before a complete message was
    /// received.
    ConnectionClosed,
    /// The request line could not be parsed.
    InvalidRequestLine(String),
    /// The status line could not be parsed.
    InvalidStatusLine(String),
    /// A header line was malformed (missing `:` separator or invalid
    /// characters).
    InvalidHeader(String),
    /// The message head (request/status line plus headers) exceeded
    /// the configured size limit.
    HeadTooLarge {
        /// The configured limit in bytes.
        limit: usize,
    },
    /// The message body exceeded the configured size limit.
    BodyTooLarge {
        /// The configured limit in bytes.
        limit: usize,
    },
    /// A `Content-Length` header was present but unparseable.
    InvalidContentLength(String),
    /// A chunked body had a malformed chunk-size line.
    InvalidChunkSize(String),
    /// An unsupported HTTP version was encountered.
    UnsupportedVersion(String),
    /// A status code outside the range 100..=999 was supplied.
    InvalidStatusCode(u16),
    /// The operation did not complete within its deadline.
    Timeout,
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Io(err) => write!(f, "i/o error: {err}"),
            HttpError::ConnectionClosed => write!(f, "connection closed before message completed"),
            HttpError::InvalidRequestLine(line) => write!(f, "invalid request line: {line:?}"),
            HttpError::InvalidStatusLine(line) => write!(f, "invalid status line: {line:?}"),
            HttpError::InvalidHeader(line) => write!(f, "invalid header line: {line:?}"),
            HttpError::HeadTooLarge { limit } => {
                write!(f, "message head exceeds limit of {limit} bytes")
            }
            HttpError::BodyTooLarge { limit } => {
                write!(f, "message body exceeds limit of {limit} bytes")
            }
            HttpError::InvalidContentLength(value) => {
                write!(f, "invalid content-length: {value:?}")
            }
            HttpError::InvalidChunkSize(value) => write!(f, "invalid chunk size: {value:?}"),
            HttpError::UnsupportedVersion(version) => {
                write!(f, "unsupported http version: {version:?}")
            }
            HttpError::InvalidStatusCode(code) => write!(f, "invalid status code: {code}"),
            HttpError::Timeout => write!(f, "operation timed out"),
        }
    }
}

impl StdError for HttpError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            HttpError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(err: io::Error) -> Self {
        match err.kind() {
            io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => HttpError::Timeout,
            io::ErrorKind::UnexpectedEof => HttpError::ConnectionClosed,
            _ => HttpError::Io(err),
        }
    }
}

impl HttpError {
    /// Returns `true` if the error indicates the peer went away
    /// (reset, closed, or refused), as opposed to a protocol error.
    pub fn is_connection_error(&self) -> bool {
        match self {
            HttpError::ConnectionClosed => true,
            HttpError::Io(err) => matches!(
                err.kind(),
                io::ErrorKind::ConnectionReset
                    | io::ErrorKind::ConnectionAborted
                    | io::ErrorKind::ConnectionRefused
                    | io::ErrorKind::BrokenPipe
                    | io::ErrorKind::NotConnected
            ),
            _ => false,
        }
    }

    /// Returns `true` if the error is a timeout (connect, read or
    /// write deadline exceeded).
    pub fn is_timeout(&self) -> bool {
        matches!(self, HttpError::Timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors: Vec<HttpError> = vec![
            HttpError::ConnectionClosed,
            HttpError::InvalidRequestLine("x".into()),
            HttpError::InvalidStatusLine("x".into()),
            HttpError::InvalidHeader("x".into()),
            HttpError::HeadTooLarge { limit: 1 },
            HttpError::BodyTooLarge { limit: 1 },
            HttpError::InvalidContentLength("x".into()),
            HttpError::InvalidChunkSize("x".into()),
            HttpError::UnsupportedVersion("x".into()),
            HttpError::InvalidStatusCode(1000),
            HttpError::Timeout,
        ];
        for err in errors {
            let text = err.to_string();
            assert!(!text.is_empty());
            assert!(text.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn io_timeout_maps_to_timeout() {
        let io = io::Error::new(io::ErrorKind::TimedOut, "t");
        assert!(HttpError::from(io).is_timeout());
        let io = io::Error::new(io::ErrorKind::WouldBlock, "t");
        assert!(HttpError::from(io).is_timeout());
    }

    #[test]
    fn io_eof_maps_to_connection_closed() {
        let io = io::Error::new(io::ErrorKind::UnexpectedEof, "eof");
        assert!(matches!(HttpError::from(io), HttpError::ConnectionClosed));
    }

    #[test]
    fn connection_error_classification() {
        let reset = HttpError::Io(io::Error::new(io::ErrorKind::ConnectionReset, "r"));
        assert!(reset.is_connection_error());
        assert!(HttpError::ConnectionClosed.is_connection_error());
        assert!(!HttpError::Timeout.is_connection_error());
        assert!(!HttpError::InvalidStatusCode(1000).is_connection_error());
    }

    #[test]
    fn source_is_set_for_io() {
        let err = HttpError::Io(io::Error::other("inner"));
        assert!(err.source().is_some());
        assert!(HttpError::Timeout.source().is_none());
    }
}

//! # gremlin-http
//!
//! A from-scratch HTTP/1.1 subset used as the wire substrate of the
//! Gremlin resilience-testing framework (Heorhiadi et al., ICDCS
//! 2016). Microservices in the `gremlin-mesh` runtime speak this
//! protocol over real TCP sockets, and the Gremlin agents in
//! `gremlin-proxy` intercept and manipulate these messages to stage
//! failures.
//!
//! The crate provides:
//!
//! * message types — [`Request`], [`Response`], [`Method`],
//!   [`StatusCode`], [`HeaderMap`];
//! * a wire codec — [`codec::read_request`], [`codec::write_response`]
//!   and friends, supporting `Content-Length` and chunked bodies;
//! * a blocking [`HttpClient`] with connect/read/write timeouts and
//!   keep-alive pooling;
//! * a multi-threaded [`HttpServer`];
//! * a reusable [`ThreadPool`].
//!
//! # Examples
//!
//! ```
//! use gremlin_http::{HttpClient, HttpServer, Request, Response};
//!
//! # fn main() -> gremlin_http::Result<()> {
//! let server = HttpServer::bind("127.0.0.1:0", |req: Request, _conn: &_| {
//!     Response::ok(format!("you asked for {}", req.path()))
//! })?;
//!
//! let client = HttpClient::new();
//! let response = client.send(server.local_addr(), Request::get("/catalog"))?;
//! assert_eq!(response.body_str(), "you asked for /catalog");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod codec;
pub mod error;
pub mod headers;
pub mod message;
mod method;
mod pool;
pub mod server;
mod status;
pub mod track;

pub use client::{ClientConfig, HttpClient};
pub use error::HttpError;
pub use headers::{names as header_names, HeaderMap};
pub use message::{Request, RequestBuilder, Response, ResponseBuilder, HTTP_VERSION};
pub use method::Method;
pub use pool::ThreadPool;
pub use server::{ChunkSink, ConnInfo, Handler, HttpServer, Reply, ServerConfig, StreamingBody};
pub use status::StatusCode;
pub use track::ConnTracker;

/// Result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, HttpError>;

//! A case-insensitive, order-preserving header map.

use std::fmt;
use std::slice;

/// Well-known header names used throughout the Gremlin framework.
pub mod names {
    /// Propagated end-to-end request identifier. Gremlin agents match
    /// fault-injection rules against this header (paper §4.1,
    /// "Injecting faults on specific request flows").
    pub const REQUEST_ID: &str = "X-Gremlin-ID";
    /// Standard `Content-Length` header.
    pub const CONTENT_LENGTH: &str = "Content-Length";
    /// Standard `Content-Type` header.
    pub const CONTENT_TYPE: &str = "Content-Type";
    /// Standard `Connection` header.
    pub const CONNECTION: &str = "Connection";
    /// Standard `Transfer-Encoding` header.
    pub const TRANSFER_ENCODING: &str = "Transfer-Encoding";
    /// Standard `Host` header.
    pub const HOST: &str = "Host";
    /// Added by Gremlin agents to responses they synthesize or touch,
    /// recording the fault action applied (for debugging test runs).
    pub const GREMLIN_ACTION: &str = "X-Gremlin-Action";
    /// Span ID of the current intercepted call, minted by the agent
    /// that forwarded the message (Dapper/Zipkin-style causal
    /// tracing). Services copy this header onto their outbound calls
    /// so the next agent can record it as the parent.
    pub const SPAN_ID: &str = "X-Gremlin-Span";
    /// Span ID of the causally enclosing call, stamped by the agent
    /// alongside [`SPAN_ID`] when it forwards a message.
    pub const PARENT_ID: &str = "X-Gremlin-Parent";
}

/// An ordered multimap of HTTP headers with case-insensitive name
/// lookup.
///
/// Insertion order is preserved, which keeps proxied messages
/// byte-comparable and makes log output deterministic.
///
/// # Examples
///
/// ```
/// use gremlin_http::HeaderMap;
///
/// let mut headers = HeaderMap::new();
/// headers.insert("Content-Type", "application/json");
/// assert_eq!(headers.get("content-type"), Some("application/json"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HeaderMap {
    entries: Vec<(String, String)>,
}

impl HeaderMap {
    /// Creates an empty header map.
    pub fn new() -> HeaderMap {
        HeaderMap::default()
    }

    /// Creates an empty header map with room for `capacity` entries.
    pub fn with_capacity(capacity: usize) -> HeaderMap {
        HeaderMap {
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Number of header entries (duplicates counted individually).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no headers are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns the value of the first header matching `name`
    /// (case-insensitive), if any.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Returns every value for headers matching `name`, in insertion
    /// order.
    pub fn get_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.entries
            .iter()
            .filter(move |(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Returns `true` if a header with `name` exists.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Replaces all headers named `name` with a single entry, keeping
    /// the position of the first occurrence (or appending if absent).
    pub fn insert(&mut self, name: impl Into<String>, value: impl Into<String>) {
        let name = name.into();
        let value = value.into();
        let mut replaced = false;
        self.entries.retain_mut(|(k, v)| {
            if k.eq_ignore_ascii_case(&name) {
                if replaced {
                    return false;
                }
                replaced = true;
                *v = value.clone();
            }
            true
        });
        if !replaced {
            self.entries.push((name, value));
        }
    }

    /// Appends a header without removing existing entries of the same
    /// name.
    pub fn append(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.entries.push((name.into(), value.into()));
    }

    /// Removes every header named `name`, returning the first removed
    /// value if any.
    pub fn remove(&mut self, name: &str) -> Option<String> {
        let mut first = None;
        self.entries.retain(|(k, v)| {
            if k.eq_ignore_ascii_case(name) {
                if first.is_none() {
                    first = Some(v.clone());
                }
                false
            } else {
                true
            }
        });
        first
    }

    /// Iterates over `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            inner: self.entries.iter(),
        }
    }

    /// Parses the header value as an integer, if present.
    ///
    /// Returns `None` when the header is absent **or** unparseable;
    /// callers that must distinguish should use [`HeaderMap::get`].
    pub fn get_int(&self, name: &str) -> Option<u64> {
        self.get(name).and_then(|v| v.trim().parse().ok())
    }

    /// Returns `true` if the `Connection` header requests close.
    pub fn connection_close(&self) -> bool {
        self.get(names::CONNECTION)
            .map(|v| v.split(',').any(|t| t.trim().eq_ignore_ascii_case("close")))
            .unwrap_or(false)
    }

    /// Returns `true` if `Transfer-Encoding: chunked` is declared.
    pub fn is_chunked(&self) -> bool {
        self.get(names::TRANSFER_ENCODING)
            .map(|v| {
                v.split(',')
                    .any(|t| t.trim().eq_ignore_ascii_case("chunked"))
            })
            .unwrap_or(false)
    }
}

/// Iterator over header `(name, value)` pairs, created by
/// [`HeaderMap::iter`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    inner: slice::Iter<'a, (String, String)>,
}

impl<'a> Iterator for Iter<'a> {
    type Item = (&'a str, &'a str);

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next().map(|(k, v)| (k.as_str(), v.as_str()))
    }
}

impl<'a> IntoIterator for &'a HeaderMap {
    type Item = (&'a str, &'a str);
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<N: Into<String>, V: Into<String>> FromIterator<(N, V)> for HeaderMap {
    fn from_iter<T: IntoIterator<Item = (N, V)>>(iter: T) -> Self {
        let mut map = HeaderMap::new();
        for (name, value) in iter {
            map.append(name, value);
        }
        map
    }
}

impl<N: Into<String>, V: Into<String>> Extend<(N, V)> for HeaderMap {
    fn extend<T: IntoIterator<Item = (N, V)>>(&mut self, iter: T) {
        for (name, value) in iter {
            self.append(name, value);
        }
    }
}

impl fmt::Display for HeaderMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, value) in self.iter() {
            writeln!(f, "{name}: {value}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_case_insensitive_get() {
        let mut h = HeaderMap::new();
        h.insert("Content-Type", "text/plain");
        assert_eq!(h.get("content-type"), Some("text/plain"));
        assert_eq!(h.get("CONTENT-TYPE"), Some("text/plain"));
        assert_eq!(h.get("missing"), None);
        assert!(h.contains("Content-type"));
    }

    #[test]
    fn insert_replaces_all_duplicates() {
        let mut h = HeaderMap::new();
        h.append("X-A", "1");
        h.append("x-a", "2");
        h.append("X-B", "3");
        h.insert("X-A", "9");
        assert_eq!(h.len(), 2);
        assert_eq!(h.get("x-a"), Some("9"));
        // position of first occurrence preserved
        let order: Vec<_> = h.iter().map(|(k, _)| k.to_string()).collect();
        assert_eq!(order, vec!["X-A", "X-B"]);
    }

    #[test]
    fn append_keeps_duplicates() {
        let mut h = HeaderMap::new();
        h.append("Set-Cookie", "a=1");
        h.append("Set-Cookie", "b=2");
        let all: Vec<_> = h.get_all("set-cookie").collect();
        assert_eq!(all, vec!["a=1", "b=2"]);
    }

    #[test]
    fn remove_returns_first_value() {
        let mut h = HeaderMap::new();
        h.append("X", "1");
        h.append("x", "2");
        assert_eq!(h.remove("X"), Some("1".to_string()));
        assert!(h.is_empty());
        assert_eq!(h.remove("X"), None);
    }

    #[test]
    fn get_int_parses() {
        let mut h = HeaderMap::new();
        h.insert("Content-Length", " 42 ");
        assert_eq!(h.get_int("content-length"), Some(42));
        h.insert("Content-Length", "nan");
        assert_eq!(h.get_int("content-length"), None);
    }

    #[test]
    fn connection_close_detection() {
        let mut h = HeaderMap::new();
        assert!(!h.connection_close());
        h.insert("Connection", "keep-alive");
        assert!(!h.connection_close());
        h.insert("Connection", "Close");
        assert!(h.connection_close());
        h.insert("Connection", "keep-alive, close");
        assert!(h.connection_close());
    }

    #[test]
    fn chunked_detection() {
        let mut h = HeaderMap::new();
        assert!(!h.is_chunked());
        h.insert("Transfer-Encoding", "gzip, chunked");
        assert!(h.is_chunked());
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut h: HeaderMap = vec![("a", "1"), ("b", "2")].into_iter().collect();
        h.extend(vec![("c", "3")]);
        assert_eq!(h.len(), 3);
        assert_eq!(h.get("c"), Some("3"));
    }

    #[test]
    fn display_format() {
        let mut h = HeaderMap::new();
        h.insert("A", "1");
        assert_eq!(h.to_string(), "A: 1\n");
    }
}

//! HTTP request and response message types.

use std::fmt;

use bytes::Bytes;

use crate::headers::{names, HeaderMap};
use crate::method::Method;
use crate::status::StatusCode;

/// The only HTTP version this crate speaks on the wire.
pub const HTTP_VERSION: &str = "HTTP/1.1";

/// An HTTP request.
///
/// # Examples
///
/// ```
/// use gremlin_http::{Method, Request};
///
/// let req = Request::builder(Method::Get, "/search?q=payments")
///     .header("Host", "catalog")
///     .request_id("test-123")
///     .build();
/// assert_eq!(req.path(), "/search");
/// assert_eq!(req.query(), Some("q=payments"));
/// assert_eq!(req.request_id(), Some("test-123"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    method: Method,
    target: String,
    headers: HeaderMap,
    body: Bytes,
}

impl Request {
    /// Starts building a request with the given method and target
    /// (path plus optional `?query`).
    pub fn builder(method: Method, target: impl Into<String>) -> RequestBuilder {
        RequestBuilder {
            request: Request {
                method,
                target: target.into(),
                headers: HeaderMap::new(),
                body: Bytes::new(),
            },
        }
    }

    /// Convenience constructor for a bodiless `GET` request.
    pub fn get(target: impl Into<String>) -> Request {
        Request::builder(Method::Get, target).build()
    }

    /// Convenience constructor for a `POST` request carrying `body`
    /// (`Content-Length` is set from it).
    pub fn post(target: impl Into<String>, body: impl Into<Bytes>) -> Request {
        Request::builder(Method::Post, target).body(body).build()
    }

    /// The request method.
    pub fn method(&self) -> &Method {
        &self.method
    }

    /// The full request target as it appears on the request line
    /// (path and query).
    pub fn target(&self) -> &str {
        &self.target
    }

    /// The path component of the target (everything before `?`).
    pub fn path(&self) -> &str {
        match self.target.split_once('?') {
            Some((path, _)) => path,
            None => &self.target,
        }
    }

    /// The query component of the target (everything after `?`), if
    /// present.
    pub fn query(&self) -> Option<&str> {
        self.target.split_once('?').map(|(_, q)| q)
    }

    /// The request headers.
    pub fn headers(&self) -> &HeaderMap {
        &self.headers
    }

    /// Mutable access to the request headers.
    pub fn headers_mut(&mut self) -> &mut HeaderMap {
        &mut self.headers
    }

    /// The request body.
    pub fn body(&self) -> &Bytes {
        &self.body
    }

    /// Replaces the body, updating `Content-Length`.
    pub fn set_body(&mut self, body: impl Into<Bytes>) {
        self.body = body.into();
        self.headers
            .insert(names::CONTENT_LENGTH, self.body.len().to_string());
    }

    /// The propagated Gremlin request ID
    /// (the [`X-Gremlin-ID`](names::REQUEST_ID) header), if present.
    pub fn request_id(&self) -> Option<&str> {
        self.headers.get(names::REQUEST_ID)
    }

    /// Sets the propagated Gremlin request ID.
    pub fn set_request_id(&mut self, id: impl Into<String>) {
        self.headers.insert(names::REQUEST_ID, id.into());
    }

    /// The propagated span ID (the
    /// [`X-Gremlin-Span`](names::SPAN_ID) header), if present.
    pub fn span_id(&self) -> Option<&str> {
        self.headers.get(names::SPAN_ID)
    }

    /// Sets the propagated span ID.
    pub fn set_span_id(&mut self, span: impl Into<String>) {
        self.headers.insert(names::SPAN_ID, span.into());
    }

    /// The parent span ID (the
    /// [`X-Gremlin-Parent`](names::PARENT_ID) header), if present.
    pub fn parent_id(&self) -> Option<&str> {
        self.headers.get(names::PARENT_ID)
    }

    /// Sets the parent span ID.
    pub fn set_parent_id(&mut self, parent: impl Into<String>) {
        self.headers.insert(names::PARENT_ID, parent.into());
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} ({} header(s), {} body byte(s))",
            self.method,
            self.target,
            self.headers.len(),
            self.body.len()
        )
    }
}

/// Incrementally configures a [`Request`]; created by
/// [`Request::builder`].
#[derive(Debug, Clone)]
pub struct RequestBuilder {
    request: Request,
}

impl RequestBuilder {
    /// Adds a header (appending, preserving duplicates).
    pub fn header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.request.headers.append(name, value);
        self
    }

    /// Sets the body and the matching `Content-Length` header.
    pub fn body(mut self, body: impl Into<Bytes>) -> Self {
        self.request.set_body(body);
        self
    }

    /// Sets the propagated Gremlin request ID header.
    pub fn request_id(mut self, id: impl Into<String>) -> Self {
        self.request.set_request_id(id);
        self
    }

    /// Finishes building the request.
    pub fn build(self) -> Request {
        self.request
    }
}

/// An HTTP response.
///
/// # Examples
///
/// ```
/// use gremlin_http::{Response, StatusCode};
///
/// let resp = Response::builder(StatusCode::OK)
///     .header("Content-Type", "application/json")
///     .body(r#"{"ok":true}"#)
///     .build();
/// assert!(resp.status().is_success());
/// assert_eq!(resp.body_str(), r#"{"ok":true}"#);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    status: StatusCode,
    reason: String,
    headers: HeaderMap,
    body: Bytes,
}

impl Response {
    /// Starts building a response with the given status code; the
    /// canonical reason phrase is filled in automatically.
    pub fn builder(status: StatusCode) -> ResponseBuilder {
        ResponseBuilder {
            response: Response {
                status,
                reason: status.canonical_reason().to_string(),
                headers: HeaderMap::new(),
                body: Bytes::new(),
            },
        }
    }

    /// Convenience constructor for a `200 OK` response with a text
    /// body.
    pub fn ok(body: impl Into<Bytes>) -> Response {
        Response::builder(StatusCode::OK).body(body).build()
    }

    /// Convenience constructor for an error response whose body is
    /// the reason phrase.
    pub fn error(status: StatusCode) -> Response {
        Response::builder(status)
            .body(status.canonical_reason())
            .build()
    }

    /// The response status code.
    pub fn status(&self) -> StatusCode {
        self.status
    }

    /// The reason phrase sent on the status line.
    pub fn reason(&self) -> &str {
        &self.reason
    }

    /// The response headers.
    pub fn headers(&self) -> &HeaderMap {
        &self.headers
    }

    /// Mutable access to the response headers.
    pub fn headers_mut(&mut self) -> &mut HeaderMap {
        &mut self.headers
    }

    /// The response body.
    pub fn body(&self) -> &Bytes {
        &self.body
    }

    /// The body interpreted as UTF-8, with invalid sequences replaced.
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Replaces the body, updating `Content-Length`.
    pub fn set_body(&mut self, body: impl Into<Bytes>) {
        self.body = body.into();
        self.headers
            .insert(names::CONTENT_LENGTH, self.body.len().to_string());
    }

    /// The request ID echoed on this response, if any.
    pub fn request_id(&self) -> Option<&str> {
        self.headers.get(names::REQUEST_ID)
    }

    /// The span ID echoed on this response, if any.
    pub fn span_id(&self) -> Option<&str> {
        self.headers.get(names::SPAN_ID)
    }
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} ({} header(s), {} body byte(s))",
            self.status,
            self.reason,
            self.headers.len(),
            self.body.len()
        )
    }
}

/// Incrementally configures a [`Response`]; created by
/// [`Response::builder`].
#[derive(Debug, Clone)]
pub struct ResponseBuilder {
    response: Response,
}

impl ResponseBuilder {
    /// Adds a header (appending, preserving duplicates).
    pub fn header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.response.headers.append(name, value);
        self
    }

    /// Overrides the reason phrase on the status line.
    pub fn reason(mut self, reason: impl Into<String>) -> Self {
        self.response.reason = reason.into();
        self
    }

    /// Sets the body and the matching `Content-Length` header.
    pub fn body(mut self, body: impl Into<Bytes>) -> Self {
        self.response.set_body(body);
        self
    }

    /// Echoes a request ID header on the response.
    pub fn request_id(mut self, id: impl Into<String>) -> Self {
        self.response.headers.insert(names::REQUEST_ID, id.into());
        self
    }

    /// Finishes building the response.
    pub fn build(self) -> Response {
        self.response
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_builder_round_trip() {
        let req = Request::builder(Method::Post, "/api/v1/items?limit=5")
            .header("Host", "svc-b")
            .body("hello")
            .request_id("test-7")
            .build();
        assert_eq!(*req.method(), Method::Post);
        assert_eq!(req.target(), "/api/v1/items?limit=5");
        assert_eq!(req.path(), "/api/v1/items");
        assert_eq!(req.query(), Some("limit=5"));
        assert_eq!(req.headers().get("host"), Some("svc-b"));
        assert_eq!(req.headers().get_int("content-length"), Some(5));
        assert_eq!(req.request_id(), Some("test-7"));
        assert_eq!(&req.body()[..], b"hello");
    }

    #[test]
    fn post_convenience_sets_body_and_length() {
        let req = Request::post("/operator/wave", "{\"a\":1}");
        assert_eq!(*req.method(), Method::Post);
        assert_eq!(req.path(), "/operator/wave");
        assert_eq!(&req.body()[..], b"{\"a\":1}");
        assert_eq!(req.headers().get_int("content-length"), Some(7));
    }

    #[test]
    fn request_without_query() {
        let req = Request::get("/plain");
        assert_eq!(req.path(), "/plain");
        assert_eq!(req.query(), None);
        assert!(req.request_id().is_none());
    }

    #[test]
    fn set_body_updates_content_length() {
        let mut req = Request::get("/");
        req.set_body("abcd");
        assert_eq!(req.headers().get_int("content-length"), Some(4));
        req.set_body("");
        assert_eq!(req.headers().get_int("content-length"), Some(0));
    }

    #[test]
    fn response_builder_round_trip() {
        let resp = Response::builder(StatusCode::SERVICE_UNAVAILABLE)
            .header("Retry-After", "1")
            .body("try later")
            .build();
        assert_eq!(resp.status(), StatusCode::SERVICE_UNAVAILABLE);
        assert_eq!(resp.reason(), "Service Unavailable");
        assert_eq!(resp.body_str(), "try later");
        assert!(resp.status().is_error());
    }

    #[test]
    fn response_convenience_constructors() {
        let ok = Response::ok("body");
        assert_eq!(ok.status(), StatusCode::OK);
        assert_eq!(ok.body_str(), "body");
        let err = Response::error(StatusCode::NOT_FOUND);
        assert_eq!(err.status(), StatusCode::NOT_FOUND);
        assert_eq!(err.body_str(), "Not Found");
    }

    #[test]
    fn custom_reason() {
        let resp = Response::builder(StatusCode::OK).reason("Fine").build();
        assert_eq!(resp.reason(), "Fine");
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!Request::get("/x").to_string().is_empty());
        assert!(!Response::ok("").to_string().is_empty());
    }
}

//! Tracking of live connections so servers can unblock them at
//! shutdown.
//!
//! Worker threads block in `read` while waiting for the next
//! keep-alive request; without intervention a shutdown would stall
//! until each connection's read timeout expires. A [`ConnTracker`]
//! keeps a clone of every live stream (clones share the file
//! descriptor) and shuts them all down when asked, releasing blocked
//! readers immediately.

use std::collections::HashMap;
use std::net::{Shutdown, TcpStream};

use parking_lot::Mutex;

/// Registry of live connections, keyed by an opaque token.
#[derive(Debug, Default)]
pub struct ConnTracker {
    next_token: Mutex<u64>,
    live: Mutex<HashMap<u64, TcpStream>>,
}

impl ConnTracker {
    /// Creates an empty tracker.
    pub fn new() -> ConnTracker {
        ConnTracker::default()
    }

    /// Registers `stream`, returning a token for deregistration.
    ///
    /// The tracker stores a clone of the stream; failures to clone
    /// are ignored (the connection simply won't be force-closed at
    /// shutdown).
    pub fn register(&self, stream: &TcpStream) -> u64 {
        let token = {
            let mut next = self.next_token.lock();
            *next += 1;
            *next
        };
        if let Ok(clone) = stream.try_clone() {
            self.live.lock().insert(token, clone);
        }
        token
    }

    /// Removes the connection registered under `token`.
    pub fn deregister(&self, token: u64) {
        self.live.lock().remove(&token);
    }

    /// Number of currently tracked connections.
    pub fn len(&self) -> usize {
        self.live.lock().len()
    }

    /// Returns `true` if no connections are tracked.
    pub fn is_empty(&self) -> bool {
        self.live.lock().is_empty()
    }

    /// Shuts down every tracked connection, releasing any thread
    /// blocked reading from it.
    pub fn shutdown_all(&self) {
        let mut live = self.live.lock();
        for (_, stream) in live.drain() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::TcpListener;
    use std::thread;
    use std::time::{Duration, Instant};

    #[test]
    fn register_deregister() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();

        let tracker = ConnTracker::new();
        assert!(tracker.is_empty());
        let token = tracker.register(&server_side);
        assert_eq!(tracker.len(), 1);
        tracker.deregister(token);
        assert!(tracker.is_empty());
    }

    #[test]
    fn shutdown_all_unblocks_reader() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();

        let tracker = ConnTracker::new();
        tracker.register(&server_side);

        let reader = thread::spawn(move || {
            let mut stream = server_side;
            stream
                .set_read_timeout(Some(Duration::from_secs(30)))
                .unwrap();
            let mut buf = [0u8; 1];
            let started = Instant::now();
            let _ = stream.read(&mut buf);
            started.elapsed()
        });

        thread::sleep(Duration::from_millis(50));
        tracker.shutdown_all();
        let blocked_for = reader.join().unwrap();
        assert!(
            blocked_for < Duration::from_secs(5),
            "reader blocked for {blocked_for:?}"
        );
        assert!(tracker.is_empty());
    }
}

//! A small fixed-size thread pool used by the HTTP server and by the
//! Gremlin agent's data path.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;

use parking_lot::Mutex;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads executing submitted closures.
///
/// Jobs that panic are contained: the worker thread survives and keeps
/// draining the queue. Dropping the pool signals shutdown and joins
/// all workers after in-flight jobs complete.
///
/// # Examples
///
/// ```
/// use gremlin_http::ThreadPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// let pool = ThreadPool::new(4, "example");
/// let counter = Arc::new(AtomicUsize::new(0));
/// for _ in 0..16 {
///     let counter = Arc::clone(&counter);
///     pool.execute(move || {
///         counter.fetch_add(1, Ordering::SeqCst);
///     });
/// }
/// drop(pool); // joins workers
/// assert_eq!(counter.load(Ordering::SeqCst), 16);
/// ```
#[derive(Debug)]
pub struct ThreadPool {
    sender: Option<mpsc::Sender<Job>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns `size` worker threads named `{name}-{index}`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(size: usize, name: &str) -> ThreadPool {
        assert!(size > 0, "thread pool size must be non-zero");
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let mut workers = Vec::with_capacity(size);
        for index in 0..size {
            let receiver = Arc::clone(&receiver);
            let handle = thread::Builder::new()
                .name(format!("{name}-{index}"))
                .spawn(move || loop {
                    let job = {
                        let guard = receiver.lock();
                        guard.recv()
                    };
                    match job {
                        Ok(job) => {
                            // A panicking job must not take the worker
                            // down with it.
                            let _ = catch_unwind(AssertUnwindSafe(job));
                        }
                        Err(_) => break,
                    }
                })
                .expect("failed to spawn worker thread");
            workers.push(handle);
        }
        ThreadPool {
            sender: Some(sender),
            workers,
        }
    }

    /// Submits a job for execution on some worker thread.
    ///
    /// Jobs submitted after the pool has begun shutting down are
    /// silently dropped.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) {
        if let Some(sender) = &self.sender {
            let _ = sender.send(Box::new(job));
        }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel makes workers exit once drained.
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn executes_all_jobs() {
        let pool = ThreadPool::new(3, "t");
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool);
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn survives_panicking_jobs() {
        let pool = ThreadPool::new(1, "t");
        let counter = Arc::new(AtomicUsize::new(0));
        pool.execute(|| panic!("boom"));
        let c = Arc::clone(&counter);
        pool.execute(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        drop(pool);
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn size_reports_worker_count() {
        let pool = ThreadPool::new(5, "t");
        assert_eq!(pool.size(), 5);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_size_panics() {
        let _ = ThreadPool::new(0, "t");
    }

    #[test]
    fn jobs_run_concurrently() {
        let pool = ThreadPool::new(4, "t");
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        for _ in 0..4 {
            let running = Arc::clone(&running);
            let peak = Arc::clone(&peak);
            pool.execute(move || {
                let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                thread::sleep(Duration::from_millis(50));
                running.fetch_sub(1, Ordering::SeqCst);
            });
        }
        drop(pool);
        assert!(peak.load(Ordering::SeqCst) >= 2);
    }
}

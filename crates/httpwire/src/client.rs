//! A blocking HTTP/1.1 client with connect/read timeouts and
//! keep-alive connection reuse.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use parking_lot::Mutex;

use crate::codec::{read_response_with_limits, write_request, Limits};
use crate::error::HttpError;
use crate::headers::names;
use crate::message::{Request, Response};
use crate::Result;

/// Configuration for [`HttpClient`].
///
/// The three timeout knobs mirror the failure modes the Gremlin paper
/// manipulates (§3.1): connection-establishment failures, delayed
/// responses, and hangs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Deadline for TCP connection establishment. `None` blocks until
    /// the OS gives up.
    pub connect_timeout: Option<Duration>,
    /// Deadline for reading a full response once the request is sent.
    pub read_timeout: Option<Duration>,
    /// Deadline for writing the request.
    pub write_timeout: Option<Duration>,
    /// Whether to pool idle connections for reuse (keep-alive).
    pub keep_alive: bool,
    /// Maximum idle keep-alive connections pooled per destination
    /// address. When the pool is full, the *oldest* idle connection is
    /// evicted to make room — it is the most likely to have been
    /// closed by the peer's idle timeout. `0` disables pooling
    /// entirely (every connection closes after its response).
    ///
    /// Size this to the caller's peak concurrency *per host*: a
    /// client shared by N threads hitting the same address wants at
    /// least N pooled slots or the excess connections are torn down
    /// after every response. The default of 8 matches the control
    /// plane's default fan-out width
    /// (`FailureOrchestrator::DEFAULT_MAX_FANOUT`), so concurrent
    /// rule pushes through one client reuse warm connections instead
    /// of reconnecting per push.
    pub max_idle_per_host: usize,
    /// Message size limits while parsing responses.
    pub limits: Limits,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Some(Duration::from_secs(10)),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            keep_alive: true,
            max_idle_per_host: 8,
            limits: Limits::default(),
        }
    }
}

/// A blocking HTTP/1.1 client.
///
/// The client keeps a small pool of idle keep-alive connections per
/// destination address. It is `Send + Sync`; clones share nothing (a
/// fresh pool per clone) but are cheap to create.
///
/// # Examples
///
/// ```no_run
/// use gremlin_http::{HttpClient, Request};
///
/// # fn main() -> gremlin_http::Result<()> {
/// let client = HttpClient::new();
/// let response = client.send("127.0.0.1:8080", Request::get("/health"))?;
/// assert!(response.status().is_success());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct HttpClient {
    config: ClientConfig,
    idle: Mutex<HashMap<String, Vec<TcpStream>>>,
}

impl Default for HttpClient {
    fn default() -> Self {
        HttpClient::new()
    }
}

impl HttpClient {
    /// Creates a client with [`ClientConfig::default`].
    pub fn new() -> HttpClient {
        HttpClient::with_config(ClientConfig::default())
    }

    /// Creates a client with explicit configuration.
    pub fn with_config(config: ClientConfig) -> HttpClient {
        HttpClient {
            config,
            idle: Mutex::new(HashMap::new()),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ClientConfig {
        &self.config
    }

    /// Sends `request` to `addr` and waits for the response.
    ///
    /// A `Host` header is added when missing. Idle pooled connections
    /// are reused when keep-alive is enabled; a send over a stale
    /// pooled connection is retried once on a fresh connection.
    ///
    /// # Errors
    ///
    /// * [`HttpError::Timeout`] — connect, write or read deadline hit.
    /// * [`HttpError::ConnectionClosed`] / I/O errors — the peer went
    ///   away mid-exchange.
    /// * Codec errors for malformed responses.
    pub fn send(&self, addr: impl ToSocketAddrs + ToString, request: Request) -> Result<Response> {
        let addr_text = addr.to_string();
        let mut request = request;
        if !request.headers().contains(names::HOST) {
            request.headers_mut().insert(names::HOST, addr_text.clone());
        }

        // First try a pooled connection, falling back once to a fresh
        // connection if the pooled one turned out to be dead.
        if let Some(stream) = self.take_idle(&addr_text) {
            match self.exchange(stream, &request, &addr_text) {
                Ok(response) => return Ok(response),
                Err(err) if err.is_connection_error() => { /* retry on fresh */ }
                Err(err) => return Err(err),
            }
        }
        let stream = self.connect(&addr_text)?;
        self.exchange(stream, &request, &addr_text)
    }

    /// Establishes a raw TCP connection to `addr`, honoring the
    /// connect timeout.
    ///
    /// # Errors
    ///
    /// Returns [`HttpError::Timeout`] on connect-deadline expiry or an
    /// I/O error if the peer refuses the connection.
    pub fn connect(&self, addr: &str) -> Result<TcpStream> {
        let socket_addr: SocketAddr = resolve(addr)?;
        let stream = match self.config.connect_timeout {
            Some(timeout) => TcpStream::connect_timeout(&socket_addr, timeout)?,
            None => TcpStream::connect(socket_addr)?,
        };
        stream.set_read_timeout(self.config.read_timeout)?;
        stream.set_write_timeout(self.config.write_timeout)?;
        stream.set_nodelay(true)?;
        Ok(stream)
    }

    fn exchange(&self, stream: TcpStream, request: &Request, addr: &str) -> Result<Response> {
        let mut writer = BufWriter::new(stream.try_clone()?);
        write_request(&mut writer, request)?;
        drop(writer);
        let mut reader = BufReader::new(stream.try_clone()?);
        let response = read_response_with_limits(&mut reader, self.config.limits)?;
        let reusable = self.config.keep_alive
            && !response.headers().connection_close()
            && !request.headers().connection_close();
        if reusable {
            self.put_idle(addr, stream);
        }
        Ok(response)
    }

    fn take_idle(&self, addr: &str) -> Option<TcpStream> {
        self.idle.lock().get_mut(addr)?.pop()
    }

    fn put_idle(&self, addr: &str, stream: TcpStream) {
        if self.config.max_idle_per_host == 0 {
            return;
        }
        let mut idle = self.idle.lock();
        let bucket = idle.entry(addr.to_string()).or_default();
        if bucket.len() >= self.config.max_idle_per_host {
            // `take_idle` pops from the back, so index 0 is the
            // longest-idle connection — evict it.
            bucket.remove(0);
        }
        bucket.push(stream);
    }

    /// Drops all pooled idle connections.
    pub fn clear_pool(&self) {
        self.idle.lock().clear();
    }

    /// Number of idle pooled connections across all hosts (for tests
    /// and diagnostics).
    pub fn idle_connections(&self) -> usize {
        self.idle.lock().values().map(Vec::len).sum()
    }
}

fn resolve(addr: &str) -> Result<SocketAddr> {
    addr.to_socket_addrs()?
        .next()
        .ok_or_else(|| HttpError::Io(std::io::Error::other(format!("cannot resolve {addr}"))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{read_request, write_response};
    use crate::message::Response;
    use crate::status::StatusCode;
    use std::net::TcpListener;
    use std::thread;

    /// Spawns a one-shot server handling `n` connections sequentially.
    fn one_shot_server<F>(n: usize, handler: F) -> SocketAddr
    where
        F: Fn(Request) -> Response + Send + 'static,
    {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        thread::spawn(move || {
            for _ in 0..n {
                let (stream, _) = listener.accept().unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                loop {
                    let request = match read_request(&mut reader) {
                        Ok(r) => r,
                        Err(_) => break,
                    };
                    let close = request.headers().connection_close();
                    let response = handler(request);
                    let mut writer = BufWriter::new(stream.try_clone().unwrap());
                    write_response(&mut writer, &response).unwrap();
                    if close {
                        break;
                    }
                }
            }
        });
        addr
    }

    #[test]
    fn send_receives_response() {
        let addr = one_shot_server(1, |req| Response::ok(format!("path={}", req.path())));
        let client = HttpClient::new();
        let resp = client.send(addr, Request::get("/abc")).unwrap();
        assert_eq!(resp.status(), StatusCode::OK);
        assert_eq!(resp.body_str(), "path=/abc");
    }

    #[test]
    fn host_header_is_added() {
        let addr = one_shot_server(1, |req| {
            Response::ok(req.headers().get("host").unwrap_or("").to_string())
        });
        let client = HttpClient::new();
        let resp = client.send(addr, Request::get("/")).unwrap();
        assert_eq!(resp.body_str(), addr.to_string());
    }

    #[test]
    fn keep_alive_reuses_connection() {
        let addr = one_shot_server(1, |_| Response::ok("hi"));
        let client = HttpClient::new();
        client.send(addr, Request::get("/1")).unwrap();
        assert_eq!(client.idle_connections(), 1);
        // Second request must reuse the single accepted connection —
        // the server only accepts once.
        let resp = client.send(addr, Request::get("/2")).unwrap();
        assert_eq!(resp.body_str(), "hi");
        assert_eq!(client.idle_connections(), 1);
    }

    #[test]
    fn connection_close_is_not_pooled() {
        let addr = one_shot_server(2, |_| {
            Response::builder(StatusCode::OK)
                .header("Connection", "close")
                .body("bye")
                .build()
        });
        let client = HttpClient::new();
        client.send(addr, Request::get("/")).unwrap();
        assert_eq!(client.idle_connections(), 0);
    }

    #[test]
    fn stale_pooled_connection_is_retried() {
        // Server handles exactly two connections, one request each,
        // closing after each response — so the pooled connection from
        // request 1 is dead by request 2.
        let addr = one_shot_server(2, |_| Response::ok("x"));
        let config = ClientConfig {
            read_timeout: Some(Duration::from_secs(2)),
            ..ClientConfig::default()
        };
        let client = HttpClient::with_config(config);
        client.send(addr, Request::get("/1")).unwrap();
        // Give the server thread a moment to close its end.
        thread::sleep(Duration::from_millis(50));
        let resp = client.send(addr, Request::get("/2")).unwrap();
        assert_eq!(resp.body_str(), "x");
    }

    #[test]
    fn read_timeout_fires() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        thread::spawn(move || {
            let (_stream, _) = listener.accept().unwrap();
            thread::sleep(Duration::from_secs(5));
        });
        let config = ClientConfig {
            read_timeout: Some(Duration::from_millis(100)),
            ..ClientConfig::default()
        };
        let client = HttpClient::with_config(config);
        let err = client.send(addr, Request::get("/slow")).unwrap_err();
        assert!(err.is_timeout(), "expected timeout, got {err}");
    }

    #[test]
    fn connect_refused_is_connection_error() {
        // Bind then drop to find a port that refuses connections.
        let addr = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let client = HttpClient::new();
        let err = client.send(addr, Request::get("/")).unwrap_err();
        assert!(err.is_connection_error(), "got {err}");
    }

    #[test]
    fn idle_pool_is_capped_per_host() {
        // A server happily holding many keep-alive connections.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        thread::spawn(move || {
            let mut workers = Vec::new();
            while let Ok((stream, _)) = listener.accept() {
                workers.push(thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    while read_request(&mut reader).is_ok() {
                        let mut writer = BufWriter::new(stream.try_clone().unwrap());
                        let _ = write_response(&mut writer, &Response::ok("x"));
                    }
                }));
            }
        });
        // Drive 12 concurrent exchanges through one shared client so
        // 12 distinct connections open, then all try to park.
        let client = Arc::new(HttpClient::new());
        let handles: Vec<_> = (0..12)
            .map(|_| {
                let client = Arc::clone(&client);
                thread::spawn(move || {
                    client.send(addr, Request::get("/")).unwrap();
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert!(
            client.idle_connections() <= 8,
            "pool must cap idle connections, got {}",
            client.idle_connections()
        );
    }

    use std::sync::Arc;

    #[test]
    fn zero_max_idle_disables_pooling() {
        let addr = one_shot_server(1, |_| Response::ok("hi"));
        let client = HttpClient::with_config(ClientConfig {
            max_idle_per_host: 0,
            ..ClientConfig::default()
        });
        client.send(addr, Request::get("/")).unwrap();
        assert_eq!(client.idle_connections(), 0);
    }

    #[test]
    fn pool_evicts_oldest_idle_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let accept = thread::spawn(move || {
            let mut held = Vec::new();
            for _ in 0..3 {
                held.push(listener.accept().unwrap().0);
            }
            held
        });
        let client = HttpClient::with_config(ClientConfig {
            max_idle_per_host: 2,
            ..ClientConfig::default()
        });
        let key = addr.to_string();
        let streams: Vec<TcpStream> = (0..3).map(|_| client.connect(&key).unwrap()).collect();
        let ports: Vec<u16> = streams
            .iter()
            .map(|s| s.local_addr().unwrap().port())
            .collect();
        for stream in streams {
            client.put_idle(&key, stream);
        }
        let _held = accept.join().unwrap();
        assert_eq!(client.idle_connections(), 2);
        let first = client.take_idle(&key).unwrap();
        let second = client.take_idle(&key).unwrap();
        assert!(client.take_idle(&key).is_none());
        // The oldest (first-parked) connection was evicted; reuse
        // prefers the most recently parked.
        assert_eq!(first.local_addr().unwrap().port(), ports[2]);
        assert_eq!(second.local_addr().unwrap().port(), ports[1]);
    }

    #[test]
    fn clear_pool_drops_connections() {
        let addr = one_shot_server(1, |_| Response::ok("hi"));
        let client = HttpClient::new();
        client.send(addr, Request::get("/")).unwrap();
        assert_eq!(client.idle_connections(), 1);
        client.clear_pool();
        assert_eq!(client.idle_connections(), 0);
    }
}

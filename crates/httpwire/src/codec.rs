//! Wire-level parsing and serialization of HTTP/1.1 messages.
//!
//! The codec is deliberately small: it supports `Content-Length` and
//! `Transfer-Encoding: chunked` bodies, enforces configurable head and
//! body size limits, and works over any blocking [`std::io::Read`]/[`Write`]
//! pair. This is the entire protocol surface the Gremlin data plane
//! needs to proxy microservice API calls.

use std::io::{BufRead, Write};

use bytes::Bytes;

use crate::error::HttpError;
use crate::headers::HeaderMap;
use crate::message::{Request, Response, HTTP_VERSION};
use crate::method::Method;
use crate::status::StatusCode;
use crate::Result;

/// Size limits applied while reading messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Maximum size of the request/status line plus headers, in bytes.
    pub max_head_bytes: usize,
    /// Maximum body size, in bytes.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: 64 * 1024,
            max_body_bytes: 16 * 1024 * 1024,
        }
    }
}

/// Reads one HTTP request from `reader` using default [`Limits`].
///
/// # Errors
///
/// Returns [`HttpError::ConnectionClosed`] if the stream ends before a
/// full message, or a protocol-specific variant on malformed input.
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Request> {
    read_request_with_limits(reader, Limits::default())
}

/// Reads one HTTP request from `reader` with explicit limits.
///
/// # Errors
///
/// See [`read_request`]; additionally returns
/// [`HttpError::HeadTooLarge`] / [`HttpError::BodyTooLarge`] when the
/// limits are exceeded.
pub fn read_request_with_limits<R: BufRead>(reader: &mut R, limits: Limits) -> Result<Request> {
    let head = read_head(reader, limits.max_head_bytes)?;
    let mut lines = head.lines();
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::InvalidRequestLine(String::new()))?;
    let (method, target, version) = parse_request_line(request_line)?;
    if version != HTTP_VERSION && version != "HTTP/1.0" {
        return Err(HttpError::UnsupportedVersion(version.to_string()));
    }
    let headers = parse_headers(lines)?;
    let body = read_body(reader, &headers, limits)?;
    let mut builder = Request::builder(method, target);
    for (name, value) in headers.iter() {
        builder = builder.header(name, value);
    }
    let mut request = builder.build();
    if !body.is_empty() || request.headers().contains("content-length") {
        // set_body normalizes Content-Length to the actual body size.
        request.set_body(body);
    }
    Ok(request)
}

/// Reads one HTTP response from `reader` using default [`Limits`].
///
/// # Errors
///
/// Returns [`HttpError::ConnectionClosed`] if the stream ends before a
/// full message, or a protocol-specific variant on malformed input.
pub fn read_response<R: BufRead>(reader: &mut R) -> Result<Response> {
    read_response_with_limits(reader, Limits::default())
}

/// Reads one HTTP response from `reader` with explicit limits.
///
/// # Errors
///
/// See [`read_response`]; additionally returns
/// [`HttpError::HeadTooLarge`] / [`HttpError::BodyTooLarge`] when the
/// limits are exceeded.
pub fn read_response_with_limits<R: BufRead>(reader: &mut R, limits: Limits) -> Result<Response> {
    let head = read_head(reader, limits.max_head_bytes)?;
    let mut lines = head.lines();
    let status_line = lines
        .next()
        .ok_or_else(|| HttpError::InvalidStatusLine(String::new()))?;
    let (status, reason) = parse_status_line(status_line)?;
    let headers = parse_headers(lines)?;
    // HEAD responses and 1xx/204/304 have no body by definition, but
    // our internal servers always frame with Content-Length, so only
    // the generic paths are needed here.
    let body = if headers.contains("content-length") || headers.is_chunked() {
        read_body(reader, &headers, limits)?
    } else if status == crate::StatusCode::NO_CONTENT
        || status == crate::StatusCode::NOT_MODIFIED
        || status.is_informational()
    {
        Bytes::new()
    } else {
        read_response_body(reader, &headers, limits)?
    };
    let mut builder = Response::builder(status).reason(reason);
    for (name, value) in headers.iter() {
        builder = builder.header(name, value);
    }
    let mut response = builder.build();
    response.set_body(body);
    Ok(response)
}

/// Reads only the status line and headers of a response, leaving the
/// body unread on `reader`.
///
/// This is the entry point for consuming streamed (chunked) responses
/// incrementally: read the head, check `headers().is_chunked()`, then
/// drain the body with a [`ChunkReader`].
///
/// # Errors
///
/// Returns [`HttpError::ConnectionClosed`] if the stream ends before a
/// full head, or a protocol-specific variant on malformed input.
pub fn read_response_head<R: BufRead>(reader: &mut R) -> Result<Response> {
    let head = read_head(reader, Limits::default().max_head_bytes)?;
    let mut lines = head.lines();
    let status_line = lines
        .next()
        .ok_or_else(|| HttpError::InvalidStatusLine(String::new()))?;
    let (status, reason) = parse_status_line(status_line)?;
    let headers = parse_headers(lines)?;
    let mut builder = Response::builder(status).reason(reason);
    for (name, value) in headers.iter() {
        builder = builder.header(name, value);
    }
    Ok(builder.build())
}

/// Incrementally reads the chunks of a `Transfer-Encoding: chunked`
/// body, one [`next_chunk`](ChunkReader::next_chunk) call per chunk.
///
/// Unlike the buffered body readers this never waits for the whole
/// body — each chunk is returned as soon as the peer flushes it, which
/// is what a live event tail needs.
#[derive(Debug)]
pub struct ChunkReader<R: BufRead> {
    reader: R,
    done: bool,
}

impl<R: BufRead> ChunkReader<R> {
    /// Wraps `reader`, positioned at the first chunk-size line (i.e.
    /// immediately after [`read_response_head`]).
    pub fn new(reader: R) -> ChunkReader<R> {
        ChunkReader {
            reader,
            done: false,
        }
    }

    /// Reads one chunk; returns `Ok(None)` once the terminal chunk
    /// (and any trailers) have been consumed.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors and malformed chunk framing. A closed
    /// connection before the terminal chunk surfaces as
    /// [`HttpError::ConnectionClosed`] — for a live tail that is the
    /// normal way the stream ends.
    pub fn next_chunk(&mut self) -> Result<Option<Vec<u8>>> {
        if self.done {
            return Ok(None);
        }
        let line = read_line(&mut self.reader)?;
        let size_text = line.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_text, 16)
            .map_err(|_| HttpError::InvalidChunkSize(line.clone()))?;
        if size == 0 {
            loop {
                let trailer = read_line(&mut self.reader)?;
                if trailer.is_empty() {
                    break;
                }
            }
            self.done = true;
            return Ok(None);
        }
        let mut chunk = vec![0u8; size];
        self.reader.read_exact(&mut chunk)?;
        let mut crlf = [0u8; 2];
        self.reader.read_exact(&mut crlf)?;
        if &crlf != b"\r\n" {
            return Err(HttpError::InvalidChunkSize(
                "missing chunk crlf".to_string(),
            ));
        }
        Ok(Some(chunk))
    }
}

/// Serializes `request` to `writer` as HTTP/1.1.
///
/// The body is written with an explicit `Content-Length`; any
/// `Transfer-Encoding` header is dropped because the body is already
/// fully buffered.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_request<W: Write>(writer: &mut W, request: &Request) -> Result<()> {
    let mut head = String::with_capacity(128);
    head.push_str(request.method().as_str());
    head.push(' ');
    head.push_str(if request.target().is_empty() {
        "/"
    } else {
        request.target()
    });
    head.push(' ');
    head.push_str(HTTP_VERSION);
    head.push_str("\r\n");
    write_headers(&mut head, request.headers(), request.body().len());
    head.push_str("\r\n");
    writer.write_all(head.as_bytes())?;
    writer.write_all(request.body())?;
    writer.flush()?;
    Ok(())
}

/// Serializes `response` to `writer` as HTTP/1.1.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_response<W: Write>(writer: &mut W, response: &Response) -> Result<()> {
    let mut head = String::with_capacity(128);
    head.push_str(HTTP_VERSION);
    head.push(' ');
    head.push_str(&response.status().to_string());
    head.push(' ');
    head.push_str(response.reason());
    head.push_str("\r\n");
    write_headers(&mut head, response.headers(), response.body().len());
    head.push_str("\r\n");
    writer.write_all(head.as_bytes())?;
    writer.write_all(response.body())?;
    writer.flush()?;
    Ok(())
}

fn write_headers(head: &mut String, headers: &HeaderMap, body_len: usize) {
    let mut wrote_content_length = false;
    for (name, value) in headers.iter() {
        if name.eq_ignore_ascii_case("transfer-encoding") {
            continue;
        }
        if name.eq_ignore_ascii_case("content-length") {
            if wrote_content_length {
                continue;
            }
            wrote_content_length = true;
            head.push_str("Content-Length: ");
            head.push_str(&body_len.to_string());
            head.push_str("\r\n");
            continue;
        }
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    if !wrote_content_length {
        head.push_str("Content-Length: ");
        head.push_str(&body_len.to_string());
        head.push_str("\r\n");
    }
}

/// Reads bytes up to and including the blank line terminating the
/// message head, returning the head without the final blank line.
fn read_head<R: BufRead>(reader: &mut R, limit: usize) -> Result<String> {
    let mut head: Vec<u8> = Vec::with_capacity(256);
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            if head.is_empty() {
                return Err(HttpError::ConnectionClosed);
            }
            return Err(HttpError::ConnectionClosed);
        }
        // Look for terminator across the already-consumed tail plus
        // the new buffer.
        let mut consumed = 0;
        let mut done = false;
        for &byte in available {
            head.push(byte);
            consumed += 1;
            if head.len() > limit {
                return Err(HttpError::HeadTooLarge { limit });
            }
            if head.ends_with(b"\r\n\r\n") {
                done = true;
                break;
            }
            // Tolerate bare-LF clients.
            if head.ends_with(b"\n\n") {
                done = true;
                break;
            }
        }
        reader.consume(consumed);
        if done {
            break;
        }
    }
    // Strip the trailing blank line.
    while head.ends_with(b"\n") || head.ends_with(b"\r") {
        head.pop();
    }
    String::from_utf8(head).map_err(|_| HttpError::InvalidHeader("non-utf8 head".to_string()))
}

fn parse_request_line(line: &str) -> Result<(Method, String, String)> {
    let mut parts = line.split_ascii_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::InvalidRequestLine(line.to_string()))?;
    let target = parts
        .next()
        .ok_or_else(|| HttpError::InvalidRequestLine(line.to_string()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::InvalidRequestLine(line.to_string()))?;
    if parts.next().is_some() {
        return Err(HttpError::InvalidRequestLine(line.to_string()));
    }
    let method: Method = method
        .parse()
        .map_err(|_| HttpError::InvalidRequestLine(line.to_string()))?;
    Ok((method, target.to_string(), version.to_string()))
}

fn parse_status_line(line: &str) -> Result<(StatusCode, String)> {
    let rest = line
        .strip_prefix("HTTP/1.1 ")
        .or_else(|| line.strip_prefix("HTTP/1.0 "))
        .ok_or_else(|| HttpError::InvalidStatusLine(line.to_string()))?;
    let (code_text, reason) = match rest.split_once(' ') {
        Some((code, reason)) => (code, reason),
        None => (rest, ""),
    };
    let code: u16 = code_text
        .parse()
        .map_err(|_| HttpError::InvalidStatusLine(line.to_string()))?;
    let status = StatusCode::new(code)?;
    Ok((status, reason.to_string()))
}

fn parse_headers<'a, I: Iterator<Item = &'a str>>(lines: I) -> Result<HeaderMap> {
    let mut headers = HeaderMap::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::InvalidHeader(line.to_string()))?;
        let name = name.trim();
        if name.is_empty() || !name.bytes().all(crate::method::is_token_byte) {
            return Err(HttpError::InvalidHeader(line.to_string()));
        }
        headers.append(name, value.trim());
    }
    Ok(headers)
}

fn read_body<R: BufRead>(reader: &mut R, headers: &HeaderMap, limits: Limits) -> Result<Bytes> {
    read_body_impl(reader, headers, limits, false)
}

/// Response bodies additionally support the RFC 7230 §3.3.3 fallback:
/// with neither `Content-Length` nor chunked framing, the body runs
/// until the peer closes the connection.
fn read_response_body<R: BufRead>(
    reader: &mut R,
    headers: &HeaderMap,
    limits: Limits,
) -> Result<Bytes> {
    read_body_impl(reader, headers, limits, true)
}

fn read_body_impl<R: BufRead>(
    reader: &mut R,
    headers: &HeaderMap,
    limits: Limits,
    until_close_fallback: bool,
) -> Result<Bytes> {
    if headers.is_chunked() {
        return read_chunked_body(reader, limits.max_body_bytes);
    }
    match headers.get("content-length") {
        Some(value) => {
            let len: usize = value
                .trim()
                .parse()
                .map_err(|_| HttpError::InvalidContentLength(value.to_string()))?;
            if len > limits.max_body_bytes {
                return Err(HttpError::BodyTooLarge {
                    limit: limits.max_body_bytes,
                });
            }
            let mut body = vec![0u8; len];
            reader.read_exact(&mut body)?;
            Ok(Bytes::from(body))
        }
        None if until_close_fallback => {
            // Read until the peer closes, bounded by the body limit.
            let mut body = Vec::new();
            let mut chunk = [0u8; 8192];
            loop {
                match std::io::Read::read(reader, &mut chunk) {
                    Ok(0) => break,
                    Ok(n) => {
                        if body.len() + n > limits.max_body_bytes {
                            return Err(HttpError::BodyTooLarge {
                                limit: limits.max_body_bytes,
                            });
                        }
                        body.extend_from_slice(&chunk[..n]);
                    }
                    Err(err) => return Err(err.into()),
                }
            }
            Ok(Bytes::from(body))
        }
        None => Ok(Bytes::new()),
    }
}

fn read_chunked_body<R: BufRead>(reader: &mut R, limit: usize) -> Result<Bytes> {
    let mut body: Vec<u8> = Vec::new();
    loop {
        let line = read_line(reader)?;
        let size_text = line.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_text, 16)
            .map_err(|_| HttpError::InvalidChunkSize(line.clone()))?;
        if size == 0 {
            // Consume trailer lines until the final blank line.
            loop {
                let trailer = read_line(reader)?;
                if trailer.is_empty() {
                    break;
                }
            }
            return Ok(Bytes::from(body));
        }
        if body.len() + size > limit {
            return Err(HttpError::BodyTooLarge { limit });
        }
        let mut chunk = vec![0u8; size];
        reader.read_exact(&mut chunk)?;
        body.extend_from_slice(&chunk);
        // Chunk data is followed by CRLF.
        let mut crlf = [0u8; 2];
        reader.read_exact(&mut crlf)?;
        if &crlf != b"\r\n" {
            return Err(HttpError::InvalidChunkSize(
                "missing chunk crlf".to_string(),
            ));
        }
    }
}

fn read_line<R: BufRead>(reader: &mut R) -> Result<String> {
    let mut line = String::new();
    let n = reader.read_line(&mut line)?;
    if n == 0 {
        return Err(HttpError::ConnectionClosed);
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse_req(raw: &[u8]) -> Result<Request> {
        read_request(&mut BufReader::new(raw))
    }

    fn parse_resp(raw: &[u8]) -> Result<Response> {
        read_response(&mut BufReader::new(raw))
    }

    #[test]
    fn parse_simple_get() {
        let req = parse_req(b"GET /a/b?c=d HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(*req.method(), Method::Get);
        assert_eq!(req.target(), "/a/b?c=d");
        assert_eq!(req.headers().get("host"), Some("x"));
        assert!(req.body().is_empty());
    }

    #[test]
    fn parse_post_with_body() {
        let req = parse_req(b"POST /p HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        assert_eq!(&req.body()[..], b"hello");
    }

    #[test]
    fn parse_bare_lf_head() {
        let req = parse_req(b"GET / HTTP/1.1\nHost: y\n\n").unwrap();
        assert_eq!(req.headers().get("host"), Some("y"));
    }

    #[test]
    fn parse_http10_accepted() {
        let req = parse_req(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert_eq!(req.path(), "/");
    }

    #[test]
    fn parse_rejects_bad_version() {
        assert!(matches!(
            parse_req(b"GET / HTTP/2\r\n\r\n"),
            Err(HttpError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn parse_rejects_garbage_request_line() {
        assert!(parse_req(b"GARBAGE\r\n\r\n").is_err());
        assert!(parse_req(b"GET /\r\n\r\n").is_err());
        assert!(parse_req(b"GET / HTTP/1.1 extra\r\n\r\n").is_err());
    }

    #[test]
    fn parse_rejects_bad_header() {
        assert!(matches!(
            parse_req(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(HttpError::InvalidHeader(_))
        ));
    }

    #[test]
    fn parse_rejects_bad_content_length() {
        assert!(matches!(
            parse_req(b"GET / HTTP/1.1\r\nContent-Length: zz\r\n\r\n"),
            Err(HttpError::InvalidContentLength(_))
        ));
    }

    #[test]
    fn parse_enforces_head_limit() {
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(100));
        let err = read_request_with_limits(
            &mut BufReader::new(raw.as_bytes()),
            Limits {
                max_head_bytes: 50,
                max_body_bytes: 100,
            },
        )
        .unwrap_err();
        assert!(matches!(err, HttpError::HeadTooLarge { limit: 50 }));
    }

    #[test]
    fn parse_enforces_body_limit() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 1000\r\n\r\n";
        let err = read_request_with_limits(
            &mut BufReader::new(&raw[..]),
            Limits {
                max_head_bytes: 1024,
                max_body_bytes: 10,
            },
        )
        .unwrap_err();
        assert!(matches!(err, HttpError::BodyTooLarge { limit: 10 }));
    }

    #[test]
    fn parse_truncated_body_is_connection_closed() {
        let err = parse_req(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nab").unwrap_err();
        assert!(matches!(err, HttpError::ConnectionClosed));
    }

    #[test]
    fn parse_empty_stream_is_connection_closed() {
        assert!(matches!(parse_req(b""), Err(HttpError::ConnectionClosed)));
    }

    #[test]
    fn parse_response_basic() {
        let resp = parse_resp(b"HTTP/1.1 503 Service Unavailable\r\nContent-Length: 3\r\n\r\nerr")
            .unwrap();
        assert_eq!(resp.status(), StatusCode::SERVICE_UNAVAILABLE);
        assert_eq!(resp.reason(), "Service Unavailable");
        assert_eq!(resp.body_str(), "err");
    }

    #[test]
    fn parse_response_without_reason() {
        let resp = parse_resp(b"HTTP/1.1 200\r\n\r\n").unwrap();
        assert_eq!(resp.status(), StatusCode::OK);
        assert_eq!(resp.reason(), "");
    }

    #[test]
    fn parse_response_without_length_reads_until_close() {
        let resp = parse_resp(b"HTTP/1.1 200 OK\r\n\r\nhello until close").unwrap();
        assert_eq!(resp.body_str(), "hello until close");
        // Re-framed with an explicit length afterwards.
        assert_eq!(resp.headers().get_int("content-length"), Some(17));
    }

    #[test]
    fn parse_bodiless_statuses_without_length() {
        let resp = parse_resp(b"HTTP/1.1 204 No Content\r\n\r\n").unwrap();
        assert_eq!(resp.status(), StatusCode::NO_CONTENT);
        assert!(resp.body().is_empty());
        let resp = parse_resp(b"HTTP/1.1 304 Not Modified\r\n\r\n").unwrap();
        assert!(resp.body().is_empty());
    }

    #[test]
    fn read_until_close_respects_body_limit() {
        let mut raw = b"HTTP/1.1 200 OK\r\n\r\n".to_vec();
        raw.extend_from_slice(&[b'x'; 64]);
        let err = read_response_with_limits(
            &mut BufReader::new(&raw[..]),
            Limits {
                max_head_bytes: 1024,
                max_body_bytes: 16,
            },
        )
        .unwrap_err();
        assert!(matches!(err, HttpError::BodyTooLarge { limit: 16 }));
    }

    #[test]
    fn parse_chunked_body() {
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n";
        let resp = parse_resp(raw).unwrap();
        assert_eq!(resp.body_str(), "hello world");
        // After reading, the body is re-framed with Content-Length.
        assert_eq!(resp.headers().get_int("content-length"), Some(11));
    }

    #[test]
    fn parse_chunked_with_extension_and_trailer() {
        let raw =
            b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n3;ext=1\r\nabc\r\n0\r\nX-T: 1\r\n\r\n";
        let resp = parse_resp(raw).unwrap();
        assert_eq!(resp.body_str(), "abc");
    }

    #[test]
    fn parse_chunked_bad_size() {
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n";
        assert!(matches!(
            parse_resp(raw),
            Err(HttpError::InvalidChunkSize(_))
        ));
    }

    #[test]
    fn parse_chunked_body_limit() {
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nff\r\n";
        let err = read_response_with_limits(
            &mut BufReader::new(&raw[..]),
            Limits {
                max_head_bytes: 1024,
                max_body_bytes: 16,
            },
        )
        .unwrap_err();
        assert!(matches!(err, HttpError::BodyTooLarge { limit: 16 }));
    }

    #[test]
    fn write_then_read_request_round_trip() {
        let req = Request::builder(Method::Post, "/round?trip=1")
            .header("Host", "svc")
            .header("X-Custom", "v")
            .body("payload")
            .request_id("test-1")
            .build();
        let mut buf = Vec::new();
        write_request(&mut buf, &req).unwrap();
        let parsed = parse_req(&buf).unwrap();
        assert_eq!(parsed.method(), req.method());
        assert_eq!(parsed.target(), req.target());
        assert_eq!(parsed.body(), req.body());
        assert_eq!(parsed.request_id(), Some("test-1"));
        assert_eq!(parsed.headers().get("x-custom"), Some("v"));
    }

    #[test]
    fn write_then_read_response_round_trip() {
        let resp = Response::builder(StatusCode::CREATED)
            .header("X-Y", "z")
            .body("made")
            .build();
        let mut buf = Vec::new();
        write_response(&mut buf, &resp).unwrap();
        let parsed = parse_resp(&buf).unwrap();
        assert_eq!(parsed.status(), resp.status());
        assert_eq!(parsed.body(), resp.body());
        assert_eq!(parsed.headers().get("x-y"), Some("z"));
    }

    #[test]
    fn write_empty_target_becomes_slash() {
        let req = Request::builder(Method::Get, "").build();
        let mut buf = Vec::new();
        write_request(&mut buf, &req).unwrap();
        assert!(buf.starts_with(b"GET / HTTP/1.1\r\n"));
    }

    #[test]
    fn write_drops_transfer_encoding_and_fixes_length() {
        let mut resp = Response::builder(StatusCode::OK)
            .header("Transfer-Encoding", "chunked")
            .header("Content-Length", "999")
            .build();
        resp.set_body("four");
        let mut buf = Vec::new();
        write_response(&mut buf, &resp).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(!text.to_lowercase().contains("transfer-encoding"));
        assert!(text.contains("Content-Length: 4\r\n"));
    }

    #[test]
    fn read_head_then_chunks_incrementally() {
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\nX-S: 1\r\n\r\n5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n";
        let mut reader = BufReader::new(&raw[..]);
        let head = read_response_head(&mut reader).unwrap();
        assert_eq!(head.status(), StatusCode::OK);
        assert!(head.headers().is_chunked());
        assert_eq!(head.headers().get("x-s"), Some("1"));
        assert!(head.body().is_empty());
        let mut chunks = ChunkReader::new(reader);
        assert_eq!(chunks.next_chunk().unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(
            chunks.next_chunk().unwrap().as_deref(),
            Some(&b" world"[..])
        );
        assert_eq!(chunks.next_chunk().unwrap(), None);
        // Idempotent after the terminal chunk.
        assert_eq!(chunks.next_chunk().unwrap(), None);
    }

    #[test]
    fn chunk_reader_surfaces_truncation_as_closed() {
        let raw = b"5\r\nhel";
        let mut chunks = ChunkReader::new(BufReader::new(&raw[..]));
        assert!(matches!(
            chunks.next_chunk(),
            Err(HttpError::ConnectionClosed) | Err(HttpError::Io(_))
        ));
    }

    #[test]
    fn two_pipelined_requests_parse_sequentially() {
        let raw = b"GET /1 HTTP/1.1\r\n\r\nGET /2 HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(&raw[..]);
        let r1 = read_request(&mut reader).unwrap();
        let r2 = read_request(&mut reader).unwrap();
        assert_eq!(r1.path(), "/1");
        assert_eq!(r2.path(), "/2");
    }
}

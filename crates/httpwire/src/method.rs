//! HTTP request methods.

use std::fmt;
use std::str::FromStr;

use crate::error::HttpError;

/// An HTTP request method.
///
/// The common methods are represented as dedicated variants; anything
/// else round-trips through [`Method::Extension`].
///
/// # Examples
///
/// ```
/// use gremlin_http::Method;
///
/// let m: Method = "GET".parse().unwrap();
/// assert_eq!(m, Method::Get);
/// assert_eq!(m.as_str(), "GET");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub enum Method {
    /// `GET`
    #[default]
    Get,
    /// `HEAD`
    Head,
    /// `POST`
    Post,
    /// `PUT`
    Put,
    /// `DELETE`
    Delete,
    /// `OPTIONS`
    Options,
    /// `PATCH`
    Patch,
    /// Any other token, stored verbatim.
    Extension(String),
}

impl Method {
    /// Returns the canonical upper-case string form of the method.
    pub fn as_str(&self) -> &str {
        match self {
            Method::Get => "GET",
            Method::Head => "HEAD",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
            Method::Options => "OPTIONS",
            Method::Patch => "PATCH",
            Method::Extension(s) => s,
        }
    }

    /// Returns `true` if the method is safe (read-only) per RFC 7231:
    /// `GET`, `HEAD` or `OPTIONS`.
    pub fn is_safe(&self) -> bool {
        matches!(self, Method::Get | Method::Head | Method::Options)
    }

    /// Returns `true` if requests with this method are idempotent per
    /// RFC 7231 (safe methods plus `PUT` and `DELETE`).
    ///
    /// Resilience patterns use this to decide whether an API call may
    /// be retried automatically.
    pub fn is_idempotent(&self) -> bool {
        self.is_safe() || matches!(self, Method::Put | Method::Delete)
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Method {
    type Err = HttpError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() || !s.bytes().all(is_token_byte) {
            return Err(HttpError::InvalidRequestLine(s.to_string()));
        }
        Ok(match s {
            "GET" => Method::Get,
            "HEAD" => Method::Head,
            "POST" => Method::Post,
            "PUT" => Method::Put,
            "DELETE" => Method::Delete,
            "OPTIONS" => Method::Options,
            "PATCH" => Method::Patch,
            other => Method::Extension(other.to_string()),
        })
    }
}

/// Returns `true` for bytes allowed in an HTTP token (RFC 7230 §3.2.6).
pub(crate) fn is_token_byte(b: u8) -> bool {
    matches!(b,
        b'!' | b'#' | b'$' | b'%' | b'&' | b'\'' | b'*' | b'+' | b'-' | b'.'
        | b'^' | b'_' | b'`' | b'|' | b'~'
        | b'0'..=b'9' | b'a'..=b'z' | b'A'..=b'Z')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_known_methods() {
        for (text, method) in [
            ("GET", Method::Get),
            ("HEAD", Method::Head),
            ("POST", Method::Post),
            ("PUT", Method::Put),
            ("DELETE", Method::Delete),
            ("OPTIONS", Method::Options),
            ("PATCH", Method::Patch),
        ] {
            assert_eq!(text.parse::<Method>().unwrap(), method);
            assert_eq!(method.as_str(), text);
        }
    }

    #[test]
    fn parse_extension_method() {
        let m: Method = "PURGE".parse().unwrap();
        assert_eq!(m, Method::Extension("PURGE".to_string()));
        assert_eq!(m.to_string(), "PURGE");
    }

    #[test]
    fn parse_rejects_invalid_tokens() {
        assert!("".parse::<Method>().is_err());
        assert!("GE T".parse::<Method>().is_err());
        assert!("GET\r".parse::<Method>().is_err());
        assert!("G(T".parse::<Method>().is_err());
    }

    #[test]
    fn safety_and_idempotency() {
        assert!(Method::Get.is_safe());
        assert!(Method::Head.is_safe());
        assert!(!Method::Post.is_safe());
        assert!(Method::Put.is_idempotent());
        assert!(Method::Delete.is_idempotent());
        assert!(!Method::Post.is_idempotent());
        assert!(Method::Get.is_idempotent());
    }

    #[test]
    fn default_is_get() {
        assert_eq!(Method::default(), Method::Get);
    }
}

//! A multi-threaded blocking HTTP/1.1 server.

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::codec::{read_request_with_limits, write_response, Limits};
use crate::error::HttpError;
use crate::message::{Request, Response};
use crate::pool::ThreadPool;
use crate::status::StatusCode;
use crate::track::ConnTracker;
use crate::Result;

/// Information about the connection a request arrived on.
#[derive(Debug, Clone)]
pub struct ConnInfo {
    /// Address of the remote peer.
    pub peer_addr: SocketAddr,
    /// Address the server accepted the connection on.
    pub local_addr: SocketAddr,
}

/// A request handler: maps a request (plus connection metadata) to a
/// response.
///
/// Implemented for all matching closures.
pub trait Handler: Send + Sync + 'static {
    /// Produces the response for `request`.
    fn handle(&self, request: Request, conn: &ConnInfo) -> Response;
}

impl<F> Handler for F
where
    F: Fn(Request, &ConnInfo) -> Response + Send + Sync + 'static,
{
    fn handle(&self, request: Request, conn: &ConnInfo) -> Response {
        self(request, conn)
    }
}

/// Configuration for [`HttpServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads handling connections.
    pub workers: usize,
    /// Per-connection idle read timeout; when it expires the
    /// keep-alive connection is closed.
    pub read_timeout: Option<Duration>,
    /// Message size limits for incoming requests.
    pub limits: Limits,
    /// Server name used for worker threads.
    pub name: String,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 8,
            read_timeout: Some(Duration::from_secs(30)),
            limits: Limits::default(),
            name: "http-server".to_string(),
        }
    }
}

/// A running HTTP server.
///
/// The server accepts connections on a background thread and services
/// them on a fixed [`ThreadPool`]. Dropping the handle shuts the
/// server down and joins its threads.
///
/// # Examples
///
/// ```
/// use gremlin_http::{HttpClient, HttpServer, Request, Response};
///
/// # fn main() -> gremlin_http::Result<()> {
/// let server = HttpServer::bind("127.0.0.1:0", |req: Request, _conn: &_| {
///     Response::ok(format!("hello {}", req.path()))
/// })?;
/// let client = HttpClient::new();
/// let resp = client.send(server.local_addr(), Request::get("/world"))?;
/// assert_eq!(resp.body_str(), "hello /world");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct HttpServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
    active_connections: Arc<AtomicUsize>,
    requests_served: Arc<AtomicUsize>,
    tracker: Arc<ConnTracker>,
}

impl HttpServer {
    /// Binds to `addr` with default configuration and starts serving.
    ///
    /// # Errors
    ///
    /// Returns an error if the address cannot be bound.
    pub fn bind<H: Handler>(addr: impl ToSocketAddrs, handler: H) -> Result<HttpServer> {
        HttpServer::bind_with_config(addr, handler, ServerConfig::default())
    }

    /// Binds to `addr` with explicit configuration and starts serving.
    ///
    /// # Errors
    ///
    /// Returns an error if the address cannot be bound.
    pub fn bind_with_config<H: Handler>(
        addr: impl ToSocketAddrs,
        handler: H,
        config: ServerConfig,
    ) -> Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let active_connections = Arc::new(AtomicUsize::new(0));
        let requests_served = Arc::new(AtomicUsize::new(0));
        let tracker = Arc::new(ConnTracker::new());
        let handler: Arc<dyn Handler> = Arc::new(handler);

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_active = Arc::clone(&active_connections);
        let accept_requests = Arc::clone(&requests_served);
        let accept_tracker = Arc::clone(&tracker);
        let accept_config = config.clone();
        let accept_thread = thread::Builder::new()
            .name(format!("{}-accept", config.name))
            .spawn(move || {
                let pool = ThreadPool::new(accept_config.workers, &accept_config.name);
                while !accept_shutdown.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, peer_addr)) => {
                            let handler = Arc::clone(&handler);
                            let config = accept_config.clone();
                            let shutdown = Arc::clone(&accept_shutdown);
                            let active = Arc::clone(&accept_active);
                            let requests = Arc::clone(&accept_requests);
                            let tracker = Arc::clone(&accept_tracker);
                            active.fetch_add(1, Ordering::SeqCst);
                            pool.execute(move || {
                                let conn = ConnInfo {
                                    peer_addr,
                                    local_addr: stream
                                        .local_addr()
                                        .unwrap_or(peer_addr),
                                };
                                let token = tracker.register(&stream);
                                let _ = serve_connection(
                                    stream, &conn, &*handler, &config, &shutdown, &requests,
                                );
                                tracker.deregister(token);
                                active.fetch_sub(1, Ordering::SeqCst);
                            });
                        }
                        Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => break,
                    }
                }
                // Unblock any worker stuck reading a keep-alive
                // connection, then let the pool drop join workers.
                accept_tracker.shutdown_all();
            })
            .map_err(HttpError::Io)?;

        Ok(HttpServer {
            local_addr,
            shutdown,
            accept_thread: Some(accept_thread),
            active_connections,
            requests_served,
            tracker,
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Number of connections currently being serviced.
    pub fn active_connections(&self) -> usize {
        self.active_connections.load(Ordering::SeqCst)
    }

    /// Total requests handled since startup.
    pub fn requests_served(&self) -> usize {
        self.requests_served.load(Ordering::SeqCst)
    }

    /// Signals shutdown and waits for the accept loop (and in-flight
    /// connections) to finish.
    ///
    /// Dropping the server performs the same teardown; this method
    /// exists for callers that want an explicit synchronization point.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.tracker.shutdown_all();
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

fn serve_connection(
    stream: TcpStream,
    conn: &ConnInfo,
    handler: &dyn Handler,
    config: &ServerConfig,
    shutdown: &AtomicBool,
    requests: &AtomicUsize,
) -> Result<()> {
    stream.set_read_timeout(config.read_timeout)?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        let request = match read_request_with_limits(&mut reader, config.limits) {
            Ok(request) => request,
            Err(HttpError::ConnectionClosed) | Err(HttpError::Timeout) => return Ok(()),
            Err(err) if err.is_connection_error() => return Ok(()),
            Err(_) => {
                // Malformed input: answer 400 and close.
                let mut writer = BufWriter::new(stream.try_clone()?);
                let _ = write_response(&mut writer, &Response::error(StatusCode::BAD_REQUEST));
                return Ok(());
            }
        };
        let close = request.headers().connection_close();
        let is_head = *request.method() == crate::Method::Head;
        let mut response = handler.handle(request, conn);
        requests.fetch_add(1, Ordering::SeqCst);
        let close = close || response.headers().connection_close();
        if is_head {
            // HEAD: status and headers only, no body. Content-Length
            // is re-framed to 0 so the single codec stays
            // self-consistent for clients that read the response.
            response.set_body("");
        }
        let mut writer = BufWriter::new(stream.try_clone()?);
        write_response(&mut writer, &response)?;
        if close {
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{ClientConfig, HttpClient};
    use crate::message::Request;

    #[test]
    fn serves_requests() {
        let server = HttpServer::bind("127.0.0.1:0", |req: Request, _conn: &ConnInfo| {
            Response::ok(format!("echo:{}", req.path()))
        })
        .unwrap();
        let client = HttpClient::new();
        let resp = client.send(server.local_addr(), Request::get("/a")).unwrap();
        assert_eq!(resp.body_str(), "echo:/a");
        assert_eq!(server.requests_served(), 1);
    }

    #[test]
    fn serves_concurrent_clients() {
        let server = HttpServer::bind("127.0.0.1:0", |_req: Request, _conn: &ConnInfo| {
            thread::sleep(Duration::from_millis(20));
            Response::ok("slow")
        })
        .unwrap();
        let addr = server.local_addr();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                thread::spawn(move || {
                    let client = HttpClient::new();
                    client.send(addr, Request::get("/")).unwrap().body_str()
                })
            })
            .collect();
        for handle in handles {
            assert_eq!(handle.join().unwrap(), "slow");
        }
        assert_eq!(server.requests_served(), 8);
    }

    #[test]
    fn keep_alive_across_requests() {
        let server =
            HttpServer::bind("127.0.0.1:0", |_req: Request, _conn: &ConnInfo| Response::ok("k"))
                .unwrap();
        let client = HttpClient::new();
        for _ in 0..5 {
            client.send(server.local_addr(), Request::get("/")).unwrap();
        }
        assert_eq!(server.requests_served(), 5);
        // All five should have flowed over one pooled connection.
        assert_eq!(client.idle_connections(), 1);
    }

    #[test]
    fn malformed_request_gets_400() {
        use std::io::{Read, Write};
        let server =
            HttpServer::bind("127.0.0.1:0", |_req: Request, _conn: &ConnInfo| Response::ok("x"))
                .unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(b"NOT A REQUEST\r\n\r\n").unwrap();
        let mut buf = Vec::new();
        stream.read_to_end(&mut buf).unwrap();
        let text = String::from_utf8_lossy(&buf);
        assert!(text.starts_with("HTTP/1.1 400"), "got: {text}");
    }

    #[test]
    fn shutdown_joins_cleanly() {
        let server =
            HttpServer::bind("127.0.0.1:0", |_req: Request, _conn: &ConnInfo| Response::ok(""))
                .unwrap();
        let addr = server.local_addr();
        server.shutdown();
        // After shutdown the port should refuse (or at least not
        // answer) new requests.
        let config = ClientConfig {
            connect_timeout: Some(Duration::from_millis(200)),
            read_timeout: Some(Duration::from_millis(200)),
            ..ClientConfig::default()
        };
        let client = HttpClient::with_config(config);
        assert!(client.send(addr, Request::get("/")).is_err());
    }

    #[test]
    fn head_requests_get_no_body() {
        let server = HttpServer::bind("127.0.0.1:0", |_req: Request, _conn: &ConnInfo| {
            Response::ok("a sizeable body")
        })
        .unwrap();
        let client = HttpClient::new();
        let head = client
            .send(
                server.local_addr(),
                crate::Request::builder(crate::Method::Head, "/").build(),
            )
            .unwrap();
        assert_eq!(head.status(), StatusCode::OK);
        assert!(head.body().is_empty());
        // A follow-up GET on the same pooled connection still works
        // (framing was not corrupted).
        let get = client
            .send(server.local_addr(), crate::Request::get("/"))
            .unwrap();
        assert_eq!(get.body_str(), "a sizeable body");
    }

    #[test]
    fn connection_close_header_closes() {
        let server =
            HttpServer::bind("127.0.0.1:0", |_req: Request, _conn: &ConnInfo| Response::ok("c"))
                .unwrap();
        let client = HttpClient::new();
        let req = Request::builder(crate::Method::Get, "/")
            .header("Connection", "close")
            .build();
        let resp = client.send(server.local_addr(), req).unwrap();
        assert_eq!(resp.body_str(), "c");
        assert_eq!(client.idle_connections(), 0);
    }
}

//! A multi-threaded blocking HTTP/1.1 server.

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::codec::{read_request_with_limits, write_response, Limits};
use crate::error::HttpError;
use crate::message::{Request, Response};
use crate::pool::ThreadPool;
use crate::status::StatusCode;
use crate::track::ConnTracker;
use crate::Result;

/// Information about the connection a request arrived on.
#[derive(Debug, Clone)]
pub struct ConnInfo {
    /// Address of the remote peer.
    pub peer_addr: SocketAddr,
    /// Address the server accepted the connection on.
    pub local_addr: SocketAddr,
}

/// What a [`Handler`] produces for one request: either a complete,
/// buffered [`Response`] (the common case) or a [`StreamingBody`]
/// written incrementally as chunks.
pub enum Reply {
    /// A fully-buffered response, framed with `Content-Length`.
    Full(Response),
    /// A chunked stream; the connection closes when it ends.
    Stream(StreamingBody),
}

impl From<Response> for Reply {
    fn from(response: Response) -> Reply {
        Reply::Full(response)
    }
}

impl From<StreamingBody> for Reply {
    fn from(body: StreamingBody) -> Reply {
        Reply::Stream(body)
    }
}

/// A chunked (`Transfer-Encoding: chunked`) response produced
/// incrementally by a handler — the server writes the head, then runs
/// the producer, which pushes chunks into a [`ChunkSink`] for as long
/// as it likes (a live event tail, for example). The connection is
/// closed when the producer returns; a write error (client went away,
/// server shutting down via [`ConnTracker`](crate::track::ConnTracker))
/// surfaces as `Err` from [`ChunkSink::send`], which the producer
/// should treat as its signal to stop.
pub struct StreamingBody {
    status: StatusCode,
    headers: crate::headers::HeaderMap,
    producer: Box<dyn FnOnce(&mut ChunkSink<'_>) -> std::io::Result<()> + Send>,
}

impl StreamingBody {
    /// Creates a streaming reply with the given status; `producer` is
    /// invoked on the connection's worker thread once the head has
    /// been written.
    pub fn new(
        status: StatusCode,
        producer: impl FnOnce(&mut ChunkSink<'_>) -> std::io::Result<()> + Send + 'static,
    ) -> StreamingBody {
        StreamingBody {
            status,
            headers: crate::headers::HeaderMap::new(),
            producer: Box::new(producer),
        }
    }

    /// Adds a header to the stream head. `Content-Length` and
    /// `Transfer-Encoding` are managed by the server and ignored here.
    pub fn header(mut self, name: impl Into<String>, value: impl Into<String>) -> StreamingBody {
        let name = name.into();
        if !name.eq_ignore_ascii_case("content-length")
            && !name.eq_ignore_ascii_case("transfer-encoding")
        {
            self.headers.append(name, value);
        }
        self
    }
}

impl std::fmt::Debug for StreamingBody {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamingBody")
            .field("status", &self.status)
            .field("headers", &self.headers)
            .finish_non_exhaustive()
    }
}

/// The producer side of a [`StreamingBody`]: each [`send`](ChunkSink::send)
/// writes one HTTP chunk and flushes it to the client.
pub struct ChunkSink<'a> {
    writer: &'a mut dyn std::io::Write,
}

impl ChunkSink<'_> {
    /// Writes `data` as one chunk and flushes. Empty data is skipped
    /// (an empty chunk would terminate the stream).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors — typically the client disconnecting or
    /// the server shutting the connection down, both of which mean the
    /// producer should return.
    pub fn send(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.writer, "{:x}\r\n", data.len())?;
        self.writer.write_all(data)?;
        self.writer.write_all(b"\r\n")?;
        self.writer.flush()
    }
}

/// A request handler: maps a request (plus connection metadata) to a
/// reply.
///
/// Implemented for all closures returning anything convertible into a
/// [`Reply`] — in particular plain [`Response`]-returning closures.
pub trait Handler: Send + Sync + 'static {
    /// Produces the reply for `request`.
    fn handle(&self, request: Request, conn: &ConnInfo) -> Reply;
}

impl<F, R> Handler for F
where
    F: Fn(Request, &ConnInfo) -> R + Send + Sync + 'static,
    R: Into<Reply>,
{
    fn handle(&self, request: Request, conn: &ConnInfo) -> Reply {
        self(request, conn).into()
    }
}

/// Configuration for [`HttpServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads handling connections.
    pub workers: usize,
    /// Per-connection idle read timeout; when it expires the
    /// keep-alive connection is closed.
    pub read_timeout: Option<Duration>,
    /// Message size limits for incoming requests.
    pub limits: Limits,
    /// Server name used for worker threads.
    pub name: String,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 8,
            read_timeout: Some(Duration::from_secs(30)),
            limits: Limits::default(),
            name: "http-server".to_string(),
        }
    }
}

/// A running HTTP server.
///
/// The server accepts connections on a background thread and services
/// them on a fixed [`ThreadPool`]. Dropping the handle shuts the
/// server down and joins its threads.
///
/// # Examples
///
/// ```
/// use gremlin_http::{HttpClient, HttpServer, Request, Response};
///
/// # fn main() -> gremlin_http::Result<()> {
/// let server = HttpServer::bind("127.0.0.1:0", |req: Request, _conn: &_| {
///     Response::ok(format!("hello {}", req.path()))
/// })?;
/// let client = HttpClient::new();
/// let resp = client.send(server.local_addr(), Request::get("/world"))?;
/// assert_eq!(resp.body_str(), "hello /world");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct HttpServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
    active_connections: Arc<AtomicUsize>,
    requests_served: Arc<AtomicUsize>,
    tracker: Arc<ConnTracker>,
}

impl HttpServer {
    /// Binds to `addr` with default configuration and starts serving.
    ///
    /// # Errors
    ///
    /// Returns an error if the address cannot be bound.
    pub fn bind<H: Handler>(addr: impl ToSocketAddrs, handler: H) -> Result<HttpServer> {
        HttpServer::bind_with_config(addr, handler, ServerConfig::default())
    }

    /// Binds to `addr` with explicit configuration and starts serving.
    ///
    /// # Errors
    ///
    /// Returns an error if the address cannot be bound.
    pub fn bind_with_config<H: Handler>(
        addr: impl ToSocketAddrs,
        handler: H,
        config: ServerConfig,
    ) -> Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let active_connections = Arc::new(AtomicUsize::new(0));
        let requests_served = Arc::new(AtomicUsize::new(0));
        let tracker = Arc::new(ConnTracker::new());
        let handler: Arc<dyn Handler> = Arc::new(handler);

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_active = Arc::clone(&active_connections);
        let accept_requests = Arc::clone(&requests_served);
        let accept_tracker = Arc::clone(&tracker);
        let accept_config = config.clone();
        let accept_thread = thread::Builder::new()
            .name(format!("{}-accept", config.name))
            .spawn(move || {
                let pool = ThreadPool::new(accept_config.workers, &accept_config.name);
                while !accept_shutdown.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, peer_addr)) => {
                            let handler = Arc::clone(&handler);
                            let config = accept_config.clone();
                            let shutdown = Arc::clone(&accept_shutdown);
                            let active = Arc::clone(&accept_active);
                            let requests = Arc::clone(&accept_requests);
                            let tracker = Arc::clone(&accept_tracker);
                            active.fetch_add(1, Ordering::SeqCst);
                            pool.execute(move || {
                                let conn = ConnInfo {
                                    peer_addr,
                                    local_addr: stream.local_addr().unwrap_or(peer_addr),
                                };
                                let token = tracker.register(&stream);
                                let _ = serve_connection(
                                    stream, &conn, &*handler, &config, &shutdown, &requests,
                                );
                                tracker.deregister(token);
                                active.fetch_sub(1, Ordering::SeqCst);
                            });
                        }
                        Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => break,
                    }
                }
                // Unblock any worker stuck reading a keep-alive
                // connection, then let the pool drop join workers.
                accept_tracker.shutdown_all();
            })
            .map_err(HttpError::Io)?;

        Ok(HttpServer {
            local_addr,
            shutdown,
            accept_thread: Some(accept_thread),
            active_connections,
            requests_served,
            tracker,
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Number of connections currently being serviced.
    pub fn active_connections(&self) -> usize {
        self.active_connections.load(Ordering::SeqCst)
    }

    /// Total requests handled since startup.
    pub fn requests_served(&self) -> usize {
        self.requests_served.load(Ordering::SeqCst)
    }

    /// Signals shutdown and waits for the accept loop (and in-flight
    /// connections) to finish.
    ///
    /// Dropping the server performs the same teardown; this method
    /// exists for callers that want an explicit synchronization point.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.tracker.shutdown_all();
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

fn serve_connection(
    stream: TcpStream,
    conn: &ConnInfo,
    handler: &dyn Handler,
    config: &ServerConfig,
    shutdown: &AtomicBool,
    requests: &AtomicUsize,
) -> Result<()> {
    stream.set_read_timeout(config.read_timeout)?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        let request = match read_request_with_limits(&mut reader, config.limits) {
            Ok(request) => request,
            Err(HttpError::ConnectionClosed) | Err(HttpError::Timeout) => return Ok(()),
            Err(err) if err.is_connection_error() => return Ok(()),
            Err(_) => {
                // Malformed input: answer 400 and close.
                let mut writer = BufWriter::new(stream.try_clone()?);
                let _ = write_response(&mut writer, &Response::error(StatusCode::BAD_REQUEST));
                return Ok(());
            }
        };
        let close = request.headers().connection_close();
        let is_head = *request.method() == crate::Method::Head;
        let reply = handler.handle(request, conn);
        requests.fetch_add(1, Ordering::SeqCst);
        match reply {
            Reply::Full(mut response) => {
                let close = close || response.headers().connection_close();
                if is_head {
                    // HEAD: status and headers only, no body.
                    // Content-Length is re-framed to 0 so the single
                    // codec stays self-consistent for clients that
                    // read the response.
                    response.set_body("");
                }
                let mut writer = BufWriter::new(stream.try_clone()?);
                write_response(&mut writer, &response)?;
                if close {
                    return Ok(());
                }
            }
            Reply::Stream(body) => {
                // A stream owns the connection until it ends; the
                // producer may block indefinitely (live tails), so
                // clear the read timeout's influence by never reading
                // again and close once the producer returns.
                let mut writer = BufWriter::new(stream.try_clone()?);
                write_stream_head(&mut writer, &body)?;
                if !is_head {
                    let mut sink = ChunkSink {
                        writer: &mut writer,
                    };
                    // Producer errors are expected (client hung up,
                    // tracker shutdown): the stream just ends.
                    let _ = (body.producer)(&mut sink);
                }
                let _ = std::io::Write::write_all(&mut writer, b"0\r\n\r\n");
                let _ = std::io::Write::flush(&mut writer);
                return Ok(());
            }
        }
    }
}

/// Writes the head of a chunked streaming response: status line,
/// caller headers, then `Transfer-Encoding: chunked` and
/// `Connection: close` framing.
fn write_stream_head<W: std::io::Write>(writer: &mut W, body: &StreamingBody) -> Result<()> {
    let mut head = String::with_capacity(128);
    head.push_str(crate::message::HTTP_VERSION);
    head.push(' ');
    head.push_str(&body.status.to_string());
    head.push(' ');
    head.push_str(body.status.canonical_reason());
    head.push_str("\r\n");
    for (name, value) in body.headers.iter() {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n");
    writer.write_all(head.as_bytes())?;
    writer.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{ClientConfig, HttpClient};
    use crate::message::Request;

    #[test]
    fn serves_requests() {
        let server = HttpServer::bind("127.0.0.1:0", |req: Request, _conn: &ConnInfo| {
            Response::ok(format!("echo:{}", req.path()))
        })
        .unwrap();
        let client = HttpClient::new();
        let resp = client
            .send(server.local_addr(), Request::get("/a"))
            .unwrap();
        assert_eq!(resp.body_str(), "echo:/a");
        assert_eq!(server.requests_served(), 1);
    }

    #[test]
    fn serves_concurrent_clients() {
        let server = HttpServer::bind("127.0.0.1:0", |_req: Request, _conn: &ConnInfo| {
            thread::sleep(Duration::from_millis(20));
            Response::ok("slow")
        })
        .unwrap();
        let addr = server.local_addr();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                thread::spawn(move || {
                    let client = HttpClient::new();
                    client.send(addr, Request::get("/")).unwrap().body_str()
                })
            })
            .collect();
        for handle in handles {
            assert_eq!(handle.join().unwrap(), "slow");
        }
        assert_eq!(server.requests_served(), 8);
    }

    #[test]
    fn keep_alive_across_requests() {
        let server = HttpServer::bind("127.0.0.1:0", |_req: Request, _conn: &ConnInfo| {
            Response::ok("k")
        })
        .unwrap();
        let client = HttpClient::new();
        for _ in 0..5 {
            client.send(server.local_addr(), Request::get("/")).unwrap();
        }
        assert_eq!(server.requests_served(), 5);
        // All five should have flowed over one pooled connection.
        assert_eq!(client.idle_connections(), 1);
    }

    #[test]
    fn malformed_request_gets_400() {
        use std::io::{Read, Write};
        let server = HttpServer::bind("127.0.0.1:0", |_req: Request, _conn: &ConnInfo| {
            Response::ok("x")
        })
        .unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(b"NOT A REQUEST\r\n\r\n").unwrap();
        let mut buf = Vec::new();
        stream.read_to_end(&mut buf).unwrap();
        let text = String::from_utf8_lossy(&buf);
        assert!(text.starts_with("HTTP/1.1 400"), "got: {text}");
    }

    #[test]
    fn shutdown_joins_cleanly() {
        let server = HttpServer::bind("127.0.0.1:0", |_req: Request, _conn: &ConnInfo| {
            Response::ok("")
        })
        .unwrap();
        let addr = server.local_addr();
        server.shutdown();
        // After shutdown the port should refuse (or at least not
        // answer) new requests.
        let config = ClientConfig {
            connect_timeout: Some(Duration::from_millis(200)),
            read_timeout: Some(Duration::from_millis(200)),
            ..ClientConfig::default()
        };
        let client = HttpClient::with_config(config);
        assert!(client.send(addr, Request::get("/")).is_err());
    }

    #[test]
    fn head_requests_get_no_body() {
        let server = HttpServer::bind("127.0.0.1:0", |_req: Request, _conn: &ConnInfo| {
            Response::ok("a sizeable body")
        })
        .unwrap();
        let client = HttpClient::new();
        let head = client
            .send(
                server.local_addr(),
                crate::Request::builder(crate::Method::Head, "/").build(),
            )
            .unwrap();
        assert_eq!(head.status(), StatusCode::OK);
        assert!(head.body().is_empty());
        // A follow-up GET on the same pooled connection still works
        // (framing was not corrupted).
        let get = client
            .send(server.local_addr(), crate::Request::get("/"))
            .unwrap();
        assert_eq!(get.body_str(), "a sizeable body");
    }

    #[test]
    fn streaming_reply_delivers_chunks_incrementally() {
        use crate::codec::{read_response_head, write_request, ChunkReader};
        use std::io::BufReader;
        use std::sync::mpsc;

        // The producer emits one chunk per received token, so the
        // client observes chunks strictly before the stream ends.
        let (tx, rx) = mpsc::channel::<String>();
        let rx = std::sync::Mutex::new(rx);
        let server = HttpServer::bind("127.0.0.1:0", move |_req: Request, _conn: &ConnInfo| {
            let rx = rx.lock().unwrap();
            let mut lines: Vec<String> = Vec::new();
            while let Ok(line) = rx.recv() {
                lines.push(line);
            }
            crate::server::StreamingBody::new(StatusCode::OK, move |sink| {
                for line in lines {
                    sink.send(line.as_bytes())?;
                }
                Ok(())
            })
            .header("Content-Type", "application/x-ndjson")
            .header("Content-Length", "ignored")
        })
        .unwrap();

        tx.send("one\n".to_string()).unwrap();
        tx.send("two\n".to_string()).unwrap();
        drop(tx);

        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut write_half = stream.try_clone().unwrap();
        write_request(&mut write_half, &Request::get("/tail")).unwrap();
        let mut reader = BufReader::new(stream);
        let head = read_response_head(&mut reader).unwrap();
        assert_eq!(head.status(), StatusCode::OK);
        assert!(head.headers().is_chunked());
        assert!(head.headers().connection_close());
        assert_eq!(
            head.headers().get("content-type"),
            Some("application/x-ndjson")
        );
        // The blocked Content-Length header was dropped.
        assert!(head.headers().get("content-length").is_none());
        let mut chunks = ChunkReader::new(reader);
        assert_eq!(chunks.next_chunk().unwrap().as_deref(), Some(&b"one\n"[..]));
        assert_eq!(chunks.next_chunk().unwrap().as_deref(), Some(&b"two\n"[..]));
        assert_eq!(chunks.next_chunk().unwrap(), None);
    }

    #[test]
    fn shutdown_unblocks_streaming_producer() {
        use crate::codec::{read_response_head, write_request};
        use std::io::BufReader;

        // A producer that streams forever; shutdown_all must break its
        // write and let the server join.
        let server = HttpServer::bind("127.0.0.1:0", |_req: Request, _conn: &ConnInfo| {
            crate::server::StreamingBody::new(StatusCode::OK, |sink| loop {
                sink.send(b"tick\n")?;
                thread::sleep(Duration::from_millis(5));
            })
        })
        .unwrap();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut write_half = stream.try_clone().unwrap();
        write_request(&mut write_half, &Request::get("/tail")).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let head = read_response_head(&mut reader).unwrap();
        assert_eq!(head.status(), StatusCode::OK);
        // Close the client side; the producer's next send hits a
        // broken pipe. Then shutdown must join promptly even though a
        // stream was in flight.
        drop(reader);
        drop(write_half);
        drop(stream);
        server.shutdown();
    }

    #[test]
    fn connection_close_header_closes() {
        let server = HttpServer::bind("127.0.0.1:0", |_req: Request, _conn: &ConnInfo| {
            Response::ok("c")
        })
        .unwrap();
        let client = HttpClient::new();
        let req = Request::builder(crate::Method::Get, "/")
            .header("Connection", "close")
            .build();
        let resp = client.send(server.local_addr(), req).unwrap();
        assert_eq!(resp.body_str(), "c");
        assert_eq!(client.idle_connections(), 0);
    }
}

//! # gremlin-proxy
//!
//! The data plane of the Gremlin resilience-testing framework
//! (Heorhiadi et al., ICDCS 2016): fault-injecting Layer-7 sidecar
//! proxies called *Gremlin agents*.
//!
//! Microservices are configured to send each dependency's API calls
//! through a local [`GremlinAgent`] listener. The agent forwards the
//! calls, logs an observation for every request and response, and —
//! when instructed by the control plane — injects faults using the
//! three primitives of the paper's Table 2:
//!
//! * **Abort** — answer with an application-level error (e.g. `503`)
//!   or reset the connection at the TCP level (`Error = -1`);
//! * **Delay** — hold the message for a configured interval;
//! * **Modify** — rewrite message bytes.
//!
//! Rules select traffic by `(src, dst)` edge and by request-ID
//! [`Pattern`](gremlin_store::Pattern) (e.g. `test-*`), so faults can
//! be confined to synthetic test flows while production traffic is
//! untouched.
//!
//! The control plane programs agents either in-process (through
//! [`AgentControl`]) or over the REST control channel
//! ([`ControlServer`] / [`ControlClient`]).
//!
//! # Examples
//!
//! ```no_run
//! use gremlin_proxy::{AbortKind, AgentConfig, GremlinAgent, Rule};
//! use gremlin_store::EventStore;
//!
//! # fn main() -> Result<(), gremlin_proxy::ProxyError> {
//! let store = EventStore::shared();
//! let service_b = "127.0.0.1:9002".parse().unwrap();
//! let agent = GremlinAgent::start(
//!     AgentConfig::new("serviceA").route("serviceB", vec![service_b]),
//!     store.clone(),
//! )?;
//!
//! // Emulate an overloaded serviceB for test traffic only:
//! agent.install_rules(vec![
//!     Rule::abort("serviceA", "serviceB", AbortKind::Status(503)).with_pattern("test-*"),
//! ])?;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod agent;
pub mod collector;
pub mod control;
pub mod discovery;
pub mod error;
pub(crate) mod rng;
pub mod rules;
pub mod scraper;
pub mod table;

pub use agent::{AgentConfig, GremlinAgent, Route};
pub use collector::{
    CollectorServer, HttpEventSink, MonitorSource, SinkConfig, HEALTH_SCHEMA_VERSION,
};
pub use control::{AgentControl, AgentHealth, AgentStats, ControlClient, ControlServer};
pub use error::ProxyError;
pub use rules::{AbortKind, FaultAction, MessageSide, Rule};
pub use scraper::{ScrapeTarget, Scraper, ScraperConfig, ScraperHandle, TargetStatus};
pub use table::RuleTable;

/// Result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, ProxyError>;

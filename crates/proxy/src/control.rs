//! The out-of-band control channel between the Gremlin control plane
//! and its agents.
//!
//! The paper's agents are configured "via a REST API by the control
//! plane" (§6). This module provides both halves: a [`ControlServer`]
//! that exposes an agent's rule table over HTTP, and a
//! [`ControlClient`] the Failure Orchestrator uses to program remote
//! agents. In single-process deployments the orchestrator can skip
//! HTTP entirely and drive the agent through the [`AgentControl`]
//! trait, which both [`GremlinAgent`] and [`ControlClient`] implement.

use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use gremlin_http::{ConnInfo, HttpClient, HttpServer, Method, Request, Response, StatusCode};
use gremlin_store::EventStore;

use crate::agent::GremlinAgent;
use crate::error::ProxyError;
use crate::rules::Rule;

/// Uniform interface for programming a Gremlin agent, whether it runs
/// in-process or behind a control REST endpoint.
pub trait AgentControl: Send + Sync {
    /// Logical name of the service the agent fronts.
    fn service_name(&self) -> String;

    /// Installs fault-injection rules.
    ///
    /// # Errors
    ///
    /// Returns an error if validation or transport fails; on error no
    /// rule from the batch is installed.
    fn install_rules(&self, rules: &[Rule]) -> Result<(), ProxyError>;

    /// Removes all installed rules.
    ///
    /// # Errors
    ///
    /// Returns an error if the transport fails.
    fn clear_rules(&self) -> Result<(), ProxyError>;

    /// Lists the installed rules in evaluation order.
    ///
    /// # Errors
    ///
    /// Returns an error if the transport fails.
    fn list_rules(&self) -> Result<Vec<Rule>, ProxyError>;
}

impl AgentControl for GremlinAgent {
    fn service_name(&self) -> String {
        self.service().to_string()
    }

    fn install_rules(&self, rules: &[Rule]) -> Result<(), ProxyError> {
        GremlinAgent::install_rules(self, rules.to_vec())
    }

    fn clear_rules(&self) -> Result<(), ProxyError> {
        GremlinAgent::clear_rules(self);
        Ok(())
    }

    fn list_rules(&self) -> Result<Vec<Rule>, ProxyError> {
        Ok(self.rules())
    }
}

impl AgentControl for Arc<GremlinAgent> {
    fn service_name(&self) -> String {
        self.service().to_string()
    }

    fn install_rules(&self, rules: &[Rule]) -> Result<(), ProxyError> {
        GremlinAgent::install_rules(self, rules.to_vec())
    }

    fn clear_rules(&self) -> Result<(), ProxyError> {
        GremlinAgent::clear_rules(self);
        Ok(())
    }

    fn list_rules(&self) -> Result<Vec<Rule>, ProxyError> {
        Ok(self.rules())
    }
}

/// Agent status returned by `GET /health`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AgentHealth {
    /// Service the agent fronts.
    pub service: String,
    /// Agent instance name.
    pub name: String,
    /// Number of installed rules.
    pub rules: usize,
}

/// Data-path statistics returned by `GET /stats`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AgentStats {
    /// Messages evaluated against the rule table (two per proxied
    /// call: request side and response side).
    pub rule_checks: u64,
    /// Messages that matched a rule and were faulted.
    pub rule_hits: u64,
    /// Hits per installed rule, parallel to `GET /rules`.
    pub per_rule_hits: Vec<u64>,
    /// Routes the agent serves, as `(dst, listen_addr)` pairs.
    pub routes: Vec<(String, String)>,
}

/// HTTP control endpoint for one agent.
///
/// Routes:
///
/// | Method | Path       | Effect                                   |
/// |--------|------------|------------------------------------------|
/// | GET    | `/health`  | [`AgentHealth`] JSON                     |
/// | GET    | `/stats`   | [`AgentStats`] JSON                      |
/// | GET    | `/metrics` | Prometheus text exposition of the        |
/// |        |            | agent's telemetry registry               |
/// | GET    | `/rules`   | installed rules as a JSON array          |
/// | POST   | `/rules`   | install rules (JSON array or one object) |
/// | DELETE | `/rules`   | flush all rules                          |
///
/// Servers started with [`ControlServer::start_with_store`] additionally
/// serve `GET /traces/<request_id>`: the flow's spans assembled from the
/// agent's event store, rendered as OTLP-style JSON (the same format the
/// collector serves).
#[derive(Debug)]
pub struct ControlServer {
    server: HttpServer,
}

impl ControlServer {
    /// Starts the control endpoint for `agent` on `addr`.
    ///
    /// # Errors
    ///
    /// Returns an error if the address cannot be bound.
    pub fn start(
        agent: Arc<GremlinAgent>,
        addr: impl ToSocketAddrs,
    ) -> Result<ControlServer, ProxyError> {
        let server = HttpServer::bind(addr, move |request: Request, _conn: &ConnInfo| {
            handle_control(&agent, request)
        })?;
        Ok(ControlServer { server })
    }

    /// Starts the control endpoint with access to the agent's event
    /// store, enabling `GET /traces/<request_id>` trace export.
    ///
    /// # Errors
    ///
    /// Returns an error if the address cannot be bound.
    pub fn start_with_store(
        agent: Arc<GremlinAgent>,
        store: Arc<EventStore>,
        addr: impl ToSocketAddrs,
    ) -> Result<ControlServer, ProxyError> {
        let server = HttpServer::bind(addr, move |request: Request, _conn: &ConnInfo| {
            if *request.method() == Method::Get {
                if let Some(request_id) = request.path().strip_prefix("/traces/") {
                    return crate::collector::trace_response(&store, request_id);
                }
            }
            handle_control(&agent, request)
        })?;
        Ok(ControlServer { server })
    }

    /// The address the control endpoint listens on.
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }
}

fn handle_control(agent: &Arc<GremlinAgent>, request: Request) -> Response {
    match (request.method().clone(), request.path()) {
        (Method::Get, "/health") => {
            let health = AgentHealth {
                service: agent.service().to_string(),
                name: agent.name().to_string(),
                rules: agent.rules().len(),
            };
            json_response(StatusCode::OK, &health)
        }
        (Method::Get, "/stats") => {
            let stats = AgentStats {
                rule_checks: agent.rule_checks(),
                rule_hits: agent.rule_hits(),
                per_rule_hits: agent.rule_hit_counts(),
                routes: agent
                    .routes()
                    .into_iter()
                    .map(|(dst, addr)| (dst, addr.to_string()))
                    .collect(),
            };
            json_response(StatusCode::OK, &stats)
        }
        (Method::Get, "/metrics") => metrics_response(&agent.telemetry().render_prometheus()),
        (Method::Get, "/rules") => json_response(StatusCode::OK, &agent.rules()),
        (Method::Post, "/rules") => {
            let body = request.body();
            let rules: Vec<Rule> = match serde_json::from_slice::<Vec<Rule>>(body) {
                Ok(rules) => rules,
                Err(_) => match serde_json::from_slice::<Rule>(body) {
                    Ok(rule) => vec![rule],
                    Err(err) => {
                        return Response::builder(StatusCode::BAD_REQUEST)
                            .body(format!("cannot decode rules: {err}"))
                            .build()
                    }
                },
            };
            match GremlinAgent::install_rules(agent, rules) {
                Ok(()) => Response::builder(StatusCode::NO_CONTENT).build(),
                Err(err) => Response::builder(StatusCode::BAD_REQUEST)
                    .body(err.to_string())
                    .build(),
            }
        }
        (Method::Delete, "/rules") => {
            GremlinAgent::clear_rules(agent);
            Response::builder(StatusCode::NO_CONTENT).build()
        }
        _ => Response::error(StatusCode::NOT_FOUND),
    }
}

/// Wraps rendered exposition text in the Prometheus content type.
pub(crate) fn metrics_response(text: &str) -> Response {
    Response::builder(StatusCode::OK)
        .header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        .body(text.to_string())
        .build()
}

fn json_response<T: Serialize>(status: StatusCode, value: &T) -> Response {
    match serde_json::to_string(value) {
        Ok(body) => Response::builder(status)
            .header("Content-Type", "application/json")
            .body(body)
            .build(),
        Err(err) => Response::builder(StatusCode::INTERNAL_SERVER_ERROR)
            .body(err.to_string())
            .build(),
    }
}

/// Client for a remote agent's control endpoint.
///
/// Each client owns an [`HttpClient`] with its per-host keep-alive
/// pool, so repeated rule pushes to the same agent (including the
/// orchestrator's concurrent fan-out, which drives one `ControlClient`
/// per agent) reuse a warm connection instead of reconnecting per
/// push.
#[derive(Debug)]
pub struct ControlClient {
    addr: SocketAddr,
    client: HttpClient,
    service: String,
}

impl ControlClient {
    /// Connects to the control endpoint at `addr`, fetching the
    /// agent's identity from `/health`.
    ///
    /// # Errors
    ///
    /// Returns an error if the endpoint is unreachable or answers
    /// with a non-success status.
    pub fn connect(addr: SocketAddr) -> Result<ControlClient, ProxyError> {
        let client = HttpClient::new();
        let response = client.send(addr, Request::get("/health"))?;
        if !response.status().is_success() {
            return Err(ProxyError::ControlFailed {
                status: response.status().as_u16(),
                body: response.body_str(),
            });
        }
        let health: AgentHealth = serde_json::from_slice(response.body())?;
        Ok(ControlClient {
            addr,
            client,
            service: health.service,
        })
    }

    /// The control endpoint's address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Fetches the agent's current health.
    ///
    /// # Errors
    ///
    /// Returns an error on transport failure or a non-success status.
    pub fn health(&self) -> Result<AgentHealth, ProxyError> {
        let response = self.client.send(self.addr, Request::get("/health"))?;
        self.expect_success(&response)?;
        Ok(serde_json::from_slice(response.body())?)
    }

    /// Fetches the agent's data-path statistics.
    ///
    /// # Errors
    ///
    /// Returns an error on transport failure or a non-success status.
    pub fn stats(&self) -> Result<AgentStats, ProxyError> {
        let response = self.client.send(self.addr, Request::get("/stats"))?;
        self.expect_success(&response)?;
        Ok(serde_json::from_slice(response.body())?)
    }

    fn expect_success(&self, response: &Response) -> Result<(), ProxyError> {
        if response.status().is_success() {
            Ok(())
        } else {
            Err(ProxyError::ControlFailed {
                status: response.status().as_u16(),
                body: response.body_str(),
            })
        }
    }
}

impl AgentControl for ControlClient {
    fn service_name(&self) -> String {
        self.service.clone()
    }

    fn install_rules(&self, rules: &[Rule]) -> Result<(), ProxyError> {
        let body = serde_json::to_string(rules)?;
        let request = Request::builder(Method::Post, "/rules")
            .header("Content-Type", "application/json")
            .body(body)
            .build();
        let response = self.client.send(self.addr, request)?;
        self.expect_success(&response)
    }

    fn clear_rules(&self) -> Result<(), ProxyError> {
        let request = Request::builder(Method::Delete, "/rules").build();
        let response = self.client.send(self.addr, request)?;
        self.expect_success(&response)
    }

    fn list_rules(&self) -> Result<Vec<Rule>, ProxyError> {
        let response = self.client.send(self.addr, Request::get("/rules"))?;
        self.expect_success(&response)?;
        Ok(serde_json::from_slice(response.body())?)
    }
}

//! Dynamic upstream discovery for agent routes.
//!
//! The paper's sidecar model (§6) lets dependency mappings "be
//! statically specified, or be fetched dynamically from a service
//! registry". This module defines the client half of that contract:
//! a registry endpoint answering `GET /instances/{service}` with a
//! JSON array of `"ip:port"` strings. `gremlin-mesh` provides a
//! matching `RegistryServer`; any conforming endpoint works.

use std::net::SocketAddr;

use gremlin_http::{HttpClient, Request};

use crate::error::ProxyError;

/// Fetches the instance addresses of `service` from the registry
/// endpoint at `registry`.
///
/// # Errors
///
/// * Transport failures reaching the registry.
/// * [`ProxyError::ControlFailed`] on non-success statuses.
/// * [`ProxyError::BadControlPayload`] when the body is not a JSON
///   array of socket addresses.
pub fn fetch_instances(registry: SocketAddr, service: &str) -> Result<Vec<SocketAddr>, ProxyError> {
    let client = HttpClient::new();
    let response = client.send(registry, Request::get(format!("/instances/{service}")))?;
    if !response.status().is_success() {
        return Err(ProxyError::ControlFailed {
            status: response.status().as_u16(),
            body: response.body_str(),
        });
    }
    let addresses: Vec<String> = serde_json::from_slice(response.body())?;
    addresses
        .into_iter()
        .map(|text| {
            text.parse::<SocketAddr>().map_err(|err| {
                ProxyError::BadControlPayload(format!("bad instance address {text:?}: {err}"))
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gremlin_http::{ConnInfo, HttpServer, Response, StatusCode};

    fn registry_stub(body: &'static str, status: StatusCode) -> HttpServer {
        HttpServer::bind("127.0.0.1:0", move |req: Request, _conn: &ConnInfo| {
            assert!(req.path().starts_with("/instances/"));
            Response::builder(status).body(body).build()
        })
        .unwrap()
    }

    #[test]
    fn fetches_and_parses_instances() {
        let server = registry_stub(r#"["127.0.0.1:8080", "127.0.0.1:8081"]"#, StatusCode::OK);
        let instances = fetch_instances(server.local_addr(), "svc").unwrap();
        assert_eq!(instances.len(), 2);
        assert_eq!(instances[0].port(), 8080);
    }

    #[test]
    fn empty_list_is_ok() {
        let server = registry_stub("[]", StatusCode::OK);
        assert!(fetch_instances(server.local_addr(), "svc")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn error_status_is_surfaced() {
        let server = registry_stub("nope", StatusCode::NOT_FOUND);
        assert!(matches!(
            fetch_instances(server.local_addr(), "svc"),
            Err(ProxyError::ControlFailed { status: 404, .. })
        ));
    }

    #[test]
    fn bad_payloads_are_rejected() {
        let server = registry_stub("not json", StatusCode::OK);
        assert!(matches!(
            fetch_instances(server.local_addr(), "svc"),
            Err(ProxyError::BadControlPayload(_))
        ));
        let server = registry_stub(r#"["not-an-addr"]"#, StatusCode::OK);
        assert!(matches!(
            fetch_instances(server.local_addr(), "svc"),
            Err(ProxyError::BadControlPayload(_))
        ));
    }

    #[test]
    fn unreachable_registry_errors() {
        let dead = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        assert!(fetch_instances(dead, "svc").is_err());
    }
}

//! The Gremlin agent: a fault-injecting Layer-7 sidecar proxy.
//!
//! A Gremlin agent fronts the *outbound* API calls of one
//! microservice (paper §4.1, §6). The microservice is configured to
//! send each dependency's traffic to a local listener owned by the
//! agent (`localhost:<port>` → list of remote instances); the agent
//! forwards the call, applies any matching fault-injection rules, and
//! logs an observation for every request and response it touches.

use std::io::{BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use gremlin_http::codec::{read_request, write_response};
use gremlin_http::{
    header_names, ClientConfig, ConnTracker, HttpClient, Request, Response, StatusCode, ThreadPool,
};
use gremlin_store::{now_micros, AppliedFault, Event, EventSink, Name};
use gremlin_telemetry::{Counter, Gauge, LatencyHistogram, MetricsRegistry};

use crate::error::ProxyError;
use crate::rules::{AbortKind, FaultAction, MessageSide, Rule};
use crate::table::RuleTable;

/// One outbound dependency mapping: calls for `dst` enter the agent on
/// a local listener and are forwarded to one of `upstreams`
/// (round-robin across instances).
#[derive(Debug, Clone)]
pub struct Route {
    /// Logical name of the destination service.
    pub dst: String,
    /// Addresses of the destination's instances.
    pub upstreams: Vec<SocketAddr>,
    /// Address to listen on; port 0 lets the OS pick.
    pub listen: SocketAddr,
}

impl Route {
    /// Creates a route listening on an ephemeral loopback port.
    pub fn new(dst: impl Into<String>, upstreams: Vec<SocketAddr>) -> Route {
        Route {
            dst: dst.into(),
            upstreams,
            listen: "127.0.0.1:0".parse().expect("loopback addr"),
        }
    }
}

/// Configuration for a [`GremlinAgent`].
#[derive(Debug, Clone)]
pub struct AgentConfig {
    /// Logical name of the service this agent fronts (the `src` of
    /// every call it proxies).
    pub service: String,
    /// Instance name used in observation records; defaults to
    /// `agent-{service}`.
    pub name: String,
    /// Outbound dependency routes.
    pub routes: Vec<Route>,
    /// Worker threads shared by all routes.
    pub workers: usize,
    /// HTTP client configuration for upstream calls.
    pub client: ClientConfig,
    /// Seed for the probability RNG; `None` uses OS entropy.
    pub seed: Option<u64>,
    /// Metrics registry to record into; `None` creates a private one
    /// (still reachable via [`GremlinAgent::telemetry`]).
    pub telemetry: Option<Arc<MetricsRegistry>>,
    /// Whether the agent mints span IDs and propagates the
    /// `X-Gremlin-Span`/`X-Gremlin-Parent` tracing headers (on by
    /// default; benchmarks can switch it off to measure the
    /// propagation overhead).
    pub tracing: bool,
}

impl AgentConfig {
    /// Starts a configuration for the agent fronting `service`.
    pub fn new(service: impl Into<String>) -> AgentConfig {
        let service = service.into();
        AgentConfig {
            name: format!("agent-{service}"),
            service,
            routes: Vec::new(),
            workers: 16,
            client: ClientConfig::default(),
            seed: None,
            telemetry: None,
            tracing: true,
        }
    }

    /// Adds a route to `dst` served by `upstreams`, listening on an
    /// ephemeral port.
    pub fn route(mut self, dst: impl Into<String>, upstreams: Vec<SocketAddr>) -> AgentConfig {
        self.routes.push(Route::new(dst, upstreams));
        self
    }

    /// Adds a route to `dst` whose upstream instances are fetched
    /// dynamically from the service-registry endpoint at
    /// `registry` (§6: mappings "fetched dynamically from a service
    /// registry").
    ///
    /// # Errors
    ///
    /// Returns an error when the registry is unreachable, answers
    /// with a failure, or knows no instances of `dst`.
    pub fn route_discovered(
        self,
        dst: impl Into<String>,
        registry: SocketAddr,
    ) -> Result<AgentConfig, ProxyError> {
        let dst = dst.into();
        let upstreams = crate::discovery::fetch_instances(registry, &dst)?;
        if upstreams.is_empty() {
            return Err(ProxyError::UnknownDestination(dst));
        }
        Ok(self.route(dst, upstreams))
    }

    /// Overrides the agent instance name.
    pub fn name(mut self, name: impl Into<String>) -> AgentConfig {
        self.name = name.into();
        self
    }

    /// Sets the worker-thread count.
    pub fn workers(mut self, workers: usize) -> AgentConfig {
        self.workers = workers;
        self
    }

    /// Sets the upstream HTTP client configuration.
    pub fn client(mut self, client: ClientConfig) -> AgentConfig {
        self.client = client;
        self
    }

    /// Seeds the probability RNG for reproducible fault sampling.
    pub fn seed(mut self, seed: u64) -> AgentConfig {
        self.seed = Some(seed);
        self
    }

    /// Records the agent's metrics into a shared registry instead of
    /// a private one.
    pub fn telemetry(mut self, registry: &Arc<MetricsRegistry>) -> AgentConfig {
        self.telemetry = Some(Arc::clone(registry));
        self
    }

    /// Enables or disables causal-tracing header propagation.
    pub fn tracing(mut self, enabled: bool) -> AgentConfig {
        self.tracing = enabled;
        self
    }
}

struct RouteState {
    dst: Name,
    local_addr: SocketAddr,
    upstreams: Vec<SocketAddr>,
    next_upstream: AtomicUsize,
    // Pre-registered telemetry handles: the hot path records through
    // these Arcs without ever touching the registry lock.
    requests: Arc<Counter>,
    upstream_latency: Arc<LatencyHistogram>,
    upstream_errors: Arc<Counter>,
}

impl RouteState {
    fn new(
        dst: Name,
        local_addr: SocketAddr,
        upstreams: Vec<SocketAddr>,
        service: &str,
        registry: &MetricsRegistry,
    ) -> RouteState {
        let labels = &[("service", service), ("dst", dst.as_str())];
        RouteState {
            requests: registry.counter(
                "gremlin_proxy_requests_total",
                "Requests proxied by the agent, by destination.",
                labels,
            ),
            upstream_latency: registry.histogram(
                "gremlin_proxy_upstream_latency_seconds",
                "Latency of successful upstream calls (excludes injected request-side delays).",
                labels,
            ),
            upstream_errors: registry.counter(
                "gremlin_proxy_upstream_errors_total",
                "Upstream calls that failed (timeout or connection error).",
                labels,
            ),
            dst,
            local_addr,
            upstreams,
            next_upstream: AtomicUsize::new(0),
        }
    }
}

/// Agent-wide telemetry handles shared by every route.
struct AgentMetrics {
    faults_abort: Arc<Counter>,
    faults_abort_reset: Arc<Counter>,
    faults_delay: Arc<Counter>,
    faults_modify: Arc<Counter>,
    open_connections: Arc<Gauge>,
    rule_match: Arc<LatencyHistogram>,
}

impl AgentMetrics {
    fn new(service: &str, registry: &MetricsRegistry) -> AgentMetrics {
        let fault = |kind: &str| {
            registry.counter(
                "gremlin_proxy_faults_total",
                "Faults injected by the agent, by fault type.",
                &[("service", service), ("type", kind)],
            )
        };
        AgentMetrics {
            faults_abort: fault("abort"),
            faults_abort_reset: fault("abort_reset"),
            faults_delay: fault("delay"),
            faults_modify: fault("modify"),
            open_connections: registry.gauge(
                "gremlin_proxy_open_connections",
                "Proxy connections currently being served.",
                &[("service", service)],
            ),
            rule_match: registry.histogram(
                "gremlin_proxy_rule_match_seconds",
                "Time spent matching one message against the rule table.",
                &[("service", service)],
            ),
        }
    }

    fn count_fault(&self, fault: &AppliedFault) {
        match fault {
            AppliedFault::Abort { .. } => self.faults_abort.inc(),
            AppliedFault::AbortReset => self.faults_abort_reset.inc(),
            AppliedFault::Delay { .. } => self.faults_delay.inc(),
            AppliedFault::Modify => self.faults_modify.inc(),
        }
    }
}

struct Inner {
    service: Name,
    name: Name,
    table: RuleTable,
    sink: Arc<dyn EventSink>,
    client: HttpClient,
    shutdown: AtomicBool,
    tracker: ConnTracker,
    registry: Arc<MetricsRegistry>,
    metrics: AgentMetrics,
    tracing: bool,
}

/// A running Gremlin agent.
///
/// Dropping the agent stops its listeners and joins all threads.
///
/// # Examples
///
/// ```no_run
/// use std::sync::Arc;
/// use gremlin_proxy::{AgentConfig, GremlinAgent};
/// use gremlin_store::EventStore;
///
/// # fn main() -> Result<(), gremlin_proxy::ProxyError> {
/// let store = EventStore::shared();
/// let upstream = "127.0.0.1:9001".parse().unwrap();
/// let agent = GremlinAgent::start(
///     AgentConfig::new("serviceA").route("serviceB", vec![upstream]),
///     store.clone(),
/// )?;
/// // serviceA should now send serviceB traffic here:
/// let proxy_addr = agent.route_addr("serviceB").unwrap();
/// # let _ = proxy_addr;
/// # Ok(())
/// # }
/// ```
pub struct GremlinAgent {
    inner: Arc<Inner>,
    routes: Vec<Arc<RouteState>>,
    accept_threads: Vec<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for GremlinAgent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GremlinAgent")
            .field("service", &self.inner.service)
            .field("name", &self.inner.name)
            .field("routes", &self.routes.len())
            .finish()
    }
}

impl GremlinAgent {
    /// Binds every route listener and starts proxying.
    ///
    /// # Errors
    ///
    /// Returns an error if any listener fails to bind.
    pub fn start(
        config: AgentConfig,
        sink: Arc<dyn EventSink>,
    ) -> Result<GremlinAgent, ProxyError> {
        let table = match config.seed {
            Some(seed) => RuleTable::with_seed(seed),
            None => RuleTable::new(),
        };
        let registry = config
            .telemetry
            .clone()
            .unwrap_or_else(MetricsRegistry::shared);
        let metrics = AgentMetrics::new(&config.service, &registry);
        table.bind_telemetry(&registry, &config.service);
        let inner = Arc::new(Inner {
            service: Name::from(config.service.as_str()),
            name: Name::from(config.name.as_str()),
            table,
            sink,
            client: HttpClient::with_config(config.client.clone()),
            shutdown: AtomicBool::new(false),
            tracker: ConnTracker::new(),
            registry,
            metrics,
            tracing: config.tracing,
        });

        let pool = Arc::new(ThreadPool::new(config.workers.max(1), &config.name));
        let mut routes = Vec::new();
        let mut accept_threads = Vec::new();
        for route in &config.routes {
            let listener = TcpListener::bind(route.listen)?;
            let local_addr = listener.local_addr()?;
            let state = Arc::new(RouteState::new(
                Name::from(route.dst.as_str()),
                local_addr,
                route.upstreams.clone(),
                &config.service,
                &inner.registry,
            ));
            routes.push(Arc::clone(&state));

            let inner_for_thread = Arc::clone(&inner);
            let pool_for_thread = Arc::clone(&pool);
            let thread_name = format!("{}-{}", config.name, route.dst);
            let handle = thread::Builder::new()
                .name(thread_name)
                .spawn(move || {
                    // Blocking accept: zero CPU while idle. Shutdown
                    // wakes the thread with a throwaway connection to
                    // `local_addr` (see `shutdown_impl`), after which
                    // the flag check below exits the loop.
                    loop {
                        match listener.accept() {
                            Ok((stream, _)) => {
                                if inner_for_thread.shutdown.load(Ordering::SeqCst) {
                                    break;
                                }
                                let inner = Arc::clone(&inner_for_thread);
                                let state = Arc::clone(&state);
                                pool_for_thread.execute(move || {
                                    let token = inner.tracker.register(&stream);
                                    inner.metrics.open_connections.inc();
                                    let _ = serve_proxy_connection(stream, &state, &inner);
                                    inner.metrics.open_connections.dec();
                                    inner.tracker.deregister(token);
                                });
                            }
                            Err(_) => {
                                if inner_for_thread.shutdown.load(Ordering::SeqCst) {
                                    break;
                                }
                                // Transient accept failure (e.g. EMFILE):
                                // back off briefly rather than spin.
                                thread::sleep(Duration::from_millis(10));
                            }
                        }
                    }
                    inner_for_thread.tracker.shutdown_all();
                })
                .map_err(ProxyError::Io)?;
            accept_threads.push(handle);
        }

        Ok(GremlinAgent {
            inner,
            routes,
            accept_threads,
        })
    }

    /// Logical name of the service this agent fronts.
    pub fn service(&self) -> &str {
        &self.inner.service
    }

    /// Instance name reported in observations.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Local address to which the fronted service should send traffic
    /// destined for `dst`.
    pub fn route_addr(&self, dst: &str) -> Option<SocketAddr> {
        self.routes
            .iter()
            .find(|r| r.dst == dst)
            .map(|r| r.local_addr)
    }

    /// Every `(dst, local_addr)` mapping the agent serves.
    pub fn routes(&self) -> Vec<(String, SocketAddr)> {
        self.routes
            .iter()
            .map(|r| (r.dst.to_string(), r.local_addr))
            .collect()
    }

    /// Installs fault-injection rules (Table 2 interface).
    ///
    /// # Errors
    ///
    /// Returns a validation error and installs nothing if any rule is
    /// malformed.
    pub fn install_rules(&self, rules: Vec<Rule>) -> Result<(), ProxyError> {
        self.inner.table.install(rules)
    }

    /// Removes every installed rule.
    pub fn clear_rules(&self) {
        self.inner.table.clear();
    }

    /// Snapshot of the installed rules.
    pub fn rules(&self) -> Vec<Rule> {
        self.inner.table.rules()
    }

    /// Total messages checked against the rule table.
    pub fn rule_checks(&self) -> u64 {
        self.inner.table.checks()
    }

    /// Total messages that matched a rule.
    pub fn rule_hits(&self) -> u64 {
        self.inner.table.hits()
    }

    /// Per-rule hit counts, parallel to [`GremlinAgent::rules`].
    pub fn rule_hit_counts(&self) -> Vec<u64> {
        self.inner.table.rule_hit_counts()
    }

    /// The metrics registry this agent records into (the one passed
    /// via [`AgentConfig::telemetry`], or a private one).
    pub fn telemetry(&self) -> &Arc<MetricsRegistry> {
        &self.inner.registry
    }

    /// Stops listeners and joins worker threads. Equivalent to
    /// dropping the agent, provided as an explicit synchronization
    /// point.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        if !self.inner.shutdown.swap(true, Ordering::SeqCst) {
            // Each accept thread is parked in a blocking `accept()`;
            // a throwaway loopback connection wakes it so it can see
            // the flag and exit.
            for route in &self.routes {
                let _ = TcpStream::connect_timeout(&route.local_addr, Duration::from_millis(200));
            }
        }
        self.inner.tracker.shutdown_all();
        for handle in self.accept_threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for GremlinAgent {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

fn serve_proxy_connection(
    stream: TcpStream,
    route: &RouteState,
    inner: &Inner,
) -> Result<(), ProxyError> {
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.set_nodelay(true)?;
    // One reader and one writer for the connection's whole lifetime:
    // the per-response `try_clone` (a dup(2) syscall) and BufWriter
    // allocation used to dominate small-message proxy overhead.
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        let request = match read_request(&mut reader) {
            Ok(request) => request,
            Err(_) => return Ok(()),
        };
        let close_requested = request.headers().connection_close();
        match process_message(request, route, inner) {
            Some(response) => {
                let close = close_requested || response.headers().connection_close();
                write_response(&mut writer, &response)?;
                if close {
                    return Ok(());
                }
            }
            None => {
                // TCP-level abort (Error = -1): terminate abruptly,
                // returning no application-level response.
                let _ = writer.get_ref().shutdown(Shutdown::Both);
                return Ok(());
            }
        }
    }
}

/// Proxies one request, applying fault-injection rules. Returns
/// `None` when the connection must be reset instead of answered.
fn process_message(request: Request, route: &RouteState, inner: &Inner) -> Option<Response> {
    let started = Instant::now();
    route.requests.inc();
    // Interned once: every later use (three events, two header echoes)
    // is an `Arc` refcount bump instead of a fresh String.
    let request_id = request.request_id().map(Name::from);
    // Causal tracing: the incoming X-Gremlin-Span (stamped by the
    // calling service from the span its own agent minted) becomes
    // this call's parent; a fresh span ID identifies the call itself.
    let (span_id, parent_id) = if inner.tracing {
        let parent = request.span_id().map(Name::from);
        (Some(Name::from(crate::rng::mint_span_id())), parent)
    } else {
        (None, None)
    };
    let src = inner.service.as_str();
    let dst = route.dst.as_str();

    let match_started = Instant::now();
    let request_rule =
        inner
            .table
            .match_message(src, dst, MessageSide::Request, request_id.as_deref());
    inner.metrics.rule_match.record(match_started.elapsed());

    // --- Log the request observation -------------------------------
    let mut request_event = Event::request(
        inner.service.clone(),
        route.dst.clone(),
        request.method().as_str(),
        request.target(),
    )
    .with_agent(inner.name.clone());
    request_event.request_id = request_id.clone();
    request_event.span_id = span_id.clone();
    request_event.parent_id = parent_id.clone();
    request_event.timestamp_us = now_micros();
    if let Some(rule) = &request_rule {
        request_event.fault = Some(applied_fault(&rule.action));
    }
    inner.sink.record(request_event);

    // --- Apply the request-side action -----------------------------
    let mut request = request;
    let mut request_side_fault: Option<AppliedFault> = None;
    if let Some(rule) = &request_rule {
        match &rule.action {
            FaultAction::Abort { abort } => {
                return finish_abort(
                    *abort,
                    started,
                    &request_id,
                    &span_id,
                    &parent_id,
                    route,
                    inner,
                );
            }
            FaultAction::Delay { interval } => {
                thread::sleep(*interval);
                request_side_fault = Some(AppliedFault::Delay {
                    delay_us: interval.as_micros() as u64,
                });
            }
            FaultAction::Modify {
                search,
                replace_bytes,
            } => {
                let rewritten = replace_bytes_in(request.body(), search, replace_bytes);
                request.set_body(rewritten);
                request_side_fault = Some(AppliedFault::Modify);
            }
        }
    }
    if let Some(fault) = &request_side_fault {
        inner.metrics.count_fault(fault);
    }

    // --- Forward upstream -------------------------------------------
    let upstream = pick_upstream(route);
    let mut forwarded = prepare_forwarded(&request);
    if let Some(span) = &span_id {
        // The upstream (and any service behind it) sees this call's
        // span as the current span; the caller's span rides along as
        // the parent so the next hop's agent can record the edge.
        forwarded.set_span_id(span.as_str());
        match &parent_id {
            Some(parent) => forwarded.set_parent_id(parent.as_str()),
            None => {
                forwarded.headers_mut().remove(header_names::PARENT_ID);
            }
        }
    }
    let send_started = Instant::now();
    let result = match upstream {
        Some(addr) => inner.client.send(addr, forwarded),
        None => Err(gremlin_http::HttpError::Io(std::io::Error::other(
            "route has no upstream instances",
        ))),
    };

    let mut response = match result {
        Ok(response) => {
            route.upstream_latency.record(send_started.elapsed());
            response
        }
        Err(err) => {
            route.upstream_errors.inc();
            // Genuine upstream failure: surface it the way service
            // proxies do — 504 on timeout, 502 otherwise.
            let status = if err.is_timeout() {
                StatusCode::GATEWAY_TIMEOUT
            } else {
                StatusCode::BAD_GATEWAY
            };
            let mut event = Event::response(
                inner.service.clone(),
                route.dst.clone(),
                status.as_u16(),
                started.elapsed(),
            )
            .with_agent(inner.name.clone());
            event.request_id = request_id.clone();
            event.span_id = span_id.clone();
            event.parent_id = parent_id.clone();
            if let Some(fault) = &request_side_fault {
                event.fault = Some(fault.clone());
            }
            inner.sink.record(event);
            let mut resp = Response::error(status);
            if let Some(id) = &request_id {
                resp.headers_mut()
                    .insert(header_names::REQUEST_ID, id.clone());
            }
            if let Some(span) = &span_id {
                resp.headers_mut()
                    .insert(header_names::SPAN_ID, span.clone());
            }
            return Some(resp);
        }
    };

    // --- Apply the response-side action ----------------------------
    let match_started = Instant::now();
    let response_rule =
        inner
            .table
            .match_message(src, dst, MessageSide::Response, request_id.as_deref());
    inner.metrics.rule_match.record(match_started.elapsed());
    let mut response_side_fault: Option<AppliedFault> = None;
    if let Some(rule) = &response_rule {
        match &rule.action {
            FaultAction::Abort { abort } => {
                return finish_abort(
                    *abort,
                    started,
                    &request_id,
                    &span_id,
                    &parent_id,
                    route,
                    inner,
                );
            }
            FaultAction::Delay { interval } => {
                thread::sleep(*interval);
                response_side_fault = Some(AppliedFault::Delay {
                    delay_us: interval.as_micros() as u64,
                });
            }
            FaultAction::Modify {
                search,
                replace_bytes,
            } => {
                let rewritten = replace_bytes_in(response.body(), search, replace_bytes);
                response.set_body(rewritten);
                response_side_fault = Some(AppliedFault::Modify);
            }
        }
    }
    if let Some(fault) = &response_side_fault {
        inner.metrics.count_fault(fault);
    }

    // --- Log the response observation -------------------------------
    let mut event = Event::response(
        inner.service.clone(),
        route.dst.clone(),
        response.status().as_u16(),
        started.elapsed(),
    )
    .with_agent(inner.name.clone());
    event.request_id = request_id.clone();
    event.span_id = span_id.clone();
    event.parent_id = parent_id.clone();
    event.fault = response_side_fault.or(request_side_fault);
    if let Some(fault) = &event.fault {
        response
            .headers_mut()
            .insert(header_names::GREMLIN_ACTION, fault.to_string());
    }
    if let Some(span) = &span_id {
        response
            .headers_mut()
            .insert(header_names::SPAN_ID, span.clone());
    }
    inner.sink.record(event);
    Some(response)
}

/// Synthesizes the caller-visible outcome of an Abort action and logs
/// the response observation. Returns `None` for TCP resets.
fn finish_abort(
    abort: AbortKind,
    started: Instant,
    request_id: &Option<Name>,
    span_id: &Option<Name>,
    parent_id: &Option<Name>,
    route: &RouteState,
    inner: &Inner,
) -> Option<Response> {
    let (status_code, fault) = match abort {
        AbortKind::Status(code) => (code, AppliedFault::Abort { status: code }),
        AbortKind::Reset => (0, AppliedFault::AbortReset),
    };
    inner.metrics.count_fault(&fault);
    let mut event = Event::response(
        inner.service.clone(),
        route.dst.clone(),
        status_code,
        started.elapsed(),
    )
    .with_agent(inner.name.clone())
    .with_fault(fault.clone());
    event.request_id = request_id.clone();
    event.span_id = span_id.clone();
    event.parent_id = parent_id.clone();
    inner.sink.record(event);

    match abort {
        AbortKind::Status(code) => {
            let status = StatusCode::new(code).unwrap_or(StatusCode::SERVICE_UNAVAILABLE);
            let mut response = Response::error(status);
            response
                .headers_mut()
                .insert(header_names::GREMLIN_ACTION, fault.to_string());
            if let Some(id) = request_id {
                response
                    .headers_mut()
                    .insert(header_names::REQUEST_ID, id.clone());
            }
            if let Some(span) = span_id {
                response
                    .headers_mut()
                    .insert(header_names::SPAN_ID, span.clone());
            }
            Some(response)
        }
        AbortKind::Reset => None,
    }
}

fn pick_upstream(route: &RouteState) -> Option<SocketAddr> {
    if route.upstreams.is_empty() {
        return None;
    }
    let index = route.next_upstream.fetch_add(1, Ordering::Relaxed) % route.upstreams.len();
    Some(route.upstreams[index])
}

/// Clones the request for forwarding, stripping hop-by-hop headers so
/// the upstream client re-derives them.
fn prepare_forwarded(request: &Request) -> Request {
    let mut forwarded = request.clone();
    forwarded.headers_mut().remove(header_names::HOST);
    forwarded.headers_mut().remove(header_names::CONNECTION);
    forwarded
}

/// Replaces every occurrence of `search` in `body` with `replace`.
fn replace_bytes_in(body: &[u8], search: &str, replace: &str) -> Vec<u8> {
    let search = search.as_bytes();
    if search.is_empty() {
        return body.to_vec();
    }
    let mut result = Vec::with_capacity(body.len());
    let mut i = 0;
    while i < body.len() {
        if body[i..].starts_with(search) {
            result.extend_from_slice(replace.as_bytes());
            i += search.len();
        } else {
            result.push(body[i]);
            i += 1;
        }
    }
    result
}

fn applied_fault(action: &FaultAction) -> AppliedFault {
    match action {
        FaultAction::Abort {
            abort: AbortKind::Status(code),
        } => AppliedFault::Abort { status: *code },
        FaultAction::Abort {
            abort: AbortKind::Reset,
        } => AppliedFault::AbortReset,
        FaultAction::Delay { interval } => AppliedFault::Delay {
            delay_us: interval.as_micros() as u64,
        },
        FaultAction::Modify { .. } => AppliedFault::Modify,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replace_bytes_basic() {
        assert_eq!(
            replace_bytes_in(b"key=value", "key", "badkey"),
            b"badkey=value"
        );
        assert_eq!(replace_bytes_in(b"aaa", "a", "b"), b"bbb");
        assert_eq!(replace_bytes_in(b"none", "x", "y"), b"none");
        assert_eq!(replace_bytes_in(b"", "x", "y"), b"");
        assert_eq!(replace_bytes_in(b"abc", "", "y"), b"abc");
        assert_eq!(replace_bytes_in(b"abab", "ab", ""), b"");
    }

    #[test]
    fn applied_fault_mapping() {
        assert_eq!(
            applied_fault(&FaultAction::Abort {
                abort: AbortKind::Status(503)
            }),
            AppliedFault::Abort { status: 503 }
        );
        assert_eq!(
            applied_fault(&FaultAction::Abort {
                abort: AbortKind::Reset
            }),
            AppliedFault::AbortReset
        );
        assert_eq!(
            applied_fault(&FaultAction::Delay {
                interval: Duration::from_millis(3)
            }),
            AppliedFault::Delay { delay_us: 3000 }
        );
        assert_eq!(
            applied_fault(&FaultAction::Modify {
                search: "a".into(),
                replace_bytes: "b".into()
            }),
            AppliedFault::Modify
        );
    }

    #[test]
    fn prepare_forwarded_strips_hop_headers() {
        let req = Request::builder(gremlin_http::Method::Get, "/x")
            .header("Host", "proxy")
            .header("Connection", "close")
            .header("X-Keep", "1")
            .build();
        let fwd = prepare_forwarded(&req);
        assert!(!fwd.headers().contains("host"));
        assert!(!fwd.headers().contains("connection"));
        assert_eq!(fwd.headers().get("x-keep"), Some("1"));
    }

    fn test_route(upstreams: Vec<SocketAddr>) -> RouteState {
        RouteState::new(
            "b".into(),
            "127.0.0.1:1".parse().unwrap(),
            upstreams,
            "a",
            &MetricsRegistry::new(),
        )
    }

    #[test]
    fn route_round_robin() {
        let route = test_route(vec![
            "127.0.0.1:10".parse().unwrap(),
            "127.0.0.1:11".parse().unwrap(),
        ]);
        let a = pick_upstream(&route).unwrap();
        let b = pick_upstream(&route).unwrap();
        let c = pick_upstream(&route).unwrap();
        assert_ne!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn empty_route_has_no_upstream() {
        let route = test_route(vec![]);
        assert!(pick_upstream(&route).is_none());
    }
}

//! Error type for the Gremlin agent.

use std::error::Error as StdError;
use std::fmt;
use std::io;

use gremlin_http::HttpError;

/// Errors produced by the Gremlin agent and its control client.
#[derive(Debug)]
#[non_exhaustive]
pub enum ProxyError {
    /// A rule failed validation.
    InvalidRule(String),
    /// A socket operation failed.
    Io(io::Error),
    /// An HTTP exchange with an upstream or control endpoint failed.
    Http(HttpError),
    /// The agent has no route for the requested destination service.
    UnknownDestination(String),
    /// A control-plane payload could not be decoded.
    BadControlPayload(String),
    /// The control endpoint answered with an unexpected status.
    ControlFailed {
        /// The status code returned.
        status: u16,
        /// The response body, for diagnostics.
        body: String,
    },
}

impl fmt::Display for ProxyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProxyError::InvalidRule(msg) => write!(f, "invalid rule: {msg}"),
            ProxyError::Io(err) => write!(f, "i/o error: {err}"),
            ProxyError::Http(err) => write!(f, "http error: {err}"),
            ProxyError::UnknownDestination(dst) => {
                write!(f, "no route configured for destination {dst:?}")
            }
            ProxyError::BadControlPayload(msg) => write!(f, "bad control payload: {msg}"),
            ProxyError::ControlFailed { status, body } => {
                write!(f, "control request failed with status {status}: {body}")
            }
        }
    }
}

impl StdError for ProxyError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            ProxyError::Io(err) => Some(err),
            ProxyError::Http(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for ProxyError {
    fn from(err: io::Error) -> Self {
        ProxyError::Io(err)
    }
}

impl From<HttpError> for ProxyError {
    fn from(err: HttpError) -> Self {
        ProxyError::Http(err)
    }
}

impl From<serde_json::Error> for ProxyError {
    fn from(err: serde_json::Error) -> Self {
        ProxyError::BadControlPayload(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for err in [
            ProxyError::InvalidRule("p".into()),
            ProxyError::Io(io::Error::other("x")),
            ProxyError::Http(HttpError::Timeout),
            ProxyError::UnknownDestination("d".into()),
            ProxyError::BadControlPayload("b".into()),
            ProxyError::ControlFailed {
                status: 500,
                body: "oops".into(),
            },
        ] {
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn sources() {
        assert!(ProxyError::Io(io::Error::other("x")).source().is_some());
        assert!(ProxyError::Http(HttpError::Timeout).source().is_some());
        assert!(ProxyError::InvalidRule("x".into()).source().is_none());
    }

    #[test]
    fn conversions() {
        let _: ProxyError = io::Error::other("x").into();
        let _: ProxyError = HttpError::Timeout.into();
        let bad: Result<gremlin_store::Event, _> = serde_json::from_str("garbage");
        let _: ProxyError = bad.unwrap_err().into();
    }
}

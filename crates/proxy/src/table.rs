//! The agent's installed-rule table and its matching logic.
//!
//! # Hot-path design
//!
//! `match_message` runs for every proxied message, so the table is
//! built for reads:
//!
//! * **Snapshot publication** — the installed rules live in an
//!   immutable [`RuleIndex`] behind an `Arc`. Readers clone the `Arc`
//!   (one atomic increment) and match entirely lock-free; `install`
//!   and `clear` build a fresh index and swap the pointer, so a
//!   concurrent reader always sees a complete rule set, never a torn
//!   one.
//! * **Edge indexing** — rules with concrete `src`/`dst` are bucketed
//!   by `(src, dst, side)` in nested hash maps keyed by `Box<str>`, so
//!   lookup borrows the incoming `&str`s without allocating. Rules
//!   addressing `"*"` (any service) go to a small fallback list that is
//!   merged into evaluation by installation order, preserving
//!   first-match-wins semantics.
//! * **Pattern pre-dispatch** — within a bucket, rules are sub-indexed
//!   by the first literal byte of their request-ID pattern. A message
//!   whose ID starts with `t` only ever evaluates rules whose pattern
//!   could match a `t…` ID (plus patterns with no leading literal,
//!   such as `*`). The paper's Figure 8 worst case — hundreds of
//!   installed rules, none matching — collapses from an O(rules) glob
//!   scan to two hash lookups.
//! * **Lock-free sampling** — probability coin flips draw from
//!   per-thread RNG streams (see [`crate::rng`]) instead of a global
//!   `Mutex<StdRng>`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use gremlin_telemetry::{Counter, MetricsRegistry};
use parking_lot::RwLock;

use crate::error::ProxyError;
use crate::rng;
use crate::rules::{MessageSide, Rule};

/// The set of fault-injection rules installed on one Gremlin agent,
/// with first-match-wins evaluation and per-rule probability
/// sampling.
///
/// Matching walks rules in installation order and applies the first
/// rule whose edge, side and request-ID pattern match *and* whose
/// probability coin-flip succeeds; later rules then act as fallbacks.
/// (To split traffic 25% abort / 75% delay, install an abort rule
/// with probability 0.25 followed by a delay rule with probability 1.)
///
/// # Examples
///
/// ```
/// use gremlin_proxy::{AbortKind, MessageSide, Rule, RuleTable};
///
/// let table = RuleTable::new();
/// table
///     .install(vec![Rule::abort("a", "b", AbortKind::Status(503)).with_pattern("test-*")])
///     .unwrap();
/// let hit = table.match_message("a", "b", MessageSide::Request, Some("test-42"));
/// assert!(hit.is_some());
/// let miss = table.match_message("a", "b", MessageSide::Request, Some("prod-42"));
/// assert!(miss.is_none());
/// ```
#[derive(Debug)]
pub struct RuleTable {
    /// The published snapshot; swapped whole on install/clear.
    index: RwLock<Arc<RuleIndex>>,
    /// Base seed for probability sampling streams.
    seed: u64,
    /// Process-unique ID keying this table's per-thread RNG streams.
    stream: u64,
    checks: AtomicU64,
    hits: AtomicU64,
    index_hits: AtomicU64,
    index_misses: AtomicU64,
    telemetry: OnceLock<TableTelemetry>,
}

/// One installed rule plus its bookkeeping, shared between the
/// in-order list and the index buckets.
#[derive(Debug, Clone)]
struct Entry {
    /// Installation sequence number; evaluation order across buckets.
    seq: u32,
    rule: Arc<Rule>,
    hits: Arc<AtomicU64>,
}

/// Per-`(src, dst, side)` bucket, sub-indexed by the first literal
/// byte of each rule's request-ID pattern.
#[derive(Debug, Default)]
struct SideBucket {
    /// Rules whose pattern can only match IDs starting with this byte.
    by_first: HashMap<u8, Vec<Entry>>,
    /// Rules whose pattern has no leading literal byte (`*`, `?x`, …);
    /// evaluated for every ID (and for messages without an ID).
    unconstrained: Vec<Entry>,
}

/// An immutable, published snapshot of the installed rules.
#[derive(Debug, Default)]
struct RuleIndex {
    /// src -> dst -> [request bucket, response bucket].
    edges: HashMap<Box<str>, HashMap<Box<str>, [SideBucket; 2]>>,
    /// Rules with `src == "*"` or `dst == "*"`, per side, in
    /// installation order; merged into every lookup.
    wildcard: [Vec<Entry>; 2],
    /// Every rule in installation order (serves `rules()` and
    /// per-rule hit counts).
    all: Vec<Entry>,
}

fn side_index(side: MessageSide) -> usize {
    match side {
        MessageSide::Request => 0,
        MessageSide::Response => 1,
    }
}

/// The first byte an ID must start with for `rule`'s pattern to match,
/// or `None` when the pattern has no leading literal.
fn leading_literal(rule: &Rule) -> Option<u8> {
    use gremlin_store::Pattern;
    match &rule.pattern {
        Pattern::Any => None,
        Pattern::Exact(text) | Pattern::Prefix(text) => text.as_bytes().first().copied(),
        Pattern::Glob(glob) => glob
            .as_bytes()
            .first()
            .copied()
            .filter(|byte| *byte != b'*' && *byte != b'?'),
    }
}

impl RuleIndex {
    fn build(all: Vec<Entry>) -> RuleIndex {
        let mut index = RuleIndex {
            all,
            ..RuleIndex::default()
        };
        for entry in &index.all {
            let rule = &entry.rule;
            let side = side_index(rule.on);
            if rule.src == "*" || rule.dst == "*" {
                index.wildcard[side].push(entry.clone());
                continue;
            }
            let bucket = &mut index
                .edges
                .entry(rule.src.as_str().into())
                .or_default()
                .entry(rule.dst.as_str().into())
                .or_default()[side];
            match leading_literal(rule) {
                Some(byte) => bucket.by_first.entry(byte).or_default().push(entry.clone()),
                None => bucket.unconstrained.push(entry.clone()),
            }
        }
        index
    }
}

#[derive(Debug)]
struct TableTelemetry {
    lookup_hits: Arc<Counter>,
    lookup_misses: Arc<Counter>,
}

impl Default for RuleTable {
    fn default() -> Self {
        RuleTable::new()
    }
}

impl RuleTable {
    /// Creates an empty table with an entropy-derived sampling seed.
    pub fn new() -> RuleTable {
        RuleTable::with_seed(rng::entropy_seed())
    }

    /// Creates an empty table with a deterministic sampling seed —
    /// single-threaded probability sampling becomes reproducible,
    /// which tests rely on.
    pub fn with_seed(seed: u64) -> RuleTable {
        RuleTable {
            index: RwLock::new(Arc::new(RuleIndex::default())),
            seed,
            stream: rng::next_stream_id(),
            checks: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            index_hits: AtomicU64::new(0),
            index_misses: AtomicU64::new(0),
            telemetry: OnceLock::new(),
        }
    }

    /// Starts counting rule-index lookups (hit = the message's edge
    /// had a bucket) into `registry`, labelled by `service`. Only the
    /// first call binds; later calls are ignored.
    pub fn bind_telemetry(&self, registry: &MetricsRegistry, service: &str) {
        let _ = self.telemetry.set(TableTelemetry {
            lookup_hits: registry.counter(
                "gremlin_proxy_rule_index_lookups_total",
                "Rule-index lookups by whether the message's edge had installed rules.",
                &[("service", service), ("result", "hit")],
            ),
            lookup_misses: registry.counter(
                "gremlin_proxy_rule_index_lookups_total",
                "Rule-index lookups by whether the message's edge had installed rules.",
                &[("service", service), ("result", "miss")],
            ),
        });
    }

    /// Appends `rules` after validating each, publishing a new
    /// snapshot. Concurrent matches see either the previous or the new
    /// rule set, never a partial one.
    ///
    /// # Errors
    ///
    /// Returns the first validation failure; in that case **no** rule
    /// from the batch is installed.
    pub fn install(&self, rules: Vec<Rule>) -> Result<(), ProxyError> {
        for rule in &rules {
            rule.validate()?;
        }
        let mut guard = self.index.write();
        let mut all = guard.all.clone();
        let base = all.len() as u32;
        all.extend(rules.into_iter().enumerate().map(|(offset, rule)| Entry {
            seq: base + offset as u32,
            rule: Arc::new(rule),
            hits: Arc::new(AtomicU64::new(0)),
        }));
        *guard = Arc::new(RuleIndex::build(all));
        Ok(())
    }

    /// Removes every installed rule.
    pub fn clear(&self) {
        *self.index.write() = Arc::new(RuleIndex::default());
    }

    fn snapshot(&self) -> Arc<RuleIndex> {
        self.index.read().clone()
    }

    /// A snapshot of the installed rules in evaluation order.
    pub fn rules(&self) -> Vec<Rule> {
        self.snapshot()
            .all
            .iter()
            .map(|entry| (*entry.rule).clone())
            .collect()
    }

    /// Per-rule hit counts, parallel to [`RuleTable::rules`] — which
    /// rule fired how often, for recipe debugging.
    pub fn rule_hit_counts(&self) -> Vec<u64> {
        self.snapshot()
            .all
            .iter()
            .map(|entry| entry.hits.load(Ordering::Relaxed))
            .collect()
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.snapshot().all.len()
    }

    /// Returns `true` if no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Evaluates the table against one message, returning the rule to
    /// apply (if any).
    ///
    /// Every call increments the check counter; a returned rule
    /// increments the hit counter. These counters feed the proxy
    /// overhead benchmarks (paper Figure 8).
    pub fn match_message(
        &self,
        src: &str,
        dst: &str,
        side: MessageSide,
        request_id: Option<&str>,
    ) -> Option<Rule> {
        self.checks.fetch_add(1, Ordering::Relaxed);
        let index = self.snapshot();
        let side_idx = side_index(side);
        let bucket = index
            .edges
            .get(src)
            .and_then(|dsts| dsts.get(dst))
            .map(|sides| &sides[side_idx]);
        if bucket.is_some() {
            self.index_hits.fetch_add(1, Ordering::Relaxed);
            if let Some(telemetry) = self.telemetry.get() {
                telemetry.lookup_hits.inc();
            }
        } else {
            self.index_misses.fetch_add(1, Ordering::Relaxed);
            if let Some(telemetry) = self.telemetry.get() {
                telemetry.lookup_misses.inc();
            }
        }
        const EMPTY: &[Entry] = &[];
        let (by_first, unconstrained) = match bucket {
            Some(bucket) => {
                let by_first = request_id
                    .and_then(|id| id.as_bytes().first())
                    .and_then(|byte| bucket.by_first.get(byte))
                    .map(Vec::as_slice)
                    .unwrap_or(EMPTY);
                (by_first, bucket.unconstrained.as_slice())
            }
            None => (EMPTY, EMPTY),
        };
        // Merge the three candidate lists in installation order so
        // first-match-wins holds across the index split.
        let lists: [&[Entry]; 3] = [by_first, unconstrained, index.wildcard[side_idx].as_slice()];
        let mut cursor = [0usize; 3];
        loop {
            let mut best: Option<(u32, usize)> = None;
            for (list_idx, list) in lists.iter().enumerate() {
                if let Some(entry) = list.get(cursor[list_idx]) {
                    if best.is_none_or(|(seq, _)| entry.seq < seq) {
                        best = Some((entry.seq, list_idx));
                    }
                }
            }
            let Some((_, list_idx)) = best else {
                return None;
            };
            let entry = &lists[list_idx][cursor[list_idx]];
            cursor[list_idx] += 1;
            // Bucketed entries already matched on (src, dst, side); the
            // wildcard list needs the full check.
            let applies = if list_idx == 2 {
                entry.rule.matches(src, dst, side, request_id)
            } else {
                entry.rule.pattern.matches_opt(request_id)
            };
            if !applies {
                continue;
            }
            if entry.rule.probability >= 1.0
                || rng::flip(self.stream, self.seed, entry.rule.probability)
            {
                self.hits.fetch_add(1, Ordering::Relaxed);
                entry.hits.fetch_add(1, Ordering::Relaxed);
                return Some((*entry.rule).clone());
            }
        }
    }

    /// Total messages evaluated since creation.
    pub fn checks(&self) -> u64 {
        self.checks.load(Ordering::Relaxed)
    }

    /// Total messages that matched a rule since creation.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found an indexed bucket for the message's edge.
    pub fn index_hits(&self) -> u64 {
        self.index_hits.load(Ordering::Relaxed)
    }

    /// Lookups where the message's edge had no installed rules (the
    /// production-traffic fast path: two hash probes, no rule visits).
    pub fn index_misses(&self) -> u64 {
        self.index_misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::AbortKind;
    use std::time::Duration;

    fn abort(src: &str, dst: &str) -> Rule {
        Rule::abort(src, dst, AbortKind::Status(503))
    }

    #[test]
    fn install_validates_batch_atomically() {
        let table = RuleTable::new();
        let result = table.install(vec![abort("a", "b"), abort("a", "b").with_probability(2.0)]);
        assert!(result.is_err());
        assert!(table.is_empty());
    }

    #[test]
    fn first_match_wins() {
        let table = RuleTable::new();
        table
            .install(vec![
                abort("a", "b").with_pattern("test-*"),
                Rule::delay("a", "b", Duration::from_millis(5)),
            ])
            .unwrap();
        let hit = table
            .match_message("a", "b", MessageSide::Request, Some("test-1"))
            .unwrap();
        assert!(matches!(hit.action, crate::FaultAction::Abort { .. }));
        // Non-matching ID falls through to the delay rule (pattern *).
        let hit = table
            .match_message("a", "b", MessageSide::Request, Some("prod-1"))
            .unwrap();
        assert!(matches!(hit.action, crate::FaultAction::Delay { .. }));
    }

    #[test]
    fn first_match_wins_across_index_lists() {
        // Rules land in three different candidate lists (first-byte
        // bucket, unconstrained bucket, wildcard fallback); evaluation
        // must still follow installation order.
        let table = RuleTable::new();
        table
            .install(vec![
                Rule::delay("*", "b", Duration::from_millis(1)).with_pattern("zzz-*"),
                abort("a", "b").with_pattern("test-*"),
                Rule::delay("a", "b", Duration::from_millis(5)),
            ])
            .unwrap();
        // The wildcard rule is installed first but does not match this
        // ID; the abort (first-byte bucket) must beat the delay
        // (unconstrained bucket).
        let hit = table
            .match_message("a", "b", MessageSide::Request, Some("test-1"))
            .unwrap();
        assert!(matches!(hit.action, crate::FaultAction::Abort { .. }));
        // A zzz ID hits the wildcard rule before anything else.
        let hit = table
            .match_message("a", "b", MessageSide::Request, Some("zzz-1"))
            .unwrap();
        assert!(
            matches!(hit.action, crate::FaultAction::Delay { interval } if interval == Duration::from_millis(1))
        );
    }

    #[test]
    fn wildcard_src_and_dst_rules_apply_to_any_edge() {
        let table = RuleTable::new();
        table
            .install(vec![abort("*", "db").with_pattern("test-*")])
            .unwrap();
        assert!(table
            .match_message("web", "db", MessageSide::Request, Some("test-1"))
            .is_some());
        assert!(table
            .match_message("api", "db", MessageSide::Request, Some("test-1"))
            .is_some());
        assert!(table
            .match_message("web", "cache", MessageSide::Request, Some("test-1"))
            .is_none());
        table.clear();
        table.install(vec![abort("web", "*")]).unwrap();
        assert!(table
            .match_message("web", "db", MessageSide::Request, None)
            .is_some());
        assert!(table
            .match_message("api", "db", MessageSide::Request, None)
            .is_none());
    }

    #[test]
    fn side_must_match() {
        let table = RuleTable::new();
        table.install(vec![abort("a", "b")]).unwrap();
        assert!(table
            .match_message("a", "b", MessageSide::Response, Some("x"))
            .is_none());
        assert!(table
            .match_message("a", "b", MessageSide::Request, Some("x"))
            .is_some());
    }

    #[test]
    fn zero_probability_never_fires() {
        let table = RuleTable::with_seed(7);
        table
            .install(vec![abort("a", "b").with_probability(0.0)])
            .unwrap();
        for _ in 0..100 {
            assert!(table
                .match_message("a", "b", MessageSide::Request, Some("x"))
                .is_none());
        }
    }

    #[test]
    fn fractional_probability_fires_sometimes() {
        let table = RuleTable::with_seed(42);
        table
            .install(vec![abort("a", "b").with_probability(0.5)])
            .unwrap();
        let fired = (0..1000)
            .filter(|_| {
                table
                    .match_message("a", "b", MessageSide::Request, Some("x"))
                    .is_some()
            })
            .count();
        assert!((300..700).contains(&fired), "fired {fired}/1000");
    }

    #[test]
    fn probabilistic_fallback_chain() {
        // Abort p=0.25 then delay p=1: every message matches
        // *something*, roughly a quarter the abort.
        let table = RuleTable::with_seed(9);
        table
            .install(vec![
                abort("a", "b").with_probability(0.25),
                Rule::delay("a", "b", Duration::from_millis(1)),
            ])
            .unwrap();
        let mut aborts = 0;
        let mut delays = 0;
        for _ in 0..1000 {
            match table
                .match_message("a", "b", MessageSide::Request, Some("x"))
                .expect("fallback rule must fire")
                .action
            {
                crate::FaultAction::Abort { .. } => aborts += 1,
                crate::FaultAction::Delay { .. } => delays += 1,
                crate::FaultAction::Modify { .. } => unreachable!(),
            }
        }
        assert!((150..350).contains(&aborts), "aborts {aborts}");
        assert_eq!(aborts + delays, 1000);
    }

    #[test]
    fn counters_track_checks_and_hits() {
        let table = RuleTable::new();
        table.install(vec![abort("a", "b")]).unwrap();
        table.match_message("a", "b", MessageSide::Request, None);
        table.match_message("x", "y", MessageSide::Request, None);
        assert_eq!(table.checks(), 2);
        assert_eq!(table.hits(), 1);
        assert_eq!(table.index_hits(), 1);
        assert_eq!(table.index_misses(), 1);
    }

    #[test]
    fn per_rule_hit_counts() {
        let table = RuleTable::new();
        table
            .install(vec![
                abort("a", "b").with_pattern("test-a-*"),
                abort("a", "b").with_pattern("test-*"),
            ])
            .unwrap();
        table.match_message("a", "b", MessageSide::Request, Some("test-a-1"));
        table.match_message("a", "b", MessageSide::Request, Some("test-b-1"));
        table.match_message("a", "b", MessageSide::Request, Some("test-b-2"));
        assert_eq!(table.rule_hit_counts(), vec![1, 2]);
        table.clear();
        assert!(table.rule_hit_counts().is_empty());
    }

    #[test]
    fn hit_counts_survive_later_installs() {
        let table = RuleTable::new();
        table.install(vec![abort("a", "b")]).unwrap();
        table.match_message("a", "b", MessageSide::Request, None);
        table.install(vec![abort("x", "y")]).unwrap();
        // The rebuilt index keeps the original counters.
        assert_eq!(table.rule_hit_counts(), vec![1, 0]);
    }

    #[test]
    fn clear_removes_rules() {
        let table = RuleTable::new();
        table.install(vec![abort("a", "b")]).unwrap();
        assert_eq!(table.len(), 1);
        table.clear();
        assert!(table.is_empty());
        assert!(table
            .match_message("a", "b", MessageSide::Request, None)
            .is_none());
    }

    #[test]
    fn worst_case_no_match_scans_all_rules() {
        // Figure 8 setup: many rules, none matching.
        let table = RuleTable::new();
        let rules: Vec<Rule> = (0..100)
            .map(|i| abort("a", "b").with_pattern(format!("nomatch-{i}-*").as_str()))
            .collect();
        table.install(rules).unwrap();
        assert!(table
            .match_message("a", "b", MessageSide::Request, Some("test-1"))
            .is_none());
        assert_eq!(table.hits(), 0);
    }

    #[test]
    fn rules_preserve_install_order() {
        let table = RuleTable::new();
        table
            .install(vec![
                abort("a", "b").with_pattern("one-*"),
                abort("*", "b").with_pattern("two-*"),
            ])
            .unwrap();
        table
            .install(vec![abort("c", "d").with_pattern("three-*")])
            .unwrap();
        let patterns: Vec<String> = table
            .rules()
            .iter()
            .map(|rule| rule.pattern.as_str())
            .collect();
        assert_eq!(patterns, vec!["one-*", "two-*", "three-*"]);
        assert_eq!(table.len(), 3);
    }

    #[test]
    fn telemetry_counts_index_hits_and_misses() {
        let registry = MetricsRegistry::new();
        let table = RuleTable::new();
        table.bind_telemetry(&registry, "web");
        table.install(vec![abort("a", "b")]).unwrap();
        table.match_message("a", "b", MessageSide::Request, None); // hit
        table.match_message("x", "y", MessageSide::Request, None); // miss
        table.match_message("a", "b", MessageSide::Response, None); // hit (bucket exists, empty side)
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_value(
                "gremlin_proxy_rule_index_lookups_total",
                &[("service", "web"), ("result", "hit")],
            ),
            Some(2)
        );
        assert_eq!(
            snap.counter_value(
                "gremlin_proxy_rule_index_lookups_total",
                &[("service", "web"), ("result", "miss")],
            ),
            Some(1)
        );
    }

    /// Concurrent `install` during a match storm must never expose a
    /// torn rule set: every snapshot a matcher sees is a full prefix
    /// of whole installed batches.
    #[test]
    fn install_during_match_storm_never_tears() {
        use std::sync::atomic::AtomicBool;

        let table = Arc::new(RuleTable::new());
        // Batch zero: a catch-all abort that must be visible in every
        // subsequent snapshot.
        table.install(vec![abort("a", "b")]).unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let batch = 4usize;

        let matchers: Vec<_> = (0..4)
            .map(|_| {
                let table = Arc::clone(&table);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut seen = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        // The catch-all rule always wins: installs only
                        // append lower-priority rules.
                        let hit = table
                            .match_message("a", "b", MessageSide::Request, Some("test-1"))
                            .expect("catch-all rule must always match");
                        assert!(matches!(hit.action, crate::FaultAction::Abort { .. }));
                        // Snapshots contain only whole batches.
                        let rules = table.rules();
                        assert_eq!(
                            (rules.len() - 1) % batch,
                            0,
                            "torn snapshot of {} rules",
                            rules.len()
                        );
                        seen += 1;
                    }
                    seen
                })
            })
            .collect();

        for round in 0..50 {
            let rules: Vec<Rule> = (0..batch)
                .map(|i| match i % 3 {
                    0 => abort("a", "b").with_pattern(format!("storm-{round}-{i}-*").as_str()),
                    1 => Rule::delay("*", "b", Duration::from_micros(1))
                        .with_pattern(format!("storm-{round}-{i}-*").as_str()),
                    _ => Rule::delay("a", "b", Duration::from_micros(1))
                        .with_side(MessageSide::Response),
                })
                .collect();
            table.install(rules).unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for matcher in matchers {
            assert!(matcher.join().unwrap() > 0);
        }
        assert_eq!(table.len(), 1 + 50 * batch);
    }
}

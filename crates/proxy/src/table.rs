//! The agent's installed-rule table and its matching logic.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::ProxyError;
use crate::rules::{MessageSide, Rule};

/// The set of fault-injection rules installed on one Gremlin agent,
/// with first-match-wins evaluation and per-rule probability
/// sampling.
///
/// Matching walks rules in installation order and applies the first
/// rule whose edge, side and request-ID pattern match *and* whose
/// probability coin-flip succeeds; later rules then act as fallbacks.
/// (To split traffic 25% abort / 75% delay, install an abort rule
/// with probability 0.25 followed by a delay rule with probability 1.)
///
/// # Examples
///
/// ```
/// use gremlin_proxy::{AbortKind, MessageSide, Rule, RuleTable};
///
/// let table = RuleTable::new();
/// table
///     .install(vec![Rule::abort("a", "b", AbortKind::Status(503)).with_pattern("test-*")])
///     .unwrap();
/// let hit = table.match_message("a", "b", MessageSide::Request, Some("test-42"));
/// assert!(hit.is_some());
/// let miss = table.match_message("a", "b", MessageSide::Request, Some("prod-42"));
/// assert!(miss.is_none());
/// ```
#[derive(Debug)]
pub struct RuleTable {
    rules: RwLock<Vec<(Rule, Arc<AtomicU64>)>>,
    rng: Mutex<StdRng>,
    checks: AtomicU64,
    hits: AtomicU64,
}

use std::sync::Arc;

impl Default for RuleTable {
    fn default() -> Self {
        RuleTable::new()
    }
}

impl RuleTable {
    /// Creates an empty table with an OS-seeded RNG.
    pub fn new() -> RuleTable {
        RuleTable {
            rules: RwLock::new(Vec::new()),
            rng: Mutex::new(StdRng::from_entropy()),
            checks: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }

    /// Creates an empty table with a deterministic RNG — probability
    /// sampling becomes reproducible, which tests rely on.
    pub fn with_seed(seed: u64) -> RuleTable {
        RuleTable {
            rules: RwLock::new(Vec::new()),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            checks: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }

    /// Appends `rules` after validating each.
    ///
    /// # Errors
    ///
    /// Returns the first validation failure; in that case **no** rule
    /// from the batch is installed.
    pub fn install(&self, rules: Vec<Rule>) -> Result<(), ProxyError> {
        for rule in &rules {
            rule.validate()?;
        }
        self.rules.write().extend(
            rules
                .into_iter()
                .map(|rule| (rule, Arc::new(AtomicU64::new(0)))),
        );
        Ok(())
    }

    /// Removes every installed rule.
    pub fn clear(&self) {
        self.rules.write().clear();
    }

    /// A snapshot of the installed rules in evaluation order.
    pub fn rules(&self) -> Vec<Rule> {
        self.rules.read().iter().map(|(rule, _)| rule.clone()).collect()
    }

    /// Per-rule hit counts, parallel to [`RuleTable::rules`] — which
    /// rule fired how often, for recipe debugging.
    pub fn rule_hit_counts(&self) -> Vec<u64> {
        self.rules
            .read()
            .iter()
            .map(|(_, hits)| hits.load(Ordering::Relaxed))
            .collect()
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.rules.read().len()
    }

    /// Returns `true` if no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.rules.read().is_empty()
    }

    /// Evaluates the table against one message, returning the rule to
    /// apply (if any).
    ///
    /// Every call increments the check counter; a returned rule
    /// increments the hit counter. These counters feed the proxy
    /// overhead benchmarks (paper Figure 8).
    pub fn match_message(
        &self,
        src: &str,
        dst: &str,
        side: MessageSide,
        request_id: Option<&str>,
    ) -> Option<Rule> {
        self.checks.fetch_add(1, Ordering::Relaxed);
        let rules = self.rules.read();
        for (rule, rule_hits) in rules.iter() {
            if !rule.matches(src, dst, side, request_id) {
                continue;
            }
            if rule.probability >= 1.0 || self.flip(rule.probability) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                rule_hits.fetch_add(1, Ordering::Relaxed);
                return Some(rule.clone());
            }
        }
        None
    }

    fn flip(&self, probability: f64) -> bool {
        self.rng.lock().gen_bool(probability.clamp(0.0, 1.0))
    }

    /// Total messages evaluated since creation.
    pub fn checks(&self) -> u64 {
        self.checks.load(Ordering::Relaxed)
    }

    /// Total messages that matched a rule since creation.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::AbortKind;
    use std::time::Duration;

    fn abort(src: &str, dst: &str) -> Rule {
        Rule::abort(src, dst, AbortKind::Status(503))
    }

    #[test]
    fn install_validates_batch_atomically() {
        let table = RuleTable::new();
        let result = table.install(vec![
            abort("a", "b"),
            abort("a", "b").with_probability(2.0),
        ]);
        assert!(result.is_err());
        assert!(table.is_empty());
    }

    #[test]
    fn first_match_wins() {
        let table = RuleTable::new();
        table
            .install(vec![
                abort("a", "b").with_pattern("test-*"),
                Rule::delay("a", "b", Duration::from_millis(5)),
            ])
            .unwrap();
        let hit = table
            .match_message("a", "b", MessageSide::Request, Some("test-1"))
            .unwrap();
        assert!(matches!(hit.action, crate::FaultAction::Abort { .. }));
        // Non-matching ID falls through to the delay rule (pattern *).
        let hit = table
            .match_message("a", "b", MessageSide::Request, Some("prod-1"))
            .unwrap();
        assert!(matches!(hit.action, crate::FaultAction::Delay { .. }));
    }

    #[test]
    fn side_must_match() {
        let table = RuleTable::new();
        table.install(vec![abort("a", "b")]).unwrap();
        assert!(table
            .match_message("a", "b", MessageSide::Response, Some("x"))
            .is_none());
        assert!(table
            .match_message("a", "b", MessageSide::Request, Some("x"))
            .is_some());
    }

    #[test]
    fn zero_probability_never_fires() {
        let table = RuleTable::with_seed(7);
        table
            .install(vec![abort("a", "b").with_probability(0.0)])
            .unwrap();
        for _ in 0..100 {
            assert!(table
                .match_message("a", "b", MessageSide::Request, Some("x"))
                .is_none());
        }
    }

    #[test]
    fn fractional_probability_fires_sometimes() {
        let table = RuleTable::with_seed(42);
        table
            .install(vec![abort("a", "b").with_probability(0.5)])
            .unwrap();
        let fired = (0..1000)
            .filter(|_| {
                table
                    .match_message("a", "b", MessageSide::Request, Some("x"))
                    .is_some()
            })
            .count();
        assert!((300..700).contains(&fired), "fired {fired}/1000");
    }

    #[test]
    fn probabilistic_fallback_chain() {
        // Abort p=0.25 then delay p=1: every message matches
        // *something*, roughly a quarter the abort.
        let table = RuleTable::with_seed(9);
        table
            .install(vec![
                abort("a", "b").with_probability(0.25),
                Rule::delay("a", "b", Duration::from_millis(1)),
            ])
            .unwrap();
        let mut aborts = 0;
        let mut delays = 0;
        for _ in 0..1000 {
            match table
                .match_message("a", "b", MessageSide::Request, Some("x"))
                .expect("fallback rule must fire")
                .action
            {
                crate::FaultAction::Abort { .. } => aborts += 1,
                crate::FaultAction::Delay { .. } => delays += 1,
                crate::FaultAction::Modify { .. } => unreachable!(),
            }
        }
        assert!((150..350).contains(&aborts), "aborts {aborts}");
        assert_eq!(aborts + delays, 1000);
    }

    #[test]
    fn counters_track_checks_and_hits() {
        let table = RuleTable::new();
        table.install(vec![abort("a", "b")]).unwrap();
        table.match_message("a", "b", MessageSide::Request, None);
        table.match_message("x", "y", MessageSide::Request, None);
        assert_eq!(table.checks(), 2);
        assert_eq!(table.hits(), 1);
    }

    #[test]
    fn per_rule_hit_counts() {
        let table = RuleTable::new();
        table
            .install(vec![
                abort("a", "b").with_pattern("test-a-*"),
                abort("a", "b").with_pattern("test-*"),
            ])
            .unwrap();
        table.match_message("a", "b", MessageSide::Request, Some("test-a-1"));
        table.match_message("a", "b", MessageSide::Request, Some("test-b-1"));
        table.match_message("a", "b", MessageSide::Request, Some("test-b-2"));
        assert_eq!(table.rule_hit_counts(), vec![1, 2]);
        table.clear();
        assert!(table.rule_hit_counts().is_empty());
    }

    #[test]
    fn clear_removes_rules() {
        let table = RuleTable::new();
        table.install(vec![abort("a", "b")]).unwrap();
        assert_eq!(table.len(), 1);
        table.clear();
        assert!(table.is_empty());
        assert!(table
            .match_message("a", "b", MessageSide::Request, None)
            .is_none());
    }

    #[test]
    fn worst_case_no_match_scans_all_rules() {
        // Figure 8 setup: many rules, none matching.
        let table = RuleTable::new();
        let rules: Vec<Rule> = (0..100)
            .map(|i| abort("a", "b").with_pattern(format!("nomatch-{i}-*").as_str()))
            .collect();
        table.install(rules).unwrap();
        assert!(table
            .match_message("a", "b", MessageSide::Request, Some("test-1"))
            .is_none());
        assert_eq!(table.hits(), 0);
    }
}

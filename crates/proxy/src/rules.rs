//! Fault-injection rules — the data-plane interface of Table 2.
//!
//! A rule instructs a Gremlin agent to inspect messages flowing from
//! `src` to `dst`, and, when the message's request ID matches
//! `pattern` (with probability `probability`), apply one of the three
//! primitive fault actions: **Abort**, **Delay** or **Modify**.

use std::fmt;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use gremlin_store::Pattern;

use crate::error::ProxyError;

/// How an Abort manifests to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum AbortKind {
    /// Return an application-level HTTP error with this status code
    /// (e.g. `503 Service Unavailable`).
    Status(u16),
    /// Terminate the connection at the TCP level and return no
    /// application-level response — the paper's `Error = -1`,
    /// emulating an abrupt crash.
    Reset,
}

impl AbortKind {
    /// Decodes the paper's `Error` parameter: `-1` means TCP reset,
    /// anything else is an HTTP status code.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::InvalidRule`] for status codes outside
    /// 100..=999.
    pub fn from_error_code(error: i32) -> Result<AbortKind, ProxyError> {
        if error == -1 {
            return Ok(AbortKind::Reset);
        }
        let status =
            u16::try_from(error).map_err(|_| ProxyError::InvalidRule(format!("error={error}")))?;
        if !(100..=999).contains(&status) {
            return Err(ProxyError::InvalidRule(format!("error={error}")));
        }
        Ok(AbortKind::Status(status))
    }
}

impl fmt::Display for AbortKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortKind::Status(code) => write!(f, "status {code}"),
            AbortKind::Reset => write!(f, "tcp reset"),
        }
    }
}

/// One of the three primitive fault-injection actions (Table 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum FaultAction {
    /// Abort the message, returning `abort` to the caller.
    Abort {
        /// How the abort manifests.
        abort: AbortKind,
    },
    /// Delay forwarding of the message by `interval`.
    Delay {
        /// The injected delay.
        #[serde(with = "duration_micros")]
        interval: Duration,
    },
    /// Rewrite message bytes: every occurrence of `search` in the
    /// body is replaced with `replace_bytes`.
    Modify {
        /// Byte pattern to search for in the message body.
        search: String,
        /// Replacement bytes.
        replace_bytes: String,
    },
}

impl fmt::Display for FaultAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultAction::Abort { abort } => write!(f, "abort({abort})"),
            FaultAction::Delay { interval } => write!(f, "delay({interval:?})"),
            FaultAction::Modify {
                search,
                replace_bytes,
            } => write!(f, "modify({search:?} -> {replace_bytes:?})"),
        }
    }
}

/// Which side of the exchange the rule applies to (the paper's `On`
/// parameter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
#[serde(rename_all = "snake_case")]
pub enum MessageSide {
    /// Act on the request before it is forwarded to the callee.
    #[default]
    Request,
    /// Act on the response before it is relayed back to the caller.
    Response,
}

/// A fault-injection rule installed on Gremlin agents.
///
/// # Examples
///
/// ```
/// use gremlin_proxy::{AbortKind, FaultAction, Rule};
///
/// // Abort test requests from serviceA to serviceB with 503.
/// let rule = Rule::abort("serviceA", "serviceB", AbortKind::Status(503))
///     .with_pattern("test-*")
///     .with_probability(1.0);
/// assert_eq!(rule.src, "serviceA");
/// assert!(matches!(rule.action, FaultAction::Abort { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    /// Calling (upstream) service name.
    pub src: String,
    /// Called (downstream) service name.
    pub dst: String,
    /// Request-ID pattern selecting which flows are affected.
    #[serde(default)]
    pub pattern: Pattern,
    /// Which side of the exchange to act on.
    #[serde(default)]
    pub on: MessageSide,
    /// Probability in `[0, 1]` that a matching message is faulted.
    #[serde(default = "default_probability")]
    pub probability: f64,
    /// The fault action to apply.
    pub action: FaultAction,
}

fn default_probability() -> f64 {
    1.0
}

impl Rule {
    /// Creates an Abort rule (defaults: pattern `*`, on request,
    /// probability 1).
    pub fn abort(src: impl Into<String>, dst: impl Into<String>, abort: AbortKind) -> Rule {
        Rule {
            src: src.into(),
            dst: dst.into(),
            pattern: Pattern::Any,
            on: MessageSide::Request,
            probability: 1.0,
            action: FaultAction::Abort { abort },
        }
    }

    /// Creates a Delay rule (defaults: pattern `*`, on request,
    /// probability 1).
    pub fn delay(src: impl Into<String>, dst: impl Into<String>, interval: Duration) -> Rule {
        Rule {
            src: src.into(),
            dst: dst.into(),
            pattern: Pattern::Any,
            on: MessageSide::Request,
            probability: 1.0,
            action: FaultAction::Delay { interval },
        }
    }

    /// Creates a Modify rule (defaults: pattern `*`, on response,
    /// probability 1) — responses are the natural target for the
    /// paper's input-validation example (`FakeSuccess`).
    pub fn modify(
        src: impl Into<String>,
        dst: impl Into<String>,
        search: impl Into<String>,
        replace_bytes: impl Into<String>,
    ) -> Rule {
        Rule {
            src: src.into(),
            dst: dst.into(),
            pattern: Pattern::Any,
            on: MessageSide::Response,
            probability: 1.0,
            action: FaultAction::Modify {
                search: search.into(),
                replace_bytes: replace_bytes.into(),
            },
        }
    }

    /// Builder-style: sets the request-ID pattern.
    pub fn with_pattern(mut self, pattern: impl Into<Pattern>) -> Rule {
        self.pattern = pattern.into();
        self
    }

    /// Builder-style: sets the message side.
    pub fn with_side(mut self, on: MessageSide) -> Rule {
        self.on = on;
        self
    }

    /// Builder-style: sets the fault probability.
    pub fn with_probability(mut self, probability: f64) -> Rule {
        self.probability = probability;
        self
    }

    /// Validates the rule's parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::InvalidRule`] when `probability` is
    /// outside `[0, 1]` or not finite, or when `src`/`dst` are empty.
    pub fn validate(&self) -> Result<(), ProxyError> {
        if self.src.is_empty() || self.dst.is_empty() {
            return Err(ProxyError::InvalidRule(
                "src and dst must be non-empty".to_string(),
            ));
        }
        if !self.probability.is_finite() || !(0.0..=1.0).contains(&self.probability) {
            return Err(ProxyError::InvalidRule(format!(
                "probability {} outside [0, 1]",
                self.probability
            )));
        }
        Ok(())
    }

    /// Returns `true` if this rule applies to the given edge, side and
    /// request ID (probability not yet sampled). A rule `src` or `dst`
    /// of `"*"` matches any service on that end of the edge.
    pub fn matches(&self, src: &str, dst: &str, side: MessageSide, id: Option<&str>) -> bool {
        self.on == side
            && (self.src == src || self.src == "*")
            && (self.dst == dst || self.dst == "*")
            && self.pattern.matches_opt(id)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} on {:?} pattern {} p={} : {}",
            self.src, self.dst, self.on, self.pattern, self.probability, self.action
        )
    }
}

/// Serde helper storing `Duration` as integer microseconds.
mod duration_micros {
    use super::*;
    use serde::{Deserializer, Serializer};

    pub fn serialize<S: Serializer>(value: &Duration, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(value.as_micros() as u64)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(deserializer: D) -> Result<Duration, D::Error> {
        let micros = u64::deserialize(deserializer)?;
        Ok(Duration::from_micros(micros))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_kind_from_error_code() {
        assert_eq!(AbortKind::from_error_code(-1).unwrap(), AbortKind::Reset);
        assert_eq!(
            AbortKind::from_error_code(503).unwrap(),
            AbortKind::Status(503)
        );
        assert!(AbortKind::from_error_code(0).is_err());
        assert!(AbortKind::from_error_code(-2).is_err());
        assert!(AbortKind::from_error_code(1000).is_err());
    }

    #[test]
    fn constructors_set_defaults() {
        let r = Rule::abort("a", "b", AbortKind::Status(503));
        assert_eq!(r.on, MessageSide::Request);
        assert_eq!(r.probability, 1.0);
        assert_eq!(r.pattern, Pattern::Any);

        let r = Rule::delay("a", "b", Duration::from_millis(100));
        assert!(
            matches!(r.action, FaultAction::Delay { interval } if interval == Duration::from_millis(100))
        );

        let r = Rule::modify("a", "b", "key", "badkey");
        assert_eq!(r.on, MessageSide::Response);
    }

    #[test]
    fn validation() {
        assert!(Rule::abort("a", "b", AbortKind::Reset).validate().is_ok());
        assert!(Rule::abort("", "b", AbortKind::Reset).validate().is_err());
        assert!(Rule::abort("a", "b", AbortKind::Reset)
            .with_probability(1.5)
            .validate()
            .is_err());
        assert!(Rule::abort("a", "b", AbortKind::Reset)
            .with_probability(-0.1)
            .validate()
            .is_err());
        assert!(Rule::abort("a", "b", AbortKind::Reset)
            .with_probability(f64::NAN)
            .validate()
            .is_err());
        assert!(Rule::abort("a", "b", AbortKind::Reset)
            .with_probability(0.0)
            .validate()
            .is_ok());
    }

    #[test]
    fn matching_semantics() {
        let rule = Rule::abort("a", "b", AbortKind::Status(503)).with_pattern("test-*");
        assert!(rule.matches("a", "b", MessageSide::Request, Some("test-1")));
        assert!(!rule.matches("a", "b", MessageSide::Response, Some("test-1")));
        assert!(!rule.matches("a", "c", MessageSide::Request, Some("test-1")));
        assert!(!rule.matches("x", "b", MessageSide::Request, Some("test-1")));
        assert!(!rule.matches("a", "b", MessageSide::Request, Some("prod-1")));
        assert!(!rule.matches("a", "b", MessageSide::Request, None));
    }

    #[test]
    fn wildcard_src_dst_match_any_service() {
        let rule = Rule::abort("*", "b", AbortKind::Status(503));
        assert!(rule.matches("a", "b", MessageSide::Request, None));
        assert!(rule.matches("zzz", "b", MessageSide::Request, None));
        assert!(!rule.matches("a", "c", MessageSide::Request, None));
        let rule = Rule::abort("a", "*", AbortKind::Status(503));
        assert!(rule.matches("a", "b", MessageSide::Request, None));
        assert!(!rule.matches("b", "b", MessageSide::Request, None));
    }

    #[test]
    fn any_pattern_matches_missing_id() {
        let rule = Rule::delay("a", "b", Duration::from_millis(1));
        assert!(rule.matches("a", "b", MessageSide::Request, None));
    }

    #[test]
    fn serde_round_trip() {
        let rules = vec![
            Rule::abort("a", "b", AbortKind::Status(503)).with_pattern("test-*"),
            Rule::abort("a", "b", AbortKind::Reset),
            Rule::delay("a", "b", Duration::from_millis(100)).with_probability(0.75),
            Rule::modify("a", "b", "key", "badkey").with_side(MessageSide::Response),
        ];
        for rule in rules {
            let json = serde_json::to_string(&rule).unwrap();
            let back: Rule = serde_json::from_str(&json).unwrap();
            assert_eq!(rule, back);
        }
    }

    #[test]
    fn serde_defaults_apply() {
        let json = r#"{"src":"a","dst":"b","action":{"kind":"abort","abort":{"status":503}}}"#;
        let rule: Rule = serde_json::from_str(json).unwrap();
        assert_eq!(rule.pattern, Pattern::Any);
        assert_eq!(rule.on, MessageSide::Request);
        assert_eq!(rule.probability, 1.0);
    }

    #[test]
    fn display_contains_fields() {
        let text = Rule::abort("a", "b", AbortKind::Status(503))
            .with_pattern("test-*")
            .to_string();
        assert!(text.contains("a -> b"));
        assert!(text.contains("test-*"));
        assert!(text.contains("503"));
    }
}

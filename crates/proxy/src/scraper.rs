//! The fleet metrics scraper: periodic `/metrics` collection into a
//! shared [`TimeSeriesStore`].
//!
//! Every Gremlin agent (via its control server) and the collector
//! itself expose Prometheus text on `GET /metrics`. The [`Scraper`]
//! polls each registered target on a configurable interval, parses
//! the exposition and appends the samples to a [`TimeSeriesStore`]
//! under the target's name — turning the fleet's point-in-time
//! snapshots into correlated history the collector can federate and
//! the control plane can annotate.
//!
//! Partial fleet failure is the normal case during a resilience
//! campaign: a target that stops answering is marked down after
//! consecutive failures, its series simply stop advancing (staleness
//! is visible through [`TargetStatus::last_ok_us`]), and the
//! remaining targets keep being scraped. A target that comes back is
//! picked up on the next cycle with no special handling.
//!
//! Scrape cycles can be driven two ways:
//!
//! * [`Scraper::scrape_once`] — one synchronous pass over every
//!   target, used by tests, the bench harness and anything that wants
//!   deterministic timing.
//! * [`Scraper::spawn`] — a background thread running a pass every
//!   [`ScraperConfig::interval`] until the returned handle is stopped
//!   or dropped.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use gremlin_http::{ClientConfig, HttpClient, Request};
use gremlin_store::now_micros;
use gremlin_telemetry::{parse_prometheus, TimeSeriesStore};

/// How a [`Scraper`] paces itself and judges target health.
#[derive(Debug, Clone)]
pub struct ScraperConfig {
    /// Delay between background scrape cycles.
    pub interval: Duration,
    /// Per-target HTTP deadline (connect + read); a slow target
    /// cannot stall the rest of the cycle longer than this.
    pub timeout: Duration,
    /// A target whose last successful scrape is older than this is
    /// reported stale by [`Scraper::is_stale`] (and as
    /// `gremlin_scrape_age_seconds` on `/federate`).
    pub stale_after: Duration,
}

impl Default for ScraperConfig {
    fn default() -> Self {
        ScraperConfig {
            interval: Duration::from_secs(1),
            timeout: Duration::from_secs(2),
            stale_after: Duration::from_secs(3),
        }
    }
}

/// One scrape target: a name (becomes the series' `target` /
/// `instance` identity) and the address + path serving the
/// exposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrapeTarget {
    /// Logical name, e.g. the agent's service.
    pub name: String,
    /// `host:port` of the `/metrics` endpoint.
    pub addr: String,
    /// Path of the exposition endpoint (normally `/metrics`).
    pub path: String,
}

/// Health of one target as seen by the scraper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TargetStatus {
    /// Target name.
    pub target: String,
    /// Target address.
    pub addr: String,
    /// Did the most recent scrape succeed?
    pub up: bool,
    /// Successful scrapes so far.
    pub scrapes: u64,
    /// Failed scrapes so far.
    pub failures: u64,
    /// Failures since the last success.
    pub consecutive_failures: u64,
    /// Wall-clock microseconds of the last successful scrape.
    pub last_ok_us: Option<u64>,
    /// The most recent scrape error, if the target is down.
    pub last_error: Option<String>,
}

impl TargetStatus {
    fn new(target: &ScrapeTarget) -> TargetStatus {
        TargetStatus {
            target: target.name.clone(),
            addr: target.addr.clone(),
            up: false,
            scrapes: 0,
            failures: 0,
            consecutive_failures: 0,
            last_ok_us: None,
            last_error: None,
        }
    }
}

/// Polls a fleet of `/metrics` endpoints into a shared
/// [`TimeSeriesStore`], tolerating partial failure.
///
/// # Examples
///
/// ```no_run
/// use std::sync::Arc;
/// use gremlin_proxy::Scraper;
/// use gremlin_telemetry::TimeSeriesStore;
///
/// let scraper = Arc::new(Scraper::new(TimeSeriesStore::shared()));
/// scraper.add_target("web", "127.0.0.1:9001");
/// scraper.add_target("db", "127.0.0.1:9002");
/// let up = scraper.scrape_once();
/// println!("{up}/2 targets up");
/// ```
#[derive(Debug)]
pub struct Scraper {
    config: ScraperConfig,
    store: Arc<TimeSeriesStore>,
    client: HttpClient,
    targets: Mutex<Vec<ScrapeTarget>>,
    status: Mutex<BTreeMap<String, TargetStatus>>,
}

impl Scraper {
    /// Creates a scraper with the default [`ScraperConfig`] writing
    /// into `store`.
    pub fn new(store: Arc<TimeSeriesStore>) -> Scraper {
        Scraper::with_config(store, ScraperConfig::default())
    }

    /// Creates a scraper with an explicit configuration.
    pub fn with_config(store: Arc<TimeSeriesStore>, config: ScraperConfig) -> Scraper {
        let client = HttpClient::with_config(ClientConfig {
            connect_timeout: Some(config.timeout),
            read_timeout: Some(config.timeout),
            write_timeout: Some(config.timeout),
            ..ClientConfig::default()
        });
        Scraper {
            config,
            store,
            client,
            targets: Mutex::new(Vec::new()),
            status: Mutex::new(BTreeMap::new()),
        }
    }

    /// The store scrapes are appended to.
    pub fn store(&self) -> &Arc<TimeSeriesStore> {
        &self.store
    }

    /// The scraper's configuration.
    pub fn config(&self) -> &ScraperConfig {
        &self.config
    }

    /// Registers a target serving Prometheus text on
    /// `GET /metrics`. Re-registering a name replaces its address.
    pub fn add_target(&self, name: &str, addr: impl Into<String>) {
        self.add_target_at(name, addr, "/metrics");
    }

    /// Registers a target with an explicit exposition path.
    pub fn add_target_at(&self, name: &str, addr: impl Into<String>, path: &str) {
        let target = ScrapeTarget {
            name: name.to_string(),
            addr: addr.into(),
            path: path.to_string(),
        };
        let mut targets = self.targets.lock().expect("scraper targets poisoned");
        let mut status = self.status.lock().expect("scraper status poisoned");
        status
            .entry(target.name.clone())
            .or_insert_with(|| TargetStatus::new(&target))
            .addr = target.addr.clone();
        match targets.iter_mut().find(|t| t.name == target.name) {
            Some(existing) => *existing = target,
            None => targets.push(target),
        }
    }

    /// Removes a target (its recorded series stay in the store).
    pub fn remove_target(&self, name: &str) {
        self.targets
            .lock()
            .expect("scraper targets poisoned")
            .retain(|t| t.name != name);
        self.status
            .lock()
            .expect("scraper status poisoned")
            .remove(name);
    }

    /// Registered targets, in registration order.
    pub fn targets(&self) -> Vec<ScrapeTarget> {
        self.targets
            .lock()
            .expect("scraper targets poisoned")
            .clone()
    }

    /// One synchronous pass over every target at the current wall
    /// clock. Returns the number of targets that answered.
    pub fn scrape_once(&self) -> usize {
        self.scrape_at(now_micros())
    }

    /// One synchronous pass stamping appended points (and staleness
    /// bookkeeping) with `at_us` instead of the wall clock — the
    /// deterministic entry point for tests and benchmarks.
    pub fn scrape_at(&self, at_us: u64) -> usize {
        let targets = self.targets();
        let mut up = 0;
        for target in &targets {
            if self.scrape_target(target, at_us).is_ok() {
                up += 1;
            }
        }
        up
    }

    fn scrape_target(&self, target: &ScrapeTarget, at_us: u64) -> Result<(), String> {
        let outcome = self
            .client
            .send(target.addr.as_str(), Request::get(target.path.clone()))
            .map_err(|err| err.to_string())
            .and_then(|response| {
                if response.status().is_success() {
                    Ok(response.body_str())
                } else {
                    Err(format!("scrape answered {}", response.status()))
                }
            });
        let mut status = self.status.lock().expect("scraper status poisoned");
        let entry = status
            .entry(target.name.clone())
            .or_insert_with(|| TargetStatus::new(target));
        match outcome {
            Ok(text) => {
                let samples = parse_prometheus(&text);
                self.store.ingest_prom(&target.name, at_us, &samples);
                entry.up = true;
                entry.scrapes += 1;
                entry.consecutive_failures = 0;
                entry.last_ok_us = Some(at_us);
                entry.last_error = None;
                Ok(())
            }
            Err(err) => {
                entry.up = false;
                entry.failures += 1;
                entry.consecutive_failures += 1;
                entry.last_error = Some(err.clone());
                Err(err)
            }
        }
    }

    /// Per-target health, sorted by target name.
    pub fn statuses(&self) -> Vec<TargetStatus> {
        self.status
            .lock()
            .expect("scraper status poisoned")
            .values()
            .cloned()
            .collect()
    }

    /// Health of one target, if registered.
    pub fn status(&self, name: &str) -> Option<TargetStatus> {
        self.status
            .lock()
            .expect("scraper status poisoned")
            .get(name)
            .cloned()
    }

    /// Is `status` stale at `now_us` — i.e. has it been longer than
    /// [`ScraperConfig::stale_after`] since the target last answered?
    /// A target that has never answered is always stale.
    pub fn is_stale(&self, status: &TargetStatus, now_us: u64) -> bool {
        match status.last_ok_us {
            Some(ok) => now_us.saturating_sub(ok) > self.config.stale_after.as_micros() as u64,
            None => true,
        }
    }

    /// Starts a background thread scraping every
    /// [`ScraperConfig::interval`]. The loop stops when the handle is
    /// stopped or dropped.
    pub fn spawn(self: &Arc<Self>) -> ScraperHandle {
        let scraper = Arc::clone(self);
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let interval = self.config.interval;
        let thread = std::thread::Builder::new()
            .name("gremlin-scraper".to_string())
            .spawn(move || {
                while !stop_flag.load(Ordering::Relaxed) {
                    scraper.scrape_once();
                    // Sleep in short slices so stop() takes effect
                    // promptly even with long intervals.
                    let mut remaining = interval;
                    while !remaining.is_zero() && !stop_flag.load(Ordering::Relaxed) {
                        let nap = remaining.min(Duration::from_millis(25));
                        std::thread::sleep(nap);
                        remaining = remaining.saturating_sub(nap);
                    }
                }
            })
            .expect("spawn scraper thread");
        ScraperHandle {
            stop,
            thread: Some(thread),
        }
    }
}

/// Stops the background scrape loop when dropped (or explicitly via
/// [`ScraperHandle::stop`]).
#[derive(Debug)]
pub struct ScraperHandle {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ScraperHandle {
    /// Signals the loop to stop and waits for the thread to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ScraperHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gremlin_http::{ConnInfo, HttpServer, Response, StatusCode};
    use gremlin_store::{EventStore, HealthMonitor};
    use gremlin_telemetry::MetricsRegistry;

    use crate::collector::CollectorServer;

    const S: u64 = 1_000_000;

    /// A minimal exposition endpoint: serves `registry` on
    /// `GET /metrics` at `addr`.
    fn metrics_server(addr: &str, registry: Arc<MetricsRegistry>) -> HttpServer {
        HttpServer::bind(addr, move |request: Request, _conn: &ConnInfo| {
            assert_eq!(request.path(), "/metrics");
            Response::builder(StatusCode::OK)
                .header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
                .body(registry.render_prometheus())
                .build()
        })
        .expect("bind metrics server")
    }

    /// Rebinds `addr` after a shutdown, retrying while the OS
    /// releases the port.
    fn rebind(addr: &str, registry: Arc<MetricsRegistry>) -> HttpServer {
        for _ in 0..40 {
            match HttpServer::bind(addr, {
                let registry = Arc::clone(&registry);
                move |request: Request, _conn: &ConnInfo| {
                    assert_eq!(request.path(), "/metrics");
                    Response::builder(StatusCode::OK)
                        .body(registry.render_prometheus())
                        .build()
                }
            }) {
                Ok(server) => return server,
                Err(_) => std::thread::sleep(Duration::from_millis(25)),
            }
        }
        panic!("could not rebind {addr}");
    }

    #[test]
    fn scrapes_a_fleet_into_shared_series() {
        let reg_a = MetricsRegistry::shared();
        let reg_b = MetricsRegistry::shared();
        reg_a.counter("demo_requests_total", "h", &[]).add(10);
        reg_b.counter("demo_requests_total", "h", &[]).add(3);
        let a = metrics_server("127.0.0.1:0", Arc::clone(&reg_a));
        let b = metrics_server("127.0.0.1:0", Arc::clone(&reg_b));

        let scraper = Scraper::new(TimeSeriesStore::shared());
        scraper.add_target("a", a.local_addr().to_string());
        scraper.add_target("b", b.local_addr().to_string());
        assert_eq!(scraper.scrape_at(S), 2);
        reg_a.counter("demo_requests_total", "h", &[]).add(20);
        assert_eq!(scraper.scrape_at(2 * S), 2);

        let store = scraper.store();
        assert_eq!(
            store.latest("demo_requests_total", "a").unwrap().value,
            30.0
        );
        assert_eq!(store.latest("demo_requests_total", "b").unwrap().value, 3.0);
        // Rate over a's two points: 20 more requests in one second.
        let rates = store.query_rate("demo_requests_total", Some("a"), 0, u64::MAX);
        assert_eq!(
            rates[0].1,
            vec![gremlin_telemetry::TsPoint {
                at_us: 2 * S,
                value: 20.0
            }]
        );
        let status = scraper.status("a").unwrap();
        assert!(status.up);
        assert_eq!(status.scrapes, 2);
        assert_eq!(status.failures, 0);
    }

    #[test]
    fn dead_target_goes_stale_and_rejoins_without_panic() {
        let reg_a = MetricsRegistry::shared();
        let reg_b = MetricsRegistry::shared();
        reg_a.counter("demo_requests_total", "h", &[]).add(1);
        reg_b.counter("demo_requests_total", "h", &[]).add(1);
        let a = metrics_server("127.0.0.1:0", Arc::clone(&reg_a));
        let b = metrics_server("127.0.0.1:0", Arc::clone(&reg_b));
        let addr_b = b.local_addr().to_string();

        let scraper = Arc::new(Scraper::with_config(
            TimeSeriesStore::shared(),
            ScraperConfig {
                interval: Duration::from_millis(10),
                timeout: Duration::from_millis(500),
                stale_after: Duration::from_secs(2),
            },
        ));
        scraper.add_target("a", a.local_addr().to_string());
        scraper.add_target("b", addr_b.clone());
        assert_eq!(scraper.scrape_at(S), 2);

        // b dies mid-campaign: the next cycles keep serving a.
        b.shutdown();
        assert_eq!(scraper.scrape_at(2 * S), 1);
        assert_eq!(scraper.scrape_at(3 * S), 1);
        let down = scraper.status("b").unwrap();
        assert!(!down.up);
        assert_eq!(down.consecutive_failures, 2);
        assert!(down.last_error.is_some());
        assert_eq!(down.last_ok_us, Some(S));
        // Stale once the last success ages past stale_after ...
        assert!(scraper.is_stale(&down, 4 * S));
        // ... while the live target is not.
        assert!(!scraper.is_stale(&scraper.status("a").unwrap(), 4 * S));
        // b's series froze at the first scrape; a's kept moving.
        let store = scraper.store();
        assert_eq!(store.last_ingest_us("b"), Some(S));
        assert_eq!(store.last_ingest_us("a"), Some(3 * S));

        // b rejoins on the same address: picked up next cycle.
        reg_b.counter("demo_requests_total", "h", &[]).add(5);
        let b = rebind(&addr_b, Arc::clone(&reg_b));
        assert_eq!(scraper.scrape_at(5 * S), 2);
        let back = scraper.status("b").unwrap();
        assert!(back.up);
        assert_eq!(back.consecutive_failures, 0);
        assert_eq!(store.latest("demo_requests_total", "b").unwrap().value, 6.0);
        drop(b);
    }

    #[test]
    fn federation_survives_a_dead_target() {
        let reg_a = MetricsRegistry::shared();
        let reg_b = MetricsRegistry::shared();
        reg_a
            .counter("demo_requests_total", "h", &[("svc", "a")])
            .add(4);
        reg_b
            .counter("demo_requests_total", "h", &[("svc", "b")])
            .add(9);
        let a = metrics_server("127.0.0.1:0", Arc::clone(&reg_a));
        let b = metrics_server("127.0.0.1:0", Arc::clone(&reg_b));

        let scraper = Arc::new(Scraper::new(TimeSeriesStore::shared()));
        scraper.add_target("a", a.local_addr().to_string());
        scraper.add_target("b", b.local_addr().to_string());
        scraper.store().annotate(S, "install", "abort a->b");
        scraper.scrape_once();

        let collector = CollectorServer::start_with_fleet(
            EventStore::shared(),
            "127.0.0.1:0",
            MetricsRegistry::shared(),
            Arc::new(HealthMonitor::new(
                EventStore::shared(),
                Duration::from_secs(1),
            )),
            Some(Arc::clone(&scraper)),
        )
        .unwrap();
        let client = HttpClient::new();

        // Kill b; federation still serves a's series plus b's last
        // point, with b marked down.
        b.shutdown();
        scraper.scrape_once();
        let resp = client
            .send(collector.local_addr(), Request::get("/federate"))
            .unwrap();
        assert_eq!(resp.status(), StatusCode::OK);
        let text = resp.body_str();
        let samples = gremlin_telemetry::parse_prometheus(&text);
        let up = |instance: &str| {
            samples
                .iter()
                .find(|s| s.name == "up" && s.label("instance") == Some(instance))
                .map(|s| s.value)
        };
        assert_eq!(up("a"), Some(1.0));
        assert_eq!(up("b"), Some(0.0));
        let demo: Vec<_> = samples
            .iter()
            .filter(|s| s.name == "demo_requests_total")
            .collect();
        assert_eq!(demo.len(), 2, "both targets federated: {text}");
        assert!(demo
            .iter()
            .any(|s| s.label("instance") == Some("b") && s.value == 9.0));

        // /series answers the range query and the annotation; the
        // index document lists b as down.
        let resp = client
            .send(
                collector.local_addr(),
                Request::get("/series?name=demo_requests_total&target=a"),
            )
            .unwrap();
        assert_eq!(resp.status(), StatusCode::OK);
        let doc: serde_json::Value = serde_json::from_str(&resp.body_str()).unwrap();
        assert_eq!(doc["kind"], "counter");
        assert_eq!(doc["series"][0]["target"], "a");
        assert_eq!(doc["series"][0]["labels"]["svc"], "a");
        assert_eq!(doc["annotations"][0]["phase"], "install");
        let resp = client
            .send(collector.local_addr(), Request::get("/series"))
            .unwrap();
        let index: serde_json::Value = serde_json::from_str(&resp.body_str()).unwrap();
        let targets = index["targets"].as_array().unwrap();
        let b_entry = targets.iter().find(|t| t["target"] == "b").unwrap();
        assert_eq!(b_entry["up"], false);
        assert!(index["names"]
            .as_array()
            .unwrap()
            .iter()
            .any(|n| n == "demo_requests_total"));

        // A collector without a fleet scraper 404s both endpoints.
        let bare = CollectorServer::start(EventStore::shared(), "127.0.0.1:0").unwrap();
        let resp = client
            .send(bare.local_addr(), Request::get("/federate"))
            .unwrap();
        assert_eq!(resp.status(), StatusCode::NOT_FOUND);
        collector.shutdown();
    }

    #[test]
    fn background_loop_scrapes_until_stopped() {
        let registry = MetricsRegistry::shared();
        registry.counter("demo_requests_total", "h", &[]).add(1);
        let server = metrics_server("127.0.0.1:0", Arc::clone(&registry));
        let scraper = Arc::new(Scraper::with_config(
            TimeSeriesStore::shared(),
            ScraperConfig {
                interval: Duration::from_millis(5),
                ..ScraperConfig::default()
            },
        ));
        scraper.add_target("svc", server.local_addr().to_string());
        let handle = scraper.spawn();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while scraper.status("svc").map_or(true, |s| s.scrapes < 2) {
            assert!(std::time::Instant::now() < deadline, "scrape loop stalled");
            std::thread::sleep(Duration::from_millis(5));
        }
        handle.stop();
        let after = scraper.status("svc").unwrap().scrapes;
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(scraper.status("svc").unwrap().scrapes, after);
    }
}

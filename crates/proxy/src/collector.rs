//! The log-collection pipeline between agents and the central store.
//!
//! The paper ships agent observations through logstash into
//! Elasticsearch (§6). In single-process deployments our agents write
//! straight into a shared [`EventStore`]; this module provides the
//! distributed equivalent: agents log through an [`HttpEventSink`]
//! that forwards observations (newline-delimited JSON, batched) to a
//! [`CollectorServer`] fronting the store.

use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use std::time::Instant;

use gremlin_http::{
    ConnInfo, HttpClient, HttpServer, Method, Reply, Request, Response, StatusCode, StreamingBody,
};
use gremlin_store::{
    now_micros, Event, EventSink, EventStore, HealthMonitor, DEFAULT_HEALTH_WINDOW,
};
use gremlin_telemetry::{
    escape_label_value, Counter, Gauge, LatencyHistogram, MetricsRegistry, SeriesKind,
};

use crate::control::metrics_response;
use crate::error::ProxyError;
use crate::scraper::Scraper;

/// Schema version of the `GET /health` JSON document (and of
/// `gremlin watch --json` frames, which embed it).
///
/// * **1** — `window_us`, `clock_us`, `edges`, `checks`.
/// * **2** — adds `schema_version` itself and `scores` (per-edge
///   anomaly scores; empty when the monitor carries no
///   [`AnomalyScorer`](https://docs.rs/gremlin-core) baseline config).
///
/// Consumers should ignore unknown fields; a missing `schema_version`
/// means version 1.
pub const HEALTH_SCHEMA_VERSION: u32 = 2;

/// A live experiment monitor the collector can serve: the per-edge
/// health matrix on `GET /health` and the verdict-transition stream
/// on `GET /alerts`.
///
/// The plain [`HealthMonitor`] implements this with an empty check
/// list and no alerts; `gremlin-core`'s `LiveMonitor` (which layers
/// streaming assertions on top and sits *above* this crate in the
/// dependency order) implements it with both populated. The trait is
/// what lets the collector host either without the data plane
/// depending on the analysis layer.
pub trait MonitorSource: Send + Sync + std::fmt::Debug {
    /// Consumes newly recorded events (incremental — implementations
    /// use `EventStore::events_after`, never full-store scans).
    fn refresh(&self);

    /// The current monitor state as a JSON object:
    /// `{"schema_version":2,"window_us":..,"clock_us":..,"edges":[..],
    /// "checks":[..],"scores":[..]}` (see [`HEALTH_SCHEMA_VERSION`]).
    fn health_json(&self) -> String;

    /// Serialized monitor records (one JSON object per line entry,
    /// tagged with a `kind` field — `verdict` or `anomaly`) recorded
    /// at or after `cursor`, plus the next cursor.
    fn alert_lines_after(&self, cursor: u64) -> (Vec<String>, u64);
}

impl MonitorSource for HealthMonitor {
    fn refresh(&self) {
        self.poll();
    }

    fn health_json(&self) -> String {
        let edges = self.snapshot();
        format!(
            "{{\"schema_version\":{HEALTH_SCHEMA_VERSION},\"window_us\":{},\"clock_us\":{},\"edges\":{},\"checks\":[],\"scores\":[]}}",
            self.window().as_micros(),
            self.clock_us(),
            serde_json::to_string(&edges).unwrap_or_else(|_| "[]".into()),
        )
    }

    fn alert_lines_after(&self, cursor: u64) -> (Vec<String>, u64) {
        (Vec::new(), cursor)
    }
}

/// Telemetry handles for the collector's ingest path.
#[derive(Debug)]
struct CollectorMetrics {
    batches: Arc<Counter>,
    events: Arc<Counter>,
    parse_errors: Arc<Counter>,
    dropped_events: Arc<Counter>,
    append_seconds: Arc<LatencyHistogram>,
    tail_subscribers: Arc<Gauge>,
    alert_subscribers: Arc<Gauge>,
    alerts_streamed: Arc<Counter>,
}

impl CollectorMetrics {
    fn new(registry: &MetricsRegistry) -> CollectorMetrics {
        CollectorMetrics {
            batches: registry.counter(
                "gremlin_collector_batches_total",
                "Observation batches received on POST /events.",
                &[],
            ),
            events: registry.counter(
                "gremlin_collector_events_total",
                "Observation events appended to the store.",
                &[],
            ),
            parse_errors: registry.counter(
                "gremlin_collector_parse_errors_total",
                "Batch lines rejected as malformed JSON.",
                &[],
            ),
            dropped_events: registry.counter(
                "gremlin_collector_dropped_events",
                "Well-formed events rejected at ingest (empty request ID).",
                &[],
            ),
            append_seconds: registry.histogram(
                "gremlin_collector_append_seconds",
                "Time to parse and append one observation batch.",
                &[],
            ),
            tail_subscribers: registry.gauge(
                "gremlin_collector_tail_subscribers",
                "Clients currently connected to GET /tail.",
                &[],
            ),
            alert_subscribers: registry.gauge(
                "gremlin_collector_alert_subscribers",
                "Clients currently connected to GET /alerts.",
                &[],
            ),
            alerts_streamed: registry.counter(
                "gremlin_collector_alerts_streamed_total",
                "Alert lines written to GET /alerts subscribers.",
                &[],
            ),
        }
    }
}

/// Decrements a subscriber gauge when a streaming connection ends.
struct SubscriberGuard(Arc<Gauge>);

impl Drop for SubscriberGuard {
    fn drop(&mut self) {
        self.0.dec();
    }
}

/// HTTP endpoint accepting observation batches into an
/// [`EventStore`].
///
/// Routes:
///
/// | Method | Path           | Effect                                    |
/// |--------|----------------|-------------------------------------------|
/// | POST   | `/events`      | append newline-delimited JSON events      |
/// | GET    | `/events`      | dump the store as newline-delimited JSON  |
/// | GET    | `/traces/<id>` | flow `<id>` as an OTLP-style JSON trace   |
/// | GET    | `/tail`        | chunked live stream of new events (NDJSON)|
/// | GET    | `/health`      | live edge health matrix + check verdicts  |
/// | GET    | `/alerts`      | chunked NDJSON stream of verdict alerts   |
/// | GET    | `/stats`       | ingest statistics JSON (see below)        |
/// | GET    | `/metrics`     | Prometheus text exposition                |
/// | DELETE | `/events`      | clear the store                           |
///
/// `GET /stats` returns
/// `{"events":N,"batches":B,"appended":A,"parse_errors":P,"dropped":D,
/// "tail_cursor":C,"tail_subscribers":S,"alert_subscribers":S}`: the
/// store size, cumulative ingest counters, the store's tail-cursor
/// position (so `gremlin watch` can show consumer lag), and the
/// number of currently connected streaming clients.
///
/// `GET /health` refreshes the in-process [`MonitorSource`] and
/// returns `{"schema_version":2,"window_us":..,"clock_us":..,
/// "edges":[..],"checks":[..],"scores":[..]}` — the per-(src,dst)
/// edge health matrix plus (when the monitor carries streaming
/// assertions) live check verdicts and (when it carries an anomaly
/// baseline) per-edge anomaly scores; see [`HEALTH_SCHEMA_VERSION`].
/// `GET /alerts` streams monitor records — verdict transitions
/// (`"kind":"verdict"`) and anomaly state changes (`"kind":"anomaly"`)
/// — as NDJSON with the same chunked machinery as `/tail`, replaying
/// the full record log first.
///
/// A batch containing malformed lines is answered with `400`; valid
/// lines from the same batch are still appended, and the rejected
/// count is reported in the response body and in
/// `gremlin_collector_parse_errors_total`. Well-formed events whose
/// request ID is the *empty string* can never be matched by flow
/// queries, so they are rejected at ingest and counted in
/// `gremlin_collector_dropped_events` (and `/stats` `dropped`)
/// instead of disappearing silently.
///
/// `GET /tail` answers with `Transfer-Encoding: chunked` and streams
/// every event recorded *after* the request arrived, one JSON object
/// per line (blank heartbeat lines keep the connection alive); add
/// `?from=0` to replay the store from the beginning first. The stream
/// runs until the client disconnects or the collector shuts down.
#[derive(Debug)]
pub struct CollectorServer {
    server: HttpServer,
    store: Arc<EventStore>,
    registry: Arc<MetricsRegistry>,
    monitor: Arc<dyn MonitorSource>,
    fleet: Option<Arc<Scraper>>,
}

impl CollectorServer {
    /// Starts a collector on `addr` writing into `store`, recording
    /// ingest telemetry into a private registry.
    ///
    /// # Errors
    ///
    /// Returns an error if the address cannot be bound.
    pub fn start(
        store: Arc<EventStore>,
        addr: impl ToSocketAddrs,
    ) -> Result<CollectorServer, ProxyError> {
        CollectorServer::start_with_telemetry(store, addr, MetricsRegistry::shared())
    }

    /// Starts a collector recording into a shared registry. The
    /// store's own telemetry (`gremlin_store_*`) is enabled on the
    /// same registry, and `/health` serves a plain edge health
    /// matrix (a [`HealthMonitor`] with no streaming assertions).
    ///
    /// # Errors
    ///
    /// Returns an error if the address cannot be bound.
    pub fn start_with_telemetry(
        store: Arc<EventStore>,
        addr: impl ToSocketAddrs,
        registry: Arc<MetricsRegistry>,
    ) -> Result<CollectorServer, ProxyError> {
        let monitor: Arc<dyn MonitorSource> = Arc::new(HealthMonitor::new(
            Arc::clone(&store),
            DEFAULT_HEALTH_WINDOW,
        ));
        CollectorServer::start_with_monitor(store, addr, registry, monitor)
    }

    /// Starts a collector serving `monitor` on `/health` and
    /// `/alerts` — pass `gremlin-core`'s `LiveMonitor` to run a full
    /// streaming assertion engine in-process with the collector.
    ///
    /// # Errors
    ///
    /// Returns an error if the address cannot be bound.
    pub fn start_with_monitor(
        store: Arc<EventStore>,
        addr: impl ToSocketAddrs,
        registry: Arc<MetricsRegistry>,
        monitor: Arc<dyn MonitorSource>,
    ) -> Result<CollectorServer, ProxyError> {
        CollectorServer::start_with_fleet(store, addr, registry, monitor, None)
    }

    /// Starts a collector that additionally serves the fleet
    /// time-series endpoints from `fleet`'s store: `GET /federate`
    /// (merged latest-point snapshot with per-target `up` and
    /// staleness) and `GET /series` (JSON range queries with phase
    /// annotations). Without a fleet scraper those endpoints answer
    /// `404`.
    ///
    /// # Errors
    ///
    /// Returns an error if the address cannot be bound.
    pub fn start_with_fleet(
        store: Arc<EventStore>,
        addr: impl ToSocketAddrs,
        registry: Arc<MetricsRegistry>,
        monitor: Arc<dyn MonitorSource>,
        fleet: Option<Arc<Scraper>>,
    ) -> Result<CollectorServer, ProxyError> {
        store.enable_telemetry(&registry);
        let metrics = Arc::new(CollectorMetrics::new(&registry));
        let handler_store = Arc::clone(&store);
        let handler_registry = Arc::clone(&registry);
        let handler_monitor = Arc::clone(&monitor);
        let handler_fleet = fleet.clone();
        let server = HttpServer::bind(addr, move |request: Request, _conn: &ConnInfo| {
            if *request.method() == Method::Get && request.path() == "/tail" {
                return tail_reply(&handler_store, &request, &metrics);
            }
            if *request.method() == Method::Get && request.path() == "/alerts" {
                return alerts_reply(&handler_monitor, &metrics);
            }
            Reply::Full(handle_collect(
                &handler_store,
                &handler_registry,
                &metrics,
                &handler_monitor,
                &handler_fleet,
                request,
            ))
        })?;
        Ok(CollectorServer {
            server,
            store,
            registry,
            monitor,
            fleet,
        })
    }

    /// The collector's listening address.
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// The store behind the collector.
    pub fn store(&self) -> &Arc<EventStore> {
        &self.store
    }

    /// The metrics registry the collector records into.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The monitor served on `/health` and `/alerts`.
    pub fn monitor(&self) -> &Arc<dyn MonitorSource> {
        &self.monitor
    }

    /// The fleet scraper behind `/federate` and `/series`, when one
    /// was configured.
    pub fn fleet(&self) -> Option<&Arc<Scraper>> {
        self.fleet.as_ref()
    }

    /// Stops accepting connections and joins the accept thread. The
    /// port is released, so tests can rebind the same address to
    /// simulate a collector restart.
    pub fn shutdown(self) {
        self.server.shutdown();
    }
}

fn handle_collect(
    store: &Arc<EventStore>,
    registry: &Arc<MetricsRegistry>,
    metrics: &CollectorMetrics,
    monitor: &Arc<dyn MonitorSource>,
    fleet: &Option<Arc<Scraper>>,
    request: Request,
) -> Response {
    match (request.method().clone(), request.path()) {
        (Method::Post, "/events") => {
            let started = Instant::now();
            metrics.batches.inc();
            let text = String::from_utf8_lossy(request.body());
            let mut events = Vec::new();
            let mut parse_errors = 0usize;
            let mut first_error: Option<String> = None;
            for line in text.lines() {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                match serde_json::from_str::<Event>(line) {
                    // An empty request ID can never match a flow
                    // query — the event would sit in the store
                    // invisible to every trace. Reject it loudly
                    // (counted, surfaced on /stats) instead.
                    Ok(event) if event.request_id.as_deref() == Some("") => {
                        metrics.dropped_events.inc();
                    }
                    Ok(event) => events.push(event),
                    Err(err) => {
                        parse_errors += 1;
                        if first_error.is_none() {
                            first_error = Some(err.to_string());
                        }
                    }
                }
            }
            // One store append per batch: a single sequence
            // reservation and one lock acquisition per shard instead
            // of per event.
            let imported = events.len();
            store.record_batch(events);
            metrics.events.add(imported as u64);
            metrics.parse_errors.add(parse_errors as u64);
            metrics.append_seconds.record(started.elapsed());
            if parse_errors > 0 {
                let error = first_error.unwrap_or_default().replace('"', "'");
                Response::builder(StatusCode::BAD_REQUEST)
                    .header("Content-Type", "application/json")
                    .body(format!(
                        "{{\"imported\":{imported},\"parse_errors\":{parse_errors},\"error\":\"{error}\"}}"
                    ))
                    .build()
            } else {
                Response::builder(StatusCode::OK)
                    .body(format!("{{\"imported\":{imported}}}"))
                    .build()
            }
        }
        (Method::Get, "/events") => match store.export_json() {
            Ok(body) => Response::builder(StatusCode::OK)
                .header("Content-Type", "application/x-ndjson")
                .body(body)
                .build(),
            Err(err) => Response::builder(StatusCode::INTERNAL_SERVER_ERROR)
                .body(err.to_string())
                .build(),
        },
        (Method::Get, "/stats") => Response::builder(StatusCode::OK)
            .header("Content-Type", "application/json")
            .body(format!(
                "{{\"events\":{},\"batches\":{},\"appended\":{},\"parse_errors\":{},\"dropped\":{},\"tail_cursor\":{},\"tail_subscribers\":{},\"alert_subscribers\":{}}}",
                store.len(),
                metrics.batches.get(),
                metrics.events.get(),
                metrics.parse_errors.get(),
                metrics.dropped_events.get(),
                store.tail_cursor(),
                metrics.tail_subscribers.get(),
                metrics.alert_subscribers.get()
            ))
            .build(),
        (Method::Get, "/health") => {
            monitor.refresh();
            Response::builder(StatusCode::OK)
                .header("Content-Type", "application/json")
                .body(monitor.health_json())
                .build()
        }
        (Method::Get, "/metrics") => metrics_response(&registry.render_prometheus()),
        (Method::Get, "/federate") => match fleet {
            Some(scraper) => federate_response(scraper),
            None => Response::builder(StatusCode::NOT_FOUND)
                .body("no fleet scraper configured")
                .build(),
        },
        (Method::Get, "/series") => match fleet {
            Some(scraper) => series_response(scraper, request.query().unwrap_or("")),
            None => Response::builder(StatusCode::NOT_FOUND)
                .body("no fleet scraper configured")
                .build(),
        },
        (Method::Get, path) if path.starts_with("/traces/") => {
            trace_response(store, &path["/traces/".len()..])
        }
        (Method::Delete, "/events") => {
            store.clear();
            Response::builder(StatusCode::NO_CONTENT).build()
        }
        _ => Response::error(StatusCode::NOT_FOUND),
    }
}

/// `GET /traces/<id>`: the flow's span records as an OTLP-style JSON
/// trace document. Shared by the collector and the per-agent control
/// server.
pub(crate) fn trace_response(store: &EventStore, request_id: &str) -> Response {
    if request_id.is_empty() {
        return Response::builder(StatusCode::BAD_REQUEST)
            .body("missing request id")
            .build();
    }
    let spans = gremlin_store::spans_from_store(store, request_id);
    if spans.is_empty() {
        return Response::error(StatusCode::NOT_FOUND);
    }
    let trace = gremlin_store::export_otlp(&spans);
    match serde_json::to_string(&trace) {
        Ok(body) => Response::builder(StatusCode::OK)
            .header("Content-Type", "application/json")
            .body(body)
            .build(),
        Err(err) => Response::builder(StatusCode::INTERNAL_SERVER_ERROR)
            .body(err.to_string())
            .build(),
    }
}

/// `GET /federate`: the merged fleet snapshot in Prometheus text —
/// the latest stored point of every scraped series, each tagged with
/// an `instance` label naming its source target, plus synthetic
/// `up{instance=...}`, `gremlin_scrape_age_seconds{instance=...}` and
/// `gremlin_scrape_stale{instance=...}` series describing scrape
/// health. No `# HELP`/`# TYPE` headers are emitted; parsers
/// (including this workspace's) skip comments anyway.
fn federate_response(scraper: &Arc<Scraper>) -> Response {
    use std::fmt::Write as _;
    let now = now_micros();
    let mut out = String::new();
    for status in scraper.statuses() {
        let instance = escape_label_value(&status.target);
        let _ = writeln!(out, "up{{instance=\"{instance}\"}} {}", u8::from(status.up));
        if let Some(ok) = status.last_ok_us {
            let _ = writeln!(
                out,
                "gremlin_scrape_age_seconds{{instance=\"{instance}\"}} {}",
                now.saturating_sub(ok) as f64 / 1_000_000.0
            );
        }
        let _ = writeln!(
            out,
            "gremlin_scrape_stale{{instance=\"{instance}\"}} {}",
            u8::from(scraper.is_stale(&status, now))
        );
    }
    for (id, point) in scraper.store().latest_points() {
        let mut labels: Vec<String> = id
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
            .collect();
        labels.push(format!("instance=\"{}\"", escape_label_value(&id.target)));
        let _ = writeln!(out, "{}{{{}}} {}", id.name, labels.join(","), point.value);
    }
    metrics_response(&out)
}

/// Splits a raw query string into `(key, value)` pairs. Values are
/// taken verbatim (metric and target names in this workspace never
/// need percent-encoding).
fn query_params(query: &str) -> Vec<(&str, &str)> {
    query
        .split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| pair.split_once('=').unwrap_or((pair, "")))
        .collect()
}

/// `GET /series?name=&target=&from=&to=&rate=`: a JSON range query
/// over the fleet time-series store.
///
/// With `name`, answers the matching series — raw points, or
/// per-second rates when `rate=true` (counters only; gauges pass
/// through) — plus every phase annotation inside the window. Without
/// `name`, answers an index document: stored series names, per-target
/// scrape health, and the windowed annotations.
fn series_response(scraper: &Arc<Scraper>, query: &str) -> Response {
    let params = query_params(query);
    let get = |key: &str| {
        params
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
            .filter(|v| !v.is_empty())
    };
    let from: u64 = match get("from").map(str::parse).transpose() {
        Ok(v) => v.unwrap_or(0),
        Err(_) => {
            return Response::builder(StatusCode::BAD_REQUEST)
                .body("from must be an integer microsecond timestamp")
                .build()
        }
    };
    let to: u64 = match get("to").map(str::parse).transpose() {
        Ok(v) => v.unwrap_or(u64::MAX),
        Err(_) => {
            return Response::builder(StatusCode::BAD_REQUEST)
                .body("to must be an integer microsecond timestamp")
                .build()
        }
    };
    let rate = matches!(get("rate"), Some("true") | Some("1"));
    let target = get("target");
    let store = scraper.store();

    let annotations: Vec<serde_json::Value> = store
        .annotations(from, to)
        .into_iter()
        .map(|a| {
            serde_json::json!({
                "at_us": a.at_us,
                "phase": a.phase,
                "detail": a.detail,
            })
        })
        .collect();

    let body = match get("name") {
        Some(name) => {
            let windows = if rate {
                store.query_rate(name, target, from, to)
            } else {
                store.query(name, target, from, to)
            };
            let series: Vec<serde_json::Value> = windows
                .into_iter()
                .map(|(id, points)| {
                    let labels: serde_json::Map<String, serde_json::Value> = id
                        .labels
                        .iter()
                        .map(|(k, v)| (k.clone(), serde_json::Value::from(v.as_str())))
                        .collect();
                    let points: Vec<serde_json::Value> = points
                        .iter()
                        .map(|p| serde_json::json!([p.at_us, p.value]))
                        .collect();
                    serde_json::json!({
                        "target": id.target,
                        "labels": labels,
                        "points": points,
                    })
                })
                .collect();
            serde_json::json!({
                "name": name,
                "kind": match SeriesKind::infer(name) {
                    SeriesKind::Counter => "counter",
                    SeriesKind::Gauge => "gauge",
                },
                "from": from,
                "to": to,
                "rate": rate,
                "series": series,
                "annotations": annotations,
            })
        }
        None => {
            let now = now_micros();
            let targets: Vec<serde_json::Value> = scraper
                .statuses()
                .iter()
                .map(|status| {
                    serde_json::json!({
                        "target": status.target,
                        "addr": status.addr,
                        "up": status.up,
                        "stale": scraper.is_stale(status, now),
                        "scrapes": status.scrapes,
                        "failures": status.failures,
                        "last_ok_us": status.last_ok_us,
                        "last_ingest_us": store.last_ingest_us(&status.target),
                    })
                })
                .collect();
            serde_json::json!({
                "names": store.series_names(),
                "targets": targets,
                "annotations": annotations,
            })
        }
    };
    Response::builder(StatusCode::OK)
        .header("Content-Type", "application/json")
        .body(body.to_string())
        .build()
}

/// `GET /tail`: a chunked NDJSON stream of events. The cursor is
/// pinned while handling the request, so nothing recorded after the
/// request arrived is missed; `?from=0` replays history first.
fn tail_reply(
    store: &Arc<EventStore>,
    request: &Request,
    metrics: &Arc<CollectorMetrics>,
) -> Reply {
    let from_start = request
        .query()
        .map(|q| q.split('&').any(|pair| pair == "from=0"))
        .unwrap_or(false);
    let mut cursor = if from_start { 0 } else { store.tail_cursor() };
    let store = Arc::clone(store);
    metrics.tail_subscribers.inc();
    let guard = SubscriberGuard(Arc::clone(&metrics.tail_subscribers));
    let body = StreamingBody::new(StatusCode::OK, move |sink| {
        let _guard = guard;
        let mut idle_polls = 0u32;
        loop {
            let (events, next) = store.events_after(cursor);
            cursor = next;
            if events.is_empty() {
                thread::sleep(Duration::from_millis(25));
                idle_polls += 1;
                // Periodic blank heartbeat line: readers skip it, and
                // the write fails fast once the client is gone or the
                // server shuts down, unblocking this producer.
                if idle_polls % 40 == 0 {
                    sink.send(b"\n")?;
                }
                continue;
            }
            idle_polls = 0;
            for event in &events {
                if let Ok(mut line) = serde_json::to_string(event) {
                    line.push('\n');
                    sink.send(line.as_bytes())?;
                }
            }
        }
    })
    .header("Content-Type", "application/x-ndjson");
    Reply::Stream(body)
}

/// `GET /alerts`: a chunked NDJSON stream of monitor verdict
/// transitions. Unlike `/tail`, the stream starts at cursor 0 —
/// the alert log is small and the history (which checks already
/// flipped, and when) is exactly what a late subscriber needs.
fn alerts_reply(monitor: &Arc<dyn MonitorSource>, metrics: &Arc<CollectorMetrics>) -> Reply {
    let monitor = Arc::clone(monitor);
    metrics.alert_subscribers.inc();
    let guard = SubscriberGuard(Arc::clone(&metrics.alert_subscribers));
    let streamed = Arc::clone(&metrics.alerts_streamed);
    let body = StreamingBody::new(StatusCode::OK, move |sink| {
        let _guard = guard;
        let mut cursor = 0u64;
        let mut idle_polls = 0u32;
        loop {
            monitor.refresh();
            let (lines, next) = monitor.alert_lines_after(cursor);
            cursor = next;
            if lines.is_empty() {
                thread::sleep(Duration::from_millis(25));
                idle_polls += 1;
                if idle_polls % 40 == 0 {
                    sink.send(b"\n")?;
                }
                continue;
            }
            idle_polls = 0;
            for line in &lines {
                let mut line = line.clone();
                line.push('\n');
                sink.send(line.as_bytes())?;
                streamed.inc();
            }
        }
    })
    .header("Content-Type", "application/x-ndjson");
    Reply::Stream(body)
}

/// An [`EventSink`] forwarding observations to a remote
/// [`CollectorServer`].
///
/// Events are buffered on a background thread and shipped in batches
/// (bounded by size and linger time), so the data path never blocks
/// on the collector. Dropping the sink flushes the buffer.
#[derive(Debug)]
pub struct HttpEventSink {
    sender: mpsc::Sender<SinkMessage>,
    worker: Option<thread::JoinHandle<()>>,
    dropped: Arc<AtomicU64>,
}

enum SinkMessage {
    Record(Event),
    Flush(mpsc::Sender<()>),
}

/// Configuration for [`HttpEventSink`].
#[derive(Debug, Clone)]
pub struct SinkConfig {
    /// Ship a batch once it reaches this many events.
    pub batch_size: usize,
    /// Ship a partial batch after this long.
    pub linger: Duration,
}

impl Default for SinkConfig {
    fn default() -> Self {
        SinkConfig {
            batch_size: 128,
            linger: Duration::from_millis(50),
        }
    }
}

impl HttpEventSink {
    /// Creates a sink shipping to the collector at `addr` with
    /// default batching.
    pub fn new(addr: SocketAddr) -> HttpEventSink {
        HttpEventSink::with_config(addr, SinkConfig::default())
    }

    /// Creates a sink with explicit batching configuration.
    pub fn with_config(addr: SocketAddr, config: SinkConfig) -> HttpEventSink {
        let (sender, receiver) = mpsc::channel::<SinkMessage>();
        let dropped = Arc::new(AtomicU64::new(0));
        let dropped_for_worker = Arc::clone(&dropped);
        let worker = thread::Builder::new()
            .name("gremlin-event-sink".to_string())
            .spawn(move || {
                let client = HttpClient::new();
                let mut batch: Vec<Event> = Vec::with_capacity(config.batch_size);
                loop {
                    match receiver.recv_timeout(config.linger) {
                        Ok(SinkMessage::Record(event)) => {
                            batch.push(event);
                            if batch.len() >= config.batch_size {
                                ship(&client, addr, &mut batch, &dropped_for_worker);
                            }
                        }
                        Ok(SinkMessage::Flush(ack)) => {
                            ship(&client, addr, &mut batch, &dropped_for_worker);
                            let _ = ack.send(());
                        }
                        Err(mpsc::RecvTimeoutError::Timeout) => {
                            ship(&client, addr, &mut batch, &dropped_for_worker);
                        }
                        Err(mpsc::RecvTimeoutError::Disconnected) => {
                            ship(&client, addr, &mut batch, &dropped_for_worker);
                            break;
                        }
                    }
                }
            })
            .expect("failed to spawn event-sink thread");
        HttpEventSink {
            sender,
            worker: Some(worker),
            dropped,
        }
    }

    /// Blocks until every buffered event has been shipped.
    pub fn flush(&self) {
        let (ack_tx, ack_rx) = mpsc::channel();
        if self.sender.send(SinkMessage::Flush(ack_tx)).is_ok() {
            let _ = ack_rx.recv_timeout(Duration::from_secs(10));
        }
    }

    /// Events dropped because the collector was unreachable.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

fn ship(client: &HttpClient, addr: SocketAddr, batch: &mut Vec<Event>, dropped: &AtomicU64) {
    if batch.is_empty() {
        return;
    }
    let mut body = String::with_capacity(batch.len() * 128);
    for event in batch.iter() {
        match serde_json::to_string(event) {
            Ok(line) => {
                body.push_str(&line);
                body.push('\n');
            }
            Err(_) => {
                dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    let request = Request::builder(Method::Post, "/events")
        .header("Content-Type", "application/x-ndjson")
        .body(body)
        .build();
    match client.send(addr, request) {
        Ok(response) if response.status().is_success() => {}
        _ => {
            dropped.fetch_add(batch.len() as u64, Ordering::Relaxed);
        }
    }
    batch.clear();
}

impl EventSink for HttpEventSink {
    fn record(&self, event: Event) {
        // A closed channel means we are shutting down; the event is
        // deliberately dropped.
        let _ = self.sender.send(SinkMessage::Record(event));
    }
}

impl Drop for HttpEventSink {
    fn drop(&mut self) {
        self.flush();
        // Close the channel so the worker drains and exits.
        let (closed_tx, _) = mpsc::channel();
        let _ = std::mem::replace(&mut self.sender, closed_tx);
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gremlin_store::Query;

    fn event(index: u64) -> Event {
        Event::request("a", "b", "GET", format!("/{index}"))
            .with_request_id(format!("test-{index}"))
            .with_timestamp(index)
    }

    #[test]
    fn collector_accepts_batches() {
        let store = EventStore::shared();
        let collector = CollectorServer::start(Arc::clone(&store), "127.0.0.1:0").unwrap();
        let client = HttpClient::new();
        let body = format!(
            "{}\n{}\n",
            serde_json::to_string(&event(1)).unwrap(),
            serde_json::to_string(&event(2)).unwrap()
        );
        let resp = client
            .send(
                collector.local_addr(),
                Request::builder(Method::Post, "/events").body(body).build(),
            )
            .unwrap();
        assert_eq!(resp.status(), StatusCode::OK);
        assert_eq!(resp.body_str(), "{\"imported\":2}");
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn collector_rejects_garbage() {
        let store = EventStore::shared();
        let collector = CollectorServer::start(store, "127.0.0.1:0").unwrap();
        let client = HttpClient::new();
        let resp = client
            .send(
                collector.local_addr(),
                Request::builder(Method::Post, "/events")
                    .body("junk")
                    .build(),
            )
            .unwrap();
        assert_eq!(resp.status(), StatusCode::BAD_REQUEST);
    }

    #[test]
    fn collector_exports_and_clears() {
        let store = EventStore::shared();
        store.record_event(event(7));
        let collector = CollectorServer::start(Arc::clone(&store), "127.0.0.1:0").unwrap();
        let client = HttpClient::new();

        let resp = client
            .send(collector.local_addr(), Request::get("/events"))
            .unwrap();
        assert!(resp.body_str().contains("test-7"));

        let resp = client
            .send(collector.local_addr(), Request::get("/stats"))
            .unwrap();
        assert!(
            resp.body_str().starts_with("{\"events\":1,"),
            "unexpected stats body: {}",
            resp.body_str()
        );

        let resp = client
            .send(
                collector.local_addr(),
                Request::builder(Method::Delete, "/events").build(),
            )
            .unwrap();
        assert_eq!(resp.status(), StatusCode::NO_CONTENT);
        assert!(store.is_empty());
    }

    #[test]
    fn collector_keeps_good_lines_from_mixed_batch() {
        let store = EventStore::shared();
        let collector = CollectorServer::start(Arc::clone(&store), "127.0.0.1:0").unwrap();
        let client = HttpClient::new();
        let body = format!(
            "{}\nnot json\n{}\n",
            serde_json::to_string(&event(1)).unwrap(),
            serde_json::to_string(&event(2)).unwrap()
        );
        let resp = client
            .send(
                collector.local_addr(),
                Request::builder(Method::Post, "/events").body(body).build(),
            )
            .unwrap();
        assert_eq!(resp.status(), StatusCode::BAD_REQUEST);
        assert!(resp.body_str().contains("\"imported\":2"));
        assert!(resp.body_str().contains("\"parse_errors\":1"));
        // Good lines were still appended.
        assert_eq!(store.len(), 2);

        // The failure is visible in /stats and /metrics.
        let stats = client
            .send(collector.local_addr(), Request::get("/stats"))
            .unwrap();
        assert!(stats.body_str().contains("\"parse_errors\":1"));
        let metrics = client
            .send(collector.local_addr(), Request::get("/metrics"))
            .unwrap();
        assert_eq!(metrics.status(), StatusCode::OK);
        let text = metrics.body_str();
        assert!(text.contains("gremlin_collector_parse_errors_total 1"));
        assert!(text.contains("gremlin_collector_events_total 2"));
        assert!(text.contains("gremlin_collector_batches_total 1"));
        assert!(text.contains("gremlin_store_events 2"));
    }

    #[test]
    fn empty_request_id_events_are_dropped_and_counted() {
        let store = EventStore::shared();
        let collector = CollectorServer::start(Arc::clone(&store), "127.0.0.1:0").unwrap();
        let client = HttpClient::new();
        let body = format!(
            "{}\n{}\n",
            serde_json::to_string(&event(1)).unwrap(),
            serde_json::to_string(&event(2).with_request_id("")).unwrap(),
        );
        let resp = client
            .send(
                collector.local_addr(),
                Request::builder(Method::Post, "/events").body(body).build(),
            )
            .unwrap();
        assert_eq!(resp.status(), StatusCode::OK);
        assert_eq!(resp.body_str(), "{\"imported\":1}");
        assert_eq!(store.len(), 1, "empty-id event must not be appended");

        let stats = client
            .send(collector.local_addr(), Request::get("/stats"))
            .unwrap();
        assert!(
            stats.body_str().contains("\"dropped\":1"),
            "stats: {}",
            stats.body_str()
        );
        let metrics = client
            .send(collector.local_addr(), Request::get("/metrics"))
            .unwrap();
        assert!(metrics
            .body_str()
            .contains("gremlin_collector_dropped_events 1"));
    }

    #[test]
    fn traces_endpoint_serves_otlp_json() {
        let store = EventStore::shared();
        store.record_event(
            Event::request("a", "b", "GET", "/x")
                .with_request_id("test-9")
                .with_timestamp(5)
                .with_span_id("s1"),
        );
        let mut done = Event::response("a", "b", 200, Duration::from_millis(2))
            .with_request_id("test-9")
            .with_span_id("s1");
        done.timestamp_us = 2_005;
        store.record_event(done);
        let collector = CollectorServer::start(Arc::clone(&store), "127.0.0.1:0").unwrap();
        let client = HttpClient::new();

        let resp = client
            .send(collector.local_addr(), Request::get("/traces/test-9"))
            .unwrap();
        assert_eq!(resp.status(), StatusCode::OK);
        assert_eq!(resp.headers().get("content-type"), Some("application/json"));
        let trace: gremlin_store::OtlpTrace = serde_json::from_str(&resp.body_str()).unwrap();
        let spans = gremlin_store::import_otlp(&trace);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].span_id.as_deref(), Some("s1"));
        assert_eq!(spans[0].status, Some(200));

        let resp = client
            .send(collector.local_addr(), Request::get("/traces/unknown"))
            .unwrap();
        assert_eq!(resp.status(), StatusCode::NOT_FOUND);
        let resp = client
            .send(collector.local_addr(), Request::get("/traces/"))
            .unwrap();
        assert_eq!(resp.status(), StatusCode::BAD_REQUEST);
    }

    #[test]
    fn tail_streams_only_new_events() {
        let store = EventStore::shared();
        store.record_event(event(1)); // history: must be skipped
        let collector = CollectorServer::start(Arc::clone(&store), "127.0.0.1:0").unwrap();

        let stream = std::net::TcpStream::connect(collector.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut writer = stream.try_clone().unwrap();
        gremlin_http::codec::write_request(&mut writer, &Request::get("/tail")).unwrap();
        let mut reader = std::io::BufReader::new(stream);
        let head = gremlin_http::codec::read_response_head(&mut reader).unwrap();
        assert_eq!(head.status(), StatusCode::OK);
        assert!(head.headers().is_chunked());

        store.record_event(event(2));
        let mut chunks = gremlin_http::codec::ChunkReader::new(reader);
        let mut seen = String::new();
        while !seen.contains("test-2") {
            let chunk = chunks
                .next_chunk()
                .unwrap()
                .expect("stream ended before the event arrived");
            seen.push_str(&String::from_utf8_lossy(&chunk));
        }
        assert!(!seen.contains("test-1"), "tail must skip history: {seen}");
    }

    #[test]
    fn tail_from_zero_replays_history() {
        let store = EventStore::shared();
        store.record_event(event(1));
        let collector = CollectorServer::start(Arc::clone(&store), "127.0.0.1:0").unwrap();

        let stream = std::net::TcpStream::connect(collector.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut writer = stream.try_clone().unwrap();
        gremlin_http::codec::write_request(&mut writer, &Request::get("/tail?from=0")).unwrap();
        let mut reader = std::io::BufReader::new(stream);
        let _head = gremlin_http::codec::read_response_head(&mut reader).unwrap();
        let mut chunks = gremlin_http::codec::ChunkReader::new(reader);
        let mut seen = String::new();
        while !seen.contains("test-1") {
            let chunk = chunks.next_chunk().unwrap().expect("stream ended");
            seen.push_str(&String::from_utf8_lossy(&chunk));
        }
    }

    #[test]
    fn sink_ships_batches_to_collector() {
        let store = EventStore::shared();
        let collector = CollectorServer::start(Arc::clone(&store), "127.0.0.1:0").unwrap();
        let sink = HttpEventSink::new(collector.local_addr());
        for index in 0..10 {
            sink.record(event(index));
        }
        sink.flush();
        assert_eq!(store.len(), 10);
        assert_eq!(sink.dropped(), 0);
        let found = store.query(&Query::requests("a", "b"));
        assert_eq!(found.len(), 10);
    }

    #[test]
    fn sink_linger_ships_partial_batches() {
        let store = EventStore::shared();
        let collector = CollectorServer::start(Arc::clone(&store), "127.0.0.1:0").unwrap();
        let sink = HttpEventSink::with_config(
            collector.local_addr(),
            SinkConfig {
                batch_size: 1000,
                linger: Duration::from_millis(20),
            },
        );
        sink.record(event(1));
        thread::sleep(Duration::from_millis(150));
        assert_eq!(
            store.len(),
            1,
            "linger must flush without reaching batch size"
        );
        drop(sink);
    }

    #[test]
    fn sink_counts_drops_when_collector_unreachable() {
        let dead = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let sink = HttpEventSink::new(dead);
        sink.record(event(1));
        sink.flush();
        assert_eq!(sink.dropped(), 1);
    }

    #[test]
    fn drop_flushes_buffered_events() {
        let store = EventStore::shared();
        let collector = CollectorServer::start(Arc::clone(&store), "127.0.0.1:0").unwrap();
        {
            let sink = HttpEventSink::with_config(
                collector.local_addr(),
                SinkConfig {
                    batch_size: 1000,
                    linger: Duration::from_secs(10),
                },
            );
            sink.record(event(1));
            sink.record(event(2));
        } // drop flushes
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn health_endpoint_serves_edge_matrix() {
        let store = EventStore::shared();
        store.record_event(
            Event::request("web", "db", "GET", "/q")
                .with_request_id("test-1")
                .with_timestamp(1_000),
        );
        let mut reply =
            Event::response("web", "db", 200, Duration::from_millis(3)).with_request_id("test-1");
        reply.timestamp_us = 4_000;
        store.record_event(reply);

        let collector = CollectorServer::start(Arc::clone(&store), "127.0.0.1:0").unwrap();
        let client = HttpClient::new();
        let resp = client
            .send(collector.local_addr(), Request::get("/health"))
            .unwrap();
        assert_eq!(resp.status(), StatusCode::OK);
        assert_eq!(resp.headers().get("content-type"), Some("application/json"));
        let body: serde_json::Value = serde_json::from_str(&resp.body_str()).unwrap();
        let edges = body["edges"].as_array().expect("edges array");
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0]["src"], "web");
        assert_eq!(edges[0]["dst"], "db");
        assert_eq!(edges[0]["requests"], 1);
        assert_eq!(edges[0]["responses"], 1);
        // The default monitor carries no assertion engine and no
        // anomaly baseline.
        assert_eq!(body["checks"].as_array().map(Vec::len), Some(0));
        assert_eq!(body["scores"].as_array().map(Vec::len), Some(0));
        assert_eq!(body["schema_version"], u64::from(HEALTH_SCHEMA_VERSION));
    }

    /// A canned [`MonitorSource`] for exercising `/alerts` without
    /// pulling the full streaming engine into this crate's tests.
    #[derive(Debug, Default)]
    struct FakeMonitor {
        lines: std::sync::Mutex<Vec<String>>,
        refreshes: AtomicU64,
    }

    impl MonitorSource for FakeMonitor {
        fn refresh(&self) {
            self.refreshes.fetch_add(1, Ordering::Relaxed);
        }

        fn health_json(&self) -> String {
            "{\"window_us\":0,\"clock_us\":0,\"edges\":[],\"checks\":[]}".to_string()
        }

        fn alert_lines_after(&self, cursor: u64) -> (Vec<String>, u64) {
            let lines = self.lines.lock().unwrap();
            let start = cursor as usize;
            if start >= lines.len() {
                return (Vec::new(), cursor);
            }
            (lines[start..].to_vec(), lines.len() as u64)
        }
    }

    #[test]
    fn alerts_stream_replays_history_then_follows() {
        let store = EventStore::shared();
        let monitor = Arc::new(FakeMonitor::default());
        monitor
            .lines
            .lock()
            .unwrap()
            .push("{\"seq\":0,\"to\":\"failing\"}".to_string());
        let collector = CollectorServer::start_with_monitor(
            Arc::clone(&store),
            "127.0.0.1:0",
            MetricsRegistry::shared(),
            Arc::clone(&monitor) as Arc<dyn MonitorSource>,
        )
        .unwrap();

        let stream = std::net::TcpStream::connect(collector.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut writer = stream.try_clone().unwrap();
        gremlin_http::codec::write_request(&mut writer, &Request::get("/alerts")).unwrap();
        let mut reader = std::io::BufReader::new(stream);
        let head = gremlin_http::codec::read_response_head(&mut reader).unwrap();
        assert_eq!(head.status(), StatusCode::OK);
        assert!(head.headers().is_chunked());

        let mut chunks = gremlin_http::codec::ChunkReader::new(reader);
        let mut seen = String::new();
        // History (recorded before the subscriber connected) replays.
        while !seen.contains("\"seq\":0") {
            let chunk = chunks.next_chunk().unwrap().expect("stream ended");
            seen.push_str(&String::from_utf8_lossy(&chunk));
        }
        // While connected, the subscriber gauge is visible on /stats
        // and the stream keeps refreshing the monitor.
        let client = HttpClient::new();
        let stats = client
            .send(collector.local_addr(), Request::get("/stats"))
            .unwrap();
        assert!(
            stats.body_str().contains("\"alert_subscribers\":1"),
            "stats: {}",
            stats.body_str()
        );
        assert!(monitor.refreshes.load(Ordering::Relaxed) > 0);

        // New alerts arrive live.
        monitor
            .lines
            .lock()
            .unwrap()
            .push("{\"seq\":1,\"to\":\"violated\"}".to_string());
        while !seen.contains("\"seq\":1") {
            let chunk = chunks.next_chunk().unwrap().expect("stream ended");
            seen.push_str(&String::from_utf8_lossy(&chunk));
        }
        let metrics = collector
            .registry()
            .snapshot()
            .counter_value("gremlin_collector_alerts_streamed_total", &[]);
        assert_eq!(metrics, Some(2));
    }

    #[test]
    fn stats_reports_tail_cursor_and_subscriber_counts() {
        let store = EventStore::shared();
        store.record_event(event(1));
        store.record_event(event(2));
        let collector = CollectorServer::start(Arc::clone(&store), "127.0.0.1:0").unwrap();
        let client = HttpClient::new();
        let stats = client
            .send(collector.local_addr(), Request::get("/stats"))
            .unwrap();
        let body = stats.body_str();
        assert!(
            body.contains(&format!("\"tail_cursor\":{}", store.tail_cursor())),
            "stats: {body}"
        );
        assert!(body.contains("\"tail_subscribers\":0"), "stats: {body}");
        assert!(body.contains("\"alert_subscribers\":0"), "stats: {body}");
    }
}

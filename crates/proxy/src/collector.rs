//! The log-collection pipeline between agents and the central store.
//!
//! The paper ships agent observations through logstash into
//! Elasticsearch (§6). In single-process deployments our agents write
//! straight into a shared [`EventStore`]; this module provides the
//! distributed equivalent: agents log through an [`HttpEventSink`]
//! that forwards observations (newline-delimited JSON, batched) to a
//! [`CollectorServer`] fronting the store.

use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use gremlin_http::{ConnInfo, HttpClient, HttpServer, Method, Request, Response, StatusCode};
use gremlin_store::{Event, EventSink, EventStore};

use crate::error::ProxyError;

/// HTTP endpoint accepting observation batches into an
/// [`EventStore`].
///
/// Routes:
///
/// | Method | Path      | Effect                                        |
/// |--------|-----------|-----------------------------------------------|
/// | POST   | `/events` | append newline-delimited JSON events          |
/// | GET    | `/events` | dump the store as newline-delimited JSON      |
/// | GET    | `/stats`  | `{"events": N}`                               |
/// | DELETE | `/events` | clear the store                               |
#[derive(Debug)]
pub struct CollectorServer {
    server: HttpServer,
    store: Arc<EventStore>,
}

impl CollectorServer {
    /// Starts a collector on `addr` writing into `store`.
    ///
    /// # Errors
    ///
    /// Returns an error if the address cannot be bound.
    pub fn start(
        store: Arc<EventStore>,
        addr: impl ToSocketAddrs,
    ) -> Result<CollectorServer, ProxyError> {
        let handler_store = Arc::clone(&store);
        let server = HttpServer::bind(addr, move |request: Request, _conn: &ConnInfo| {
            handle_collect(&handler_store, request)
        })?;
        Ok(CollectorServer { server, store })
    }

    /// The collector's listening address.
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// The store behind the collector.
    pub fn store(&self) -> &Arc<EventStore> {
        &self.store
    }
}

fn handle_collect(store: &Arc<EventStore>, request: Request) -> Response {
    match (request.method().clone(), request.path()) {
        (Method::Post, "/events") => {
            let text = String::from_utf8_lossy(request.body());
            match store.import_json(&text) {
                Ok(count) => Response::builder(StatusCode::OK)
                    .body(format!("{{\"imported\":{count}}}"))
                    .build(),
                Err(err) => Response::builder(StatusCode::BAD_REQUEST)
                    .body(format!("bad event batch: {err}"))
                    .build(),
            }
        }
        (Method::Get, "/events") => match store.export_json() {
            Ok(body) => Response::builder(StatusCode::OK)
                .header("Content-Type", "application/x-ndjson")
                .body(body)
                .build(),
            Err(err) => Response::builder(StatusCode::INTERNAL_SERVER_ERROR)
                .body(err.to_string())
                .build(),
        },
        (Method::Get, "/stats") => Response::builder(StatusCode::OK)
            .header("Content-Type", "application/json")
            .body(format!("{{\"events\":{}}}", store.len()))
            .build(),
        (Method::Delete, "/events") => {
            store.clear();
            Response::builder(StatusCode::NO_CONTENT).build()
        }
        _ => Response::error(StatusCode::NOT_FOUND),
    }
}

/// An [`EventSink`] forwarding observations to a remote
/// [`CollectorServer`].
///
/// Events are buffered on a background thread and shipped in batches
/// (bounded by size and linger time), so the data path never blocks
/// on the collector. Dropping the sink flushes the buffer.
#[derive(Debug)]
pub struct HttpEventSink {
    sender: mpsc::Sender<SinkMessage>,
    worker: Option<thread::JoinHandle<()>>,
    dropped: Arc<AtomicU64>,
}

enum SinkMessage {
    Record(Event),
    Flush(mpsc::Sender<()>),
}

/// Configuration for [`HttpEventSink`].
#[derive(Debug, Clone)]
pub struct SinkConfig {
    /// Ship a batch once it reaches this many events.
    pub batch_size: usize,
    /// Ship a partial batch after this long.
    pub linger: Duration,
}

impl Default for SinkConfig {
    fn default() -> Self {
        SinkConfig {
            batch_size: 128,
            linger: Duration::from_millis(50),
        }
    }
}

impl HttpEventSink {
    /// Creates a sink shipping to the collector at `addr` with
    /// default batching.
    pub fn new(addr: SocketAddr) -> HttpEventSink {
        HttpEventSink::with_config(addr, SinkConfig::default())
    }

    /// Creates a sink with explicit batching configuration.
    pub fn with_config(addr: SocketAddr, config: SinkConfig) -> HttpEventSink {
        let (sender, receiver) = mpsc::channel::<SinkMessage>();
        let dropped = Arc::new(AtomicU64::new(0));
        let dropped_for_worker = Arc::clone(&dropped);
        let worker = thread::Builder::new()
            .name("gremlin-event-sink".to_string())
            .spawn(move || {
                let client = HttpClient::new();
                let mut batch: Vec<Event> = Vec::with_capacity(config.batch_size);
                loop {
                    match receiver.recv_timeout(config.linger) {
                        Ok(SinkMessage::Record(event)) => {
                            batch.push(event);
                            if batch.len() >= config.batch_size {
                                ship(&client, addr, &mut batch, &dropped_for_worker);
                            }
                        }
                        Ok(SinkMessage::Flush(ack)) => {
                            ship(&client, addr, &mut batch, &dropped_for_worker);
                            let _ = ack.send(());
                        }
                        Err(mpsc::RecvTimeoutError::Timeout) => {
                            ship(&client, addr, &mut batch, &dropped_for_worker);
                        }
                        Err(mpsc::RecvTimeoutError::Disconnected) => {
                            ship(&client, addr, &mut batch, &dropped_for_worker);
                            break;
                        }
                    }
                }
            })
            .expect("failed to spawn event-sink thread");
        HttpEventSink {
            sender,
            worker: Some(worker),
            dropped,
        }
    }

    /// Blocks until every buffered event has been shipped.
    pub fn flush(&self) {
        let (ack_tx, ack_rx) = mpsc::channel();
        if self.sender.send(SinkMessage::Flush(ack_tx)).is_ok() {
            let _ = ack_rx.recv_timeout(Duration::from_secs(10));
        }
    }

    /// Events dropped because the collector was unreachable.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

fn ship(client: &HttpClient, addr: SocketAddr, batch: &mut Vec<Event>, dropped: &AtomicU64) {
    if batch.is_empty() {
        return;
    }
    let mut body = String::with_capacity(batch.len() * 128);
    for event in batch.iter() {
        match serde_json::to_string(event) {
            Ok(line) => {
                body.push_str(&line);
                body.push('\n');
            }
            Err(_) => {
                dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    let request = Request::builder(Method::Post, "/events")
        .header("Content-Type", "application/x-ndjson")
        .body(body)
        .build();
    match client.send(addr, request) {
        Ok(response) if response.status().is_success() => {}
        _ => {
            dropped.fetch_add(batch.len() as u64, Ordering::Relaxed);
        }
    }
    batch.clear();
}

impl EventSink for HttpEventSink {
    fn record(&self, event: Event) {
        // A closed channel means we are shutting down; the event is
        // deliberately dropped.
        let _ = self.sender.send(SinkMessage::Record(event));
    }
}

impl Drop for HttpEventSink {
    fn drop(&mut self) {
        self.flush();
        // Close the channel so the worker drains and exits.
        let (closed_tx, _) = mpsc::channel();
        let _ = std::mem::replace(&mut self.sender, closed_tx);
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gremlin_store::Query;

    fn event(index: u64) -> Event {
        Event::request("a", "b", "GET", format!("/{index}"))
            .with_request_id(format!("test-{index}"))
            .with_timestamp(index)
    }

    #[test]
    fn collector_accepts_batches() {
        let store = EventStore::shared();
        let collector = CollectorServer::start(Arc::clone(&store), "127.0.0.1:0").unwrap();
        let client = HttpClient::new();
        let body = format!(
            "{}\n{}\n",
            serde_json::to_string(&event(1)).unwrap(),
            serde_json::to_string(&event(2)).unwrap()
        );
        let resp = client
            .send(
                collector.local_addr(),
                Request::builder(Method::Post, "/events").body(body).build(),
            )
            .unwrap();
        assert_eq!(resp.status(), StatusCode::OK);
        assert_eq!(resp.body_str(), "{\"imported\":2}");
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn collector_rejects_garbage() {
        let store = EventStore::shared();
        let collector = CollectorServer::start(store, "127.0.0.1:0").unwrap();
        let client = HttpClient::new();
        let resp = client
            .send(
                collector.local_addr(),
                Request::builder(Method::Post, "/events").body("junk").build(),
            )
            .unwrap();
        assert_eq!(resp.status(), StatusCode::BAD_REQUEST);
    }

    #[test]
    fn collector_exports_and_clears() {
        let store = EventStore::shared();
        store.record_event(event(7));
        let collector = CollectorServer::start(Arc::clone(&store), "127.0.0.1:0").unwrap();
        let client = HttpClient::new();

        let resp = client
            .send(collector.local_addr(), Request::get("/events"))
            .unwrap();
        assert!(resp.body_str().contains("test-7"));

        let resp = client
            .send(collector.local_addr(), Request::get("/stats"))
            .unwrap();
        assert_eq!(resp.body_str(), "{\"events\":1}");

        let resp = client
            .send(
                collector.local_addr(),
                Request::builder(Method::Delete, "/events").build(),
            )
            .unwrap();
        assert_eq!(resp.status(), StatusCode::NO_CONTENT);
        assert!(store.is_empty());
    }

    #[test]
    fn sink_ships_batches_to_collector() {
        let store = EventStore::shared();
        let collector = CollectorServer::start(Arc::clone(&store), "127.0.0.1:0").unwrap();
        let sink = HttpEventSink::new(collector.local_addr());
        for index in 0..10 {
            sink.record(event(index));
        }
        sink.flush();
        assert_eq!(store.len(), 10);
        assert_eq!(sink.dropped(), 0);
        let found = store.query(&Query::requests("a", "b"));
        assert_eq!(found.len(), 10);
    }

    #[test]
    fn sink_linger_ships_partial_batches() {
        let store = EventStore::shared();
        let collector = CollectorServer::start(Arc::clone(&store), "127.0.0.1:0").unwrap();
        let sink = HttpEventSink::with_config(
            collector.local_addr(),
            SinkConfig {
                batch_size: 1000,
                linger: Duration::from_millis(20),
            },
        );
        sink.record(event(1));
        thread::sleep(Duration::from_millis(150));
        assert_eq!(store.len(), 1, "linger must flush without reaching batch size");
        drop(sink);
    }

    #[test]
    fn sink_counts_drops_when_collector_unreachable() {
        let dead = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let sink = HttpEventSink::new(dead);
        sink.record(event(1));
        sink.flush();
        assert_eq!(sink.dropped(), 1);
    }

    #[test]
    fn drop_flushes_buffered_events() {
        let store = EventStore::shared();
        let collector = CollectorServer::start(Arc::clone(&store), "127.0.0.1:0").unwrap();
        {
            let sink = HttpEventSink::with_config(
                collector.local_addr(),
                SinkConfig {
                    batch_size: 1000,
                    linger: Duration::from_secs(10),
                },
            );
            sink.record(event(1));
            sink.record(event(2));
        } // drop flushes
        assert_eq!(store.len(), 2);
    }
}

//! Per-thread probability sampling for rule matching.
//!
//! The rule table used to draw every coin flip from one global
//! `Mutex<StdRng>`, serializing all proxy worker threads on the data
//! plane's hottest path. Here each `(thread, table)` pair owns an
//! independent SplitMix64 stream, so sampling is lock-free. Streams
//! are seeded from the table's seed; the first thread to touch a
//! table (in practice: single-threaded tests and benchmarks) gets a
//! fully reproducible sequence for a given [`RuleTable::with_seed`]
//! value, while additional threads mix in a per-thread salt so their
//! draws stay decorrelated.
//!
//! [`RuleTable::with_seed`]: crate::RuleTable::with_seed

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

static NEXT_THREAD_SALT: AtomicU64 = AtomicU64::new(0);
static NEXT_STREAM_ID: AtomicU64 = AtomicU64::new(0);
static SEED_NONCE: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Unique per-thread salt; 0 for the first thread that samples.
    static THREAD_SALT: u64 = NEXT_THREAD_SALT.fetch_add(1, Ordering::Relaxed);
    /// Per-table SplitMix64 states owned by this thread.
    static STREAMS: RefCell<HashMap<u64, u64>> = RefCell::new(HashMap::new());
    /// Independent per-thread stream for span-ID minting.
    static SPAN_STATE: Cell<u64> = Cell::new(entropy_seed());
}

/// One SplitMix64 step (Steele, Lea & Flood; the `java.util` seeder).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(GOLDEN);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Allocates a process-unique stream ID; each `RuleTable` takes one so
/// per-thread states of different tables never collide.
pub(crate) fn next_stream_id() -> u64 {
    NEXT_STREAM_ID.fetch_add(1, Ordering::Relaxed)
}

/// An entropy seed for tables created without [`with_seed`].
///
/// [`with_seed`]: crate::RuleTable::with_seed
pub(crate) fn entropy_seed() -> u64 {
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default()
        .as_nanos() as u64;
    let mut state = nanos
        ^ SEED_NONCE
            .fetch_add(1, Ordering::Relaxed)
            .wrapping_mul(GOLDEN);
    splitmix64(&mut state)
}

/// Mints a span identifier: 64 bits from this thread's dedicated
/// SplitMix64 stream, rendered as 16 lowercase hex digits
/// (Dapper/Zipkin convention). Lock-free; never blocks.
pub(crate) fn mint_span_id() -> String {
    let id = SPAN_STATE.with(|state| {
        let mut s = state.get();
        let id = splitmix64(&mut s);
        state.set(s);
        id
    });
    format!("{id:016x}")
}

/// Draws one Bernoulli sample with the given probability from this
/// thread's stream for `(stream, seed)`. Lock-free; never blocks.
pub(crate) fn flip(stream: u64, seed: u64, probability: f64) -> bool {
    if probability <= 0.0 {
        return false;
    }
    if probability >= 1.0 {
        return true;
    }
    let sample = STREAMS.with(|streams| {
        let mut streams = streams.borrow_mut();
        let state = streams.entry(stream).or_insert_with(|| {
            let salt = THREAD_SALT.with(|salt| *salt);
            seed ^ salt.wrapping_mul(GOLDEN)
        });
        splitmix64(state)
    });
    // Top 53 bits -> uniform f64 in [0, 1).
    let unit = (sample >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    unit < probability
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_probabilities_never_sample() {
        let stream = next_stream_id();
        for _ in 0..100 {
            assert!(!flip(stream, 1, 0.0));
            assert!(flip(stream, 1, 1.0));
        }
        assert!(!flip(stream, 1, -0.5));
        assert!(flip(stream, 1, 1.5));
        assert!(!flip(stream, 1, f64::NAN)); // NaN comparisons are false
    }

    #[test]
    fn fraction_of_heads_tracks_probability() {
        let stream = next_stream_id();
        let heads = (0..10_000).filter(|_| flip(stream, 42, 0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads {heads}/10000");
        let rare = (0..10_000).filter(|_| flip(stream, 42, 0.05)).count();
        assert!((200..900).contains(&rare), "rare {rare}/10000");
    }

    #[test]
    fn same_seed_same_thread_reproduces() {
        let a: Vec<bool> = {
            let stream = next_stream_id();
            (0..64).map(|_| flip(stream, 7, 0.5)).collect()
        };
        let b: Vec<bool> = {
            let stream = next_stream_id();
            (0..64).map(|_| flip(stream, 7, 0.5)).collect()
        };
        assert_eq!(a, b);
        let c: Vec<bool> = {
            let stream = next_stream_id();
            (0..64).map(|_| flip(stream, 8, 0.5)).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn span_ids_are_hex_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1_000 {
            let id = mint_span_id();
            assert_eq!(id.len(), 16, "span id {id:?}");
            assert!(id.bytes().all(|b| b.is_ascii_hexdigit()));
            assert!(seen.insert(id), "duplicate span id");
        }
    }

    #[test]
    fn streams_do_not_interfere() {
        let s1 = next_stream_id();
        let s2 = next_stream_id();
        // Interleaving draws from a second stream must not disturb the
        // first stream's sequence.
        let interleaved: Vec<bool> = (0..64)
            .map(|_| {
                let _ = flip(s2, 99, 0.5);
                flip(s1, 7, 0.5)
            })
            .collect();
        let alone: Vec<bool> = {
            let s = next_stream_id();
            (0..64).map(|_| flip(s, 7, 0.5)).collect()
        };
        assert_eq!(interleaved, alone);
    }
}

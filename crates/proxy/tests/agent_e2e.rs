//! End-to-end tests of the Gremlin agent over real TCP sockets:
//! a backend service sits behind an agent, and a client calls through
//! the agent while fault-injection rules are installed.

use std::sync::Arc;
use std::time::{Duration, Instant};

use gremlin_http::{
    ClientConfig, ConnInfo, HttpClient, HttpServer, Method, Request, Response, StatusCode,
};
use gremlin_proxy::{AbortKind, AgentConfig, AgentControl, GremlinAgent, MessageSide, Rule};
use gremlin_store::{AppliedFault, EventStore, Query};

/// Backend + agent + client harness.
struct Harness {
    _backend: HttpServer,
    agent: GremlinAgent,
    client: HttpClient,
    store: Arc<EventStore>,
}

impl Harness {
    fn new() -> Harness {
        Harness::with_backend(|req: Request, _conn: &ConnInfo| {
            let mut resp = Response::ok(format!("echo:{}", req.path()));
            if let Some(id) = req.request_id() {
                resp.headers_mut()
                    .insert(gremlin_http::header_names::REQUEST_ID, id.to_string());
            }
            resp
        })
    }

    fn with_backend<H: gremlin_http::Handler>(handler: H) -> Harness {
        let backend = HttpServer::bind("127.0.0.1:0", handler).unwrap();
        let store = EventStore::shared();
        let agent = GremlinAgent::start(
            AgentConfig::new("serviceA")
                .route("serviceB", vec![backend.local_addr()])
                .seed(7),
            store.clone(),
        )
        .unwrap();
        let client = HttpClient::with_config(ClientConfig {
            connect_timeout: Some(Duration::from_secs(2)),
            read_timeout: Some(Duration::from_secs(10)),
            ..ClientConfig::default()
        });
        Harness {
            _backend: backend,
            agent,
            client,
            store,
        }
    }

    fn call(&self, path: &str, id: &str) -> gremlin_http::Result<Response> {
        let addr = self.agent.route_addr("serviceB").unwrap();
        self.client.send(
            addr,
            Request::builder(Method::Get, path).request_id(id).build(),
        )
    }
}

#[test]
fn passthrough_forwards_and_logs() {
    let h = Harness::new();
    let resp = h.call("/hello", "test-1").unwrap();
    assert_eq!(resp.status(), StatusCode::OK);
    assert_eq!(resp.body_str(), "echo:/hello");

    let requests = h.store.query(&Query::requests("serviceA", "serviceB"));
    let replies = h.store.query(&Query::replies("serviceA", "serviceB"));
    assert_eq!(requests.len(), 1);
    assert_eq!(replies.len(), 1);
    assert_eq!(requests[0].request_id.as_deref(), Some("test-1"));
    assert_eq!(replies[0].status(), Some(200));
    assert!(!replies[0].is_faulted());
}

#[test]
fn abort_status_returns_error_without_reaching_backend() {
    let h = Harness::new();
    h.agent
        .install_rules(vec![Rule::abort(
            "serviceA",
            "serviceB",
            AbortKind::Status(503),
        )
        .with_pattern("test-*")])
        .unwrap();
    let resp = h.call("/x", "test-2").unwrap();
    assert_eq!(resp.status(), StatusCode::SERVICE_UNAVAILABLE);
    assert!(resp
        .headers()
        .get(gremlin_http::header_names::GREMLIN_ACTION)
        .is_some());

    let replies = h.store.query(&Query::replies("serviceA", "serviceB"));
    assert_eq!(replies.len(), 1);
    assert_eq!(replies[0].fault, Some(AppliedFault::Abort { status: 503 }));
    // Backend never saw the request: the agent synthesized the reply
    // in well under the backend's natural latency.
    assert!(replies[0].observed_latency().unwrap() < Duration::from_millis(50));
}

#[test]
fn abort_spares_non_matching_flows() {
    let h = Harness::new();
    h.agent
        .install_rules(vec![Rule::abort(
            "serviceA",
            "serviceB",
            AbortKind::Status(503),
        )
        .with_pattern("test-*")])
        .unwrap();
    let resp = h.call("/x", "prod-1").unwrap();
    assert_eq!(resp.status(), StatusCode::OK);
    assert_eq!(resp.body_str(), "echo:/x");
}

#[test]
fn delay_postpones_response() {
    let h = Harness::new();
    h.agent
        .install_rules(vec![Rule::delay(
            "serviceA",
            "serviceB",
            Duration::from_millis(150),
        )
        .with_pattern("test-*")])
        .unwrap();
    let started = Instant::now();
    let resp = h.call("/slow", "test-3").unwrap();
    let elapsed = started.elapsed();
    assert_eq!(resp.status(), StatusCode::OK);
    assert!(elapsed >= Duration::from_millis(150), "elapsed {elapsed:?}");

    let replies = h.store.query(&Query::replies("serviceA", "serviceB"));
    assert_eq!(replies.len(), 1);
    let observed = replies[0].observed_latency().unwrap();
    let untampered = replies[0].untampered_latency().unwrap();
    assert!(observed >= Duration::from_millis(150));
    assert!(untampered < observed);
}

#[test]
fn abort_reset_terminates_connection() {
    let h = Harness::new();
    h.agent
        .install_rules(vec![
            Rule::abort("serviceA", "serviceB", AbortKind::Reset).with_pattern("test-*")
        ])
        .unwrap();
    let err = h.call("/x", "test-4").unwrap_err();
    assert!(
        err.is_connection_error() || err.is_timeout(),
        "expected connection failure, got {err}"
    );

    let replies = h.store.query(&Query::replies("serviceA", "serviceB"));
    assert_eq!(replies.len(), 1);
    assert_eq!(replies[0].status(), Some(0));
    assert_eq!(replies[0].fault, Some(AppliedFault::AbortReset));
}

#[test]
fn modify_rewrites_response_body() {
    let h = Harness::with_backend(|_req: Request, _conn: &ConnInfo| Response::ok("key=value"));
    h.agent
        .install_rules(vec![Rule::modify("serviceA", "serviceB", "key", "badkey")
            .with_pattern("test-*")
            .with_side(MessageSide::Response)])
        .unwrap();
    let resp = h.call("/kv", "test-5").unwrap();
    assert_eq!(resp.body_str(), "badkey=value");

    let replies = h.store.query(&Query::replies("serviceA", "serviceB"));
    assert_eq!(replies[0].fault, Some(AppliedFault::Modify));
}

#[test]
fn modify_rewrites_request_body() {
    let h = Harness::with_backend(|req: Request, _conn: &ConnInfo| {
        Response::ok(format!("got:{}", String::from_utf8_lossy(req.body())))
    });
    h.agent
        .install_rules(vec![Rule::modify(
            "serviceA", "serviceB", "secret", "XXXXX",
        )
        .with_pattern("test-*")
        .with_side(MessageSide::Request)])
        .unwrap();
    let addr = h.agent.route_addr("serviceB").unwrap();
    let req = Request::builder(Method::Post, "/submit")
        .request_id("test-6")
        .body("the secret data")
        .build();
    let resp = h.client.send(addr, req).unwrap();
    assert_eq!(resp.body_str(), "got:the XXXXX data");
}

#[test]
fn response_side_delay_applies_after_backend() {
    let h = Harness::new();
    h.agent
        .install_rules(vec![Rule::delay(
            "serviceA",
            "serviceB",
            Duration::from_millis(120),
        )
        .with_pattern("test-*")
        .with_side(MessageSide::Response)])
        .unwrap();
    let started = Instant::now();
    let resp = h.call("/r", "test-7").unwrap();
    assert_eq!(resp.status(), StatusCode::OK);
    assert!(started.elapsed() >= Duration::from_millis(120));
}

#[test]
fn upstream_down_yields_bad_gateway() {
    // Bind-then-drop to get a dead port.
    let dead_addr = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap()
    };
    let store = EventStore::shared();
    let agent = GremlinAgent::start(
        AgentConfig::new("serviceA").route("serviceB", vec![dead_addr]),
        store.clone(),
    )
    .unwrap();
    let client = HttpClient::new();
    let resp = client
        .send(
            agent.route_addr("serviceB").unwrap(),
            Request::builder(Method::Get, "/x")
                .request_id("test-8")
                .build(),
        )
        .unwrap();
    assert_eq!(resp.status(), StatusCode::BAD_GATEWAY);
    let replies = store.query(&Query::replies("serviceA", "serviceB"));
    assert_eq!(replies[0].status(), Some(502));
}

#[test]
fn upstream_hang_yields_gateway_timeout() {
    // A listener that accepts but never answers.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let hang_addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let mut held = Vec::new();
        while let Ok((stream, _)) = listener.accept() {
            held.push(stream);
        }
    });
    let store = EventStore::shared();
    let agent = GremlinAgent::start(
        AgentConfig::new("serviceA")
            .route("serviceB", vec![hang_addr])
            .client(ClientConfig {
                read_timeout: Some(Duration::from_millis(200)),
                ..ClientConfig::default()
            }),
        store.clone(),
    )
    .unwrap();
    let client = HttpClient::new();
    let resp = client
        .send(
            agent.route_addr("serviceB").unwrap(),
            Request::builder(Method::Get, "/x")
                .request_id("test-9")
                .build(),
        )
        .unwrap();
    assert_eq!(resp.status(), StatusCode::GATEWAY_TIMEOUT);
}

#[test]
fn round_robin_across_upstream_instances() {
    let backend1 = HttpServer::bind("127.0.0.1:0", |_req: Request, _conn: &ConnInfo| {
        Response::ok("one")
    })
    .unwrap();
    let backend2 = HttpServer::bind("127.0.0.1:0", |_req: Request, _conn: &ConnInfo| {
        Response::ok("two")
    })
    .unwrap();
    let store = EventStore::shared();
    let agent = GremlinAgent::start(
        AgentConfig::new("serviceA").route(
            "serviceB",
            vec![backend1.local_addr(), backend2.local_addr()],
        ),
        store,
    )
    .unwrap();
    let client = HttpClient::new();
    let addr = agent.route_addr("serviceB").unwrap();
    let mut seen = std::collections::HashSet::new();
    for i in 0..4 {
        let resp = client
            .send(
                addr,
                Request::builder(Method::Get, "/")
                    .request_id(format!("test-{i}"))
                    .header("Connection", "close")
                    .build(),
            )
            .unwrap();
        seen.insert(resp.body_str());
    }
    assert_eq!(seen.len(), 2, "both instances should serve traffic");
}

#[test]
fn rules_can_be_cleared_mid_run() {
    let h = Harness::new();
    h.agent
        .install_rules(vec![Rule::abort(
            "serviceA",
            "serviceB",
            AbortKind::Status(503),
        )
        .with_pattern("test-*")])
        .unwrap();
    assert_eq!(
        h.call("/a", "test-1").unwrap().status(),
        StatusCode::SERVICE_UNAVAILABLE
    );
    h.agent.clear_rules();
    assert_eq!(h.call("/a", "test-1").unwrap().status(), StatusCode::OK);
}

#[test]
fn probability_splits_traffic() {
    let h = Harness::new();
    h.agent
        .install_rules(vec![Rule::abort(
            "serviceA",
            "serviceB",
            AbortKind::Status(503),
        )
        .with_pattern("test-*")
        .with_probability(0.5)])
        .unwrap();
    let mut aborted = 0;
    for i in 0..60 {
        let resp = h.call("/p", &format!("test-{i}")).unwrap();
        if resp.status() == StatusCode::SERVICE_UNAVAILABLE {
            aborted += 1;
        }
    }
    assert!((10..50).contains(&aborted), "aborted {aborted}/60");
}

#[test]
fn keep_alive_through_proxy_multiple_requests() {
    let h = Harness::new();
    for i in 0..10 {
        let resp = h.call(&format!("/k/{i}"), &format!("test-{i}")).unwrap();
        assert_eq!(resp.status(), StatusCode::OK);
    }
    assert_eq!(
        h.store
            .query(&Query::requests("serviceA", "serviceB"))
            .len(),
        10
    );
}

#[test]
fn agent_control_trait_in_process() {
    let h = Harness::new();
    let control: &dyn AgentControl = &h.agent;
    assert_eq!(control.service_name(), "serviceA");
    control
        .install_rules(&[Rule::abort("serviceA", "serviceB", AbortKind::Status(500))])
        .unwrap();
    assert_eq!(control.list_rules().unwrap().len(), 1);
    control.clear_rules().unwrap();
    assert!(control.list_rules().unwrap().is_empty());
}

#[test]
fn shutdown_joins_promptly_with_idle_listeners() {
    // The accept loops block in accept(2); shutdown must wake and
    // join them without waiting on traffic. A hang here would stall
    // the whole test run, so bound it explicitly.
    let store = EventStore::shared();
    let upstream = "127.0.0.1:9".parse().unwrap();
    let agent = GremlinAgent::start(
        AgentConfig::new("serviceA")
            .route("serviceB", vec![upstream])
            .route("serviceC", vec![upstream]),
        store,
    )
    .unwrap();
    let started = Instant::now();
    agent.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "shutdown must unblock idle accept loops, took {:?}",
        started.elapsed()
    );
}

#[test]
fn shutdown_after_traffic_still_joins() {
    let h = Harness::new();
    let resp = h.call("/x", "test-1").unwrap();
    assert_eq!(resp.status(), StatusCode::OK);
    let Harness { agent, .. } = h;
    let started = Instant::now();
    agent.shutdown();
    assert!(started.elapsed() < Duration::from_secs(5));
}

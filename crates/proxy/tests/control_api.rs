//! Tests of the REST control channel: ControlServer + ControlClient.

use std::sync::Arc;
use std::time::Duration;

use gremlin_http::{ConnInfo, HttpClient, HttpServer, Method, Request, Response, StatusCode};
use gremlin_proxy::{
    AbortKind, AgentConfig, AgentControl, ControlClient, ControlServer, GremlinAgent, Rule,
};
use gremlin_store::EventStore;

fn start_agent() -> (HttpServer, Arc<GremlinAgent>) {
    let backend = HttpServer::bind("127.0.0.1:0", |_req: Request, _conn: &ConnInfo| {
        Response::ok("ok")
    })
    .unwrap();
    let store = EventStore::shared();
    let agent = Arc::new(
        GremlinAgent::start(
            AgentConfig::new("serviceA").route("serviceB", vec![backend.local_addr()]),
            store,
        )
        .unwrap(),
    );
    (backend, agent)
}

#[test]
fn control_round_trip_over_http() {
    let (_backend, agent) = start_agent();
    let server = ControlServer::start(Arc::clone(&agent), "127.0.0.1:0").unwrap();
    let client = ControlClient::connect(server.local_addr()).unwrap();

    assert_eq!(client.service_name(), "serviceA");
    let health = client.health().unwrap();
    assert_eq!(health.service, "serviceA");
    assert_eq!(health.rules, 0);

    let rules = vec![
        Rule::abort("serviceA", "serviceB", AbortKind::Status(503)).with_pattern("test-*"),
        Rule::delay("serviceA", "serviceB", Duration::from_millis(100)).with_probability(0.75),
    ];
    client.install_rules(&rules).unwrap();
    assert_eq!(client.health().unwrap().rules, 2);

    let listed = client.list_rules().unwrap();
    assert_eq!(listed, rules);
    // The agent itself sees the same rules.
    assert_eq!(agent.rules(), rules);

    client.clear_rules().unwrap();
    assert!(client.list_rules().unwrap().is_empty());
}

#[test]
fn install_invalid_rule_is_rejected_with_400() {
    let (_backend, agent) = start_agent();
    let server = ControlServer::start(Arc::clone(&agent), "127.0.0.1:0").unwrap();
    let client = ControlClient::connect(server.local_addr()).unwrap();

    let bad =
        vec![Rule::abort("serviceA", "serviceB", AbortKind::Status(503)).with_probability(7.0)];
    let err = client.install_rules(&bad).unwrap_err();
    assert!(err.to_string().contains("400") || err.to_string().contains("probability"));
    assert!(agent.rules().is_empty());
}

#[test]
fn malformed_payload_is_rejected() {
    let (_backend, agent) = start_agent();
    let server = ControlServer::start(Arc::clone(&agent), "127.0.0.1:0").unwrap();
    let http = HttpClient::new();
    let resp = http
        .send(
            server.local_addr(),
            Request::builder(Method::Post, "/rules")
                .body("not json")
                .build(),
        )
        .unwrap();
    assert_eq!(resp.status(), StatusCode::BAD_REQUEST);
}

#[test]
fn single_rule_object_is_accepted() {
    let (_backend, agent) = start_agent();
    let server = ControlServer::start(Arc::clone(&agent), "127.0.0.1:0").unwrap();
    let http = HttpClient::new();
    let rule = Rule::abort("serviceA", "serviceB", AbortKind::Reset);
    let resp = http
        .send(
            server.local_addr(),
            Request::builder(Method::Post, "/rules")
                .body(serde_json::to_string(&rule).unwrap())
                .build(),
        )
        .unwrap();
    assert_eq!(resp.status(), StatusCode::NO_CONTENT);
    assert_eq!(agent.rules(), vec![rule]);
}

#[test]
fn stats_reflect_data_path_activity() {
    let (_backend, agent) = start_agent();
    let server = ControlServer::start(Arc::clone(&agent), "127.0.0.1:0").unwrap();
    let control = ControlClient::connect(server.local_addr()).unwrap();

    let before = control.stats().unwrap();
    assert_eq!(before.rule_checks, 0);
    assert_eq!(before.routes.len(), 1);
    assert_eq!(before.routes[0].0, "serviceB");

    // Drive one call through the data path.
    let data = HttpClient::new();
    let addr = agent.route_addr("serviceB").unwrap();
    data.send(addr, Request::get("/x")).unwrap();

    let after = control.stats().unwrap();
    assert_eq!(after.rule_checks, 2, "request + response side");
    assert_eq!(after.rule_hits, 0);
}

#[test]
fn unknown_path_is_404() {
    let (_backend, agent) = start_agent();
    let server = ControlServer::start(agent, "127.0.0.1:0").unwrap();
    let http = HttpClient::new();
    let resp = http
        .send(server.local_addr(), Request::get("/nope"))
        .unwrap();
    assert_eq!(resp.status(), StatusCode::NOT_FOUND);
}

#[test]
fn connect_to_dead_endpoint_fails() {
    let dead = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap()
    };
    assert!(ControlClient::connect(dead).is_err());
}

#[test]
fn control_server_with_store_serves_traces() {
    let backend = HttpServer::bind("127.0.0.1:0", |_req: Request, _conn: &ConnInfo| {
        Response::ok("ok")
    })
    .unwrap();
    let store = EventStore::shared();
    let agent = Arc::new(
        GremlinAgent::start(
            AgentConfig::new("serviceA").route("serviceB", vec![backend.local_addr()]),
            Arc::clone(&store),
        )
        .unwrap(),
    );
    let server = ControlServer::start_with_store(Arc::clone(&agent), store, "127.0.0.1:0").unwrap();

    // Drive one call with a request ID so the store has a flow.
    let data = HttpClient::new();
    let addr = agent.route_addr("serviceB").unwrap();
    data.send(
        addr,
        Request::builder(Method::Get, "/x")
            .request_id("trace-1")
            .build(),
    )
    .unwrap();

    let http = HttpClient::new();
    let resp = http
        .send(server.local_addr(), Request::get("/traces/trace-1"))
        .unwrap();
    assert_eq!(resp.status(), StatusCode::OK);
    let otlp: serde_json::Value = serde_json::from_slice(resp.body()).unwrap();
    let spans = &otlp["resourceSpans"][0]["scopeSpans"][0]["spans"];
    assert!(spans.as_array().map(|s| !s.is_empty()).unwrap_or(false));

    // Unknown flows 404; the base control routes still answer.
    let missing = http
        .send(server.local_addr(), Request::get("/traces/nope"))
        .unwrap();
    assert_eq!(missing.status(), StatusCode::NOT_FOUND);
    let health = http
        .send(server.local_addr(), Request::get("/health"))
        .unwrap();
    assert_eq!(health.status(), StatusCode::OK);
}

#[test]
fn rules_installed_over_http_take_effect_on_data_path() {
    let (_backend, agent) = start_agent();
    let server = ControlServer::start(Arc::clone(&agent), "127.0.0.1:0").unwrap();
    let control = ControlClient::connect(server.local_addr()).unwrap();
    control
        .install_rules(&[
            Rule::abort("serviceA", "serviceB", AbortKind::Status(503)).with_pattern("test-*")
        ])
        .unwrap();

    let data = HttpClient::new();
    let addr = agent.route_addr("serviceB").unwrap();
    let resp = data
        .send(
            addr,
            Request::builder(Method::Get, "/x")
                .request_id("test-1")
                .build(),
        )
        .unwrap();
    assert_eq!(resp.status(), StatusCode::SERVICE_UNAVAILABLE);
}

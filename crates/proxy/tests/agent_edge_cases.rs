//! Edge cases of the Gremlin agent's data path: multiple routes,
//! live rule updates under traffic, chunked bodies, large payloads,
//! wildcard vs ID-less traffic, and both-side Modify rules.

use std::sync::Arc;
use std::time::{Duration, Instant};

use gremlin_http::{ConnInfo, HttpClient, HttpServer, Method, Request, Response, StatusCode};
use gremlin_proxy::{AbortKind, AgentConfig, GremlinAgent, MessageSide, Rule};
use gremlin_store::{EventStore, Query};

fn echo_backend() -> HttpServer {
    HttpServer::bind("127.0.0.1:0", |req: Request, _conn: &ConnInfo| {
        Response::ok(format!("echo:{}:{}", req.path(), req.body().len()))
    })
    .unwrap()
}

#[test]
fn one_agent_fronts_multiple_dependencies() {
    let backend_b = echo_backend();
    let backend_c = HttpServer::bind("127.0.0.1:0", |_req: Request, _conn: &ConnInfo| {
        Response::ok("from-c")
    })
    .unwrap();
    let store = EventStore::shared();
    let agent = GremlinAgent::start(
        AgentConfig::new("a")
            .route("b", vec![backend_b.local_addr()])
            .route("c", vec![backend_c.local_addr()]),
        store.clone(),
    )
    .unwrap();

    // Fault only the a->b edge.
    agent
        .install_rules(vec![Rule::abort("a", "b", AbortKind::Status(503))])
        .unwrap();

    let client = HttpClient::new();
    let to_b = client
        .send(agent.route_addr("b").unwrap(), Request::get("/x"))
        .unwrap();
    let to_c = client
        .send(agent.route_addr("c").unwrap(), Request::get("/x"))
        .unwrap();
    assert_eq!(to_b.status(), StatusCode::SERVICE_UNAVAILABLE);
    assert_eq!(to_c.body_str(), "from-c");

    // Observations carry the right destination.
    assert_eq!(store.query(&Query::replies("a", "b")).len(), 1);
    assert_eq!(store.query(&Query::replies("a", "c")).len(), 1);
    assert_eq!(agent.routes().len(), 2);
}

#[test]
fn rules_can_change_while_traffic_flows() {
    let backend = echo_backend();
    let store = EventStore::shared();
    let agent = Arc::new(
        GremlinAgent::start(
            AgentConfig::new("a").route("b", vec![backend.local_addr()]),
            store,
        )
        .unwrap(),
    );
    let addr = agent.route_addr("b").unwrap();

    // Background traffic for ~400 ms.
    let traffic = {
        std::thread::spawn(move || {
            let client = HttpClient::new();
            let started = Instant::now();
            let mut statuses = Vec::new();
            while started.elapsed() < Duration::from_millis(400) {
                if let Ok(resp) = client.send(
                    addr,
                    Request::builder(Method::Get, "/t")
                        .request_id("test-1")
                        .build(),
                ) {
                    statuses.push(resp.status().as_u16());
                }
            }
            statuses
        })
    };

    // Meanwhile flip rules several times.
    for _ in 0..5 {
        agent
            .install_rules(vec![
                Rule::abort("a", "b", AbortKind::Status(503)).with_pattern("test-*")
            ])
            .unwrap();
        std::thread::sleep(Duration::from_millis(30));
        agent.clear_rules();
        std::thread::sleep(Duration::from_millis(30));
    }
    let statuses = traffic.join().unwrap();
    assert!(!statuses.is_empty());
    // Both behaviours were observed; no request was lost or wedged.
    assert!(statuses.contains(&200), "some requests pass through");
    assert!(statuses.contains(&503), "some requests are aborted");
}

#[test]
fn wildcard_rule_hits_idless_traffic_but_prefixed_rule_does_not() {
    let backend = echo_backend();
    let store = EventStore::shared();
    let agent = GremlinAgent::start(
        AgentConfig::new("a").route("b", vec![backend.local_addr()]),
        store,
    )
    .unwrap();
    let addr = agent.route_addr("b").unwrap();
    let client = HttpClient::new();

    agent
        .install_rules(vec![
            Rule::abort("a", "b", AbortKind::Status(503)).with_pattern("test-*")
        ])
        .unwrap();
    let resp = client.send(addr, Request::get("/no-id")).unwrap();
    assert_eq!(
        resp.status(),
        StatusCode::OK,
        "prefixed rule spares ID-less traffic"
    );

    agent.clear_rules();
    agent
        .install_rules(vec![Rule::abort("a", "b", AbortKind::Status(503))])
        .unwrap();
    let resp = client.send(addr, Request::get("/no-id")).unwrap();
    assert_eq!(
        resp.status(),
        StatusCode::SERVICE_UNAVAILABLE,
        "wildcard rule hits everything"
    );
}

#[test]
fn modify_on_both_sides_of_the_same_flow() {
    let backend = HttpServer::bind("127.0.0.1:0", |req: Request, _conn: &ConnInfo| {
        Response::ok(format!("saw[{}]", String::from_utf8_lossy(req.body())))
    })
    .unwrap();
    let store = EventStore::shared();
    let agent = GremlinAgent::start(
        AgentConfig::new("a").route("b", vec![backend.local_addr()]),
        store,
    )
    .unwrap();
    agent
        .install_rules(vec![
            Rule::modify("a", "b", "in", "IN").with_side(MessageSide::Request),
            Rule::modify("a", "b", "saw", "SAW").with_side(MessageSide::Response),
        ])
        .unwrap();
    let client = HttpClient::new();
    let resp = client
        .send(
            agent.route_addr("b").unwrap(),
            Request::builder(Method::Post, "/m")
                .body("value in transit")
                .build(),
        )
        .unwrap();
    // Request body rewritten before the backend, response rewritten
    // after it.
    assert_eq!(resp.body_str(), "SAW[value IN transit]");
}

#[test]
fn large_bodies_survive_the_proxy() {
    let backend = echo_backend();
    let store = EventStore::shared();
    let agent = GremlinAgent::start(
        AgentConfig::new("a").route("b", vec![backend.local_addr()]),
        store,
    )
    .unwrap();
    let client = HttpClient::new();
    let payload = "z".repeat(1 << 20); // 1 MiB
    let resp = client
        .send(
            agent.route_addr("b").unwrap(),
            Request::builder(Method::Post, "/big")
                .body(payload.clone())
                .build(),
        )
        .unwrap();
    assert_eq!(resp.body_str(), format!("echo:/big:{}", payload.len()));
}

#[test]
fn chunked_upstream_response_is_reframed() {
    // A raw backend that answers with a chunked body.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let backend_addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        use std::io::{Read, Write};
        while let Ok((mut stream, _)) = listener.accept() {
            let mut buf = [0u8; 4096];
            let _ = stream.read(&mut buf); // consume the request head
            let _ = stream.write_all(
                b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n",
            );
        }
    });
    let store = EventStore::shared();
    let agent =
        GremlinAgent::start(AgentConfig::new("a").route("b", vec![backend_addr]), store).unwrap();
    let client = HttpClient::new();
    let resp = client
        .send(agent.route_addr("b").unwrap(), Request::get("/chunked"))
        .unwrap();
    assert_eq!(resp.body_str(), "hello world");
    assert_eq!(resp.headers().get_int("content-length"), Some(11));
    assert!(
        !resp.headers().is_chunked(),
        "re-framed with content-length"
    );
}

#[test]
fn request_counters_track_rule_evaluations() {
    let backend = echo_backend();
    let store = EventStore::shared();
    let agent = GremlinAgent::start(
        AgentConfig::new("a").route("b", vec![backend.local_addr()]),
        store,
    )
    .unwrap();
    agent
        .install_rules(vec![
            Rule::abort("a", "b", AbortKind::Status(503)).with_pattern("nomatch-*")
        ])
        .unwrap();
    let client = HttpClient::new();
    for i in 0..5 {
        client
            .send(
                agent.route_addr("b").unwrap(),
                Request::builder(Method::Get, "/c")
                    .request_id(format!("test-{i}"))
                    .build(),
            )
            .unwrap();
    }
    // Each request evaluates the table twice (request + response
    // side); none match.
    assert_eq!(agent.rule_checks(), 10);
    assert_eq!(agent.rule_hits(), 0);
}

#[test]
fn gremlin_headers_do_not_leak_into_untouched_traffic() {
    let backend = echo_backend();
    let store = EventStore::shared();
    let agent = GremlinAgent::start(
        AgentConfig::new("a").route("b", vec![backend.local_addr()]),
        store,
    )
    .unwrap();
    let client = HttpClient::new();
    let resp = client
        .send(
            agent.route_addr("b").unwrap(),
            Request::builder(Method::Get, "/clean")
                .request_id("test-1")
                .build(),
        )
        .unwrap();
    assert!(resp
        .headers()
        .get(gremlin_http::header_names::GREMLIN_ACTION)
        .is_none());
}

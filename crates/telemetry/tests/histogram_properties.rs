//! Randomized property tests for the latency histogram and the
//! Prometheus renderer, using a small deterministic LCG so the
//! crate stays dependency-free.

use std::time::Duration;

use gremlin_telemetry::{
    parse_prometheus, HistogramSnapshot, LatencyHistogram, MetricsRegistry, MAX_TRACKABLE_MICROS,
};

/// Deterministic 64-bit LCG (Knuth MMIX constants).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    /// Uniform-ish value in `[0, bound)`.
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    /// Latency-shaped value: mixes magnitudes so every octave of the
    /// histogram gets exercised, not just one scale.
    fn latency_micros(&mut self) -> u64 {
        let magnitude = self.below(36);
        self.below(1 << magnitude) + 1
    }
}

fn filled(seed: u64, n: usize) -> (HistogramSnapshot, Vec<u64>) {
    let mut rng = Lcg(seed);
    let hist = LatencyHistogram::new();
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        let v = rng.latency_micros();
        hist.record_micros(v);
        values.push(v);
    }
    (hist.snapshot(), values)
}

#[test]
fn count_and_sum_are_exact() {
    for seed in 1..=20 {
        let (snap, values) = filled(seed, 500);
        assert_eq!(snap.count(), values.len() as u64);
        assert_eq!(snap.sum_micros(), values.iter().sum::<u64>());
        assert_eq!(
            snap.min(),
            Some(Duration::from_micros(*values.iter().min().unwrap()))
        );
        assert_eq!(
            snap.max(),
            Some(Duration::from_micros(*values.iter().max().unwrap()))
        );
    }
}

#[test]
fn merge_counts_are_additive() {
    for seed in 1..=10 {
        let (a, va) = filled(seed, 300);
        let (b, vb) = filled(seed + 1000, 400);
        let merged = a.merge(&b);
        assert_eq!(merged.count(), a.count() + b.count());
        assert_eq!(merged.sum_micros(), a.sum_micros() + b.sum_micros());
        let all_min = va.iter().chain(&vb).min().copied().unwrap();
        let all_max = va.iter().chain(&vb).max().copied().unwrap();
        assert_eq!(merged.min(), Some(Duration::from_micros(all_min)));
        assert_eq!(merged.max(), Some(Duration::from_micros(all_max)));
        // merge is symmetric
        assert_eq!(merged, b.merge(&a));
    }
}

#[test]
fn percentiles_are_monotone_in_p() {
    for seed in 1..=10 {
        let (snap, _) = filled(seed, 250);
        let mut last = Duration::ZERO;
        for i in 0..=100 {
            let p = i as f64 / 100.0;
            let q = snap.percentile(p).unwrap();
            assert!(q >= last, "p={p}: {q:?} < {last:?}");
            last = q;
        }
        assert_eq!(snap.percentile(1.0), snap.max());
    }
}

#[test]
fn percentile_error_is_bounded() {
    // The reported quantile must be within one bucket (<= 1/32
    // relative error in the log range) of the exact sample quantile.
    for seed in 1..=10 {
        let (snap, mut values) = filled(seed, 400);
        values.sort_unstable();
        for p in [0.5, 0.9, 0.99] {
            let rank = ((p * values.len() as f64).ceil() as usize).max(1);
            let exact = values[rank - 1];
            let approx = snap.percentile(p).unwrap().as_micros() as u64;
            let tolerance = exact / 16 + 1; // two half-bucket widths, generous
            assert!(
                approx + tolerance >= exact && approx <= exact + tolerance,
                "seed={seed} p={p}: approx={approx} exact={exact}"
            );
        }
    }
}

#[test]
fn delta_of_superset_recovers_increment() {
    for seed in 1..=10 {
        let mut rng = Lcg(seed);
        let hist = LatencyHistogram::new();
        for _ in 0..200 {
            hist.record_micros(rng.latency_micros());
        }
        let before = hist.snapshot();
        let mut added = 0u64;
        let mut added_count = 0u64;
        for _ in 0..150 {
            let v = rng.latency_micros();
            hist.record_micros(v);
            added += v;
            added_count += 1;
        }
        let delta = hist.snapshot().delta(&before);
        assert_eq!(delta.count(), added_count);
        assert_eq!(delta.sum_micros(), added);
    }
}

#[test]
fn renderer_round_trip_preserves_series() {
    let mut rng = Lcg(99);
    let registry = MetricsRegistry::new();
    let c = registry.counter("rt_total", "round trip", &[("k", "v")]);
    let h = registry.histogram("rt_seconds", "round trip", &[("k", "v")]);
    let mut expected_count = 0u64;
    for _ in 0..100 {
        c.inc();
        h.record_micros(rng.latency_micros().min(MAX_TRACKABLE_MICROS));
        expected_count += 1;
    }
    let text = registry.render_prometheus();
    let samples = parse_prometheus(&text);

    let counter = samples.iter().find(|s| s.name == "rt_total").unwrap();
    assert_eq!(counter.value as u64, expected_count);

    let count = samples
        .iter()
        .find(|s| s.name == "rt_seconds_count")
        .unwrap();
    assert_eq!(count.value as u64, expected_count);

    // Bucket ladder is cumulative and monotone, ending at count.
    let buckets: Vec<f64> = samples
        .iter()
        .filter(|s| s.name == "rt_seconds_bucket")
        .map(|s| s.value)
        .collect();
    assert!(!buckets.is_empty());
    for pair in buckets.windows(2) {
        assert!(pair[0] <= pair[1], "ladder not cumulative: {buckets:?}");
    }
    assert_eq!(*buckets.last().unwrap() as u64, expected_count);
}

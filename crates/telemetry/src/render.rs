//! Prometheus text exposition: rendering a [`TelemetrySnapshot`]
//! and a minimal parser for scraped output.

use std::fmt::Write as _;

use crate::histogram::HistogramSnapshot;
use crate::registry::{Labels, Sample, SampleValue, TelemetrySnapshot};

/// Upper bounds (µs) of the fixed `le` ladder used when rendering a
/// histogram. The internal 1024-bucket layout is collapsed onto this
/// ladder via [`HistogramSnapshot::cumulative_le_micros`].
pub const LE_LADDER_MICROS: [u64; 18] = [
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 5_000_000, 10_000_000, 30_000_000, 60_000_000,
];

/// Escapes a label value for the text exposition format: backslash,
/// double quote and newline become `\\`, `\"` and `\n`, keeping every
/// rendered sample on one physical line. Public so downstream
/// renderers (e.g. the collector's federation endpoint) escape
/// exactly the way this crate does.
pub fn escape_label_value(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn format_labels(labels: &Labels, extra: Option<(&str, String)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

pub(crate) fn micros_to_seconds(micros: u64) -> f64 {
    micros as f64 / 1_000_000.0
}

fn render_histogram(out: &mut String, sample: &Sample, hist: &HistogramSnapshot) {
    for le in LE_LADDER_MICROS {
        let labels = format_labels(
            &sample.labels,
            Some(("le", format!("{}", micros_to_seconds(le)))),
        );
        let _ = writeln!(
            out,
            "{}_bucket{} {}",
            sample.name,
            labels,
            hist.cumulative_le_micros(le)
        );
    }
    let labels = format_labels(&sample.labels, Some(("le", "+Inf".to_string())));
    let _ = writeln!(out, "{}_bucket{} {}", sample.name, labels, hist.count());
    let labels = format_labels(&sample.labels, None);
    let _ = writeln!(
        out,
        "{}_sum{} {}",
        sample.name,
        labels,
        micros_to_seconds(hist.sum_micros())
    );
    let _ = writeln!(out, "{}_count{} {}", sample.name, labels, hist.count());
}

impl TelemetrySnapshot {
    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` headers followed by one
    /// line per series, histograms as cumulative `_bucket{le=...}`
    /// ladders plus `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for sample in &self.samples {
            if last_name != Some(sample.name.as_str()) {
                if let Some(help) = self.help.get(&sample.name) {
                    let _ = writeln!(out, "# HELP {} {}", sample.name, help);
                }
                let _ = writeln!(out, "# TYPE {} {}", sample.name, sample.kind().as_str());
                last_name = Some(sample.name.as_str());
            }
            match &sample.value {
                SampleValue::Counter(v) => {
                    let _ = writeln!(
                        out,
                        "{}{} {}",
                        sample.name,
                        format_labels(&sample.labels, None),
                        v
                    );
                }
                SampleValue::Gauge(v) => {
                    let _ = writeln!(
                        out,
                        "{}{} {}",
                        sample.name,
                        format_labels(&sample.labels, None),
                        v
                    );
                }
                SampleValue::Histogram(h) => render_histogram(&mut out, sample, h),
            }
        }
        out
    }
}

/// One parsed exposition line: series name, labels, numeric value.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Full series name as written (`foo_total`, `foo_bucket`, ...).
    pub name: String,
    /// Label pairs in the order they appeared.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl PromSample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

fn parse_labels(body: &str) -> Option<Vec<(String, String)>> {
    let mut labels = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let eq = rest.find('=')?;
        let key = rest[..eq].trim().to_string();
        rest = rest[eq + 1..].trim_start();
        let mut chars = rest.char_indices();
        if chars.next()? != (0, '"') {
            return None;
        }
        let mut value = String::new();
        let mut end = None;
        let mut escaped = false;
        for (i, c) in chars {
            if escaped {
                match c {
                    'n' => value.push('\n'),
                    other => value.push(other),
                }
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            } else {
                value.push(c);
            }
        }
        let end = end?;
        labels.push((key, value));
        rest = rest[end + 1..].trim_start();
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped.trim_start();
        }
    }
    Some(labels)
}

/// Parses Prometheus text exposition output into samples.
///
/// Comment (`#`) and blank lines are skipped; malformed lines are
/// ignored rather than treated as fatal, since this parser exists to
/// let the CLI and tests read back what [`TelemetrySnapshot::render_prometheus`]
/// (or any compatible endpoint) produced.
pub fn parse_prometheus(text: &str) -> Vec<PromSample> {
    let mut samples = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = match line.rsplit_once(' ') {
            Some(parts) => parts,
            None => continue,
        };
        let value: f64 = match value.trim().parse() {
            Ok(v) => v,
            Err(_) => continue,
        };
        let series = series.trim();
        let (name, labels) = if let Some(open) = series.find('{') {
            let close = match series.rfind('}') {
                Some(c) if c > open => c,
                _ => continue,
            };
            match parse_labels(&series[open + 1..close]) {
                Some(labels) => (series[..open].to_string(), labels),
                None => continue,
            }
        } else {
            (series.to_string(), Vec::new())
        };
        samples.push(PromSample {
            name,
            labels,
            value,
        });
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;
    use std::time::Duration;

    #[test]
    fn renders_counters_and_gauges() {
        let registry = MetricsRegistry::new();
        registry
            .counter("req_total", "Requests.", &[("service", "web")])
            .add(3);
        registry
            .gauge("open_conns", "Open connections.", &[])
            .set(2);
        let text = registry.render_prometheus();
        assert!(text.contains("# HELP req_total Requests."));
        assert!(text.contains("# TYPE req_total counter"));
        assert!(text.contains("req_total{service=\"web\"} 3"));
        assert!(text.contains("# TYPE open_conns gauge"));
        assert!(text.contains("open_conns 2"));
    }

    #[test]
    fn renders_histogram_ladder() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("lat_seconds", "Latency.", &[]);
        h.record(Duration::from_micros(200));
        h.record(Duration::from_millis(3));
        let text = registry.render_prometheus();
        assert!(text.contains("# TYPE lat_seconds histogram"));
        assert!(text.contains("lat_seconds_bucket{le=\"0.0001\"} 0"));
        assert!(text.contains("lat_seconds_bucket{le=\"0.00025\"} 1"));
        assert!(text.contains("lat_seconds_bucket{le=\"0.005\"} 2"));
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("lat_seconds_count 2"));
        // _sum is in seconds.
        let samples = parse_prometheus(&text);
        let sum = samples
            .iter()
            .find(|s| s.name == "lat_seconds_sum")
            .unwrap();
        assert!((sum.value - 0.0032).abs() < 1e-9, "sum={}", sum.value);
    }

    #[test]
    fn parser_round_trips_rendered_output() {
        let registry = MetricsRegistry::new();
        registry
            .counter("c_total", "help", &[("a", "x"), ("b", "y z")])
            .add(41);
        registry.gauge("g", "help", &[]).set(-7);
        registry
            .histogram("h_seconds", "help", &[("svc", "web")])
            .record(Duration::from_millis(1));
        let text = registry.render_prometheus();
        let samples = parse_prometheus(&text);

        let c = samples.iter().find(|s| s.name == "c_total").unwrap();
        assert_eq!(c.value, 41.0);
        assert_eq!(c.label("a"), Some("x"));
        assert_eq!(c.label("b"), Some("y z"));

        let g = samples.iter().find(|s| s.name == "g").unwrap();
        assert_eq!(g.value, -7.0);

        let count = samples
            .iter()
            .find(|s| s.name == "h_seconds_count")
            .unwrap();
        assert_eq!(count.value, 1.0);
        assert_eq!(count.label("svc"), Some("web"));
        let buckets: Vec<_> = samples
            .iter()
            .filter(|s| s.name == "h_seconds_bucket")
            .collect();
        assert_eq!(buckets.len(), LE_LADDER_MICROS.len() + 1);
        assert_eq!(buckets.last().unwrap().label("le"), Some("+Inf"));
        assert_eq!(buckets.last().unwrap().value, 1.0);
    }

    #[test]
    fn label_values_are_escaped_in_rendered_output() {
        let registry = MetricsRegistry::new();
        registry
            .counter(
                "c_total",
                "h",
                &[("path", "C:\\tmp"), ("msg", "say \"hi\"\nbye")],
            )
            .add(1);
        let text = registry.render_prometheus();
        assert!(
            text.contains(r#"path="C:\\tmp""#),
            "backslash not escaped: {text}"
        );
        assert!(
            text.contains(r#"msg="say \"hi\"\nbye""#),
            "quote/newline not escaped: {text}"
        );
        // Every exposition line must stay a single physical line.
        assert!(text.lines().all(|l| !l.is_empty()));
        // And the escaped output round-trips through the parser.
        let samples = parse_prometheus(&text);
        assert_eq!(samples[0].label("path"), Some("C:\\tmp"));
        assert_eq!(samples[0].label("msg"), Some("say \"hi\"\nbye"));
    }

    #[test]
    fn parser_handles_escapes_and_junk() {
        let text = concat!(
            "# HELP weird help\n",
            "weird{msg=\"a \\\"quoted\\\" value\",path=\"c:\\\\x\"} 1\n",
            "not a metric line\n",
            "also_not 1 2 3 x\n",
        );
        let samples = parse_prometheus(text);
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].label("msg"), Some("a \"quoted\" value"));
        assert_eq!(samples[0].label("path"), Some("c:\\x"));
    }
}

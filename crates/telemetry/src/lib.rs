//! # gremlin-telemetry
//!
//! Always-on runtime telemetry for the Gremlin resilience-testing
//! framework (Heorhiadi et al., ICDCS 2016).
//!
//! The paper's agents log every observed request/response (§4.1, §6),
//! but the logs are only consulted *after* a recipe finishes, when
//! the Assertion Checker queries the store. This crate gives the
//! mesh a live view while a recipe runs: cheap counters, gauges and
//! latency histograms on the data- and control-plane hot paths,
//! snapshot-able at any time and renderable in the Prometheus text
//! exposition format.
//!
//! Design constraints, in order:
//!
//! * **Hot-path cost.** Recording into a [`Counter`], [`Gauge`] or
//!   [`LatencyHistogram`] is a handful of relaxed atomic operations —
//!   no locks, no allocation, no syscalls. Handles are registered
//!   once up front; the registry lock is never touched on the record
//!   path.
//! * **No dependencies.** Like the rest of the workspace, the crate
//!   is std-only, so every other crate (store, proxy, loadgen, core,
//!   bench) can depend on it without cycles or new third-party code.
//! * **Mergeable snapshots.** [`HistogramSnapshot`]s can be merged
//!   across agents and subtracted (`delta`) across points in time,
//!   which is what lets a recipe report carry a before/after metrics
//!   delta.
//!
//! # Examples
//!
//! ```
//! use gremlin_telemetry::MetricsRegistry;
//! use std::time::Duration;
//!
//! let registry = MetricsRegistry::new();
//! let requests = registry.counter(
//!     "gremlin_proxy_requests_total",
//!     "Requests proxied by the agent.",
//!     &[("service", "web"), ("dst", "db")],
//! );
//! let latency = registry.histogram(
//!     "gremlin_proxy_upstream_latency_seconds",
//!     "Upstream call latency.",
//!     &[("service", "web"), ("dst", "db")],
//! );
//!
//! // Hot path: atomics only.
//! requests.inc();
//! latency.record(Duration::from_millis(3));
//!
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counter_value("gremlin_proxy_requests_total",
//!     &[("service", "web"), ("dst", "db")]), Some(1));
//! let text = snapshot.render_prometheus();
//! assert!(text.contains("# TYPE gremlin_proxy_requests_total counter"));
//! ```

#![warn(missing_docs)]

pub mod histogram;
pub mod metric;
pub mod registry;
pub mod render;
pub mod stats;
pub mod timeseries;

pub use histogram::{HistogramSnapshot, LatencyHistogram, BUCKETS, MAX_TRACKABLE_MICROS};
pub use metric::{Counter, Gauge};
pub use registry::{Labels, MetricKind, MetricsRegistry, Sample, SampleValue, TelemetrySnapshot};
pub use render::{escape_label_value, parse_prometheus, PromSample, LE_LADDER_MICROS};
pub use stats::percentile;
pub use timeseries::{
    rate_points, Annotation, SeriesId, SeriesKind, TimeSeriesStore, TsPoint,
    DEFAULT_POINTS_PER_SERIES,
};

//! Fixed-bucket, log-scale latency histograms.
//!
//! The layout is HdrHistogram-like: values (in microseconds) below 64
//! land in 64 exact one-microsecond buckets; above that, each
//! power-of-two octave is split into 32 linear sub-buckets, bounding
//! the relative quantization error by 1/32 (~3.1%). The whole range
//! 0µs ..= [`MAX_TRACKABLE_MICROS`] (~19 hours) fits in
//! [`BUCKETS`] = 1024 buckets, so a histogram is a flat array of
//! atomics: recording is an index computation plus a few relaxed
//! atomic adds — no locks, no allocation, suitable for the proxy's
//! per-message hot path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of buckets in every histogram.
pub const BUCKETS: usize = 1024;

/// Largest value (in microseconds) the histogram resolves; larger
/// recordings are clamped into the top bucket.
pub const MAX_TRACKABLE_MICROS: u64 = (1 << 36) - 1;

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` linear sub-buckets.
const SUB_BITS: u32 = 5;

/// Values below this have their own exact bucket.
const LINEAR_MAX: u64 = 64;

/// Maps a microsecond value to its bucket index.
#[inline]
pub(crate) fn bucket_index(micros: u64) -> usize {
    let v = micros.min(MAX_TRACKABLE_MICROS);
    if v < LINEAR_MAX {
        return v as usize;
    }
    let msb = 63 - u64::from(v.leading_zeros()); // 6 ..= 35
    let shift = msb - u64::from(SUB_BITS);
    let sub = (v >> shift) - (1 << SUB_BITS);
    (LINEAR_MAX + (msb - 6) * (1 << SUB_BITS) + sub) as usize
}

/// Inclusive `(lower, upper)` microsecond bounds of bucket `index`.
#[inline]
pub(crate) fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < LINEAR_MAX as usize {
        return (index as u64, index as u64);
    }
    let group = ((index - LINEAR_MAX as usize) >> SUB_BITS) as u64;
    let sub = ((index - LINEAR_MAX as usize) & ((1 << SUB_BITS) - 1)) as u64;
    let shift = group + 1;
    let lower = ((1 << SUB_BITS) + sub) << shift;
    let upper = lower + (1 << shift) - 1;
    (lower, upper)
}

/// A concurrently writable latency histogram.
///
/// Recording is lock-free and allocation-free; snapshots are cheap
/// copies that can be merged across instances or subtracted across
/// points in time.
///
/// # Examples
///
/// ```
/// use gremlin_telemetry::LatencyHistogram;
/// use std::time::Duration;
///
/// let h = LatencyHistogram::new();
/// for ms in [1, 2, 3, 40] {
///     h.record(Duration::from_millis(ms));
/// }
/// let snap = h.snapshot();
/// assert_eq!(snap.count(), 4);
/// assert_eq!(snap.max(), Some(Duration::from_millis(40)));
/// let p50 = snap.percentile(0.5).unwrap();
/// assert!(p50 >= Duration::from_millis(2) && p50 < Duration::from_micros(2100));
/// ```
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("LatencyHistogram")
            .field("count", &snap.count())
            .field("sum", &snap.sum())
            .finish()
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one latency observation.
    #[inline]
    pub fn record(&self, latency: Duration) {
        self.record_micros(latency.as_micros().min(u128::from(MAX_TRACKABLE_MICROS)) as u64);
    }

    /// Records one observation given directly in microseconds.
    #[inline]
    pub fn record_micros(&self, micros: u64) {
        let v = micros.min(MAX_TRACKABLE_MICROS);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Takes a point-in-time copy of the histogram.
    ///
    /// Concurrent recorders may land between bucket reads, so totals
    /// are consistent with the bucket counts, not necessarily with
    /// the exact set of recordings in flight.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = counts.iter().sum();
        HistogramSnapshot {
            counts,
            count,
            sum_micros: self.sum.load(Ordering::Relaxed),
            min_micros: self.min.load(Ordering::Relaxed),
            max_micros: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`LatencyHistogram`], supporting
/// percentiles, merging and deltas.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    count: u64,
    sum_micros: u64,
    min_micros: u64,
    max_micros: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot::empty()
    }
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            counts: vec![0; BUCKETS],
            count: 0,
            sum_micros: 0,
            min_micros: u64::MAX,
            max_micros: 0,
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all recorded latencies.
    pub fn sum(&self) -> Duration {
        Duration::from_micros(self.sum_micros)
    }

    /// Sum of all recorded latencies in microseconds.
    pub fn sum_micros(&self) -> u64 {
        self.sum_micros
    }

    /// Arithmetic mean; `None` when empty.
    pub fn mean(&self) -> Option<Duration> {
        if self.count == 0 {
            return None;
        }
        Some(Duration::from_micros(self.sum_micros / self.count))
    }

    /// Smallest recorded latency (exact); `None` when empty.
    pub fn min(&self) -> Option<Duration> {
        if self.count == 0 {
            return None;
        }
        Some(Duration::from_micros(self.min_micros))
    }

    /// Largest recorded latency (exact); `None` when empty.
    pub fn max(&self) -> Option<Duration> {
        if self.count == 0 {
            return None;
        }
        Some(Duration::from_micros(self.max_micros))
    }

    /// The `p`-th percentile (0.0..=1.0) by nearest rank over the
    /// bucket boundaries: the returned value is an upper bound on the
    /// true percentile, within the bucket quantization error (~3.1%),
    /// and never exceeds [`HistogramSnapshot::max`].
    ///
    /// Returns `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn percentile(&self, p: f64) -> Option<Duration> {
        assert!((0.0..=1.0).contains(&p), "percentile must be in [0, 1]");
        if self.count == 0 {
            return None;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (index, &bucket_count) in self.counts.iter().enumerate() {
            cumulative += bucket_count;
            if cumulative >= rank {
                let (_, upper) = bucket_bounds(index);
                return Some(Duration::from_micros(upper.min(self.max_micros)));
            }
        }
        Some(Duration::from_micros(self.max_micros))
    }

    /// Median latency; `None` when empty.
    pub fn p50(&self) -> Option<Duration> {
        self.percentile(0.50)
    }

    /// 90th-percentile latency; `None` when empty.
    pub fn p90(&self) -> Option<Duration> {
        self.percentile(0.90)
    }

    /// 99th-percentile latency; `None` when empty.
    pub fn p99(&self) -> Option<Duration> {
        self.percentile(0.99)
    }

    /// Observations at or below `micros` (by bucket upper bound),
    /// for cumulative `le` rendering.
    pub fn cumulative_le_micros(&self, micros: u64) -> u64 {
        self.counts
            .iter()
            .enumerate()
            .take_while(|(index, _)| bucket_bounds(*index).1 <= micros)
            .map(|(_, &c)| c)
            .sum()
    }

    /// Combines two snapshots (e.g. the same metric from several
    /// agent instances). Bucket counts, totals and extrema all merge
    /// exactly.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .zip(&other.counts)
            .map(|(a, b)| a + b)
            .collect();
        let count = self.count + other.count;
        HistogramSnapshot {
            counts,
            count,
            sum_micros: self.sum_micros + other.sum_micros,
            min_micros: self.min_micros.min(other.min_micros),
            max_micros: self.max_micros.max(other.max_micros),
        }
    }

    /// What was recorded *after* `earlier` was taken: bucket-wise
    /// subtraction. Extrema are re-derived from the surviving bucket
    /// bounds (the exact per-interval min/max is not recoverable).
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .zip(&earlier.counts)
            .map(|(now, before)| now.saturating_sub(*before))
            .collect();
        let count: u64 = counts.iter().sum();
        let min_micros = counts
            .iter()
            .position(|&c| c > 0)
            .map(|i| bucket_bounds(i).0)
            .unwrap_or(u64::MAX);
        let max_micros = counts
            .iter()
            .rposition(|&c| c > 0)
            .map(|i| bucket_bounds(i).1.min(self.max_micros))
            .unwrap_or(0);
        HistogramSnapshot {
            counts,
            count,
            sum_micros: self.sum_micros.saturating_sub(earlier.sum_micros),
            min_micros,
            max_micros,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_range_is_exact() {
        for v in 0..LINEAR_MAX {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn bounds_cover_value() {
        for v in [
            64,
            65,
            100,
            1_000,
            20_000,
            123_456,
            1_000_000,
            MAX_TRACKABLE_MICROS,
        ] {
            let index = bucket_index(v);
            let (lower, upper) = bucket_bounds(index);
            assert!(lower <= v && v <= upper, "v={v} in [{lower},{upper}]");
        }
    }

    #[test]
    fn buckets_tile_the_range() {
        // Every bucket's upper bound + 1 is the next bucket's lower
        // bound, and the last bucket ends at the trackable maximum.
        for index in 0..BUCKETS - 1 {
            let (_, upper) = bucket_bounds(index);
            let (next_lower, _) = bucket_bounds(index + 1);
            assert_eq!(upper + 1, next_lower, "at index {index}");
        }
        assert_eq!(bucket_bounds(BUCKETS - 1).1, MAX_TRACKABLE_MICROS);
    }

    #[test]
    fn relative_error_is_bounded() {
        // Each log-range bucket is at most 1/32 of its lower bound
        // wide, which bounds the quantization error of any recorded
        // value by ~3.1%.
        for index in LINEAR_MAX as usize..BUCKETS {
            let (lower, upper) = bucket_bounds(index);
            let width = upper - lower + 1;
            assert!(
                width * 32 <= lower,
                "bucket {index} too wide: [{lower},{upper}]"
            );
        }
    }

    #[test]
    fn record_and_percentiles() {
        let h = LatencyHistogram::new();
        for ms in 1..=100u64 {
            h.record(Duration::from_millis(ms));
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 100);
        assert_eq!(snap.min(), Some(Duration::from_millis(1)));
        assert_eq!(snap.max(), Some(Duration::from_millis(100)));
        let p50 = snap.p50().unwrap().as_micros() as f64;
        assert!((50_000.0..53_200.0).contains(&p50), "p50 {p50}");
        let p99 = snap.p99().unwrap().as_micros() as f64;
        assert!((99_000.0..103_200.0).contains(&p99), "p99 {p99}");
        // p100 is the exact max.
        assert_eq!(snap.percentile(1.0), Some(Duration::from_millis(100)));
        let mean = snap.mean().unwrap();
        assert_eq!(mean, Duration::from_micros(50_500));
    }

    #[test]
    fn empty_snapshot() {
        let snap = LatencyHistogram::new().snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.percentile(0.5), None);
        assert_eq!(snap.min(), None);
        assert_eq!(snap.max(), None);
        assert_eq!(snap.mean(), None);
        assert_eq!(snap, HistogramSnapshot::empty());
    }

    #[test]
    #[should_panic(expected = "in [0, 1]")]
    fn percentile_rejects_bad_p() {
        let _ = HistogramSnapshot::empty().percentile(1.5);
    }

    #[test]
    fn oversized_values_clamp() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_secs(1 << 40));
        let snap = h.snapshot();
        assert_eq!(snap.count(), 1);
        assert_eq!(
            snap.max(),
            Some(Duration::from_micros(MAX_TRACKABLE_MICROS))
        );
    }

    #[test]
    fn merge_adds_counts() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record(Duration::from_millis(1));
        a.record(Duration::from_millis(10));
        b.record(Duration::from_millis(100));
        let merged = a.snapshot().merge(&b.snapshot());
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.min(), Some(Duration::from_millis(1)));
        assert_eq!(merged.max(), Some(Duration::from_millis(100)));
        assert_eq!(merged.sum(), Duration::from_millis(111));
    }

    #[test]
    fn delta_subtracts() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_millis(5));
        let before = h.snapshot();
        h.record(Duration::from_millis(7));
        h.record(Duration::from_millis(9));
        let delta = h.snapshot().delta(&before);
        assert_eq!(delta.count(), 2);
        assert_eq!(delta.sum(), Duration::from_millis(16));
        let min = delta.min().unwrap();
        assert!(min <= Duration::from_millis(7) && min > Duration::from_millis(6));
        // Delta against itself is empty.
        let now = h.snapshot();
        assert!(now.delta(&now).is_empty());
    }

    #[test]
    fn cumulative_le() {
        let h = LatencyHistogram::new();
        h.record_micros(10);
        h.record_micros(1_000);
        h.record_micros(100_000);
        let snap = h.snapshot();
        assert_eq!(snap.cumulative_le_micros(10), 1);
        assert_eq!(snap.cumulative_le_micros(2_000), 2);
        assert_eq!(snap.cumulative_le_micros(MAX_TRACKABLE_MICROS), 3);
        assert_eq!(snap.cumulative_le_micros(0), 0);
    }

    #[test]
    fn concurrent_recording() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..5_000u64 {
                        h.record_micros(t * 1_000 + i % 997);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(h.snapshot().count(), 20_000);
    }
}

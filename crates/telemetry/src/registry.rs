//! The metrics registry and its point-in-time snapshots.

use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

use crate::histogram::{HistogramSnapshot, LatencyHistogram};
use crate::metric::{Counter, Gauge};

/// Label set of one metric series: sorted `(name, value)` pairs.
pub type Labels = Vec<(String, String)>;

/// Identifies one series inside the registry.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct SeriesKey {
    name: String,
    labels: Labels,
}

fn series_key(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
    let mut labels: Labels = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    labels.sort();
    SeriesKey {
        name: name.to_string(),
        labels,
    }
}

/// Is `name` a legal Prometheus metric name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`)?
fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Is `name` a legal Prometheus label name
/// (`[a-zA-Z_][a-zA-Z0-9_]*`)? Colons are reserved for metric names.
fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Rejects series that would render as malformed exposition lines.
/// Label *values* are free-form (the renderer escapes them); names
/// cannot be escaped, so a bad one is a programming error caught at
/// registration instead of corrupting every later scrape.
fn validate_series(name: &str, labels: &[(&str, &str)]) {
    assert!(
        valid_metric_name(name),
        "invalid metric name {name:?}: must match [a-zA-Z_:][a-zA-Z0-9_:]*"
    );
    for (key, _) in labels {
        assert!(
            valid_label_name(key),
            "invalid label name {key:?} on metric {name:?}: must match [a-zA-Z_][a-zA-Z0-9_]*"
        );
    }
}

/// The kind of a metric series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// A monotonically increasing counter.
    Counter,
    /// An instantaneous value.
    Gauge,
    /// A latency distribution.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword for this kind.
    pub fn as_str(&self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<SeriesKey, Arc<Counter>>,
    gauges: BTreeMap<SeriesKey, Arc<Gauge>>,
    histograms: BTreeMap<SeriesKey, Arc<LatencyHistogram>>,
    help: BTreeMap<String, String>,
}

/// A registry of named, labeled metrics.
///
/// Registration (`counter` / `gauge` / `histogram`) takes a write
/// lock and returns a shared handle; callers hold the handle and
/// record through it, so the lock is never touched on the hot path.
/// Registering the same `(name, labels)` series twice returns the
/// same handle, making registration idempotent across components
/// that share a registry.
///
/// # Examples
///
/// ```
/// use gremlin_telemetry::MetricsRegistry;
///
/// let registry = MetricsRegistry::new();
/// let hits = registry.counter("hits_total", "Hits.", &[("route", "/")]);
/// hits.inc();
/// let again = registry.counter("hits_total", "Hits.", &[("route", "/")]);
/// again.inc();
/// assert_eq!(hits.get(), 2); // same underlying series
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: RwLock<Inner>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Creates an empty registry behind an [`Arc`], ready to share
    /// across components.
    pub fn shared() -> Arc<MetricsRegistry> {
        Arc::new(MetricsRegistry::new())
    }

    /// Registers (or retrieves) a counter series.
    ///
    /// # Panics
    ///
    /// Panics if the metric name or a label name is not legal
    /// Prometheus exposition syntax.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        validate_series(name, labels);
        let key = series_key(name, labels);
        let mut inner = self.inner.write().expect("telemetry registry poisoned");
        inner
            .help
            .entry(name.to_string())
            .or_insert_with(|| help.to_string());
        Arc::clone(inner.counters.entry(key).or_default())
    }

    /// Registers (or retrieves) a gauge series.
    ///
    /// # Panics
    ///
    /// Panics if the metric name or a label name is not legal
    /// Prometheus exposition syntax.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        validate_series(name, labels);
        let key = series_key(name, labels);
        let mut inner = self.inner.write().expect("telemetry registry poisoned");
        inner
            .help
            .entry(name.to_string())
            .or_insert_with(|| help.to_string());
        Arc::clone(inner.gauges.entry(key).or_default())
    }

    /// Registers (or retrieves) a latency-histogram series.
    ///
    /// # Panics
    ///
    /// Panics if the metric name or a label name is not legal
    /// Prometheus exposition syntax.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<LatencyHistogram> {
        validate_series(name, labels);
        let key = series_key(name, labels);
        let mut inner = self.inner.write().expect("telemetry registry poisoned");
        inner
            .help
            .entry(name.to_string())
            .or_insert_with(|| help.to_string());
        Arc::clone(inner.histograms.entry(key).or_default())
    }

    /// Takes a point-in-time snapshot of every registered series.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let inner = self.inner.read().expect("telemetry registry poisoned");
        let mut samples = Vec::new();
        for (key, counter) in &inner.counters {
            samples.push(Sample {
                name: key.name.clone(),
                labels: key.labels.clone(),
                value: SampleValue::Counter(counter.get()),
            });
        }
        for (key, gauge) in &inner.gauges {
            samples.push(Sample {
                name: key.name.clone(),
                labels: key.labels.clone(),
                value: SampleValue::Gauge(gauge.get()),
            });
        }
        for (key, histogram) in &inner.histograms {
            samples.push(Sample {
                name: key.name.clone(),
                labels: key.labels.clone(),
                value: SampleValue::Histogram(histogram.snapshot()),
            });
        }
        samples.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        TelemetrySnapshot {
            samples,
            help: inner.help.clone(),
        }
    }

    /// Renders the current state in the Prometheus text exposition
    /// format (shorthand for `snapshot().render_prometheus()`).
    pub fn render_prometheus(&self) -> String {
        self.snapshot().render_prometheus()
    }
}

/// The value of one sampled series.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SampleValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

/// One sampled series: name, labels and value.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Sample {
    /// Metric name (e.g. `gremlin_proxy_requests_total`).
    pub name: String,
    /// Sorted label pairs.
    pub labels: Labels,
    /// Sampled value.
    pub value: SampleValue,
}

impl Sample {
    /// The kind of this sample.
    pub fn kind(&self) -> MetricKind {
        match self.value {
            SampleValue::Counter(_) => MetricKind::Counter,
            SampleValue::Gauge(_) => MetricKind::Gauge,
            SampleValue::Histogram(_) => MetricKind::Histogram,
        }
    }
}

/// A point-in-time copy of a whole [`MetricsRegistry`] — what
/// `GET /metrics` renders, and what recipe reports carry as
/// before/after deltas.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TelemetrySnapshot {
    /// Sampled series, sorted by `(name, labels)`.
    pub samples: Vec<Sample>,
    /// Help strings by metric name.
    pub help: BTreeMap<String, String>,
}

fn labels_match(labels: &Labels, wanted: &[(&str, &str)]) -> bool {
    labels.len() == wanted.len()
        && wanted
            .iter()
            .all(|(k, v)| labels.iter().any(|(lk, lv)| lk == k && lv == v))
}

impl TelemetrySnapshot {
    /// Returns `true` when no series was sampled.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Looks up one sample by exact name and label set.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Sample> {
        self.samples
            .iter()
            .find(|s| s.name == name && labels_match(&s.labels, labels))
    }

    /// The value of a counter series, if present.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.get(name, labels)?.value {
            SampleValue::Counter(v) => Some(v),
            _ => None,
        }
    }

    /// The value of a gauge series, if present.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        match self.get(name, labels)?.value {
            SampleValue::Gauge(v) => Some(v),
            _ => None,
        }
    }

    /// The state of a histogram series, if present.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        match &self.get(name, labels)?.value {
            SampleValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Sums every series of counter `name` across label sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .filter_map(|s| match s.value {
                SampleValue::Counter(v) => Some(v),
                _ => None,
            })
            .sum()
    }

    /// What changed since `earlier`: counters and histograms are
    /// subtracted series-by-series (series absent from `earlier`
    /// keep their full value); gauges keep their current value.
    /// Unchanged counter/histogram series are dropped from the
    /// result, so the delta is compact.
    pub fn delta(&self, earlier: &TelemetrySnapshot) -> TelemetrySnapshot {
        let mut samples = Vec::new();
        for sample in &self.samples {
            let before = earlier
                .samples
                .iter()
                .find(|s| s.name == sample.name && s.labels == sample.labels);
            let value = match (&sample.value, before.map(|s| &s.value)) {
                (SampleValue::Counter(now), Some(SampleValue::Counter(then))) => {
                    let diff = now.saturating_sub(*then);
                    if diff == 0 {
                        continue;
                    }
                    SampleValue::Counter(diff)
                }
                (SampleValue::Histogram(now), Some(SampleValue::Histogram(then))) => {
                    let diff = now.delta(then);
                    if diff.is_empty() {
                        continue;
                    }
                    SampleValue::Histogram(diff)
                }
                (SampleValue::Counter(now), None) => {
                    if *now == 0 {
                        continue;
                    }
                    SampleValue::Counter(*now)
                }
                (SampleValue::Histogram(now), None) => {
                    if now.is_empty() {
                        continue;
                    }
                    SampleValue::Histogram(now.clone())
                }
                (value, _) => value.clone(),
            };
            samples.push(Sample {
                name: sample.name.clone(),
                labels: sample.labels.clone(),
                value,
            });
        }
        TelemetrySnapshot {
            samples,
            help: self.help.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn registration_is_idempotent() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("c_total", "help", &[("k", "v")]);
        let b = registry.counter("c_total", "other help ignored", &[("k", "v")]);
        a.inc();
        b.inc();
        let snap = registry.snapshot();
        assert_eq!(snap.counter_value("c_total", &[("k", "v")]), Some(2));
        assert_eq!(snap.help.get("c_total").unwrap(), "help");
    }

    #[test]
    fn label_order_does_not_matter() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("c_total", "h", &[("a", "1"), ("b", "2")]);
        let b = registry.counter("c_total", "h", &[("b", "2"), ("a", "1")]);
        a.inc();
        b.inc();
        assert_eq!(
            registry
                .snapshot()
                .counter_value("c_total", &[("b", "2"), ("a", "1")]),
            Some(2)
        );
    }

    #[test]
    fn distinct_labels_are_distinct_series() {
        let registry = MetricsRegistry::new();
        registry.counter("c_total", "h", &[("k", "x")]).add(3);
        registry.counter("c_total", "h", &[("k", "y")]).add(4);
        let snap = registry.snapshot();
        assert_eq!(snap.counter_value("c_total", &[("k", "x")]), Some(3));
        assert_eq!(snap.counter_value("c_total", &[("k", "y")]), Some(4));
        assert_eq!(snap.counter_total("c_total"), 7);
    }

    #[test]
    fn snapshot_covers_all_kinds() {
        let registry = MetricsRegistry::new();
        registry.counter("c_total", "h", &[]).inc();
        registry.gauge("g", "h", &[]).set(-2);
        registry
            .histogram("h_seconds", "h", &[])
            .record(Duration::from_millis(1));
        let snap = registry.snapshot();
        assert_eq!(snap.samples.len(), 3);
        assert_eq!(snap.counter_value("c_total", &[]), Some(1));
        assert_eq!(snap.gauge_value("g", &[]), Some(-2));
        assert_eq!(snap.histogram("h_seconds", &[]).unwrap().count(), 1);
        assert!(snap.get("missing", &[]).is_none());
    }

    #[test]
    fn delta_drops_unchanged_series() {
        let registry = MetricsRegistry::new();
        let changed = registry.counter("changed_total", "h", &[]);
        registry.counter("static_total", "h", &[]).add(5);
        let hist = registry.histogram("lat_seconds", "h", &[]);
        hist.record(Duration::from_millis(2));
        let before = registry.snapshot();
        changed.add(7);
        hist.record(Duration::from_millis(4));
        let delta = registry.snapshot().delta(&before);
        assert_eq!(delta.counter_value("changed_total", &[]), Some(7));
        assert!(delta.get("static_total", &[]).is_none());
        let h = delta.histogram("lat_seconds", &[]).unwrap();
        assert_eq!(h.count(), 1);
        // Gauges keep their current value in a delta.
        registry.gauge("g", "h", &[]).set(9);
        let delta = registry.snapshot().delta(&before);
        assert_eq!(delta.gauge_value("g", &[]), Some(9));
    }

    #[test]
    fn names_with_full_prometheus_charset_register() {
        let registry = MetricsRegistry::new();
        registry.counter("ns:sub_total", "h", &[("_private", "x"), ("a1", "y")]);
        registry.gauge("_leading_underscore", "h", &[]);
        assert_eq!(registry.snapshot().samples.len(), 2);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn metric_names_with_dashes_are_rejected() {
        MetricsRegistry::new().counter("bad-name", "h", &[]);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn metric_names_starting_with_a_digit_are_rejected() {
        MetricsRegistry::new().gauge("9lives", "h", &[]);
    }

    #[test]
    #[should_panic(expected = "invalid label name")]
    fn label_names_with_colons_are_rejected() {
        MetricsRegistry::new().histogram("h_seconds", "h", &[("bad:label", "v")]);
    }

    #[test]
    fn delta_against_empty_keeps_everything_nonzero() {
        let registry = MetricsRegistry::new();
        registry.counter("c_total", "h", &[]).add(2);
        registry.counter("zero_total", "h", &[]);
        let delta = registry.snapshot().delta(&TelemetrySnapshot::default());
        assert_eq!(delta.counter_value("c_total", &[]), Some(2));
        assert!(delta.get("zero_total", &[]).is_none());
    }
}

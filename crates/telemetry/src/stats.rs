//! Exact sample-based statistics shared with the load generator.

use std::time::Duration;

/// Exact nearest-rank percentile of a **sorted** slice of latencies.
///
/// Returns `None` on an empty slice. `p` must lie in `[0.0, 1.0]`;
/// `p = 0.0` is the minimum and `p = 1.0` the maximum.
///
/// This is the sample-exact counterpart of
/// [`HistogramSnapshot::percentile`](crate::HistogramSnapshot::percentile):
/// the load generator keeps raw samples and uses this; the mesh keeps
/// bucketed histograms and quantizes.
///
/// # Panics
///
/// Panics if `p` is outside `[0.0, 1.0]` or not a number.
///
/// # Examples
///
/// ```
/// use gremlin_telemetry::percentile;
/// use std::time::Duration;
///
/// let sorted: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
/// assert_eq!(percentile(&sorted, 0.50), Some(Duration::from_millis(50)));
/// assert_eq!(percentile(&sorted, 0.99), Some(Duration::from_millis(99)));
/// assert_eq!(percentile(&sorted, 1.0), Some(Duration::from_millis(100)));
/// ```
pub fn percentile(sorted: &[Duration], p: f64) -> Option<Duration> {
    assert!(
        (0.0..=1.0).contains(&p),
        "percentile must be in [0, 1], got {p}"
    );
    if sorted.is_empty() {
        return None;
    }
    let rank = ((p * sorted.len() as f64).ceil() as usize).max(1);
    Some(sorted[rank.min(sorted.len()) - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn nearest_rank_on_small_samples() {
        let sorted = vec![ms(10), ms(20), ms(30), ms(40)];
        assert_eq!(percentile(&sorted, 0.0), Some(ms(10)));
        assert_eq!(percentile(&sorted, 0.5), Some(ms(20)));
        assert_eq!(percentile(&sorted, 0.51), Some(ms(30)));
        assert_eq!(percentile(&sorted, 1.0), Some(ms(40)));
    }

    #[test]
    fn empty_is_none() {
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn out_of_range_panics() {
        let _ = percentile(&[ms(1)], 1.5);
    }
}
